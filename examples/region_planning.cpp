// Scenario: capacity planning — where should the next datacenter go?
//
// Uses the library's Environment API to define a *hypothetical* sixth region
// (Reykjavik-style: geothermal/hydro grid, cold climate, water-abundant) and
// quantifies how adding it changes fleet-level carbon and water footprints —
// the "strategic placement" use-case the paper's Related Work mentions
// (Siddik et al.) expressed through WaterWise's configurable region model.
#include <iostream>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

namespace {

ww::env::RegionSpec reykjavik_spec() {
  using namespace ww::env;
  RegionSpec r;
  r.name = "Reykjavik";
  r.aws_zone = "hypothetical-is-1";
  r.latitude = 64.15;
  r.longitude = -21.94;
  r.wsf = 0.05;  // water-abundant
  r.pue = 1.1;   // free cooling
  r.servers = 35;
  // Geothermal + hydro grid.
  r.mix.base_share = {0.0, 0.05, 0.70, 0.20, 0.0, 0.0, 0.05, 0.0, 0.0};
  r.weather = WeatherConfig{4.0, 4.0, 2.0, 1.5, 0.92, 200, 14.0};
  return r;
}

ww::dc::CampaignResult run(const ww::env::Environment& env,
                           const std::vector<ww::trace::Job>& jobs,
                           ww::dc::Scheduler& s) {
  const ww::footprint::FootprintModel fp(env);
  ww::dc::SimConfig cfg;
  cfg.tol = 0.5;
  ww::dc::Simulator sim(env, fp, cfg);
  return sim.run(jobs, s);
}

}  // namespace

int main() {
  using namespace ww;

  // Candidate fleets: today's five regions vs. five + Reykjavik.
  auto specs5 = env::builtin_region_specs();
  auto specs6 = specs5;
  specs6.push_back(reykjavik_spec());
  const env::Environment fleet5(specs5);
  const env::Environment fleet6(specs6);

  // Same submission pattern in both worlds (nobody submits FROM the new
  // region yet: weights keep home submissions on the original five).
  auto cfg = trace::borg_config(11, 0.25);
  cfg.num_regions = 6;
  cfg.region_weights = {0.15, 0.18, 0.30, 0.15, 0.22, 0.0};
  const auto jobs6 = trace::generate_trace(cfg);
  cfg.num_regions = 5;
  cfg.region_weights = {0.15, 0.18, 0.30, 0.15, 0.22};
  const auto jobs5 = trace::generate_trace(cfg);

  std::cout << "Candidate region: Reykjavik (geothermal/hydro, WSF 0.05, PUE 1.1)\n"
            << "Question: what do fleet carbon/water footprints gain from it?\n\n";

  sched::BaselineScheduler base5;
  core::WaterWiseScheduler ww5;
  core::WaterWiseScheduler ww6;
  const auto r_base = run(fleet5, jobs5, base5);
  const auto r_ww5 = run(fleet5, jobs5, ww5);
  const auto r_ww6 = run(fleet6, jobs6, ww6);

  util::Table table({"Fleet", "Scheduler", "Carbon (kgCO2)", "Water (kL)",
                     "Carbon saving %", "Water saving %"});
  table.add_row({"5 regions", "Baseline",
                 util::Table::fixed(r_base.total_carbon_g / 1e3, 1),
                 util::Table::fixed(r_base.total_water_l / 1e3, 1), "-", "-"});
  table.add_row({"5 regions", "WaterWise",
                 util::Table::fixed(r_ww5.total_carbon_g / 1e3, 1),
                 util::Table::fixed(r_ww5.total_water_l / 1e3, 1),
                 util::Table::fixed(r_ww5.carbon_saving_pct_vs(r_base), 2),
                 util::Table::fixed(r_ww5.water_saving_pct_vs(r_base), 2)});
  table.add_row({"5 + Reykjavik", "WaterWise",
                 util::Table::fixed(r_ww6.total_carbon_g / 1e3, 1),
                 util::Table::fixed(r_ww6.total_water_l / 1e3, 1),
                 util::Table::fixed(r_ww6.carbon_saving_pct_vs(r_base), 2),
                 util::Table::fixed(r_ww6.water_saving_pct_vs(r_base), 2)});
  table.print(std::cout);

  std::cout << "\nWaterWise's placement share for Reykjavik: "
            << util::Table::fixed(r_ww6.region_share_pct().back(), 1)
            << "% of all jobs\n"
            << "\nTakeaway: the Environment API makes what-if region studies a\n"
               "few lines of code — plug in a spec, rerun the campaign, read\n"
               "the fleet-level carbon/water deltas.\n";
  return 0;
}
