// Scenario: a nightly ML-training campaign with long, energy-hungry jobs.
//
// The paper's introduction motivates WaterWise with ML training workloads
// whose water footprint is large [32].  This example builds a custom trace of
// heavy GraphAnalytics/MemoryAnalytics-class jobs submitted from two home
// regions overnight, then sweeps the delay tolerance to show how much carbon
// and water a provider can save by letting batch training tolerate delay —
// the Fig. 3(a)/Fig. 5 story on a concrete workload.
#include <iostream>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/benchmark_profile.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

/// Overnight batch of heavyweight jobs from Oregon and Mumbai.
std::vector<ww::trace::Job> training_trace(std::uint64_t seed) {
  using namespace ww;
  util::Rng rng(seed);
  std::vector<trace::Job> jobs;
  const int heavy[] = {6, 8};  // GraphAnalytics, MemoryAnalytics
  std::uint64_t id = 0;
  // 400 jobs submitted between 22:00 and 04:00, bursty.
  double t = 22.0 * 3600.0;
  while (jobs.size() < 400) {
    t += rng.exponential(1.0 / 55.0);  // ~one job per minute
    trace::Job j;
    j.id = id++;
    j.submit_time = t;
    j.home_region = rng.bernoulli(0.5) ? 2 : 4;  // Oregon or Mumbai
    trace::sample_instance(heavy[rng.uniform_int(0, 1)], rng, j);
    j.exec_seconds *= 6.0;  // training epochs run far longer than the profile
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace

int main() {
  using namespace ww;
  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel footprint(env);
  const auto jobs = training_trace(2025);

  double total_hours = 0.0;
  for (const auto& j : jobs) total_hours += j.exec_seconds / 3600.0;
  std::cout << "Nightly ML-training campaign: " << jobs.size()
            << " jobs, " << util::Table::fixed(total_hours, 0)
            << " server-hours, homes = Oregon/Mumbai\n\n";

  util::Table table({"Delay tolerance", "Carbon saving %", "Water saving %",
                     "Mean service norm", "Violations %"});
  for (const double tol : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    dc::SimConfig cfg;
    cfg.tol = tol;
    dc::Simulator sim(env, footprint, cfg);
    sched::BaselineScheduler baseline;
    core::WaterWiseScheduler ww;
    const auto base = sim.run(jobs, baseline);
    const auto res = sim.run(jobs, ww);
    table.add_row({util::Table::fixed(tol * 100.0, 0) + "%",
                   util::Table::fixed(res.carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(res.water_saving_pct_vs(base), 2),
                   util::Table::fixed(res.mean_service_norm(), 3) + "x",
                   util::Table::fixed(res.violation_pct(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nTakeaway: batch training tolerates delay by nature; even a\n"
               "25% allowance lets the scheduler route epochs through cleaner,\n"
               "less water-stressed grids at night.\n";
  return 0;
}
