// Quickstart: the 60-second tour of the WaterWise library.
//
//   1. Build the five-region environment (energy mixes, weather, WSF).
//   2. Generate a Borg-like trace.
//   3. Run the carbon/water-unaware Baseline and WaterWise on it.
//   4. Print the carbon and water savings.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace ww;

  // 1. Environment: the paper's five AWS regions with synthesized carbon
  //    intensity, EWIF, WUE and WSF calibrated to Fig. 2.
  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel footprint(env);

  std::cout << "Regions:\n";
  for (int r = 0; r < env.num_regions(); ++r) {
    std::cout << "  " << env.region(r).name << " (" << env.region(r).aws_zone
              << "): CI(t=0) "
              << util::Table::fixed(env.carbon_intensity(r, 0.0), 0)
              << " gCO2/kWh, water intensity "
              << util::Table::fixed(env.water_intensity(r, 0.0), 2)
              << " L/kWh, WSF " << util::Table::fixed(env.wsf(r), 2) << "\n";
  }

  // 2. Six hours of Borg-rate arrivals (~5-6k jobs).
  const auto jobs = trace::generate_trace(trace::borg_config(/*seed=*/1,
                                                             /*days=*/0.25));
  std::cout << "\nTrace: " << jobs.size() << " jobs over 6 simulated hours\n";

  // 3. Same trace, two schedulers, 50% delay tolerance.
  dc::SimConfig config;
  config.tol = 0.50;
  dc::Simulator sim(env, footprint, config);

  sched::BaselineScheduler baseline;
  core::WaterWiseScheduler waterwise;
  const dc::CampaignResult base = sim.run(jobs, baseline);
  const dc::CampaignResult ww = sim.run(jobs, waterwise);

  // 4. Report.
  util::Table table({"Scheduler", "Carbon (kgCO2)", "Water (kL)",
                     "Carbon saving", "Water saving", "Service norm"});
  table.add_row({base.scheduler_name,
                 util::Table::fixed(base.total_carbon_g / 1000.0, 2),
                 util::Table::fixed(base.total_water_l / 1000.0, 2), "-", "-",
                 util::Table::fixed(base.mean_service_norm(), 3) + "x"});
  table.add_row({ww.scheduler_name,
                 util::Table::fixed(ww.total_carbon_g / 1000.0, 2),
                 util::Table::fixed(ww.total_water_l / 1000.0, 2),
                 util::Table::pct(ww.carbon_saving_pct_vs(base)),
                 util::Table::pct(ww.water_saving_pct_vs(base)),
                 util::Table::fixed(ww.mean_service_norm(), 3) + "x"});
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nWaterWise placed jobs across regions: ";
  for (int r = 0; r < env.num_regions(); ++r)
    std::cout << env.region(r).name << " "
              << util::Table::fixed(ww.region_share_pct()[static_cast<std::size_t>(r)], 1)
              << "%  ";
  std::cout << "\n";
  return 0;
}
