// Scenario: extending the framework with your own policy.
//
// The dc::Scheduler interface is the library's extension point: implement
// schedule() and the simulator, metrics ledger, and benches work unchanged.
// Here we write a simple "WaterFirst" heuristic — place each job in the
// feasible region with the lowest current *water intensity* (Eq. 6), with a
// carbon tie-break — and pit it against Baseline and the full MILP-based
// WaterWise to show what the optimization layer adds.
#include <algorithm>
#include <iostream>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

namespace {

class WaterFirstScheduler final : public ww::dc::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "WaterFirst"; }

  [[nodiscard]] std::vector<ww::dc::Decision> schedule(
      const std::vector<ww::dc::PendingJob>& batch,
      const ww::dc::ScheduleContext& ctx) override {
    const int n = ctx.capacity->num_regions();
    std::vector<int> free(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      free[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);

    // Rank regions by water intensity now, carbon intensity as tie-break.
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) order[static_cast<std::size_t>(r)] = r;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double wa = ctx.env->water_intensity(a, ctx.now);
      const double wb = ctx.env->water_intensity(b, ctx.now);
      if (wa != wb) return wa < wb;
      return ctx.env->carbon_intensity(a, ctx.now) <
             ctx.env->carbon_intensity(b, ctx.now);
    });

    std::vector<ww::dc::Decision> decisions;
    for (const auto& p : batch) {
      for (const int r : order) {
        if (free[static_cast<std::size_t>(r)] <= 0) continue;
        const double latency = ctx.env->transfer_latency_seconds(
            p.job->home_region, r, p.job->package_bytes);
        // Respect the delay tolerance: skip regions whose transfer alone
        // would blow the allowance.
        const double waited = ctx.now - p.first_seen;
        if (latency + waited > ctx.tol * p.est_exec_s && r != p.job->home_region)
          continue;
        --free[static_cast<std::size_t>(r)];
        decisions.push_back({p.job->id, r, ctx.now + latency, 1.0});
        break;
      }
    }
    return decisions;
  }
};

}  // namespace

int main() {
  using namespace ww;
  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(5, 0.25));

  dc::SimConfig cfg;
  cfg.tol = 0.5;
  dc::Simulator sim(env, fp, cfg);

  sched::BaselineScheduler baseline;
  WaterFirstScheduler water_first;
  core::WaterWiseScheduler waterwise;

  const auto r_base = sim.run(jobs, baseline);
  const auto r_wf = sim.run(jobs, water_first);
  const auto r_ww = sim.run(jobs, waterwise);

  util::Table table({"Scheduler", "Carbon saving %", "Water saving %",
                     "Violation %"});
  for (const auto* r : {&r_wf, &r_ww}) {
    table.add_row({r->scheduler_name,
                   util::Table::fixed(r->carbon_saving_pct_vs(r_base), 2),
                   util::Table::fixed(r->water_saving_pct_vs(r_base), 2),
                   util::Table::fixed(r->violation_pct(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nTakeaway: a ~40-line greedy policy plugs straight into the\n"
               "simulator; the MILP-based WaterWise beats it on the *joint*\n"
               "carbon+water objective because it solves the batch globally\n"
               "under capacity and delay constraints instead of job-by-job.\n";
  return 0;
}
