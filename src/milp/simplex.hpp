// Bounded-variable revised primal + dual simplex on a sparse LU kernel.
//
// Linear programs are solved in the standard computational form
//   min c^T x   s.t.  A x = b,   l <= x <= u,
// built by appending one logical (slack) column per row.  Phase 1 introduces
// artificial columns only for rows whose logical value falls outside its
// bounds and minimizes their sum; phase 2 minimizes the true objective with
// artificials fixed at zero.
//
// The basis is held as a sparse LU factorization (see basis_lu.hpp) with
// Forrest-Tomlin updates between refactorizations, so FTRAN/BTRAN cost
// O(nnz) — flat over long pivot runs — instead of the dense O(m^2) of the
// previous kernel.  Refactorization is triggered by the update budget, the
// fill monitor (BasisLU::fill_ratio), the iteration-cadence backstop, or an
// update the stability test rejects.  Reduced costs are maintained
// incrementally from the pivot row and recomputed exactly at every
// refactorization.  Pricing is Devex (reference-framework weights,
// reset on refactorization) over a candidate list, with Dantzig available
// as an option and an automatic switch to Bland's rule for termination on
// degenerate instances.  The primal and dual loops share the pivot-row
// computation, reduced-cost update, and basis-change bookkeeping.
//
// The solver pre-builds the standard form once per Model; branch-and-bound
// re-solves with per-node bound overrides without rebuilding.  A solve that
// ends at an optimal basis can be snapshotted (capture_basis) and replayed
// as a warm start for a re-solve under tightened bounds: the snapshot is a
// basis header plus nonbasic statuses — no factorization state — and is
// installed by a single refactorization; the dual simplex then restores
// primal feasibility in a handful of pivots and phase 1 is skipped.
#pragma once

#include <optional>
#include <vector>

#include "milp/basis_lu.hpp"
#include "milp/model.hpp"
#include "milp/solution.hpp"

namespace ww::milp {

class SimplexSolver {
 public:
  SimplexSolver(const Model& model, SolverOptions options = {});

  /// Opaque snapshot of an optimal basis: the basic column per row plus the
  /// bound status of every structural + logical column.  Artificial columns
  /// are never part of a snapshot.  Cheap to copy and share between the two
  /// children of a branch-and-bound node.
  struct WarmStartBasis {
    std::vector<int> basis;            ///< Basic column index per row.
    std::vector<unsigned char> state;  ///< NonbasicState per column.
    [[nodiscard]] bool valid() const noexcept { return !basis.empty(); }
  };

  /// Solves the LP relaxation (integrality ignored).
  [[nodiscard]] Solution solve();

  /// Solves with overridden bounds on structural variables (used by
  /// branch-and-bound).  Vectors must have size num_variables().  When
  /// `warm` is a valid snapshot and options().warm_start is set, the solve
  /// starts from that basis and re-optimizes with the dual simplex instead
  /// of running phase 1; an unusable snapshot silently falls back to a cold
  /// start.
  [[nodiscard]] Solution solve_with_bounds(const std::vector<double>& lower,
                                           const std::vector<double>& upper,
                                           const WarmStartBasis* warm = nullptr);

  /// Snapshots the final basis of the most recent solve.  Returns an empty
  /// (invalid) snapshot unless that solve ended Optimal with no artificial
  /// column left in the basis.
  [[nodiscard]] WarmStartBasis capture_basis() const;

 private:
  using SparseColumn = SparseVec;
  enum class NonbasicState : unsigned char { AtLower, AtUpper, AtZero, Basic };

  // --- setup -------------------------------------------------------------
  void build_standard_form(const Model& model);
  void reset_state(const std::vector<double>& lower,
                   const std::vector<double>& upper);
  void install_initial_basis();
  /// Installs a snapshotted basis under the current bounds; false (with
  /// state left for reset_state to rebuild) when the snapshot is unusable.
  bool try_install_warm_basis(const WarmStartBasis& warm);

  // --- linear algebra ----------------------------------------------------
  /// Rebuilds the LU factorization from basis_, then recomputes xb_ and the
  /// maintained reduced costs and resets the Devex reference framework.
  /// Throws std::runtime_error on a singular basis.
  void refactorize();
  void recompute_basic_values();
  void recompute_reduced_costs();
  /// Scatters `col` and ftrans it through the updated LU into `out`
  /// (position-indexed pivot column).  Also saves the column's partial
  /// transform as the pending Forrest-Tomlin spike, which the next
  /// lu_.update() in pivot() consumes — callers must not interleave
  /// another spike-saving ftran between this and the pivot it feeds.
  void ftran_column(const SparseColumn& col, std::vector<double>& out) const;
  /// Computes row `pos` of B^-1 A over all candidate-eligible columns:
  /// rho_ = btran(e_pos), then alpha_[j] = rho_ . A_j for every nonbasic j
  /// (basic columns and fixed columns get 0).  Also records the touched
  /// column list in alpha_cols_.
  void compute_pivot_row(int pos);

  // --- simplex core ------------------------------------------------------
  /// Runs the simplex loop with the current cost vector; returns the phase
  /// outcome.  `phase1` enables artificial bookkeeping.
  enum class LoopResult { Optimal, Unbounded, Infeasible, IterationLimit };
  LoopResult run_simplex(bool phase1);
  /// Dual simplex: from a dual-feasible basis, pivots out primal bound
  /// violations until primal feasible (Optimal), provably infeasible, or
  /// out of iterations.
  LoopResult run_dual_simplex();

  // --- pricing -----------------------------------------------------------
  /// True when column j may profitably move in some direction at the
  /// current reduced cost; `dir` receives +1 (increase) or -1 (decrease).
  [[nodiscard]] bool eligible(std::size_t j, int& dir) const;
  /// Entering column by the active rule (Devex/Dantzig over the candidate
  /// list, Bland when the anti-cycling fallback is armed); -1 when every
  /// column prices out (optimal for the active objective).
  int select_entering(int& direction);
  /// Rebuilds the pricing candidate list by a full scan; returns the best
  /// column (and its direction) or -1 when none is eligible.
  int rebuild_candidates(int& direction);
  [[nodiscard]] double pricing_score(std::size_t j) const;

  // --- shared pivot bookkeeping -----------------------------------------
  /// Applies the basis exchange at row `pos`: entering column becomes
  /// basic, leaving column takes `leave_state`, maintained reduced costs
  /// and Devex weights are updated from the pivot row (compute_pivot_row
  /// must have run for `pos`), and a Forrest-Tomlin update (or a
  /// refactorization, when the budget/fill/stability monitors say so)
  /// absorbs the change.  `w_` must hold the ftran of the entering column.
  void pivot(int entering, int pos, NonbasicState leave_state);

  [[nodiscard]] double nonbasic_value(int j) const;
  [[nodiscard]] long bland_threshold() const noexcept;
  /// Shared per-iteration bookkeeping of both simplex loops: iteration
  /// budget, Bland-rule trigger, periodic refactorization.  Returns false
  /// when the iteration budget is exhausted.
  bool begin_iteration();

  // Problem dimensions.
  int m_ = 0;        ///< Rows.
  int n_struct_ = 0; ///< Structural columns.
  int n_logic_ = 0;  ///< Logical (slack) columns.
  int n_art_ = 0;    ///< Artificial columns (appended at solve time).

  std::vector<SparseColumn> cols_;  ///< struct + logic + artificial columns.
  std::vector<double> rhs_;
  std::vector<double> cost_;       ///< Phase-2 objective per column.
  std::vector<double> phase_cost_; ///< Active objective per column.
  std::vector<double> lb_, ub_;    ///< Active bounds per column.
  std::vector<double> base_lb_, base_ub_;  ///< Model bounds (logic included).

  // Basis state.
  std::vector<int> basis_;              ///< Column index per row.
  std::vector<NonbasicState> state_;    ///< Per column.
  BasisLU lu_;                 ///< Sparse factorization + FT updates.
  std::vector<double> xb_;              ///< Basic variable values.

  // Pricing state.
  std::vector<double> d_;         ///< Maintained reduced costs per column.
  std::vector<double> devex_w_;   ///< Devex reference weights per column.
  std::vector<int> candidates_;   ///< Current pricing candidate list.

  SolverOptions options_;
  /// Effective Forrest-Tomlin update budget: 0 under the
  /// WW_REFACTOR_EVERY_PIVOT ablation switch, else the deprecated
  /// eta_limit alias when set, else SolverOptions::update_budget.
  int update_budget_ = 0;
  long iterations_ = 0;
  long iterations_this_solve_ = 0;
  long since_refactor_ = 0;
  long refactorizations_this_solve_ = 0;
  long ft_updates_this_solve_ = 0;
  bool use_bland_ = false;
  bool basis_capturable_ = false;  ///< Last solve ended at an optimal basis.

  // Scratch buffers reused across iterations.
  std::vector<double> y_;          ///< Duals (btran of basic costs).
  std::vector<double> w_;          ///< Pivot column in basis coordinates.
  std::vector<double> rho_;        ///< btran(e_pos) for the pivot row.
  std::vector<double> alpha_;      ///< Pivot row over nonbasic columns.
  std::vector<int> alpha_cols_;    ///< Columns with nonzero alpha_.
};

}  // namespace ww::milp
