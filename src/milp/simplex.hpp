// Bounded-variable revised primal + dual simplex.
//
// Linear programs are solved in the standard computational form
//   min c^T x   s.t.  A x = b,   l <= x <= u,
// built by appending one logical (slack) column per row.  Phase 1 introduces
// artificial columns only for rows whose logical value falls outside its
// bounds and minimizes their sum; phase 2 minimizes the true objective with
// artificials fixed at zero.  The basis inverse is kept as a dense matrix
// updated by product-form pivots and refactorized periodically for numeric
// hygiene.  Dantzig pricing with an automatic switch to Bland's rule
// guarantees termination on degenerate instances.
//
// The solver pre-builds the standard form once per Model; branch-and-bound
// re-solves with per-node bound overrides without rebuilding.  A solve that
// ends at an optimal basis can be snapshotted (capture_basis) and replayed
// as a warm start for a re-solve under tightened bounds: the snapshot basis
// stays dual feasible, so the dual simplex restores primal feasibility in a
// handful of pivots and phase 1 is skipped entirely.
#pragma once

#include <optional>
#include <vector>

#include "milp/model.hpp"
#include "milp/solution.hpp"

namespace ww::milp {

class SimplexSolver {
 public:
  SimplexSolver(const Model& model, SolverOptions options = {});

  /// Opaque snapshot of an optimal basis: the basic column per row plus the
  /// bound status of every structural + logical column.  Artificial columns
  /// are never part of a snapshot.  Cheap to copy and share between the two
  /// children of a branch-and-bound node.
  struct WarmStartBasis {
    std::vector<int> basis;            ///< Basic column index per row.
    std::vector<unsigned char> state;  ///< NonbasicState per column.
    [[nodiscard]] bool valid() const noexcept { return !basis.empty(); }
  };

  /// Solves the LP relaxation (integrality ignored).
  [[nodiscard]] Solution solve();

  /// Solves with overridden bounds on structural variables (used by
  /// branch-and-bound).  Vectors must have size num_variables().  When
  /// `warm` is a valid snapshot and options().warm_start is set, the solve
  /// starts from that basis and re-optimizes with the dual simplex instead
  /// of running phase 1; an unusable snapshot silently falls back to a cold
  /// start.
  [[nodiscard]] Solution solve_with_bounds(const std::vector<double>& lower,
                                           const std::vector<double>& upper,
                                           const WarmStartBasis* warm = nullptr);

  /// Snapshots the final basis of the most recent solve.  Returns an empty
  /// (invalid) snapshot unless that solve ended Optimal with no artificial
  /// column left in the basis.
  [[nodiscard]] WarmStartBasis capture_basis() const;

 private:
  struct SparseColumn {
    std::vector<int> rows;
    std::vector<double> values;
  };
  enum class NonbasicState : unsigned char { AtLower, AtUpper, AtZero, Basic };

  // --- setup -------------------------------------------------------------
  void build_standard_form(const Model& model);
  void reset_state(const std::vector<double>& lower,
                   const std::vector<double>& upper);
  void install_initial_basis();
  /// Installs a snapshotted basis under the current bounds; false (with
  /// state left for reset_state to rebuild) when the snapshot is unusable.
  bool try_install_warm_basis(const WarmStartBasis& warm);

  // --- linear algebra ----------------------------------------------------
  void refactorize();                                  ///< Rebuild binv_, xb_.
  void ftran(const SparseColumn& col, std::vector<double>& out) const;
  void btran(const std::vector<double>& cb, std::vector<double>& out) const;
  void recompute_basic_values();

  // --- simplex core ------------------------------------------------------
  /// Runs the simplex loop with the current cost vector; returns the phase
  /// outcome.  `phase1` enables artificial bookkeeping.
  enum class LoopResult { Optimal, Unbounded, Infeasible, IterationLimit };
  LoopResult run_simplex(bool phase1);
  /// Dual simplex: from a dual-feasible basis, pivots out primal bound
  /// violations until primal feasible (Optimal), provably infeasible, or
  /// out of iterations.
  LoopResult run_dual_simplex();

  [[nodiscard]] double nonbasic_value(int j) const;
  [[nodiscard]] double column_objective(int j) const;
  [[nodiscard]] long bland_threshold() const noexcept;
  /// Shared per-iteration bookkeeping of both simplex loops: iteration
  /// budget, Bland-rule trigger, periodic refactorization.  Returns false
  /// when the iteration budget is exhausted.
  bool begin_iteration(long& since_refactor);
  /// Product-form update of binv_ after a pivot on row `lu` with the
  /// current ftran column w_ (pivot element w_[lu]).
  void product_form_update(std::size_t lu);

  // Problem dimensions.
  int m_ = 0;        ///< Rows.
  int n_struct_ = 0; ///< Structural columns.
  int n_logic_ = 0;  ///< Logical (slack) columns.
  int n_art_ = 0;    ///< Artificial columns (appended at solve time).

  std::vector<SparseColumn> cols_;  ///< struct + logic + artificial columns.
  std::vector<double> rhs_;
  std::vector<double> cost_;       ///< Phase-2 objective per column.
  std::vector<double> phase_cost_; ///< Active objective per column.
  std::vector<double> lb_, ub_;    ///< Active bounds per column.
  std::vector<double> base_lb_, base_ub_;  ///< Model bounds (logic included).

  // Basis state.
  std::vector<int> basis_;              ///< Column index per row.
  std::vector<NonbasicState> state_;    ///< Per column.
  std::vector<double> binv_;            ///< Dense m x m row-major B^{-1}.
  std::vector<double> xb_;              ///< Basic variable values.

  SolverOptions options_;
  long iterations_ = 0;
  long iterations_this_solve_ = 0;
  bool use_bland_ = false;
  bool basis_capturable_ = false;  ///< Last solve ended at an optimal basis.

  // Scratch buffers reused across iterations.
  std::vector<double> y_;  ///< Duals.
  std::vector<double> w_;  ///< Pivot column in basis coordinates.
};

}  // namespace ww::milp
