#include "milp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/timer.hpp"

namespace ww::milp {

namespace {
constexpr double kInf = kInfinity;
}

SimplexSolver::SimplexSolver(const Model& model, SolverOptions options)
    : options_(options) {
  build_standard_form(model);
}

void SimplexSolver::build_standard_form(const Model& model) {
  m_ = model.num_constraints();
  n_struct_ = model.num_variables();
  n_logic_ = m_;
  n_art_ = 0;

  const int n = n_struct_ + n_logic_;
  cols_.assign(static_cast<std::size_t>(n), {});
  rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  cost_.assign(static_cast<std::size_t>(n), 0.0);
  base_lb_.assign(static_cast<std::size_t>(n), 0.0);
  base_ub_.assign(static_cast<std::size_t>(n), 0.0);

  for (int j = 0; j < n_struct_; ++j) {
    const Variable& v = model.variable(j);
    cost_[static_cast<std::size_t>(j)] = v.objective;
    base_lb_[static_cast<std::size_t>(j)] = v.lower;
    base_ub_[static_cast<std::size_t>(j)] = v.upper;
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model.constraint(i);
    rhs_[static_cast<std::size_t>(i)] = c.rhs;
    for (const Term& t : c.terms) {
      auto& col = cols_[static_cast<std::size_t>(t.var)];
      col.rows.push_back(i);
      col.values.push_back(t.coeff);
    }
    // Logical column: row + slack = rhs, slack bounds encode the sense.
    const int sj = n_struct_ + i;
    auto& slack = cols_[static_cast<std::size_t>(sj)];
    slack.rows.push_back(i);
    slack.values.push_back(1.0);
    switch (c.sense) {
      case Sense::LessEqual:
        base_lb_[static_cast<std::size_t>(sj)] = 0.0;
        base_ub_[static_cast<std::size_t>(sj)] = kInf;
        break;
      case Sense::GreaterEqual:
        base_lb_[static_cast<std::size_t>(sj)] = -kInf;
        base_ub_[static_cast<std::size_t>(sj)] = 0.0;
        break;
      case Sense::Equal:
        base_lb_[static_cast<std::size_t>(sj)] = 0.0;
        base_ub_[static_cast<std::size_t>(sj)] = 0.0;
        break;
    }
  }
}

double SimplexSolver::nonbasic_value(int j) const {
  const auto ju = static_cast<std::size_t>(j);
  switch (state_[ju]) {
    case NonbasicState::AtLower:
      return lb_[ju];
    case NonbasicState::AtUpper:
      return ub_[ju];
    case NonbasicState::AtZero:
      return 0.0;
    case NonbasicState::Basic:
      break;
  }
  assert(false && "nonbasic_value called on basic column");
  return 0.0;
}

void SimplexSolver::reset_state(const std::vector<double>& lower,
                                const std::vector<double>& upper) {
  const int n = n_struct_ + n_logic_;
  cols_.resize(static_cast<std::size_t>(n));  // drop artificials of prior solve
  cost_.resize(static_cast<std::size_t>(n));
  n_art_ = 0;

  lb_.assign(base_lb_.begin(), base_lb_.end());
  ub_.assign(base_ub_.begin(), base_ub_.end());
  for (int j = 0; j < n_struct_; ++j) {
    lb_[static_cast<std::size_t>(j)] = lower[static_cast<std::size_t>(j)];
    ub_[static_cast<std::size_t>(j)] = upper[static_cast<std::size_t>(j)];
  }

  state_.assign(static_cast<std::size_t>(n), NonbasicState::AtLower);
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (std::isfinite(lb_[ju])) {
      state_[ju] = NonbasicState::AtLower;
    } else if (std::isfinite(ub_[ju])) {
      state_[ju] = NonbasicState::AtUpper;
    } else {
      state_[ju] = NonbasicState::AtZero;
    }
  }
  basis_.assign(static_cast<std::size_t>(m_), -1);
  iterations_this_solve_ = 0;
  use_bland_ = false;
}

void SimplexSolver::install_initial_basis() {
  // Residual each logical column would have to absorb.
  std::vector<double> resid(rhs_);
  for (int j = 0; j < n_struct_; ++j) {
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    const auto& col = cols_[static_cast<std::size_t>(j)];
    for (std::size_t k = 0; k < col.rows.size(); ++k)
      resid[static_cast<std::size_t>(col.rows[k])] -= col.values[k] * v;
  }

  phase_cost_.assign(cols_.size(), 0.0);
  for (int i = 0; i < m_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const int sj = n_struct_ + i;
    const auto sju = static_cast<std::size_t>(sj);
    const double v = resid[iu];
    if (v >= lb_[sju] - options_.feasibility_tolerance &&
        v <= ub_[sju] + options_.feasibility_tolerance) {
      basis_[iu] = sj;
      state_[sju] = NonbasicState::Basic;
      continue;
    }
    // Clamp the logical to its nearest bound and cover the gap with an
    // artificial column of the right sign so the artificial starts at a
    // non-negative value.
    const double clamped = std::clamp(v, lb_[sju], ub_[sju]);
    state_[sju] = (clamped == lb_[sju]) ? NonbasicState::AtLower
                                        : NonbasicState::AtUpper;
    const double gap = v - clamped;
    SparseColumn art;
    art.rows.push_back(i);
    art.values.push_back(gap > 0.0 ? 1.0 : -1.0);
    cols_.push_back(std::move(art));
    lb_.push_back(0.0);
    ub_.push_back(kInf);
    cost_.push_back(0.0);
    phase_cost_.push_back(1.0);
    state_.push_back(NonbasicState::Basic);
    basis_[iu] = static_cast<int>(cols_.size()) - 1;
    ++n_art_;
  }
  refactorize();
}

void SimplexSolver::refactorize() {
  // Dense Gauss-Jordan inversion of the basis matrix with partial pivoting.
  const auto mu = static_cast<std::size_t>(m_);
  std::vector<double> mat(mu * mu, 0.0);
  for (int col = 0; col < m_; ++col) {
    const auto& c = cols_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(col)])];
    for (std::size_t k = 0; k < c.rows.size(); ++k)
      mat[static_cast<std::size_t>(c.rows[k]) * mu + static_cast<std::size_t>(col)] =
          c.values[k];
  }
  binv_.assign(mu * mu, 0.0);
  for (std::size_t i = 0; i < mu; ++i) binv_[i * mu + i] = 1.0;

  for (std::size_t col = 0; col < mu; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    double best = std::abs(mat[col * mu + col]);
    for (std::size_t r = col + 1; r < mu; ++r) {
      const double a = std::abs(mat[r * mu + col]);
      if (a > best) {
        best = a;
        piv = r;
      }
    }
    if (best < 1e-12)
      throw std::runtime_error("SimplexSolver: singular basis during refactorization");
    if (piv != col) {
      for (std::size_t k = 0; k < mu; ++k) {
        std::swap(mat[piv * mu + k], mat[col * mu + k]);
        std::swap(binv_[piv * mu + k], binv_[col * mu + k]);
      }
    }
    const double inv = 1.0 / mat[col * mu + col];
    for (std::size_t k = 0; k < mu; ++k) {
      mat[col * mu + k] *= inv;
      binv_[col * mu + k] *= inv;
    }
    for (std::size_t r = 0; r < mu; ++r) {
      if (r == col) continue;
      const double f = mat[r * mu + col];
      if (f == 0.0) continue;
      for (std::size_t k = 0; k < mu; ++k) {
        mat[r * mu + k] -= f * mat[col * mu + k];
        binv_[r * mu + k] -= f * binv_[col * mu + k];
      }
    }
  }
  recompute_basic_values();
}

void SimplexSolver::recompute_basic_values() {
  std::vector<double> rhs(rhs_);
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    if (state_[j] == NonbasicState::Basic) continue;
    const double v = nonbasic_value(static_cast<int>(j));
    if (v == 0.0) continue;
    const auto& col = cols_[j];
    for (std::size_t k = 0; k < col.rows.size(); ++k)
      rhs[static_cast<std::size_t>(col.rows[k])] -= col.values[k] * v;
  }
  const auto mu = static_cast<std::size_t>(m_);
  xb_.assign(mu, 0.0);
  for (std::size_t i = 0; i < mu; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < mu; ++k) acc += binv_[i * mu + k] * rhs[k];
    xb_[i] = acc;
  }
}

void SimplexSolver::ftran(const SparseColumn& col, std::vector<double>& out) const {
  const auto mu = static_cast<std::size_t>(m_);
  out.assign(mu, 0.0);
  for (std::size_t k = 0; k < col.rows.size(); ++k) {
    const auto r = static_cast<std::size_t>(col.rows[k]);
    const double v = col.values[k];
    for (std::size_t i = 0; i < mu; ++i) out[i] += binv_[i * mu + r] * v;
  }
}

void SimplexSolver::btran(const std::vector<double>& cb,
                          std::vector<double>& out) const {
  const auto mu = static_cast<std::size_t>(m_);
  out.assign(mu, 0.0);
  for (std::size_t i = 0; i < mu; ++i) {
    const double c = cb[i];
    if (c == 0.0) continue;
    for (std::size_t k = 0; k < mu; ++k) out[k] += c * binv_[i * mu + k];
  }
}

long SimplexSolver::bland_threshold() const noexcept {
  return options_.bland_iterations > 0
             ? options_.bland_iterations
             : 1000 + 20L * static_cast<long>(cols_.size());
}

bool SimplexSolver::begin_iteration(long& since_refactor) {
  if (iterations_this_solve_ >= options_.max_iterations) return false;
  ++iterations_;
  ++iterations_this_solve_;
  if (iterations_this_solve_ >= bland_threshold()) use_bland_ = true;
  if (++since_refactor >= options_.refactor_interval) {
    refactorize();
    since_refactor = 0;
  }
  return true;
}

void SimplexSolver::product_form_update(std::size_t lu) {
  const auto mu = static_cast<std::size_t>(m_);
  const double inv_piv = 1.0 / w_[lu];
  for (std::size_t k = 0; k < mu; ++k) binv_[lu * mu + k] *= inv_piv;
  for (std::size_t i = 0; i < mu; ++i) {
    if (i == lu) continue;
    const double f = w_[i];
    if (f == 0.0) continue;
    for (std::size_t k = 0; k < mu; ++k)
      binv_[i * mu + k] -= f * binv_[lu * mu + k];
  }
}

SimplexSolver::LoopResult SimplexSolver::run_simplex([[maybe_unused]] bool phase1) {
  const double tol = options_.pivot_tolerance;
  const auto mu = static_cast<std::size_t>(m_);
  long since_refactor = 0;

  std::vector<double> cb(mu, 0.0);
  for (;;) {
    if (!begin_iteration(since_refactor)) return LoopResult::IterationLimit;

    for (std::size_t i = 0; i < mu; ++i)
      cb[i] = phase_cost_[static_cast<std::size_t>(basis_[i])];
    btran(cb, y_);

    // --- pricing ---------------------------------------------------------
    int entering = -1;
    int direction = 0;  // +1: entering increases, -1: decreases.
    double best_score = tol;
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      const NonbasicState st = state_[j];
      if (st == NonbasicState::Basic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed column can never improve
      const auto& col = cols_[j];
      double d = phase_cost_[j];
      for (std::size_t k = 0; k < col.rows.size(); ++k)
        d -= y_[static_cast<std::size_t>(col.rows[k])] * col.values[k];

      int dir = 0;
      double score = 0.0;
      if ((st == NonbasicState::AtLower || st == NonbasicState::AtZero) &&
          d < -tol) {
        dir = +1;
        score = -d;
      } else if ((st == NonbasicState::AtUpper || st == NonbasicState::AtZero) &&
                 d > tol) {
        dir = -1;
        score = d;
      } else {
        continue;
      }
      if (use_bland_) {
        entering = static_cast<int>(j);
        direction = dir;
        break;  // Bland: first eligible index.
      }
      if (score > best_score) {
        best_score = score;
        entering = static_cast<int>(j);
        direction = dir;
      }
    }
    if (entering < 0) return LoopResult::Optimal;

    const auto eu = static_cast<std::size_t>(entering);
    ftran(cols_[eu], w_);

    // --- ratio test --------------------------------------------------------
    // The entering variable moves by t >= 0 in `direction`; basic variable i
    // changes at rate -direction * w_[i].
    double t_max = ub_[eu] - lb_[eu];  // own-bound flip distance (may be inf)
    int leaving = -1;
    bool leaving_to_upper = false;
    for (std::size_t i = 0; i < mu; ++i) {
      const double rate = -static_cast<double>(direction) * w_[i];
      if (std::abs(rate) <= tol) continue;
      const auto bj = static_cast<std::size_t>(basis_[i]);
      double limit;
      bool to_upper;
      if (rate > 0.0) {
        if (!std::isfinite(ub_[bj])) continue;
        limit = (ub_[bj] - xb_[i]) / rate;
        to_upper = true;
      } else {
        if (!std::isfinite(lb_[bj])) continue;
        limit = (lb_[bj] - xb_[i]) / rate;
        to_upper = false;
      }
      limit = std::max(limit, 0.0);
      if (limit < t_max - tol ||
          (leaving >= 0 && limit < t_max + tol &&
           (use_bland_ ? basis_[i] < basis_[static_cast<std::size_t>(leaving)]
                       : std::abs(w_[i]) >
                             std::abs(w_[static_cast<std::size_t>(leaving)])))) {
        // A tie-break replacement may carry limit in [t_max, t_max + tol);
        // clamp so the step length never grows, which would push the
        // previously chosen leaving variable past its bound by up to tol.
        t_max = std::min(t_max, limit);
        leaving = static_cast<int>(i);
        leaving_to_upper = to_upper;
      }
    }

    if (!std::isfinite(t_max)) {
      // In phase 1 the objective (sum of artificials) is bounded below by 0,
      // so unboundedness can only mean the true LP is unbounded in phase 2.
      return LoopResult::Unbounded;
    }

    // --- update ------------------------------------------------------------
    const double t = t_max;
    for (std::size_t i = 0; i < mu; ++i)
      xb_[i] -= static_cast<double>(direction) * t * w_[i];

    const double enter_start =
        state_[eu] == NonbasicState::AtLower
            ? lb_[eu]
            : (state_[eu] == NonbasicState::AtUpper ? ub_[eu] : 0.0);
    const double enter_value = enter_start + static_cast<double>(direction) * t;

    if (leaving < 0) {
      // Bound flip: entering moves across to its opposite bound.
      state_[eu] = direction > 0 ? NonbasicState::AtUpper : NonbasicState::AtLower;
      continue;
    }

    const auto lu = static_cast<std::size_t>(leaving);
    const auto out_col = static_cast<std::size_t>(basis_[lu]);
    state_[out_col] =
        leaving_to_upper ? NonbasicState::AtUpper : NonbasicState::AtLower;
    basis_[lu] = entering;
    state_[eu] = NonbasicState::Basic;
    xb_[lu] = enter_value;

    // Product-form update of binv_: pivot on w_[leaving].
    if (std::abs(w_[lu]) < 1e-11) {
      refactorize();
      since_refactor = 0;
      continue;
    }
    product_form_update(lu);
  }
}

SimplexSolver::LoopResult SimplexSolver::run_dual_simplex() {
  const double tol = options_.pivot_tolerance;
  const double ftol = options_.feasibility_tolerance;
  const auto mu = static_cast<std::size_t>(m_);
  long since_refactor = 0;

  std::vector<double> cb(mu, 0.0);
  for (;;) {
    if (!begin_iteration(since_refactor)) return LoopResult::IterationLimit;

    // --- leaving row: the basic variable most outside its bounds ---------
    // (Bland mode: the violated row whose basic column has the smallest
    // index, for guaranteed termination under degeneracy.)
    int leaving = -1;
    bool exit_at_lower = false;  // bound the leaving variable exits at
    double worst = ftol;
    for (std::size_t i = 0; i < mu; ++i) {
      const auto bj = static_cast<std::size_t>(basis_[i]);
      const double below = lb_[bj] - xb_[i];
      const double above = xb_[i] - ub_[bj];
      const double viol = std::max(below, above);
      if (viol <= ftol) continue;
      const bool take =
          use_bland_
              ? (leaving < 0 ||
                 basis_[i] < basis_[static_cast<std::size_t>(leaving)])
              : viol > worst;
      if (take) {
        worst = viol;
        leaving = static_cast<int>(i);
        exit_at_lower = below > above;
      }
    }
    if (leaving < 0) return LoopResult::Optimal;  // primal feasible

    const auto lu = static_cast<std::size_t>(leaving);
    const auto out_col = static_cast<std::size_t>(basis_[lu]);
    const double target = exit_at_lower ? lb_[out_col] : ub_[out_col];
    // Entering variable moves by delta = gap / alpha_j (signed).
    const double gap = xb_[lu] - target;

    for (std::size_t i = 0; i < mu; ++i)
      cb[i] = phase_cost_[static_cast<std::size_t>(basis_[i])];
    btran(cb, y_);
    const double* rho = &binv_[lu * mu];  // row `lu` of B^{-1}

    // --- dual ratio test: keep reduced-cost signs valid ------------------
    int entering = -1;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      const NonbasicState st = state_[j];
      if (st == NonbasicState::Basic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed column cannot leave its bound
      const auto& col = cols_[j];
      double alpha = 0.0;
      for (std::size_t k = 0; k < col.rows.size(); ++k)
        alpha += rho[static_cast<std::size_t>(col.rows[k])] * col.values[k];
      if (std::abs(alpha) <= tol) continue;
      // delta must move the entering variable off its bound feasibly:
      // up from a lower bound, down from an upper bound, either from free.
      const double delta = gap / alpha;
      if (st == NonbasicState::AtLower && delta < 0.0) continue;
      if (st == NonbasicState::AtUpper && delta > 0.0) continue;
      double d = phase_cost_[j];
      for (std::size_t k = 0; k < col.rows.size(); ++k)
        d -= y_[static_cast<std::size_t>(col.rows[k])] * col.values[k];
      const double ratio = std::abs(d) / std::abs(alpha);
      const bool take =
          entering < 0 || ratio < best_ratio - tol ||
          (ratio < best_ratio + tol &&
           (use_bland_ ? static_cast<int>(j) < entering
                       : std::abs(alpha) > std::abs(best_alpha)));
      if (take) {
        best_ratio = std::min(best_ratio, ratio);
        best_alpha = alpha;
        entering = static_cast<int>(j);
      }
    }
    if (entering < 0) {
      // Row `lu` cannot be repaired by any nonbasic movement: the bound
      // violation is structural, i.e. the LP is infeasible.
      return LoopResult::Infeasible;
    }

    // --- pivot -----------------------------------------------------------
    const auto eu = static_cast<std::size_t>(entering);
    ftran(cols_[eu], w_);
    const double piv = w_[lu];
    if (std::abs(piv) < 1e-11) {
      refactorize();
      since_refactor = 0;
      continue;
    }
    const double delta = gap / piv;
    const double enter_start = nonbasic_value(entering);
    for (std::size_t i = 0; i < mu; ++i) xb_[i] -= delta * w_[i];

    state_[out_col] =
        exit_at_lower ? NonbasicState::AtLower : NonbasicState::AtUpper;
    basis_[lu] = entering;
    state_[eu] = NonbasicState::Basic;
    xb_[lu] = enter_start + delta;

    product_form_update(lu);
  }
}

SimplexSolver::WarmStartBasis SimplexSolver::capture_basis() const {
  WarmStartBasis snap;
  if (!basis_capturable_ || m_ == 0) return snap;
  const int n = n_struct_ + n_logic_;
  for (int i = 0; i < m_; ++i)
    if (basis_[static_cast<std::size_t>(i)] >= n) return snap;  // artificial
  snap.basis = basis_;
  snap.state.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    snap.state[static_cast<std::size_t>(j)] =
        static_cast<unsigned char>(state_[static_cast<std::size_t>(j)]);
  return snap;
}

bool SimplexSolver::try_install_warm_basis(const WarmStartBasis& warm) {
  const int n = n_struct_ + n_logic_;
  if (static_cast<int>(warm.basis.size()) != m_ ||
      static_cast<int>(warm.state.size()) != n)
    return false;
  std::vector<char> in_basis(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < m_; ++i) {
    const int bj = warm.basis[static_cast<std::size_t>(i)];
    if (bj < 0 || bj >= n || in_basis[static_cast<std::size_t>(bj)])
      return false;
    in_basis[static_cast<std::size_t>(bj)] = 1;
  }
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (in_basis[ju]) {
      state_[ju] = NonbasicState::Basic;
      continue;
    }
    auto st = static_cast<NonbasicState>(warm.state[ju]);
    if (st == NonbasicState::Basic) return false;  // inconsistent snapshot
    // Remap statuses invalidated by the new bounds (a finite bound from the
    // snapshot's solve may not exist under the current overrides).
    if (st == NonbasicState::AtLower && !std::isfinite(lb_[ju]))
      st = std::isfinite(ub_[ju]) ? NonbasicState::AtUpper
                                  : NonbasicState::AtZero;
    else if (st == NonbasicState::AtUpper && !std::isfinite(ub_[ju]))
      st = std::isfinite(lb_[ju]) ? NonbasicState::AtLower
                                  : NonbasicState::AtZero;
    else if (st == NonbasicState::AtZero && (lb_[ju] > 0.0 || ub_[ju] < 0.0))
      // Zero left the feasible box (a free variable got a branching bound);
      // park the column on the violated side's bound — the dual simplex only
      // repairs basic violations, so a nonbasic one must not survive here.
      st = lb_[ju] > 0.0 ? NonbasicState::AtLower : NonbasicState::AtUpper;
    state_[ju] = st;
  }
  basis_ = warm.basis;
  try {
    refactorize();
  } catch (const std::runtime_error&) {
    return false;  // singular under the new bounds; caller re-runs cold
  }
  return true;
}

Solution SimplexSolver::solve() {
  std::vector<double> lower(static_cast<std::size_t>(n_struct_));
  std::vector<double> upper(static_cast<std::size_t>(n_struct_));
  for (int j = 0; j < n_struct_; ++j) {
    lower[static_cast<std::size_t>(j)] = base_lb_[static_cast<std::size_t>(j)];
    upper[static_cast<std::size_t>(j)] = base_ub_[static_cast<std::size_t>(j)];
  }
  return solve_with_bounds(lower, upper);
}

Solution SimplexSolver::solve_with_bounds(const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const WarmStartBasis* warm) {
  const util::Stopwatch watch;
  Solution sol;
  basis_capturable_ = false;
  if (lower.size() != static_cast<std::size_t>(n_struct_) ||
      upper.size() != static_cast<std::size_t>(n_struct_))
    throw std::invalid_argument("SimplexSolver: bound vector size mismatch");
  for (int j = 0; j < n_struct_; ++j) {
    if (lower[static_cast<std::size_t>(j)] >
        upper[static_cast<std::size_t>(j)] + options_.feasibility_tolerance) {
      sol.status = Status::Infeasible;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
  }

  if (m_ == 0) {
    // Pure bound problem: each variable sits at its cheapest finite bound.
    sol.values.assign(static_cast<std::size_t>(n_struct_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const double c = cost_[ju];
      double v;
      if (c > 0.0) {
        if (!std::isfinite(lower[ju])) {
          sol.status = Status::Unbounded;
          return sol;
        }
        v = lower[ju];
      } else if (c < 0.0) {
        if (!std::isfinite(upper[ju])) {
          sol.status = Status::Unbounded;
          return sol;
        }
        v = upper[ju];
      } else {
        v = std::isfinite(lower[ju]) ? lower[ju]
                                     : (std::isfinite(upper[ju]) ? upper[ju] : 0.0);
      }
      sol.values[ju] = v;
      sol.objective += c * v;
    }
    sol.status = Status::Optimal;
    sol.best_bound = sol.objective;
    sol.solve_seconds = watch.elapsed_seconds();
    return sol;
  }

  reset_state(lower, upper);

  // ---- Warm start: replay a snapshotted basis under the new bounds ---------
  bool warm_ok = false;
  if (options_.warm_start && warm != nullptr && warm->valid()) {
    warm_ok = try_install_warm_basis(*warm);
    if (!warm_ok) reset_state(lower, upper);  // wipe the partial install
  }

  if (warm_ok) {
    phase_cost_ = cost_;
    const LoopResult rd = run_dual_simplex();
    sol.simplex_iterations = iterations_this_solve_;
    if (rd == LoopResult::IterationLimit) {
      // Not counted as warm-started: the replay never finished, so the
      // node is dropped unresolved and must not inflate warm coverage.
      sol.status = Status::IterationLimit;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
    if (rd == LoopResult::Infeasible) {
      sol.warm_started_nodes = 1;  // resolved (proven infeasible) sans phase 1
      sol.status = Status::Infeasible;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
    // Primal feasible; fall through to the phase-2 primal loop, which
    // polishes any residual dual infeasibility (it terminates immediately
    // when the dual simplex already reached optimality).
  } else {
    install_initial_basis();

    // ---- Phase 1: drive artificial columns to zero -------------------------
    if (n_art_ > 0) {
      sol.phase1_nodes = 1;
      const LoopResult r = run_simplex(/*phase1=*/true);
      sol.simplex_iterations = iterations_this_solve_;
      if (r == LoopResult::IterationLimit) {
        sol.status = Status::IterationLimit;
        sol.solve_seconds = watch.elapsed_seconds();
        return sol;
      }
      double infeas = 0.0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(m_); ++i)
        if (basis_[i] >= n_struct_ + n_logic_) infeas += std::abs(xb_[i]);
      for (std::size_t j = static_cast<std::size_t>(n_struct_ + n_logic_);
           j < cols_.size(); ++j)
        if (state_[j] == NonbasicState::AtUpper) infeas += std::abs(ub_[j]);
      if (infeas > 1e-6) {
        sol.status = Status::Infeasible;
        sol.solve_seconds = watch.elapsed_seconds();
        return sol;
      }
      // Freeze artificials at zero for phase 2.
      for (std::size_t j = static_cast<std::size_t>(n_struct_ + n_logic_);
           j < cols_.size(); ++j) {
        ub_[j] = 0.0;
        if (state_[j] == NonbasicState::AtUpper)
          state_[j] = NonbasicState::AtLower;
      }
    }
  }

  // ---- Phase 2: true objective ---------------------------------------------
  phase_cost_ = cost_;
  const LoopResult r2 = run_simplex(/*phase1=*/false);
  sol.simplex_iterations = iterations_this_solve_;
  sol.solve_seconds = watch.elapsed_seconds();
  if (r2 == LoopResult::Unbounded) {
    sol.status = Status::Unbounded;
    return sol;
  }
  if (r2 == LoopResult::IterationLimit) {
    sol.status = Status::IterationLimit;
    return sol;
  }

  // Extract the structural solution.
  sol.values.assign(static_cast<std::size_t>(n_struct_), 0.0);
  for (int j = 0; j < n_struct_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (state_[ju] != NonbasicState::Basic)
      sol.values[ju] = nonbasic_value(j);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(m_); ++i) {
    if (basis_[i] < n_struct_)
      sol.values[static_cast<std::size_t>(basis_[i])] = xb_[i];
  }
  // Snap tiny bound violations introduced by floating point.
  for (int j = 0; j < n_struct_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    sol.values[ju] = std::clamp(sol.values[ju], lb_[ju], ub_[ju]);
  }
  sol.objective = 0.0;
  for (int j = 0; j < n_struct_; ++j)
    sol.objective += cost_[static_cast<std::size_t>(j)] *
                     sol.values[static_cast<std::size_t>(j)];

  // Duals and reduced costs from the final basis (phase-2 costs).
  {
    const auto mu = static_cast<std::size_t>(m_);
    std::vector<double> cb(mu);
    for (std::size_t i = 0; i < mu; ++i)
      cb[i] = cost_[static_cast<std::size_t>(basis_[i])];
    btran(cb, y_);
    sol.duals.assign(y_.begin(), y_.end());
    sol.reduced_costs.assign(static_cast<std::size_t>(n_struct_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      double d = cost_[ju];
      const auto& col = cols_[ju];
      for (std::size_t k = 0; k < col.rows.size(); ++k)
        d -= y_[static_cast<std::size_t>(col.rows[k])] * col.values[k];
      sol.reduced_costs[ju] = d;
    }
  }

  sol.status = Status::Optimal;
  sol.has_incumbent = true;
  sol.best_bound = sol.objective;
  // Counted only now that the node fully resolved: a warm replay whose
  // phase-2 polish hit the iteration limit above must not inflate the
  // warm-coverage metric the bench self-check gates on.
  if (warm_ok) sol.warm_started_nodes = 1;
  basis_capturable_ = true;
  return sol;
}

}  // namespace ww::milp
