#include "milp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ww::milp {

namespace {
constexpr double kInf = kInfinity;
/// Pivot elements below this trigger a defensive refactorization instead of
/// a Forrest-Tomlin update (matching BasisLU's own singularity threshold).
constexpr double kTinyPivot = 1e-11;
}  // namespace

bool refactor_every_pivot_forced() noexcept {
  // WW_REFACTOR_EVERY_PIVOT=on|1|true drops the Forrest-Tomlin update
  // budget to zero process-wide: every pivot refactorizes, the
  // slow-but-simple ablation path CI cross-checks the update against.
  static const bool forced = [] {
    const char* v = std::getenv("WW_REFACTOR_EVERY_PIVOT");
    if (v == nullptr) return false;
    const std::string s(v);
    return s == "1" || s == "on" || s == "ON" || s == "true";
  }();
  return forced;
}

SimplexSolver::SimplexSolver(const Model& model, SolverOptions options)
    : options_(options) {
  // The deprecated eta_limit alias overrides update_budget when set, so
  // pre-Forrest-Tomlin callers keep their refactorization cadence; the
  // process-wide ablation switch overrides both.
  update_budget_ = refactor_every_pivot_forced()
                       ? 0
                       : (options_.eta_limit > 0 ? options_.eta_limit
                                                 : options_.update_budget);
  build_standard_form(model);
}

void SimplexSolver::build_standard_form(const Model& model) {
  m_ = model.num_constraints();
  n_struct_ = model.num_variables();
  n_logic_ = m_;
  n_art_ = 0;

  const int n = n_struct_ + n_logic_;
  cols_.assign(static_cast<std::size_t>(n), {});
  rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  cost_.assign(static_cast<std::size_t>(n), 0.0);
  base_lb_.assign(static_cast<std::size_t>(n), 0.0);
  base_ub_.assign(static_cast<std::size_t>(n), 0.0);

  for (int j = 0; j < n_struct_; ++j) {
    const Variable& v = model.variable(j);
    cost_[static_cast<std::size_t>(j)] = v.objective;
    base_lb_[static_cast<std::size_t>(j)] = v.lower;
    base_ub_[static_cast<std::size_t>(j)] = v.upper;
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model.constraint(i);
    rhs_[static_cast<std::size_t>(i)] = c.rhs;
    for (const Term& t : c.terms) {
      auto& col = cols_[static_cast<std::size_t>(t.var)];
      col.rows.push_back(i);
      col.values.push_back(t.coeff);
    }
    // Logical column: row + slack = rhs, slack bounds encode the sense.
    const int sj = n_struct_ + i;
    auto& slack = cols_[static_cast<std::size_t>(sj)];
    slack.rows.push_back(i);
    slack.values.push_back(1.0);
    switch (c.sense) {
      case Sense::LessEqual:
        base_lb_[static_cast<std::size_t>(sj)] = 0.0;
        base_ub_[static_cast<std::size_t>(sj)] = kInf;
        break;
      case Sense::GreaterEqual:
        base_lb_[static_cast<std::size_t>(sj)] = -kInf;
        base_ub_[static_cast<std::size_t>(sj)] = 0.0;
        break;
      case Sense::Equal:
        base_lb_[static_cast<std::size_t>(sj)] = 0.0;
        base_ub_[static_cast<std::size_t>(sj)] = 0.0;
        break;
    }
  }
}

double SimplexSolver::nonbasic_value(int j) const {
  const auto ju = static_cast<std::size_t>(j);
  switch (state_[ju]) {
    case NonbasicState::AtLower:
      return lb_[ju];
    case NonbasicState::AtUpper:
      return ub_[ju];
    case NonbasicState::AtZero:
      return 0.0;
    case NonbasicState::Basic:
      break;
  }
  assert(false && "nonbasic_value called on basic column");
  return 0.0;
}

void SimplexSolver::reset_state(const std::vector<double>& lower,
                                const std::vector<double>& upper) {
  const int n = n_struct_ + n_logic_;
  cols_.resize(static_cast<std::size_t>(n));  // drop artificials of prior solve
  cost_.resize(static_cast<std::size_t>(n));
  n_art_ = 0;

  lb_.assign(base_lb_.begin(), base_lb_.end());
  ub_.assign(base_ub_.begin(), base_ub_.end());
  for (int j = 0; j < n_struct_; ++j) {
    lb_[static_cast<std::size_t>(j)] = lower[static_cast<std::size_t>(j)];
    ub_[static_cast<std::size_t>(j)] = upper[static_cast<std::size_t>(j)];
  }

  state_.assign(static_cast<std::size_t>(n), NonbasicState::AtLower);
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (std::isfinite(lb_[ju])) {
      state_[ju] = NonbasicState::AtLower;
    } else if (std::isfinite(ub_[ju])) {
      state_[ju] = NonbasicState::AtUpper;
    } else {
      state_[ju] = NonbasicState::AtZero;
    }
  }
  basis_.assign(static_cast<std::size_t>(m_), -1);
  d_.assign(static_cast<std::size_t>(n), 0.0);
  devex_w_.assign(static_cast<std::size_t>(n), 1.0);
  candidates_.clear();
  alpha_.assign(static_cast<std::size_t>(n), 0.0);
  alpha_cols_.clear();
  iterations_this_solve_ = 0;
  since_refactor_ = 0;
  refactorizations_this_solve_ = 0;
  ft_updates_this_solve_ = 0;
  use_bland_ = false;
}

void SimplexSolver::install_initial_basis() {
  // Residual each logical column would have to absorb.
  std::vector<double> resid(rhs_);
  for (int j = 0; j < n_struct_; ++j) {
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    const auto& col = cols_[static_cast<std::size_t>(j)];
    for (std::size_t k = 0; k < col.rows.size(); ++k)
      resid[static_cast<std::size_t>(col.rows[k])] -= col.values[k] * v;
  }

  phase_cost_.assign(cols_.size(), 0.0);
  for (int i = 0; i < m_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const int sj = n_struct_ + i;
    const auto sju = static_cast<std::size_t>(sj);
    const double v = resid[iu];
    if (v >= lb_[sju] - options_.feasibility_tolerance &&
        v <= ub_[sju] + options_.feasibility_tolerance) {
      basis_[iu] = sj;
      state_[sju] = NonbasicState::Basic;
      continue;
    }
    // Clamp the logical to its nearest bound and cover the gap with an
    // artificial column of the right sign so the artificial starts at a
    // non-negative value.
    const double clamped = std::clamp(v, lb_[sju], ub_[sju]);
    state_[sju] = (clamped == lb_[sju]) ? NonbasicState::AtLower
                                        : NonbasicState::AtUpper;
    const double gap = v - clamped;
    SparseColumn art;
    art.rows.push_back(i);
    art.values.push_back(gap > 0.0 ? 1.0 : -1.0);
    cols_.push_back(std::move(art));
    lb_.push_back(0.0);
    ub_.push_back(kInf);
    cost_.push_back(0.0);
    phase_cost_.push_back(1.0);
    state_.push_back(NonbasicState::Basic);
    basis_[iu] = static_cast<int>(cols_.size()) - 1;
    ++n_art_;
  }
  refactorize();
}

void SimplexSolver::refactorize() {
  if (!lu_.factorize(m_, cols_, basis_))
    throw std::runtime_error(
        "SimplexSolver: singular basis during refactorization");
  ++refactorizations_this_solve_;
  since_refactor_ = 0;
  recompute_basic_values();
  recompute_reduced_costs();
  // Devex reference framework reset: the current nonbasic set becomes the
  // reference, all weights return to 1.
  devex_w_.assign(cols_.size(), 1.0);
  candidates_.clear();
}

void SimplexSolver::recompute_basic_values() {
  xb_.assign(rhs_.begin(), rhs_.end());
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    if (state_[j] == NonbasicState::Basic) continue;
    const double v = nonbasic_value(static_cast<int>(j));
    if (v == 0.0) continue;
    const auto& col = cols_[j];
    for (std::size_t k = 0; k < col.rows.size(); ++k)
      xb_[static_cast<std::size_t>(col.rows[k])] -= col.values[k] * v;
  }
  lu_.ftran(xb_);  // row-indexed residual rhs -> position-indexed values
}

void SimplexSolver::recompute_reduced_costs() {
  const auto mu = static_cast<std::size_t>(m_);
  y_.assign(mu, 0.0);
  for (std::size_t i = 0; i < mu; ++i)
    y_[i] = phase_cost_[static_cast<std::size_t>(basis_[i])];
  lu_.btran(y_);
  d_.assign(cols_.size(), 0.0);
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    if (state_[j] == NonbasicState::Basic) continue;
    double d = phase_cost_[j];
    const auto& col = cols_[j];
    for (std::size_t k = 0; k < col.rows.size(); ++k)
      d -= y_[static_cast<std::size_t>(col.rows[k])] * col.values[k];
    d_[j] = d;
  }
}

void SimplexSolver::ftran_column(const SparseColumn& col,
                                 std::vector<double>& out) const {
  out.assign(static_cast<std::size_t>(m_), 0.0);
  for (std::size_t k = 0; k < col.rows.size(); ++k)
    out[static_cast<std::size_t>(col.rows[k])] += col.values[k];
  // Entering columns save their partial transform as the Forrest-Tomlin
  // spike, so the update absorbing this pivot needs no extra solve.
  lu_.ftran(out, /*save_spike=*/true);
}

void SimplexSolver::compute_pivot_row(int pos) {
  const auto mu = static_cast<std::size_t>(m_);
  rho_.assign(mu, 0.0);
  rho_[static_cast<std::size_t>(pos)] = 1.0;
  lu_.btran(rho_);

  if (alpha_.size() != cols_.size()) alpha_.assign(cols_.size(), 0.0);
  for (const int j : alpha_cols_) alpha_[static_cast<std::size_t>(j)] = 0.0;
  alpha_cols_.clear();
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    if (state_[j] == NonbasicState::Basic) continue;
    if (lb_[j] == ub_[j]) continue;  // fixed column can never move
    const auto& col = cols_[j];
    double a = 0.0;
    for (std::size_t k = 0; k < col.rows.size(); ++k)
      a += rho_[static_cast<std::size_t>(col.rows[k])] * col.values[k];
    if (a != 0.0) {
      alpha_[j] = a;
      alpha_cols_.push_back(static_cast<int>(j));
    }
  }
}

long SimplexSolver::bland_threshold() const noexcept {
  return options_.bland_iterations > 0
             ? options_.bland_iterations
             : 1000 + 20L * static_cast<long>(cols_.size());
}

bool SimplexSolver::begin_iteration() {
  if (iterations_this_solve_ >= options_.max_iterations) return false;
  ++iterations_;
  ++iterations_this_solve_;
  if (iterations_this_solve_ >= bland_threshold()) use_bland_ = true;
  if (++since_refactor_ >= options_.refactor_interval) refactorize();
  return true;
}

bool SimplexSolver::eligible(std::size_t j, int& dir) const {
  const NonbasicState st = state_[j];
  if (st == NonbasicState::Basic) return false;
  if (lb_[j] == ub_[j]) return false;  // fixed column can never improve
  const double tol = options_.pivot_tolerance;
  const double dj = d_[j];
  if ((st == NonbasicState::AtLower || st == NonbasicState::AtZero) &&
      dj < -tol) {
    dir = +1;
    return true;
  }
  if ((st == NonbasicState::AtUpper || st == NonbasicState::AtZero) &&
      dj > tol) {
    dir = -1;
    return true;
  }
  return false;
}

double SimplexSolver::pricing_score(std::size_t j) const {
  const double dj = d_[j];
  if (options_.pricing == Pricing::Dantzig) return std::abs(dj);
  return dj * dj / devex_w_[j];
}

int SimplexSolver::rebuild_candidates(int& direction) {
  // Dantzig prices by full scan every iteration; only Devex amortizes the
  // scan through a candidate list.
  const bool build_list = options_.pricing != Pricing::Dantzig;
  candidates_.clear();
  int best = -1;
  int best_dir = 0;
  double best_score = 0.0;
  // (score, column) of every eligible column; the candidate list keeps the
  // top slice so subsequent iterations price against a short list instead
  // of rescanning all n columns.
  std::vector<std::pair<double, int>> scored;
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    int dir = 0;
    if (!eligible(j, dir)) continue;
    const double s = pricing_score(j);
    if (build_list) scored.emplace_back(s, static_cast<int>(j));
    if (s > best_score) {  // strict: ties keep the lowest column index
      best_score = s;
      best = static_cast<int>(j);
      best_dir = dir;
    }
  }
  if (best < 0 || !build_list) {
    direction = best_dir;
    return best;
  }

  const std::size_t cap = std::max<std::size_t>(
      16, cols_.size() / 16);
  if (scored.size() > cap) {
    std::nth_element(scored.begin(),
                     scored.begin() + static_cast<std::ptrdiff_t>(cap),
                     scored.end(), [](const auto& a, const auto& b) {
                       return a.first != b.first ? a.first > b.first
                                                 : a.second < b.second;
                     });
    scored.resize(cap);
  }
  candidates_.reserve(scored.size());
  for (const auto& [s, j] : scored) candidates_.push_back(j);
  std::sort(candidates_.begin(), candidates_.end());

  direction = best_dir;
  return best;
}

int SimplexSolver::select_entering(int& direction) {
  if (use_bland_) {
    // Bland's rule: first eligible index, ignoring weights and lists.
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      int dir = 0;
      if (eligible(j, dir)) {
        direction = dir;
        return static_cast<int>(j);
      }
    }
    return -1;
  }
  if (options_.pricing == Pricing::Dantzig) {
    // Classic Dantzig: full scan for the most negative reduced cost, no
    // candidate list (kept as the equivalence-testing reference rule).
    return rebuild_candidates(direction);
  }
  // Price the candidate list with current reduced costs/weights, dropping
  // stale entries; fall back to a full rebuild when it runs dry.
  int best = -1;
  int best_dir = 0;
  double best_score = 0.0;
  std::size_t keep = 0;
  for (const int j : candidates_) {
    int dir = 0;
    if (!eligible(static_cast<std::size_t>(j), dir)) continue;
    candidates_[keep++] = j;
    const double s = pricing_score(static_cast<std::size_t>(j));
    if (best < 0 || s > best_score) {
      best_score = s;
      best = j;
      best_dir = dir;
    }
  }
  candidates_.resize(keep);
  if (best >= 0) {
    direction = best_dir;
    return best;
  }
  return rebuild_candidates(direction);
}

void SimplexSolver::pivot(int entering, int pos, NonbasicState leave_state) {
  const auto eu = static_cast<std::size_t>(entering);
  const auto pu = static_cast<std::size_t>(pos);
  const auto out_col = static_cast<std::size_t>(basis_[pu]);
  const double alpha_q = w_[pu];

  // Maintained reduced costs: d_j <- d_j - (d_q / alpha_q) alpha_j over the
  // pivot row, the leaving column picks up -d_q / alpha_q, the entering
  // column becomes basic with d = 0.  (compute_pivot_row ran for `pos`
  // against the pre-pivot basis, which is exactly the row this needs.)
  const double ratio = d_[eu] / alpha_q;
  const double gamma_q = devex_w_[eu];
  for (const int j : alpha_cols_) {
    const auto ju = static_cast<std::size_t>(j);
    if (ju == eu) continue;
    d_[ju] -= ratio * alpha_[ju];
    // Devex reference-framework update from the same pivot row.
    const double r = alpha_[ju] / alpha_q;
    devex_w_[ju] = std::max(devex_w_[ju], r * r * gamma_q);
  }
  d_[out_col] = -ratio;
  d_[eu] = 0.0;
  devex_w_[out_col] = std::max(gamma_q / (alpha_q * alpha_q), 1.0);

  state_[out_col] = leave_state;
  basis_[pu] = entering;
  state_[eu] = NonbasicState::Basic;

  // Absorb the basis change as a Forrest-Tomlin update; refactorize
  // instead on a spent budget, a tiny pivot, or an update the stability
  // test rejects, and afterwards when the accumulated update fill has
  // outgrown the fresh factorization.
  if (update_budget_ <= 0 || std::abs(alpha_q) < kTinyPivot ||
      !lu_.update(pos)) {
    refactorize();
    return;
  }
  ++ft_updates_this_solve_;
  if (lu_.update_count() >= update_budget_ ||
      lu_.fill_ratio() > options_.fill_growth_limit)
    refactorize();
}

SimplexSolver::LoopResult SimplexSolver::run_simplex([[maybe_unused]] bool phase1) {
  const double tol = options_.pivot_tolerance;
  const auto mu = static_cast<std::size_t>(m_);

  for (;;) {
    if (!begin_iteration()) return LoopResult::IterationLimit;

    // --- pricing ---------------------------------------------------------
    int direction = 0;  // +1: entering increases, -1: decreases.
    const int entering = select_entering(direction);
    if (entering < 0) return LoopResult::Optimal;

    const auto eu = static_cast<std::size_t>(entering);
    ftran_column(cols_[eu], w_);

    // --- ratio test --------------------------------------------------------
    // The entering variable moves by t >= 0 in `direction`; basic variable i
    // changes at rate -direction * w_[i].
    double t_max = ub_[eu] - lb_[eu];  // own-bound flip distance (may be inf)
    int leaving = -1;
    bool leaving_to_upper = false;
    for (std::size_t i = 0; i < mu; ++i) {
      const double rate = -static_cast<double>(direction) * w_[i];
      if (std::abs(rate) <= tol) continue;
      const auto bj = static_cast<std::size_t>(basis_[i]);
      double limit;
      bool to_upper;
      if (rate > 0.0) {
        if (!std::isfinite(ub_[bj])) continue;
        limit = (ub_[bj] - xb_[i]) / rate;
        to_upper = true;
      } else {
        if (!std::isfinite(lb_[bj])) continue;
        limit = (lb_[bj] - xb_[i]) / rate;
        to_upper = false;
      }
      limit = std::max(limit, 0.0);
      if (limit < t_max - tol ||
          (leaving >= 0 && limit < t_max + tol &&
           (use_bland_ ? basis_[i] < basis_[static_cast<std::size_t>(leaving)]
                       : std::abs(w_[i]) >
                             std::abs(w_[static_cast<std::size_t>(leaving)])))) {
        // A tie-break replacement may carry limit in [t_max, t_max + tol);
        // clamp so the step length never grows, which would push the
        // previously chosen leaving variable past its bound by up to tol.
        t_max = std::min(t_max, limit);
        leaving = static_cast<int>(i);
        leaving_to_upper = to_upper;
      }
    }

    if (!std::isfinite(t_max)) {
      // In phase 1 the objective (sum of artificials) is bounded below by 0,
      // so unboundedness can only mean the true LP is unbounded in phase 2.
      return LoopResult::Unbounded;
    }

    // --- update ------------------------------------------------------------
    const double t = t_max;
    for (std::size_t i = 0; i < mu; ++i)
      xb_[i] -= static_cast<double>(direction) * t * w_[i];

    const double enter_start =
        state_[eu] == NonbasicState::AtLower
            ? lb_[eu]
            : (state_[eu] == NonbasicState::AtUpper ? ub_[eu] : 0.0);
    const double enter_value = enter_start + static_cast<double>(direction) * t;

    if (leaving < 0) {
      // Bound flip: entering moves across to its opposite bound.  The basis
      // is unchanged, so reduced costs and Devex weights stay valid.
      state_[eu] = direction > 0 ? NonbasicState::AtUpper : NonbasicState::AtLower;
      continue;
    }

    const auto lu = static_cast<std::size_t>(leaving);
    compute_pivot_row(leaving);
    xb_[lu] = enter_value;
    pivot(entering, leaving,
          leaving_to_upper ? NonbasicState::AtUpper : NonbasicState::AtLower);
  }
}

SimplexSolver::LoopResult SimplexSolver::run_dual_simplex() {
  const double tol = options_.pivot_tolerance;
  const double ftol = options_.feasibility_tolerance;
  const auto mu = static_cast<std::size_t>(m_);

  for (;;) {
    if (!begin_iteration()) return LoopResult::IterationLimit;

    // --- leaving row: the basic variable most outside its bounds ---------
    // (Bland mode: the violated row whose basic column has the smallest
    // index, for guaranteed termination under degeneracy.)
    int leaving = -1;
    bool exit_at_lower = false;  // bound the leaving variable exits at
    double worst = ftol;
    for (std::size_t i = 0; i < mu; ++i) {
      const auto bj = static_cast<std::size_t>(basis_[i]);
      const double below = lb_[bj] - xb_[i];
      const double above = xb_[i] - ub_[bj];
      const double viol = std::max(below, above);
      if (viol <= ftol) continue;
      const bool take =
          use_bland_
              ? (leaving < 0 ||
                 basis_[i] < basis_[static_cast<std::size_t>(leaving)])
              : viol > worst;
      if (take) {
        worst = viol;
        leaving = static_cast<int>(i);
        exit_at_lower = below > above;
      }
    }
    if (leaving < 0) return LoopResult::Optimal;  // primal feasible

    const auto lu = static_cast<std::size_t>(leaving);
    const auto out_col = static_cast<std::size_t>(basis_[lu]);
    const double target = exit_at_lower ? lb_[out_col] : ub_[out_col];
    // Entering variable moves by delta = gap / alpha_j (signed).
    const double gap = xb_[lu] - target;

    compute_pivot_row(leaving);

    // --- dual ratio test: keep reduced-cost signs valid ------------------
    int entering = -1;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    for (const int j : alpha_cols_) {
      const auto ju = static_cast<std::size_t>(j);
      const NonbasicState st = state_[ju];
      const double alpha = alpha_[ju];
      if (std::abs(alpha) <= tol) continue;
      // delta must move the entering variable off its bound feasibly:
      // up from a lower bound, down from an upper bound, either from free.
      const double delta = gap / alpha;
      if (st == NonbasicState::AtLower && delta < 0.0) continue;
      if (st == NonbasicState::AtUpper && delta > 0.0) continue;
      const double ratio = std::abs(d_[ju]) / std::abs(alpha);
      const bool take =
          entering < 0 || ratio < best_ratio - tol ||
          (ratio < best_ratio + tol &&
           (use_bland_ ? j < entering
                       : std::abs(alpha) > std::abs(best_alpha)));
      if (take) {
        best_ratio = std::min(best_ratio, ratio);
        best_alpha = alpha;
        entering = j;
      }
    }
    if (entering < 0) {
      // Row `lu` cannot be repaired by any nonbasic movement: the bound
      // violation is structural, i.e. the LP is infeasible.
      return LoopResult::Infeasible;
    }

    // --- pivot -----------------------------------------------------------
    const auto eu = static_cast<std::size_t>(entering);
    ftran_column(cols_[eu], w_);
    const double piv = w_[lu];
    if (std::abs(piv) < kTinyPivot) {
      refactorize();
      continue;
    }
    const double delta = gap / piv;
    const double enter_start = nonbasic_value(entering);
    for (std::size_t i = 0; i < mu; ++i) xb_[i] -= delta * w_[i];
    xb_[lu] = enter_start + delta;

    pivot(entering, leaving,
          exit_at_lower ? NonbasicState::AtLower : NonbasicState::AtUpper);
  }
}

SimplexSolver::WarmStartBasis SimplexSolver::capture_basis() const {
  WarmStartBasis snap;
  if (!basis_capturable_ || m_ == 0) return snap;
  const int n = n_struct_ + n_logic_;
  for (int i = 0; i < m_; ++i)
    if (basis_[static_cast<std::size_t>(i)] >= n) return snap;  // artificial
  snap.basis = basis_;
  snap.state.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    snap.state[static_cast<std::size_t>(j)] =
        static_cast<unsigned char>(state_[static_cast<std::size_t>(j)]);
  return snap;
}

bool SimplexSolver::try_install_warm_basis(const WarmStartBasis& warm) {
  const int n = n_struct_ + n_logic_;
  if (static_cast<int>(warm.basis.size()) != m_ ||
      static_cast<int>(warm.state.size()) != n)
    return false;
  std::vector<char> in_basis(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < m_; ++i) {
    const int bj = warm.basis[static_cast<std::size_t>(i)];
    if (bj < 0 || bj >= n || in_basis[static_cast<std::size_t>(bj)])
      return false;
    in_basis[static_cast<std::size_t>(bj)] = 1;
  }
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (in_basis[ju]) {
      state_[ju] = NonbasicState::Basic;
      continue;
    }
    auto st = static_cast<NonbasicState>(warm.state[ju]);
    if (st == NonbasicState::Basic) return false;  // inconsistent snapshot
    // Remap statuses invalidated by the new bounds (a finite bound from the
    // snapshot's solve may not exist under the current overrides).
    if (st == NonbasicState::AtLower && !std::isfinite(lb_[ju]))
      st = std::isfinite(ub_[ju]) ? NonbasicState::AtUpper
                                  : NonbasicState::AtZero;
    else if (st == NonbasicState::AtUpper && !std::isfinite(ub_[ju]))
      st = std::isfinite(lb_[ju]) ? NonbasicState::AtLower
                                  : NonbasicState::AtZero;
    else if (st == NonbasicState::AtZero && (lb_[ju] > 0.0 || ub_[ju] < 0.0))
      // Zero left the feasible box (a free variable got a branching bound);
      // park the column on the violated side's bound — the dual simplex only
      // repairs basic violations, so a nonbasic one must not survive here.
      st = lb_[ju] > 0.0 ? NonbasicState::AtLower : NonbasicState::AtUpper;
    state_[ju] = st;
  }
  basis_ = warm.basis;
  try {
    refactorize();
  } catch (const std::runtime_error&) {
    return false;  // singular under the new bounds; caller re-runs cold
  }
  return true;
}

Solution SimplexSolver::solve() {
  std::vector<double> lower(static_cast<std::size_t>(n_struct_));
  std::vector<double> upper(static_cast<std::size_t>(n_struct_));
  for (int j = 0; j < n_struct_; ++j) {
    lower[static_cast<std::size_t>(j)] = base_lb_[static_cast<std::size_t>(j)];
    upper[static_cast<std::size_t>(j)] = base_ub_[static_cast<std::size_t>(j)];
  }
  return solve_with_bounds(lower, upper);
}

Solution SimplexSolver::solve_with_bounds(const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const WarmStartBasis* warm) {
  // Per-LP span: one B/E pair per (re-)solve, including every warm B&B
  // node re-solve.  A no-op branch when tracing is off.
  obs::Span span("milp.lp");
  span.arg("rows", m_);
  span.arg("cols", n_struct_);
  span.arg("warm", warm != nullptr ? 1 : 0);
  const util::Stopwatch watch;
  Solution sol;
  basis_capturable_ = false;
  if (lower.size() != static_cast<std::size_t>(n_struct_) ||
      upper.size() != static_cast<std::size_t>(n_struct_))
    throw std::invalid_argument("SimplexSolver: bound vector size mismatch");
  for (int j = 0; j < n_struct_; ++j) {
    if (lower[static_cast<std::size_t>(j)] >
        upper[static_cast<std::size_t>(j)] + options_.feasibility_tolerance) {
      sol.status = Status::Infeasible;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
  }

  if (m_ == 0) {
    // Pure bound problem: each variable sits at its cheapest finite bound.
    sol.values.assign(static_cast<std::size_t>(n_struct_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const double c = cost_[ju];
      double v;
      if (c > 0.0) {
        if (!std::isfinite(lower[ju])) {
          sol.status = Status::Unbounded;
          return sol;
        }
        v = lower[ju];
      } else if (c < 0.0) {
        if (!std::isfinite(upper[ju])) {
          sol.status = Status::Unbounded;
          return sol;
        }
        v = upper[ju];
      } else {
        v = std::isfinite(lower[ju]) ? lower[ju]
                                     : (std::isfinite(upper[ju]) ? upper[ju] : 0.0);
      }
      sol.values[ju] = v;
      sol.objective += c * v;
    }
    sol.status = Status::Optimal;
    sol.best_bound = sol.objective;
    sol.solve_seconds = watch.elapsed_seconds();
    return sol;
  }

  reset_state(lower, upper);

  const auto fill_counters = [&](Solution& s) {
    s.simplex_iterations = iterations_this_solve_;
    s.refactorizations = refactorizations_this_solve_;
    s.ft_updates = ft_updates_this_solve_;
  };

  // ---- Warm start: replay a snapshotted basis under the new bounds ---------
  bool warm_ok = false;
  if (options_.warm_start && warm != nullptr && warm->valid()) {
    phase_cost_ = cost_;  // refactorize() recomputes reduced costs from this
    warm_ok = try_install_warm_basis(*warm);
    if (!warm_ok) reset_state(lower, upper);  // wipe the partial install
  }

  if (warm_ok) {
    const LoopResult rd = run_dual_simplex();
    fill_counters(sol);
    if (rd == LoopResult::IterationLimit) {
      // Not counted as warm-started: the replay never finished, so the
      // node is dropped unresolved and must not inflate warm coverage.
      sol.status = Status::IterationLimit;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
    if (rd == LoopResult::Infeasible) {
      sol.warm_started_nodes = 1;  // resolved (proven infeasible) sans phase 1
      sol.status = Status::Infeasible;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
    // Primal feasible; fall through to the phase-2 primal loop, which
    // polishes any residual dual infeasibility (it terminates immediately
    // when the dual simplex already reached optimality).
  } else {
    install_initial_basis();

    // ---- Phase 1: drive artificial columns to zero -------------------------
    if (n_art_ > 0) {
      sol.phase1_nodes = 1;
      const LoopResult r = run_simplex(/*phase1=*/true);
      fill_counters(sol);
      if (r == LoopResult::IterationLimit) {
        sol.status = Status::IterationLimit;
        sol.solve_seconds = watch.elapsed_seconds();
        return sol;
      }
      double infeas = 0.0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(m_); ++i)
        if (basis_[i] >= n_struct_ + n_logic_) infeas += std::abs(xb_[i]);
      for (std::size_t j = static_cast<std::size_t>(n_struct_ + n_logic_);
           j < cols_.size(); ++j)
        if (state_[j] == NonbasicState::AtUpper) infeas += std::abs(ub_[j]);
      if (infeas > 1e-6) {
        sol.status = Status::Infeasible;
        sol.solve_seconds = watch.elapsed_seconds();
        return sol;
      }
      // Freeze artificials at zero for phase 2.
      for (std::size_t j = static_cast<std::size_t>(n_struct_ + n_logic_);
           j < cols_.size(); ++j) {
        ub_[j] = 0.0;
        if (state_[j] == NonbasicState::AtUpper)
          state_[j] = NonbasicState::AtLower;
      }
    }
    // ---- Phase 2 objective swap: maintained reduced costs and the Devex
    // reference framework belong to the phase-1 costs; rebuild both.
    phase_cost_ = cost_;
    recompute_reduced_costs();
    devex_w_.assign(cols_.size(), 1.0);
    candidates_.clear();
  }

  // ---- Phase 2: true objective ---------------------------------------------
  const LoopResult r2 = run_simplex(/*phase1=*/false);
  fill_counters(sol);
  sol.solve_seconds = watch.elapsed_seconds();
  if (r2 == LoopResult::Unbounded) {
    sol.status = Status::Unbounded;
    return sol;
  }
  if (r2 == LoopResult::IterationLimit) {
    sol.status = Status::IterationLimit;
    return sol;
  }

  // Extract the structural solution.
  sol.values.assign(static_cast<std::size_t>(n_struct_), 0.0);
  for (int j = 0; j < n_struct_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (state_[ju] != NonbasicState::Basic)
      sol.values[ju] = nonbasic_value(j);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(m_); ++i) {
    if (basis_[i] < n_struct_)
      sol.values[static_cast<std::size_t>(basis_[i])] = xb_[i];
  }
  // Snap tiny bound violations introduced by floating point.
  for (int j = 0; j < n_struct_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    sol.values[ju] = std::clamp(sol.values[ju], lb_[ju], ub_[ju]);
  }
  sol.objective = 0.0;
  for (int j = 0; j < n_struct_; ++j)
    sol.objective += cost_[static_cast<std::size_t>(j)] *
                     sol.values[static_cast<std::size_t>(j)];

  // Duals and reduced costs from the final basis (phase-2 costs).
  {
    const auto mu = static_cast<std::size_t>(m_);
    y_.assign(mu, 0.0);
    for (std::size_t i = 0; i < mu; ++i)
      y_[i] = cost_[static_cast<std::size_t>(basis_[i])];
    lu_.btran(y_);
    sol.duals.assign(y_.begin(), y_.end());
    sol.reduced_costs.assign(static_cast<std::size_t>(n_struct_), 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      double d = cost_[ju];
      const auto& col = cols_[ju];
      for (std::size_t k = 0; k < col.rows.size(); ++k)
        d -= y_[static_cast<std::size_t>(col.rows[k])] * col.values[k];
      sol.reduced_costs[ju] = d;
    }
  }

  sol.status = Status::Optimal;
  sol.has_incumbent = true;
  sol.best_bound = sol.objective;
  // Counted only now that the node fully resolved: a warm replay whose
  // phase-2 polish hit the iteration limit above must not inflate the
  // warm-coverage metric the bench self-check gates on.
  if (warm_ok) sol.warm_started_nodes = 1;
  basis_capturable_ = true;
  return sol;
}

}  // namespace ww::milp
