#include "milp/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ww::milp {

namespace {
/// Pivots smaller than this are numerically unusable.
constexpr double kSingularTol = 1e-11;
/// Threshold pivoting: any candidate within this factor of the largest
/// magnitude may be chosen for sparsity instead.
constexpr double kPivotThreshold = 0.1;
/// Forrest-Tomlin stability: the updated diagonal must not vanish relative
/// to the spike that produced it, or the updated U is numerically singular
/// even when the absolute value clears kSingularTol.
constexpr double kFtRelTol = 1e-10;
}  // namespace

bool BasisLU::factorize(int m, const std::vector<SparseVec>& cols,
                        const std::vector<int>& basis) {
  m_ = m;
  updates_.clear();
  eta_pool_steps_.clear();
  eta_pool_vals_.clear();
  update_count_ = 0;
  eta_nnz_ = 0;
  const auto mu = static_cast<std::size_t>(m);
  l_rows_.assign(mu, {});
  l_vals_.assign(mu, {});
  u_steps_.assign(mu, {});
  u_vals_.assign(mu, {});
  diag_.assign(mu, 0.0);
  p_.assign(mu, -1);
  pinv_.assign(mu, -1);
  q_.resize(mu);
  work_.assign(mu, 0.0);
  factor_nnz_ = 0;

  // Markowitz-biased static column order: ascending nonzero count, so the
  // (many) logical singleton columns pivot first with zero fill, and the
  // short structural columns follow.  Stable sort keeps the order — and
  // therefore the whole factorization — deterministic.
  std::iota(q_.begin(), q_.end(), 0);
  std::stable_sort(q_.begin(), q_.end(), [&](int a, int b) {
    return cols[static_cast<std::size_t>(basis[static_cast<std::size_t>(a)])]
               .rows.size() <
           cols[static_cast<std::size_t>(basis[static_cast<std::size_t>(b)])]
               .rows.size();
  });

  // Row occupancy of the basis matrix, used as the Markowitz-style row
  // preference among numerically acceptable pivot candidates.
  std::vector<int> row_count(mu, 0);
  for (int i = 0; i < m; ++i)
    for (const int r :
         cols[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])]
             .rows)
      ++row_count[static_cast<std::size_t>(r)];

  std::vector<double>& x = work_;  // dense accumulator, row-indexed
  std::vector<int> touched;
  touched.reserve(mu);
  // Gilbert-Peierls symbolic phase scratch: which elimination steps carry a
  // (structurally) nonzero multiplier for the current column — the reach
  // set of the column's pattern over the L pattern, found by DFS instead of
  // probing every prior pivot.
  std::vector<unsigned char> step_marked(mu, 0);
  std::vector<int> reach;
  reach.reserve(mu);
  std::vector<int> dfs_stack;
  dfs_stack.reserve(mu);

  for (int k = 0; k < m; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    const SparseVec& col = cols[static_cast<std::size_t>(
        basis[static_cast<std::size_t>(q_[ku])])];

    // Scatter the column, then eliminate with the L columns built so far.
    touched.clear();
    for (std::size_t t = 0; t < col.rows.size(); ++t) {
      const auto r = static_cast<std::size_t>(col.rows[t]);
      if (x[r] == 0.0) touched.push_back(col.rows[t]);
      x[r] += col.values[t];
    }

    // Symbolic phase: step k2 < k can have a nonzero multiplier only if its
    // pivot row is reachable from the column's pattern through L columns (a
    // row pivotal at step s seeds step s; applying L column s touches rows
    // l_rows_[s], which may themselves be pivotal at a later step).  The
    // DFS makes the sweep output-sensitive — O(|reach| + pattern edges)
    // instead of the former Theta(k) probe per column, i.e. Theta(m^2) per
    // refactorization.  Ascending step order is a valid topological order
    // of the reach set (an L column only touches rows that become pivotal
    // at later steps) and matches the arithmetic order of the old full
    // probe exactly, so factorizations stay bitwise identical.
    reach.clear();
    for (const int r : touched) {
      const int s0 = pinv_[static_cast<std::size_t>(r)];
      if (s0 < 0 || step_marked[static_cast<std::size_t>(s0)] != 0) continue;
      step_marked[static_cast<std::size_t>(s0)] = 1;
      dfs_stack.push_back(s0);
      while (!dfs_stack.empty()) {
        const int s = dfs_stack.back();
        dfs_stack.pop_back();
        reach.push_back(s);
        for (const int r2 : l_rows_[static_cast<std::size_t>(s)]) {
          const int s2 = pinv_[static_cast<std::size_t>(r2)];
          if (s2 < 0 || step_marked[static_cast<std::size_t>(s2)] != 0)
            continue;
          step_marked[static_cast<std::size_t>(s2)] = 1;
          dfs_stack.push_back(s2);
        }
      }
    }
    std::sort(reach.begin(), reach.end());
    for (const int k2 : reach) {
      const auto k2u = static_cast<std::size_t>(k2);
      step_marked[k2u] = 0;
      const double mult = x[static_cast<std::size_t>(p_[k2u])];
      if (mult == 0.0) continue;  // numeric cancellation
      const auto& lr = l_rows_[k2u];
      const auto& lv = l_vals_[k2u];
      for (std::size_t t = 0; t < lr.size(); ++t) {
        const auto r = static_cast<std::size_t>(lr[t]);
        if (x[r] == 0.0) touched.push_back(lr[t]);
        x[r] -= lv[t] * mult;
      }
    }

    // Pivot: largest magnitude among not-yet-pivotal rows wins unless a
    // sparser row (fewest basis nonzeros) is within kPivotThreshold of it.
    double amax = 0.0;
    for (const int r : touched) {
      if (pinv_[static_cast<std::size_t>(r)] >= 0) continue;
      amax = std::max(amax, std::abs(x[static_cast<std::size_t>(r)]));
    }
    if (amax < kSingularTol) {
      for (const int r : touched) x[static_cast<std::size_t>(r)] = 0.0;
      return false;  // numerically singular basis
    }
    int piv_row = -1;
    int piv_count = 0;
    for (const int r : touched) {
      const auto ru = static_cast<std::size_t>(r);
      if (pinv_[ru] >= 0) continue;
      if (std::abs(x[ru]) < kPivotThreshold * amax) continue;
      if (piv_row < 0 || row_count[ru] < piv_count ||
          (row_count[ru] == piv_count && r < piv_row)) {
        piv_row = r;
        piv_count = row_count[ru];
      }
    }
    const auto pu = static_cast<std::size_t>(piv_row);
    p_[ku] = piv_row;
    pinv_[pu] = k;
    const double pivot = x[pu];
    diag_[ku] = pivot;

    // Gather U (already-pivotal rows) and L (remaining rows, scaled).
    for (const int r : touched) {
      const auto ru = static_cast<std::size_t>(r);
      const double v = x[ru];
      x[ru] = 0.0;
      if (v == 0.0 || r == piv_row) continue;
      if (pinv_[ru] >= 0) {
        u_steps_[ku].push_back(pinv_[ru]);
        u_vals_[ku].push_back(v);
      } else {
        l_rows_[ku].push_back(r);
        l_vals_[ku].push_back(v / pivot);
      }
    }
    factor_nnz_ += 1 + static_cast<long>(u_steps_[ku].size()) +
                   static_cast<long>(l_rows_[ku].size());
  }
  std::fill(work_.begin(), work_.end(), 0.0);

  // Update bookkeeping: the elimination order starts as 0..m-1 and is
  // permuted by Forrest-Tomlin updates (contiguous erase + suffix rank
  // rebuild; see the header note on why not a linked list); qinv_ maps
  // basis positions back to their eliminating step so update() can locate
  // the spiked column.
  order_.resize(mu);
  std::iota(order_.begin(), order_.end(), 0);
  rank_ = order_;
  qinv_.assign(mu, 0);
  for (int k = 0; k < m; ++k)
    qinv_[static_cast<std::size_t>(q_[static_cast<std::size_t>(k)])] = k;
  fresh_nnz_ = factor_nnz_;
  // Capacity-preserving reset: destroying and regrowing a few thousand
  // little vectors every refactorization costs more in allocator traffic
  // (and cache pollution for the rest of the solver) than the lists hold.
  if (row_cols_.size() < mu) row_cols_.resize(mu);
  for (std::size_t k = 0; k < mu; ++k) row_cols_[k].clear();
  for (std::size_t k = 0; k < mu; ++k)
    for (const int s : u_steps_[k])
      row_cols_[static_cast<std::size_t>(s)].push_back(static_cast<int>(k));
  spike_.assign(mu, 0.0);
  spike_mark_.assign(mu, 0);
  spike_idx_.clear();
  spike_valid_ = false;
  mu_.assign(mu, 0.0);
  mu_mark_.assign(mu, 0);
  col_mark_.assign(mu, 0);
  return true;
}

void BasisLU::ftran(std::vector<double>& x, bool save_spike) const {
  const auto mu = static_cast<std::size_t>(m_);
  if (save_spike) {
    for (const int k : spike_idx_) {
      spike_[static_cast<std::size_t>(k)] = 0.0;
      spike_mark_[static_cast<std::size_t>(k)] = 0;
    }
    spike_idx_.clear();
  }
  // Lower solve in elimination order; x stays row-indexed, with the value
  // at pivot row p_[k] holding intermediate z_k.  L is never modified by
  // updates, so the original 0..m-1 order remains topologically valid.
  // Once step k is read, no later step writes its slot, so under
  // save_spike the z in hand *is* the Forrest-Tomlin spike entry — saving
  // it here (plus the row-eta patches below) costs no extra pass at all.
  // The loop is duplicated so the plain path stays branch-free.
  if (!save_spike) {
    for (std::size_t k = 0; k < mu; ++k) {
      const double z = x[static_cast<std::size_t>(p_[k])];
      if (z == 0.0) continue;
      const auto& lr = l_rows_[k];
      const auto& lv = l_vals_[k];
      for (std::size_t t = 0; t < lr.size(); ++t)
        x[static_cast<std::size_t>(lr[t])] -= lv[t] * z;
    }
  } else {
    for (std::size_t k = 0; k < mu; ++k) {
      const double z = x[static_cast<std::size_t>(p_[k])];
      if (z == 0.0) continue;
      spike_[k] = z;
      spike_mark_[k] = 1;
      spike_idx_.push_back(static_cast<int>(k));
      const auto& lr = l_rows_[k];
      const auto& lv = l_vals_[k];
      for (std::size_t t = 0; t < lr.size(); ++t)
        x[static_cast<std::size_t>(lr[t])] -= lv[t] * z;
    }
  }
  // Forrest-Tomlin row etas, oldest first: E z subtracts mu . z from the
  // spiked step's slot.  Steps address the row-indexed intermediate via
  // their pivot rows.
  for (const RowEta& e : updates_) {
    double acc = 0.0;
    for (int t = e.begin; t < e.end; ++t)
      acc += eta_pool_vals_[static_cast<std::size_t>(t)] *
             x[static_cast<std::size_t>(p_[static_cast<std::size_t>(
                 eta_pool_steps_[static_cast<std::size_t>(t)])])];
    const auto slot = static_cast<std::size_t>(
        p_[static_cast<std::size_t>(e.step)]);
    x[slot] -= acc;
    if (save_spike) {
      const auto eu = static_cast<std::size_t>(e.step);
      spike_[eu] = x[slot];
      if (spike_mark_[eu] == 0) {
        spike_mark_[eu] = 1;
        spike_idx_.push_back(e.step);
      }
    }
  }
  if (save_spike) spike_valid_ = true;
  // Upper back-substitution in reverse elimination order (the step list,
  // not 0..m-1: updates move spiked steps to the end), then scatter to
  // positions.
  std::vector<double>& y = work_;
  for (std::size_t oi = mu; oi-- > 0;) {
    const auto k = static_cast<std::size_t>(order_[oi]);
    const double z = x[static_cast<std::size_t>(p_[k])];
    if (z == 0.0) {
      y[k] = 0.0;
      continue;
    }
    const double yk = z / diag_[k];
    y[k] = yk;
    const auto& us = u_steps_[k];
    const auto& uv = u_vals_[k];
    for (std::size_t t = 0; t < us.size(); ++t)
      x[static_cast<std::size_t>(p_[static_cast<std::size_t>(us[t])])] -=
          uv[t] * yk;
  }
  for (std::size_t k = 0; k < mu; ++k)
    x[static_cast<std::size_t>(q_[k])] = y[k];
}

void BasisLU::btran(std::vector<double>& x) const {
  const auto mu = static_cast<std::size_t>(m_);
  // U^T forward solve in elimination order: row k of U^T is column k of U,
  // and every stored entry references a step earlier in the order.
  std::vector<double>& t_ = work_;
  for (std::size_t k = 0; k < mu; ++k)
    t_[k] = x[static_cast<std::size_t>(q_[k])];
  for (std::size_t oi = 0; oi < mu; ++oi) {
    const auto k = static_cast<std::size_t>(order_[oi]);
    double acc = t_[k];
    const auto& us = u_steps_[k];
    const auto& uv = u_vals_[k];
    for (std::size_t t = 0; t < us.size(); ++t)
      acc -= uv[t] * t_[static_cast<std::size_t>(us[t])];
    t_[k] = acc / diag_[k];
  }
  // Transposed row etas, newest first: E^T z subtracts z_step * mu from the
  // support slots.
  for (auto it = updates_.rbegin(); it != updates_.rend(); ++it) {
    const RowEta& e = *it;
    const double zt = t_[static_cast<std::size_t>(e.step)];
    if (zt == 0.0) continue;
    for (int t = e.begin; t < e.end; ++t) {
      const auto tt = static_cast<std::size_t>(t);
      t_[static_cast<std::size_t>(eta_pool_steps_[tt])] -=
          eta_pool_vals_[tt] * zt;
    }
  }
  // L^T backward solve: L column k lives in rows pivotal at later steps.
  for (std::size_t k = mu; k-- > 0;) {
    double acc = t_[k];
    const auto& lr = l_rows_[k];
    const auto& lv = l_vals_[k];
    for (std::size_t t = 0; t < lr.size(); ++t) {
      const auto step = static_cast<std::size_t>(
          pinv_[static_cast<std::size_t>(lr[t])]);
      acc -= lv[t] * t_[step];
    }
    t_[k] = acc;
  }
  for (std::size_t k = 0; k < mu; ++k)
    x[static_cast<std::size_t>(p_[k])] = t_[k];
}

bool BasisLU::update(int pos) {
  if (!spike_valid_) return false;
  spike_valid_ = false;  // the spike is consumed whether or not we commit
  const int t = qinv_[static_cast<std::size_t>(pos)];
  const auto tu = static_cast<std::size_t>(t);

  // --- row elimination: with step t cycled to the end of the order, the
  // old row t of U sits below the diagonal and is eliminated against the
  // trailing columns.  The multipliers solve U_tail^T mu = (row t of U)^T,
  // a sparse forward solve over the reach set of row t: the worklist seeds
  // with the columns carrying a row-t entry (row_cols_[t]) and grows by
  // the rows of every step whose multiplier comes out nonzero, popped in
  // elimination-rank order (a valid topological order, since a column is
  // always ranked after the steps of its entries).  Stale row-index
  // entries cost one wasted column scan and nothing else.
  eta_steps_.clear();
  eta_vals_.clear();
  row_hits_.clear();
  heap_.clear();
  processed_.clear();
  const auto rank_after = [this](int a, int b) {
    return rank_[static_cast<std::size_t>(a)] >
           rank_[static_cast<std::size_t>(b)];
  };
  for (const int j : row_cols_[tu]) {
    if (col_mark_[static_cast<std::size_t>(j)] != 0) continue;
    col_mark_[static_cast<std::size_t>(j)] = 1;
    heap_.push_back(j);
    std::push_heap(heap_.begin(), heap_.end(), rank_after);
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), rank_after);
    const int j = heap_.back();
    heap_.pop_back();
    processed_.push_back(j);
    const auto ju = static_cast<std::size_t>(j);
    double wrow = 0.0;
    int hit = -1;
    double acc = 0.0;
    const auto& us = u_steps_[ju];
    const auto& uv = u_vals_[ju];
    for (std::size_t e = 0; e < us.size(); ++e) {
      const int s = us[e];
      if (s == t) {
        wrow = uv[e];
        hit = static_cast<int>(e);
      } else if (mu_mark_[static_cast<std::size_t>(s)] != 0) {
        acc += uv[e] * mu_[static_cast<std::size_t>(s)];
      }
    }
    if (hit >= 0) row_hits_.emplace_back(j, hit);
    const double muj = (wrow - acc) / diag_[ju];
    if (muj == 0.0) continue;
    mu_[ju] = muj;
    mu_mark_[ju] = 1;
    eta_steps_.push_back(j);
    eta_vals_.push_back(muj);
    for (const int jj : row_cols_[ju]) {
      if (col_mark_[static_cast<std::size_t>(jj)] != 0) continue;
      col_mark_[static_cast<std::size_t>(jj)] = 1;
      heap_.push_back(jj);
      std::push_heap(heap_.begin(), heap_.end(), rank_after);
    }
  }
  for (const int j : processed_) col_mark_[static_cast<std::size_t>(j)] = 0;

  // --- stability test, before any mutation: the new diagonal must clear
  // the absolute singularity threshold and must not vanish relative to the
  // spike feeding it.  (d_new = w[pos] * d_old in exact arithmetic, so this
  // subsumes the classic tiny-update-pivot check while also catching
  // cancellation the identity hides.)
  double d_new = spike_[tu];
  for (std::size_t e = 0; e < eta_steps_.size(); ++e)
    d_new -= eta_vals_[e] * spike_[static_cast<std::size_t>(eta_steps_[e])];
  double smax = 0.0;
  for (const int k : spike_idx_)
    smax = std::max(smax, std::abs(spike_[static_cast<std::size_t>(k)]));
  const bool stable =
      std::abs(d_new) >= kSingularTol && std::abs(d_new) >= kFtRelTol * smax;

  for (const int s : eta_steps_) {
    mu_[static_cast<std::size_t>(s)] = 0.0;
    mu_mark_[static_cast<std::size_t>(s)] = 0;
  }
  if (!stable) return false;  // factors untouched; caller refactorizes

  // --- commit: delete the eliminated row's entries, overwrite the spiked
  // column, move its step to the end of the order, and file the row eta.
  for (const auto& [j, e] : row_hits_) {
    auto& us = u_steps_[static_cast<std::size_t>(j)];
    auto& uv = u_vals_[static_cast<std::size_t>(j)];
    const auto eu = static_cast<std::size_t>(e);
    us[eu] = us.back();
    uv[eu] = uv.back();
    us.pop_back();
    uv.pop_back();
    --factor_nnz_;
  }
  row_cols_[tu].clear();  // row t is now empty (stale entries included)
  factor_nnz_ -= 1 + static_cast<long>(u_steps_[tu].size());
  u_steps_[tu].clear();
  u_vals_[tu].clear();
  for (const int k : spike_idx_) {
    const auto ku = static_cast<std::size_t>(k);
    if (k == t || spike_[ku] == 0.0) continue;
    u_steps_[tu].push_back(k);
    u_vals_[tu].push_back(spike_[ku]);
    row_cols_[ku].push_back(t);
  }
  diag_[tu] = d_new;
  factor_nnz_ += 1 + static_cast<long>(u_steps_[tu].size());

  // Move step t to the end of the elimination order (contiguous shift +
  // suffix rank rebuild; see the header note on why not a linked list).
  const auto mu_sz = static_cast<std::size_t>(m_);
  const auto rt = static_cast<std::size_t>(rank_[tu]);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(rt));
  order_.push_back(t);
  for (std::size_t oi = rt; oi < mu_sz; ++oi)
    rank_[static_cast<std::size_t>(order_[oi])] = static_cast<int>(oi);

  if (!eta_steps_.empty()) {
    eta_nnz_ += static_cast<long>(eta_steps_.size());
    const int begin = static_cast<int>(eta_pool_steps_.size());
    eta_pool_steps_.insert(eta_pool_steps_.end(), eta_steps_.begin(),
                           eta_steps_.end());
    eta_pool_vals_.insert(eta_pool_vals_.end(), eta_vals_.begin(),
                          eta_vals_.end());
    updates_.push_back(
        RowEta{t, begin, static_cast<int>(eta_pool_steps_.size())});
  }
  ++update_count_;
  return true;
}

}  // namespace ww::milp
