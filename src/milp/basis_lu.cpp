#include "milp/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ww::milp {

namespace {
/// Pivots smaller than this are numerically unusable.
constexpr double kSingularTol = 1e-11;
/// Threshold pivoting: any candidate within this factor of the largest
/// magnitude may be chosen for sparsity instead.
constexpr double kPivotThreshold = 0.1;
}  // namespace

bool BasisLU::factorize(int m, const std::vector<SparseVec>& cols,
                        const std::vector<int>& basis) {
  m_ = m;
  etas_.clear();
  const auto mu = static_cast<std::size_t>(m);
  l_rows_.assign(mu, {});
  l_vals_.assign(mu, {});
  u_steps_.assign(mu, {});
  u_vals_.assign(mu, {});
  diag_.assign(mu, 0.0);
  p_.assign(mu, -1);
  pinv_.assign(mu, -1);
  q_.resize(mu);
  work_.assign(mu, 0.0);
  factor_nnz_ = 0;

  // Markowitz-biased static column order: ascending nonzero count, so the
  // (many) logical singleton columns pivot first with zero fill, and the
  // short structural columns follow.  Stable sort keeps the order — and
  // therefore the whole factorization — deterministic.
  std::iota(q_.begin(), q_.end(), 0);
  std::stable_sort(q_.begin(), q_.end(), [&](int a, int b) {
    return cols[static_cast<std::size_t>(basis[static_cast<std::size_t>(a)])]
               .rows.size() <
           cols[static_cast<std::size_t>(basis[static_cast<std::size_t>(b)])]
               .rows.size();
  });

  // Row occupancy of the basis matrix, used as the Markowitz-style row
  // preference among numerically acceptable pivot candidates.
  std::vector<int> row_count(mu, 0);
  for (int i = 0; i < m; ++i)
    for (const int r :
         cols[static_cast<std::size_t>(basis[static_cast<std::size_t>(i)])]
             .rows)
      ++row_count[static_cast<std::size_t>(r)];

  std::vector<double>& x = work_;  // dense accumulator, row-indexed
  std::vector<int> touched;
  touched.reserve(mu);
  // Gilbert-Peierls symbolic phase scratch: which elimination steps carry a
  // (structurally) nonzero multiplier for the current column — the reach
  // set of the column's pattern over the L pattern, found by DFS instead of
  // probing every prior pivot.
  std::vector<unsigned char> step_marked(mu, 0);
  std::vector<int> reach;
  reach.reserve(mu);
  std::vector<int> dfs_stack;
  dfs_stack.reserve(mu);

  for (int k = 0; k < m; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    const SparseVec& col = cols[static_cast<std::size_t>(
        basis[static_cast<std::size_t>(q_[ku])])];

    // Scatter the column, then eliminate with the L columns built so far.
    touched.clear();
    for (std::size_t t = 0; t < col.rows.size(); ++t) {
      const auto r = static_cast<std::size_t>(col.rows[t]);
      if (x[r] == 0.0) touched.push_back(col.rows[t]);
      x[r] += col.values[t];
    }

    // Symbolic phase: step k2 < k can have a nonzero multiplier only if its
    // pivot row is reachable from the column's pattern through L columns (a
    // row pivotal at step s seeds step s; applying L column s touches rows
    // l_rows_[s], which may themselves be pivotal at a later step).  The
    // DFS makes the sweep output-sensitive — O(|reach| + pattern edges)
    // instead of the former Theta(k) probe per column, i.e. Theta(m^2) per
    // refactorization.  Ascending step order is a valid topological order
    // of the reach set (an L column only touches rows that become pivotal
    // at later steps) and matches the arithmetic order of the old full
    // probe exactly, so factorizations stay bitwise identical.
    reach.clear();
    for (const int r : touched) {
      const int s0 = pinv_[static_cast<std::size_t>(r)];
      if (s0 < 0 || step_marked[static_cast<std::size_t>(s0)] != 0) continue;
      step_marked[static_cast<std::size_t>(s0)] = 1;
      dfs_stack.push_back(s0);
      while (!dfs_stack.empty()) {
        const int s = dfs_stack.back();
        dfs_stack.pop_back();
        reach.push_back(s);
        for (const int r2 : l_rows_[static_cast<std::size_t>(s)]) {
          const int s2 = pinv_[static_cast<std::size_t>(r2)];
          if (s2 < 0 || step_marked[static_cast<std::size_t>(s2)] != 0)
            continue;
          step_marked[static_cast<std::size_t>(s2)] = 1;
          dfs_stack.push_back(s2);
        }
      }
    }
    std::sort(reach.begin(), reach.end());
    for (const int k2 : reach) {
      const auto k2u = static_cast<std::size_t>(k2);
      step_marked[k2u] = 0;
      const double mult = x[static_cast<std::size_t>(p_[k2u])];
      if (mult == 0.0) continue;  // numeric cancellation
      const auto& lr = l_rows_[k2u];
      const auto& lv = l_vals_[k2u];
      for (std::size_t t = 0; t < lr.size(); ++t) {
        const auto r = static_cast<std::size_t>(lr[t]);
        if (x[r] == 0.0) touched.push_back(lr[t]);
        x[r] -= lv[t] * mult;
      }
    }

    // Pivot: largest magnitude among not-yet-pivotal rows wins unless a
    // sparser row (fewest basis nonzeros) is within kPivotThreshold of it.
    double amax = 0.0;
    for (const int r : touched) {
      if (pinv_[static_cast<std::size_t>(r)] >= 0) continue;
      amax = std::max(amax, std::abs(x[static_cast<std::size_t>(r)]));
    }
    if (amax < kSingularTol) {
      for (const int r : touched) x[static_cast<std::size_t>(r)] = 0.0;
      return false;  // numerically singular basis
    }
    int piv_row = -1;
    int piv_count = 0;
    for (const int r : touched) {
      const auto ru = static_cast<std::size_t>(r);
      if (pinv_[ru] >= 0) continue;
      if (std::abs(x[ru]) < kPivotThreshold * amax) continue;
      if (piv_row < 0 || row_count[ru] < piv_count ||
          (row_count[ru] == piv_count && r < piv_row)) {
        piv_row = r;
        piv_count = row_count[ru];
      }
    }
    const auto pu = static_cast<std::size_t>(piv_row);
    p_[ku] = piv_row;
    pinv_[pu] = k;
    const double pivot = x[pu];
    diag_[ku] = pivot;

    // Gather U (already-pivotal rows) and L (remaining rows, scaled).
    for (const int r : touched) {
      const auto ru = static_cast<std::size_t>(r);
      const double v = x[ru];
      x[ru] = 0.0;
      if (v == 0.0 || r == piv_row) continue;
      if (pinv_[ru] >= 0) {
        u_steps_[ku].push_back(pinv_[ru]);
        u_vals_[ku].push_back(v);
      } else {
        l_rows_[ku].push_back(r);
        l_vals_[ku].push_back(v / pivot);
      }
    }
    factor_nnz_ += 1 + static_cast<long>(u_steps_[ku].size()) +
                   static_cast<long>(l_rows_[ku].size());
  }
  std::fill(work_.begin(), work_.end(), 0.0);
  return true;
}

void BasisLU::ftran(std::vector<double>& x) const {
  const auto mu = static_cast<std::size_t>(m_);
  // Lower solve in elimination order; x stays row-indexed, with the value
  // at pivot row p_[k] holding intermediate z_k.
  for (std::size_t k = 0; k < mu; ++k) {
    const double z = x[static_cast<std::size_t>(p_[k])];
    if (z == 0.0) continue;
    const auto& lr = l_rows_[k];
    const auto& lv = l_vals_[k];
    for (std::size_t t = 0; t < lr.size(); ++t)
      x[static_cast<std::size_t>(lr[t])] -= lv[t] * z;
  }
  // Upper back-substitution into step space, then scatter to positions.
  std::vector<double>& y = work_;
  for (std::size_t k = mu; k-- > 0;) {
    const double z = x[static_cast<std::size_t>(p_[k])];
    if (z == 0.0) {
      y[k] = 0.0;
      continue;
    }
    const double yk = z / diag_[k];
    y[k] = yk;
    const auto& us = u_steps_[k];
    const auto& uv = u_vals_[k];
    for (std::size_t t = 0; t < us.size(); ++t)
      x[static_cast<std::size_t>(p_[static_cast<std::size_t>(us[t])])] -=
          uv[t] * yk;
  }
  for (std::size_t k = 0; k < mu; ++k)
    x[static_cast<std::size_t>(q_[k])] = y[k];

  // Product-form etas, oldest first.
  for (const Eta& e : etas_) {
    const auto pos = static_cast<std::size_t>(e.pos);
    const double xp = x[pos];
    if (xp == 0.0) continue;
    const double scaled = xp / e.pivot;
    x[pos] = scaled;
    for (std::size_t t = 0; t < e.idx.size(); ++t)
      x[static_cast<std::size_t>(e.idx[t])] -= e.val[t] * scaled;
  }
}

void BasisLU::btran(std::vector<double>& x) const {
  const auto mu = static_cast<std::size_t>(m_);
  // Transposed etas, newest first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const Eta& e = *it;
    double acc = x[static_cast<std::size_t>(e.pos)];
    for (std::size_t t = 0; t < e.idx.size(); ++t)
      acc -= e.val[t] * x[static_cast<std::size_t>(e.idx[t])];
    x[static_cast<std::size_t>(e.pos)] = acc / e.pivot;
  }

  // U^T forward solve: row k of U^T is column k of U.
  std::vector<double>& t_ = work_;
  for (std::size_t k = 0; k < mu; ++k)
    t_[k] = x[static_cast<std::size_t>(q_[k])];
  for (std::size_t k = 0; k < mu; ++k) {
    double acc = t_[k];
    const auto& us = u_steps_[k];
    const auto& uv = u_vals_[k];
    for (std::size_t t = 0; t < us.size(); ++t)
      acc -= uv[t] * t_[static_cast<std::size_t>(us[t])];
    t_[k] = acc / diag_[k];
  }
  // L^T backward solve: L column k lives in rows pivotal at later steps.
  for (std::size_t k = mu; k-- > 0;) {
    double acc = t_[k];
    const auto& lr = l_rows_[k];
    const auto& lv = l_vals_[k];
    for (std::size_t t = 0; t < lr.size(); ++t) {
      const auto step = static_cast<std::size_t>(
          pinv_[static_cast<std::size_t>(lr[t])]);
      acc -= lv[t] * t_[step];
    }
    t_[k] = acc;
  }
  for (std::size_t k = 0; k < mu; ++k)
    x[static_cast<std::size_t>(p_[k])] = t_[k];
}

bool BasisLU::update(const std::vector<double>& w, int pos) {
  const auto pu = static_cast<std::size_t>(pos);
  const double pivot = w[pu];
  if (std::abs(pivot) < kSingularTol) return false;
  Eta e;
  e.pos = pos;
  e.pivot = pivot;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i == pu || w[i] == 0.0) continue;
    e.idx.push_back(static_cast<int>(i));
    e.val.push_back(w[i]);
  }
  etas_.push_back(std::move(e));
  return true;
}

}  // namespace ww::milp
