// MILP presolve/postsolve: shrinks a Model before the simplex sees it and
// maps the reduced solution back so callers cannot tell a presolved solve
// from a raw one.
//
// A fixpoint loop applies, per pass:
//   - fixed-variable substitution (lower == upper, including the scheduler's
//     x_mn = 0 delay fixings): the column folds into the row rhs and an
//     objective offset;
//   - singleton-row conversion: a one-term row becomes a variable bound
//     (Equal rows fix the variable) and the row is dropped;
//   - redundant-row removal: rows whose activity range from the variable
//     bounds can never violate the rhs are dropped, and rows that can never
//     satisfy it prove infeasibility without a single simplex iteration;
//   - bound tightening from row activities, applied to *integer* columns
//     only (rounded inward), so the LP duals of the reduced model remain
//     exact duals of the original — continuous bounds are never synthesized;
//   - implied-free column singleton elimination: a continuous column that
//     appears in exactly one (equality) row, whose bounds the row already
//     implies, is substituted out together with the row.
//
// Every reduction pushes a postsolve record.  postsolve() replays the stack
// in reverse to reconstruct the full-length primal values and — for pure LP
// solves — dual multipliers for every removed row (redundant rows get 0,
// singleton rows absorb the variable's reduced cost when their derived
// bound is the binding one, eliminated-row duals come from the substituted
// column's cost) plus reduced costs recomputed against the original matrix,
// so the Lagrangian identity and optimality signs documented on Solution
// hold exactly as they would for an unpresolved solve.
//
// Branch-and-bound runs entirely on the reduced model, so warm-start basis
// snapshots, node counters, and seed incumbents (translated into the
// reduced space by reduce_point) behave identically; only the final
// Solution is mapped back.
#pragma once

#include <vector>

#include "milp/model.hpp"
#include "milp/solution.hpp"

namespace ww::milp {

/// Reduction counters for one presolve run (also surfaced on Solution).
struct PresolveStats {
  int rows_removed = 0;
  int cols_removed = 0;
  long nonzeros_removed = 0;  ///< Constraint-matrix terms eliminated.
  int bounds_tightened = 0;   ///< Integer bound tightenings from activities.
  int passes = 0;             ///< Fixpoint iterations until quiescence.
  double seconds = 0.0;
};

class Presolve {
 public:
  enum class Result {
    Reduced,     ///< reduced() holds an equivalent (possibly empty) model.
    Infeasible,  ///< A reduction proved the model infeasible.
  };

  /// Runs the reduction fixpoint over `model`.  Tolerances come from
  /// `options`; the model itself is not modified.  The reduced model is NOT
  /// materialized here — callers inspect stats() first (a reduction that
  /// removed nothing is cheaper to discard than to rebuild) and then call
  /// build_reduced().
  Result run(const Model& model, const SolverOptions& options);

  /// Materializes the reduced model and the original->reduced index maps.
  /// Call after run() returned Reduced and the reductions are worth
  /// applying; `model` must be the same object run() saw.
  void build_reduced(const Model& model);

  /// The reduced model (valid after build_reduced(); empty before).
  /// Surviving variables and constraints keep their relative order.
  [[nodiscard]] const Model& reduced() const noexcept { return reduced_; }

  [[nodiscard]] const PresolveStats& stats() const noexcept { return stats_; }

  /// Objective constant folded out by the reductions:
  /// original objective == reduced objective + offset.
  [[nodiscard]] double objective_offset() const noexcept { return offset_; }

  /// Translates a full-space point (e.g. a heuristic seed incumbent) into
  /// the reduced space.  Returns false when the point contradicts a
  /// presolve fixing by more than `tolerance` — the caller should then
  /// solve unseeded.
  [[nodiscard]] bool reduce_point(const std::vector<double>& x,
                                  std::vector<double>* out,
                                  double tolerance) const;

  /// Maps a Solution of the reduced model back onto `original` in place:
  /// reconstructs values for every eliminated column, recovers duals and
  /// reduced costs when the original is a pure LP, recomputes the objective
  /// on the original model, shifts best_bound by the objective offset, and
  /// adds the presolve counters/time to the Solution diagnostics.  Safe to
  /// call for non-usable statuses (Infeasible/limits without values).
  void postsolve(const Model& original, Solution& sol) const;

 private:
  struct Record {
    enum class Kind {
      FixedCol,      ///< col fixed at value; cost = working objective coeff.
      SingletonRow,  ///< row became a bound on col (coeff, sense, rhs).
      RedundantRow,  ///< row implied by bounds; dual 0.
      FreeSingleton, ///< col + equality row substituted out; terms = rest of
                     ///< the row (original column indices, fixings folded).
    };
    Kind kind;
    int row = -1;
    int col = -1;
    double coeff = 0.0;
    double rhs = 0.0;
    double value = 0.0;      ///< FixedCol: the fixed value.
    double cost = 0.0;       ///< Working objective coeff at elimination time.
    Sense sense = Sense::LessEqual;
    double bound = 0.0;      ///< SingletonRow: the derived bound value.
    bool bound_is_upper = false;
    bool tightened = false;  ///< Derived bound strictly beat the current one.
    std::vector<Term> terms;
  };

  void fix_column(int j, double value);
  /// Applies a derived bound to column j (rounding integer columns inward);
  /// returns false on a proven-empty domain.
  bool apply_bound(int j, double value, bool is_upper, bool* tightened);

  int n_ = 0;
  int m_ = 0;
  // Row storage: one flat term pool with per-row [begin, end) slices —
  // compaction shrinks a slice in place, so the whole working copy costs
  // three allocations instead of one vector per row.
  std::vector<Term> pool_;
  std::vector<int> row_begin_, row_end_;
  std::vector<double> row_rhs_;
  std::vector<Sense> row_sense_;
  std::vector<char> row_alive_;
  std::vector<double> lb_, ub_, cost_;
  std::vector<bool> is_int_;
  std::vector<bool> col_alive_;
  std::vector<double> fixed_value_;
  double offset_ = 0.0;
  double feas_tol_ = 1e-7;
  double int_tol_ = 1e-6;

  std::vector<Record> records_;
  std::vector<int> col_map_;  ///< original col -> reduced col, -1 if gone.
  std::vector<int> row_map_;  ///< original row -> reduced row, -1 if gone.
  Model reduced_;
  PresolveStats stats_;
};

}  // namespace ww::milp
