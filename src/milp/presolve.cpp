#include "milp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ww::milp {

namespace {

constexpr double kInf = kInfinity;
/// A lower/upper gap at or below this fixes the column outright.
constexpr double kFixTol = 1e-11;
/// Coefficients below this are numerically unusable as substitution pivots.
constexpr double kSubstTol = 1e-8;
/// Reduced-cost credits below this are treated as zero during dual recovery.
constexpr double kCreditTol = 1e-9;
/// Fixpoint pass cap; every model seen in practice quiesces in 2-4 passes.
constexpr int kMaxPasses = 10;

}  // namespace

bool presolve_enabled_by_default() noexcept {
  // WW_PRESOLVE=off|0|false disables presolve process-wide: the ablation
  // switch CI uses to run the whole test suite down the raw solver path.
  static const bool enabled = [] {
    const char* v = std::getenv("WW_PRESOLVE");
    if (v == nullptr) return true;
    const std::string s(v);
    return !(s == "0" || s == "off" || s == "OFF" || s == "false");
  }();
  return enabled;
}

void Presolve::fix_column(int j, double value) {
  const auto ju = static_cast<std::size_t>(j);
  col_alive_[ju] = false;
  fixed_value_[ju] = value;
  offset_ += cost_[ju] * value;
  Record rec;
  rec.kind = Record::Kind::FixedCol;
  rec.col = j;
  rec.value = value;
  rec.cost = cost_[ju];
  records_.push_back(std::move(rec));
  ++stats_.cols_removed;
}

bool Presolve::apply_bound(int j, double value, bool is_upper,
                           bool* tightened) {
  const auto ju = static_cast<std::size_t>(j);
  // Integer domains round the derived bound inward; the integrality
  // tolerance keeps floating-point drift (2.9999999996) from cutting off a
  // genuinely feasible integer.
  if (is_int_[ju])
    value = is_upper ? std::floor(value + int_tol_)
                     : std::ceil(value - int_tol_);
  *tightened = false;
  if (is_upper) {
    if (value < ub_[ju]) {
      ub_[ju] = value;
      *tightened = true;
    }
  } else {
    if (value > lb_[ju]) {
      lb_[ju] = value;
      *tightened = true;
    }
  }
  return lb_[ju] <= ub_[ju] + feas_tol_;
}

Presolve::Result Presolve::run(const Model& model,
                               const SolverOptions& options) {
  obs::Span span("milp.presolve");
  const util::Stopwatch watch;
  feas_tol_ = options.feasibility_tolerance;
  int_tol_ = options.integrality_tolerance;
  n_ = model.num_variables();
  m_ = model.num_constraints();
  const auto nu = static_cast<std::size_t>(n_);
  const auto mu = static_cast<std::size_t>(m_);

  lb_.resize(nu);
  ub_.resize(nu);
  cost_.resize(nu);
  is_int_.assign(nu, false);
  col_alive_.assign(nu, true);
  fixed_value_.assign(nu, 0.0);
  for (int j = 0; j < n_; ++j) {
    const Variable& v = model.variable(j);
    const auto ju = static_cast<std::size_t>(j);
    lb_[ju] = v.lower;
    ub_[ju] = v.upper;
    cost_[ju] = v.objective;
    is_int_[ju] = v.type != VarType::Continuous;
  }
  row_begin_.resize(mu);
  row_end_.resize(mu);
  row_rhs_.resize(mu);
  row_sense_.resize(mu);
  row_alive_.assign(mu, 1);
  std::size_t nnz = 0;
  for (int i = 0; i < m_; ++i) nnz += model.constraint(i).terms.size();
  pool_.clear();
  pool_.reserve(nnz);
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model.constraint(i);
    const auto iu = static_cast<std::size_t>(i);
    row_begin_[iu] = static_cast<int>(pool_.size());
    pool_.insert(pool_.end(), c.terms.begin(), c.terms.end());
    row_end_[iu] = static_cast<int>(pool_.size());
    row_rhs_[iu] = c.rhs;
    row_sense_[iu] = c.sense;
  }
  offset_ = 0.0;
  records_.clear();
  stats_ = {};
  col_map_.assign(nu, -1);
  row_map_.assign(mu, -1);
  reduced_ = Model();

  const auto done = [&](Result r) {
    stats_.seconds = watch.elapsed_seconds();
    span.arg("rows_removed", stats_.rows_removed);
    span.arg("cols_removed", stats_.cols_removed);
    span.arg("nonzeros_removed", stats_.nonzeros_removed);
    span.arg("bounds_tightened", stats_.bounds_tightened);
    return r;
  };

  // Integer bound rounding up front: fractional bounds on integer columns
  // (branching leftovers, user input) snap inward once.
  for (int j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (!is_int_[ju]) continue;
    const double nl = std::ceil(lb_[ju] - int_tol_);
    const double nh = std::floor(ub_[ju] + int_tol_);
    if (nl > lb_[ju]) {
      lb_[ju] = nl;
      ++stats_.bounds_tightened;
    }
    if (nh < ub_[ju]) {
      ub_[ju] = nh;
      ++stats_.bounds_tightened;
    }
    if (lb_[ju] > ub_[ju] + feas_tol_) return done(Result::Infeasible);
  }

  // Scratch reused across passes.
  std::vector<double> contrib_min, contrib_max;
  std::vector<int> col_count(nu, 0), col_row(nu, -1);

  bool changed = true;
  while (changed && stats_.passes < kMaxPasses) {
    changed = false;
    ++stats_.passes;

    // --- (a) row sweep: fold fixed columns into the rhs, drop empty rows,
    // turn singleton rows into bounds --------------------------------------
    for (int i = 0; i < m_; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (row_alive_[iu] == 0) continue;
      int w = row_begin_[iu];
      for (int t = row_begin_[iu]; t < row_end_[iu]; ++t) {
        const Term term = pool_[static_cast<std::size_t>(t)];
        const auto vu = static_cast<std::size_t>(term.var);
        if (!col_alive_[vu]) {
          row_rhs_[iu] -= term.coeff * fixed_value_[vu];
          ++stats_.nonzeros_removed;
          changed = true;
          continue;
        }
        if (term.coeff == 0.0) {
          ++stats_.nonzeros_removed;
          changed = true;
          continue;
        }
        pool_[static_cast<std::size_t>(w++)] = term;
      }
      row_end_[iu] = w;
      const int len = row_end_[iu] - row_begin_[iu];

      if (len == 0) {
        // 0 (sense) rhs: either trivially true or a proof of infeasibility.
        const double rhs = row_rhs_[iu];
        const bool ok = row_sense_[iu] == Sense::LessEqual
                            ? rhs >= -feas_tol_
                            : (row_sense_[iu] == Sense::GreaterEqual
                                   ? rhs <= feas_tol_
                                   : std::abs(rhs) <= feas_tol_);
        if (!ok) return done(Result::Infeasible);
        row_alive_[iu] = 0;
        ++stats_.rows_removed;
        Record rec;
        rec.kind = Record::Kind::RedundantRow;
        rec.row = i;
        records_.push_back(std::move(rec));
        changed = true;
        continue;
      }

      if (len == 1) {
        const Term t = pool_[static_cast<std::size_t>(row_begin_[iu])];
        const double v = row_rhs_[iu] / t.coeff;
        Record rec;
        rec.kind = Record::Kind::SingletonRow;
        rec.row = i;
        rec.col = t.var;
        rec.coeff = t.coeff;
        rec.rhs = row_rhs_[iu];
        rec.sense = row_sense_[iu];
        bool tight_any = false;
        bool ok = true;
        if (row_sense_[iu] == Sense::Equal) {
          bool t1 = false, t2 = false;
          ok = apply_bound(t.var, v, /*is_upper=*/true, &t1) &&
               apply_bound(t.var, v, /*is_upper=*/false, &t2);
          tight_any = t1 || t2;
        } else {
          // a x <= b  =>  upper bound when a > 0, lower bound when a < 0;
          // >= rows mirror.
          const bool upper =
              (row_sense_[iu] == Sense::LessEqual) == (t.coeff > 0.0);
          ok = apply_bound(t.var, v, upper, &tight_any);
          rec.bound_is_upper = upper;
          rec.bound = upper ? ub_[static_cast<std::size_t>(t.var)]
                            : lb_[static_cast<std::size_t>(t.var)];
        }
        rec.tightened = tight_any;
        records_.push_back(std::move(rec));
        // A conversion that actually tightened counts as a bound
        // tightening: it can collapse the B&B tree, so the facade's
        // reduction-ratio gate must not discard it as marginal.
        if (tight_any) ++stats_.bounds_tightened;
        row_alive_[iu] = 0;
        ++stats_.rows_removed;
        ++stats_.nonzeros_removed;
        changed = true;
        if (!ok) return done(Result::Infeasible);
        continue;
      }
    }

    // --- (b) fixed columns -------------------------------------------------
    for (int j = 0; j < n_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (!col_alive_[ju]) continue;
      if (!(ub_[ju] - lb_[ju] <= kFixTol)) continue;  // NaN-safe
      double v = lb_[ju] == ub_[ju] ? lb_[ju] : 0.5 * (lb_[ju] + ub_[ju]);
      if (is_int_[ju]) v = std::round(v);
      fix_column(j, v);
      changed = true;
    }

    // --- (c) activity sweep: redundancy, infeasibility, integer bound
    // tightening ------------------------------------------------------------
    for (int i = 0; i < m_; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (row_alive_[iu] == 0) continue;
      const int begin = row_begin_[iu];
      const int end = row_end_[iu];
      if (begin == end) continue;
      const auto nt = static_cast<std::size_t>(end - begin);
      contrib_min.assign(nt, 0.0);
      contrib_max.assign(nt, 0.0);
      double min_fin = 0.0, max_fin = 0.0;
      int min_inf = 0, max_inf = 0;
      for (std::size_t k = 0; k < nt; ++k) {
        const Term& t = pool_[static_cast<std::size_t>(begin) + k];
        const auto vu = static_cast<std::size_t>(t.var);
        double lo, hi;
        if (col_alive_[vu]) {
          lo = t.coeff > 0.0 ? t.coeff * lb_[vu] : t.coeff * ub_[vu];
          hi = t.coeff > 0.0 ? t.coeff * ub_[vu] : t.coeff * lb_[vu];
        } else {
          // Fixed this pass, folded into the rhs next pass; until then it
          // contributes a constant.
          lo = hi = t.coeff * fixed_value_[vu];
        }
        contrib_min[k] = lo;
        contrib_max[k] = hi;
        if (std::isfinite(lo)) min_fin += lo; else ++min_inf;
        if (std::isfinite(hi)) max_fin += hi; else ++max_inf;
      }
      const double min_act = min_inf > 0 ? -kInf : min_fin;
      const double max_act = max_inf > 0 ? kInf : max_fin;
      const double rhs = row_rhs_[iu];

      // Infeasible / redundant rows.  Redundancy compares exactly (no
      // tolerance): dropping a weakly-binding row is valid but dropping a
      // violated one is not, so the check stays conservative.
      bool redundant = false;
      switch (row_sense_[iu]) {
        case Sense::LessEqual:
          if (min_act > rhs + feas_tol_) return done(Result::Infeasible);
          redundant = max_act <= rhs;
          break;
        case Sense::GreaterEqual:
          if (max_act < rhs - feas_tol_) return done(Result::Infeasible);
          redundant = min_act >= rhs;
          break;
        case Sense::Equal:
          if (min_act > rhs + feas_tol_ || max_act < rhs - feas_tol_)
            return done(Result::Infeasible);
          redundant = min_act == rhs && max_act == rhs;
          break;
      }
      if (redundant) {
        row_alive_[iu] = 0;
        ++stats_.rows_removed;
        stats_.nonzeros_removed += end - begin;
        Record rec;
        rec.kind = Record::Kind::RedundantRow;
        rec.row = i;
        records_.push_back(std::move(rec));
        changed = true;
        continue;
      }

      // Integer bound tightening from the residual activity: continuous
      // bounds are never synthesized here, so LP duals of the reduced model
      // remain exact duals of the original (see header).
      for (std::size_t k = 0; k < nt; ++k) {
        const Term& t = pool_[static_cast<std::size_t>(begin) + k];
        const auto vu = static_cast<std::size_t>(t.var);
        if (!col_alive_[vu] || !is_int_[vu]) continue;
        bool tight = false;
        if (row_sense_[iu] != Sense::GreaterEqual) {  // <= or ==, min side
          double min_wo = -kInf;
          if (min_inf == 0)
            min_wo = min_fin - contrib_min[k];
          else if (min_inf == 1 && !std::isfinite(contrib_min[k]))
            min_wo = min_fin;
          if (std::isfinite(min_wo)) {
            const double v = (rhs - min_wo) / t.coeff;
            if (!apply_bound(t.var, v, /*is_upper=*/t.coeff > 0.0, &tight))
              return done(Result::Infeasible);
            if (tight) {
              ++stats_.bounds_tightened;
              changed = true;
            }
          }
        }
        if (row_sense_[iu] != Sense::LessEqual) {  // >= or ==, max side
          double max_wo = kInf;
          if (max_inf == 0)
            max_wo = max_fin - contrib_max[k];
          else if (max_inf == 1 && !std::isfinite(contrib_max[k]))
            max_wo = max_fin;
          if (std::isfinite(max_wo)) {
            const double v = (rhs - max_wo) / t.coeff;
            if (!apply_bound(t.var, v, /*is_upper=*/t.coeff < 0.0, &tight))
              return done(Result::Infeasible);
            if (tight) {
              ++stats_.bounds_tightened;
              changed = true;
            }
          }
        }
      }
    }

    // --- (d) implied-free continuous column singletons in equality rows ----
    std::fill(col_count.begin(), col_count.end(), 0);
    std::fill(col_row.begin(), col_row.end(), -1);
    for (int i = 0; i < m_; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (row_alive_[iu] == 0) continue;
      for (int t = row_begin_[iu]; t < row_end_[iu]; ++t) {
        const auto vu = static_cast<std::size_t>(
            pool_[static_cast<std::size_t>(t)].var);
        if (!col_alive_[vu]) continue;
        ++col_count[vu];
        col_row[vu] = i;
      }
    }
    for (int j = 0; j < n_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (!col_alive_[ju] || is_int_[ju] || col_count[ju] != 1) continue;
      const int i = col_row[ju];
      const auto iu = static_cast<std::size_t>(i);
      if (row_alive_[iu] == 0 || row_sense_[iu] != Sense::Equal) continue;

      // Compact the row now so the postsolve record references only live
      // columns (fixed ones fold into the rhs) — reverse replay depends on
      // every referenced value being reconstructed later in the stack.
      int w = row_begin_[iu];
      for (int t = row_begin_[iu]; t < row_end_[iu]; ++t) {
        const Term term = pool_[static_cast<std::size_t>(t)];
        const auto vu = static_cast<std::size_t>(term.var);
        if (!col_alive_[vu]) {
          row_rhs_[iu] -= term.coeff * fixed_value_[vu];
          ++stats_.nonzeros_removed;
          continue;
        }
        pool_[static_cast<std::size_t>(w++)] = term;
      }
      row_end_[iu] = w;

      double a = 0.0;
      std::vector<Term> others;
      others.reserve(static_cast<std::size_t>(row_end_[iu] - row_begin_[iu]));
      for (int t = row_begin_[iu]; t < row_end_[iu]; ++t) {
        const Term& term = pool_[static_cast<std::size_t>(t)];
        if (term.var == j)
          a = term.coeff;
        else
          others.push_back(term);
      }
      if (std::abs(a) < kSubstTol) continue;

      // Implied interval of x_j from the row given the other bounds; the
      // column is implied free when its own bounds can never bind there.
      double smin_fin = 0.0, smax_fin = 0.0;
      int smin_inf = 0, smax_inf = 0;
      for (const Term& t : others) {
        const auto vu = static_cast<std::size_t>(t.var);
        const double lo = t.coeff > 0.0 ? t.coeff * lb_[vu] : t.coeff * ub_[vu];
        const double hi = t.coeff > 0.0 ? t.coeff * ub_[vu] : t.coeff * lb_[vu];
        if (std::isfinite(lo)) smin_fin += lo; else ++smin_inf;
        if (std::isfinite(hi)) smax_fin += hi; else ++smax_inf;
      }
      const double smin = smin_inf > 0 ? -kInf : smin_fin;
      const double smax = smax_inf > 0 ? kInf : smax_fin;
      const double r1 = (row_rhs_[iu] - smin) / a;
      const double r2 = (row_rhs_[iu] - smax) / a;
      const double implied_lo = std::min(r1, r2);
      const double implied_hi = std::max(r1, r2);
      if (!(implied_lo >= lb_[ju] - feas_tol_ &&
            implied_hi <= ub_[ju] + feas_tol_))
        continue;

      // Substitute x_j = (rhs - sum others)/a out of the objective; the
      // recorded pre-substitution cost becomes the row's dual in postsolve.
      Record rec;
      rec.kind = Record::Kind::FreeSingleton;
      rec.row = i;
      rec.col = j;
      rec.coeff = a;
      rec.rhs = row_rhs_[iu];
      rec.cost = cost_[ju];
      rec.terms = others;
      records_.push_back(std::move(rec));
      offset_ += cost_[ju] * row_rhs_[iu] / a;
      for (const Term& t : others)
        cost_[static_cast<std::size_t>(t.var)] -= cost_[ju] * t.coeff / a;
      col_alive_[ju] = false;
      ++stats_.cols_removed;
      row_alive_[iu] = 0;
      ++stats_.rows_removed;
      stats_.nonzeros_removed += row_end_[iu] - row_begin_[iu];
      // Neighbouring columns may have become singletons; the next pass's
      // recount picks them up.
      changed = true;
    }
  }
  return done(Result::Reduced);
}

void Presolve::build_reduced(const Model& model) {
  const util::Stopwatch watch;
  int alive_cols = 0, alive_rows = 0;
  for (int j = 0; j < n_; ++j)
    if (col_alive_[static_cast<std::size_t>(j)]) ++alive_cols;
  for (int i = 0; i < m_; ++i)
    if (row_alive_[static_cast<std::size_t>(i)] != 0) ++alive_rows;
  reduced_.reserve(alive_cols, alive_rows);
  for (int j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (!col_alive_[ju]) continue;
    const Variable& v = model.variable(j);
    // add_variable snaps Binary bounds to [0,1]; a binary whose bounds a
    // caller overrode (and presolve did not collapse) must keep them.
    const VarType type =
        v.type == VarType::Binary && (lb_[ju] != 0.0 || ub_[ju] != 1.0)
            ? VarType::Integer
            : v.type;
    col_map_[ju] =
        reduced_.add_variable(v.name, lb_[ju], ub_[ju], type, cost_[ju]);
  }
  std::vector<Term> terms;
  for (int i = 0; i < m_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (row_alive_[iu] == 0) continue;
    terms.clear();
    terms.reserve(static_cast<std::size_t>(row_end_[iu] - row_begin_[iu]));
    for (int t = row_begin_[iu]; t < row_end_[iu]; ++t) {
      const Term& term = pool_[static_cast<std::size_t>(t)];
      const auto vu = static_cast<std::size_t>(term.var);
      if (!col_alive_[vu]) {
        // A fix from the final pass that never went through another sweep.
        row_rhs_[iu] -= term.coeff * fixed_value_[vu];
        ++stats_.nonzeros_removed;
        continue;
      }
      terms.push_back(Term{col_map_[vu], term.coeff});
    }
    row_map_[iu] = reduced_.add_constraint(model.constraint(i).name, terms,
                                           row_sense_[iu], row_rhs_[iu]);
  }
  stats_.seconds += watch.elapsed_seconds();
}

bool Presolve::reduce_point(const std::vector<double>& x,
                            std::vector<double>* out,
                            double tolerance) const {
  if (static_cast<int>(x.size()) != n_) return false;
  // A point that contradicts a presolve fixing cannot be represented in the
  // reduced space; substituted (free-singleton) columns need no check, the
  // row equation determines them.
  for (const Record& rec : records_) {
    if (rec.kind != Record::Kind::FixedCol) continue;
    if (std::abs(x[static_cast<std::size_t>(rec.col)] - rec.value) > tolerance)
      return false;
  }
  out->assign(static_cast<std::size_t>(reduced_.num_variables()), 0.0);
  for (int j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (col_map_[ju] >= 0)
      (*out)[static_cast<std::size_t>(col_map_[ju])] = x[ju];
  }
  return true;
}

void Presolve::postsolve(const Model& original, Solution& sol) const {
  sol.presolve_rows_removed += stats_.rows_removed;
  sol.presolve_cols_removed += stats_.cols_removed;
  sol.presolve_nonzeros_removed += stats_.nonzeros_removed;
  sol.presolve_seconds += stats_.seconds;
  sol.solve_seconds += stats_.seconds;
  if (std::isfinite(sol.best_bound)) sol.best_bound += offset_;
  if (!sol.usable()) {
    sol.values.clear();
    sol.duals.clear();
    sol.reduced_costs.clear();
    return;
  }

  // --- primal values: reverse replay of the reduction stack ----------------
  const auto nu = static_cast<std::size_t>(n_);
  std::vector<double> x(nu, 0.0);
  for (int j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (col_map_[ju] >= 0)
      x[ju] = sol.values[static_cast<std::size_t>(col_map_[ju])];
  }
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    const Record& rec = *it;
    if (rec.kind == Record::Kind::FixedCol) {
      x[static_cast<std::size_t>(rec.col)] = rec.value;
    } else if (rec.kind == Record::Kind::FreeSingleton) {
      double acc = rec.rhs;
      for (const Term& t : rec.terms)
        acc -= t.coeff * x[static_cast<std::size_t>(t.var)];
      x[static_cast<std::size_t>(rec.col)] = acc / rec.coeff;
    }
  }

  // --- duals and reduced costs (pure LP solves only) -----------------------
  // A reduced model with no rows left (including the empty fast path) comes
  // back without duals/reduced costs from the simplex; its reduced costs
  // are just the working objective coefficients.
  const bool reduced_rc_ok =
      sol.reduced_costs.size() ==
          static_cast<std::size_t>(reduced_.num_variables()) ||
      reduced_.num_constraints() == 0;
  const bool lp_duals =
      !original.has_integer_variables() && reduced_rc_ok &&
      sol.duals.size() ==
          static_cast<std::size_t>(reduced_.num_constraints());
  if (lp_duals) {
    const auto mu = static_cast<std::size_t>(m_);
    std::vector<double> y(mu, 0.0);
    for (int i = 0; i < m_; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (row_map_[iu] >= 0)
        y[iu] = sol.duals[static_cast<std::size_t>(row_map_[iu])];
    }
    // Per-column reduced-cost "credit" still unabsorbed: a removed row that
    // supplied the binding bound claims it as its dual.
    std::vector<double> credit(nu, 0.0);
    for (int j = 0; j < n_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (col_map_[ju] < 0) continue;
      const auto rj = static_cast<std::size_t>(col_map_[ju]);
      credit[ju] = rj < sol.reduced_costs.size()
                       ? sol.reduced_costs[rj]
                       : reduced_.variable(col_map_[ju]).objective;
    }
    // Equality singleton rows zero their variable's full original reduced
    // cost; they are resolved after every other dual is known.
    std::vector<const Record*> equal_rows;
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      const Record& rec = *it;
      switch (rec.kind) {
        case Record::Kind::FixedCol:
          // The working cost at fix time is the credit a bound-supplying
          // singleton row (earlier in the stack) may claim.
          credit[static_cast<std::size_t>(rec.col)] = rec.cost;
          break;
        case Record::Kind::FreeSingleton:
          y[static_cast<std::size_t>(rec.row)] = rec.cost / rec.coeff;
          credit[static_cast<std::size_t>(rec.col)] = 0.0;
          break;
        case Record::Kind::SingletonRow: {
          if (rec.sense == Sense::Equal) {
            equal_rows.push_back(&rec);
            break;
          }
          const auto cu = static_cast<std::size_t>(rec.col);
          if (!rec.tightened) break;  // original bound binds; dual stays 0
          if (std::abs(x[cu] - rec.bound) > feas_tol_) break;  // not binding
          const double c = credit[cu];
          // The sign decides which side is binding: a positive credit holds
          // the variable down at a lower bound, a negative one up at an
          // upper bound.  y = credit / a then lands with the correct row
          // sign (<= rows non-positive, >= rows non-negative).
          if ((rec.bound_is_upper && c < -kCreditTol) ||
              (!rec.bound_is_upper && c > kCreditTol)) {
            y[static_cast<std::size_t>(rec.row)] = c / rec.coeff;
            credit[cu] = 0.0;
          }
          break;
        }
        case Record::Kind::RedundantRow:
          break;  // dual 0
      }
    }
    if (!equal_rows.empty()) {
      // y_row = (c_orig - sum_{other rows} y a) / a_row makes the fixed
      // variable's recomputed reduced cost exactly zero.  At most one
      // equality singleton survives per column (later ones fold into empty
      // rows), and each references only its own column, so the solves are
      // independent given the duals fixed above.  One adjacency pass over
      // the matrix serves every record; evaluation stays sequential so the
      // (same-sweep) case of two equality singletons sharing a column sees
      // the sibling's freshly assigned dual instead of double-claiming.
      std::vector<std::vector<Term>> col_rows(nu);
      std::vector<char> wanted(nu, 0);
      for (const Record* rec : equal_rows)
        wanted[static_cast<std::size_t>(rec->col)] = 1;
      for (int i = 0; i < m_; ++i)
        for (const Term& t : original.constraint(i).terms)
          if (wanted[static_cast<std::size_t>(t.var)])
            col_rows[static_cast<std::size_t>(t.var)].push_back(
                Term{i, t.coeff});
      for (const Record* rec : equal_rows) {
        double sum = 0.0;
        for (const Term& t : col_rows[static_cast<std::size_t>(rec->col)])
          if (t.var != rec->row)  // t.var holds the row index here
            sum += y[static_cast<std::size_t>(t.var)] * t.coeff;
        y[static_cast<std::size_t>(rec->row)] =
            (original.variable(rec->col).objective - sum) / rec->coeff;
      }
    }
    sol.duals = std::move(y);
    // Reduced costs recomputed against the original matrix: with rc defined
    // as c - y^T A the Lagrangian identity on Solution holds by algebra for
    // any y, and the recovery above supplies the optimality signs.
    std::vector<double> rc(nu);
    for (int j = 0; j < n_; ++j)
      rc[static_cast<std::size_t>(j)] = original.variable(j).objective;
    for (int i = 0; i < m_; ++i) {
      const double yi = sol.duals[static_cast<std::size_t>(i)];
      if (yi == 0.0) continue;
      for (const Term& t : original.constraint(i).terms)
        rc[static_cast<std::size_t>(t.var)] -= yi * t.coeff;
    }
    sol.reduced_costs = std::move(rc);
  } else {
    sol.duals.clear();
    sol.reduced_costs.clear();
  }

  sol.values = std::move(x);
  sol.objective = original.objective_value(sol.values);
  if (sol.status == Status::Optimal) sol.best_bound = sol.objective;
}

}  // namespace ww::milp
