#include "milp/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace ww::milp {

int Model::add_variable(std::string name, double lower, double upper,
                        VarType type, double objective) {
  if (type == VarType::Binary) {
    lower = 0.0;
    upper = 1.0;
  }
  if (lower > upper)
    throw std::invalid_argument(
        "Model: variable '" +
        (name.empty() ? "x" + std::to_string(variables_.size()) : name) +
        "' has lower > upper");
  variables_.push_back(
      Variable{std::move(name), lower, upper, type, objective});
  return static_cast<int>(variables_.size()) - 1;
}

void Model::reserve(int variables, int constraints) {
  variables_.reserve(static_cast<std::size_t>(std::max(variables, 0)));
  constraints_.reserve(static_cast<std::size_t>(std::max(constraints, 0)));
}

int Model::add_continuous(std::string name, double lower, double upper,
                          double objective) {
  return add_variable(std::move(name), lower, upper, VarType::Continuous,
                      objective);
}

int Model::add_binary(std::string name, double objective) {
  return add_variable(std::move(name), 0.0, 1.0, VarType::Binary, objective);
}

void Model::set_objective_coefficient(int var, double coeff) {
  variables_.at(static_cast<std::size_t>(var)).objective = coeff;
}

void Model::add_objective_coefficient(int var, double delta) {
  variables_.at(static_cast<std::size_t>(var)).objective += delta;
}

void Model::set_variable_bounds(int var, double lower, double upper) {
  if (lower > upper)
    throw std::invalid_argument("Model: set_variable_bounds lower > upper");
  auto& v = variables_.at(static_cast<std::size_t>(var));
  v.lower = lower;
  v.upper = upper;
}

int Model::add_constraint(std::string name, std::vector<Term> terms,
                          Sense sense, double rhs) {
  // Merge duplicate variables and drop exact zeros.  Per-key accumulation
  // order follows the input term order, and `clean` below is re-sorted by
  // variable index before it is stored, so the map's iteration order never
  // reaches the constraint row.
  // det-ok: output re-sorted by variable index below
  std::unordered_map<int, double> merged;
  for (const Term& t : terms) {
    if (t.var < 0 || t.var >= num_variables())
      throw std::out_of_range(
          "Model: constraint '" +
          (name.empty() ? "c" + std::to_string(constraints_.size()) : name) +
          "' references unknown variable");
    merged[t.var] += t.coeff;
  }
  std::vector<Term> clean;
  clean.reserve(merged.size());
  for (const auto& [var, coeff] : merged)
    if (coeff != 0.0) clean.push_back(Term{var, coeff});
  std::sort(clean.begin(), clean.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  constraints_.push_back(Constraint{std::move(name), std::move(clean), sense, rhs});
  return static_cast<int>(constraints_.size()) - 1;
}

std::string Model::variable_name(int i) const {
  const auto& stored = variables_.at(static_cast<std::size_t>(i)).name;
  return stored.empty() ? "x" + std::to_string(i) : stored;
}

std::string Model::constraint_name(int i) const {
  const auto& stored = constraints_.at(static_cast<std::size_t>(i)).name;
  return stored.empty() ? "c" + std::to_string(i) : stored;
}

bool Model::has_integer_variables() const noexcept {
  return std::any_of(variables_.begin(), variables_.end(), [](const Variable& v) {
    return v.type != VarType::Continuous;
  });
}

double Model::objective_value(const std::vector<double>& x) const {
  double obj = 0.0;
  for (std::size_t i = 0; i < variables_.size() && i < x.size(); ++i)
    obj += variables_[i].objective * x[i];
  return obj;
}

double Model::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const double v = i < x.size() ? x[i] : 0.0;
    worst = std::max(worst, variables_[i].lower - v);
    worst = std::max(worst, v - variables_[i].upper);
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms)
      lhs += t.coeff *
             (static_cast<std::size_t>(t.var) < x.size()
                  ? x[static_cast<std::size_t>(t.var)]
                  : 0.0);
    switch (c.sense) {
      case Sense::LessEqual:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case Sense::GreaterEqual:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case Sense::Equal:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace ww::milp
