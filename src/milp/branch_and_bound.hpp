// Branch-and-bound over the bounded-variable simplex.
//
// Depth-first diving with round-to-nearest child ordering finds an incumbent
// quickly; nodes are pruned against the incumbent using the LP relaxation
// bound.  WaterWise's scheduling program (assignment + capacity rows) is
// near-transportation, so relaxations are almost always integral and the tree
// rarely branches — the machinery exists for correctness when the delay rows
// or penalty terms break integrality, and is stress-tested on knapsack
// instances where branching is mandatory.
#pragma once

#include "milp/model.hpp"
#include "milp/simplex.hpp"
#include "milp/solution.hpp"

namespace ww::milp {

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, SolverOptions options = {});

  [[nodiscard]] Solution solve();

 private:
  const Model& model_;
  SolverOptions options_;
};

/// Facade: dispatches to pure LP when the model has no integer variables,
/// branch-and-bound otherwise.
[[nodiscard]] Solution solve(const Model& model, SolverOptions options = {});

}  // namespace ww::milp
