// Branch-and-bound over the bounded-variable simplex.
//
// Node selection is best-first (priority queue on the node's LP bound) with
// diving: after branching, the child nearest the fractional value is solved
// immediately, so incumbents appear as fast as under pure DFS while the
// backtracking order still favours the strongest bounds.  Branching uses
// pseudocosts seeded from objective magnitudes.  Child nodes differ from
// their parent by one tightened bound, so they re-solve from the parent's
// snapshotted basis via the dual simplex (no phase 1); see simplex.hpp.
// Both behaviours have SolverOptions kill switches (best_first, warm_start).
//
// WaterWise's scheduling program (assignment + capacity rows) is
// near-transportation, so relaxations are almost always integral and the tree
// rarely branches — the machinery exists for correctness when the delay rows
// or penalty terms break integrality, and is stress-tested on knapsack and
// weak-relaxation soft-penalty instances where branching is mandatory.
#pragma once

#include "milp/model.hpp"
#include "milp/simplex.hpp"
#include "milp/solution.hpp"

namespace ww::milp {

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, SolverOptions options = {});

  /// Solves the MILP.  `seed` may carry a heuristic feasible incumbent
  /// (see Solution::incumbent_from_heuristic): its objective becomes the
  /// initial upper bound so best-first search prunes from node 0.  The
  /// seed only prunes within the *absolute* gap — a tree-found incumbent
  /// strictly better than the seed always replaces it — so seeding never
  /// degrades the answer.  Infeasible or malformed seeds are ignored.
  [[nodiscard]] Solution solve(const Solution* seed = nullptr);

 private:
  const Model& model_;
  SolverOptions options_;
};

/// Facade: dispatches to pure LP when the model has no integer variables,
/// branch-and-bound otherwise (forwarding an optional seed incumbent).
[[nodiscard]] Solution solve(const Model& model, SolverOptions options = {},
                             const Solution* seed = nullptr);

}  // namespace ww::milp
