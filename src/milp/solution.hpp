// Solver status and solution types shared by the LP and MILP layers.
#pragma once

#include <string>
#include <vector>

namespace ww::milp {

class Model;

enum class Status {
  Optimal,          ///< Proven optimal (LP) or tree exhausted with incumbent.
  Infeasible,       ///< No feasible point exists.
  Unbounded,        ///< Objective unbounded below.
  IterationLimit,   ///< Simplex iteration limit hit.
  NodeLimit,        ///< Branch-and-bound node/time limit; `values` holds the
                    ///< best incumbent if `has_incumbent`.
};

[[nodiscard]] std::string to_string(Status s);

struct Solution {
  Status status = Status::Infeasible;
  bool has_incumbent = false;  ///< True when `values` holds a feasible point.
  double objective = 0.0;
  std::vector<double> values;

  /// LP-only diagnostics (populated by SimplexSolver, empty after
  /// branch-and-bound): one dual multiplier per constraint row and one
  /// reduced cost per structural variable.  They satisfy the identity
  ///   objective == duals . rhs + sum_j reduced_cost_j * x_j
  ///                + sum_i (-duals_i) * slack_i
  /// and the usual optimality signs (>= 0 at lower bound, <= 0 at upper).
  std::vector<double> duals;
  std::vector<double> reduced_costs;

  // Diagnostics.
  long simplex_iterations = 0;
  long nodes_explored = 0;
  /// Nodes re-solved by dual simplex from a parent basis, skipping phase 1
  /// entirely.  For a single LP solve this is 1 when a warm basis was
  /// accepted; branch-and-bound accumulates it across the tree.
  long warm_started_nodes = 0;
  /// Nodes that needed a phase-1 run with artificial columns (cold starts
  /// whose initial logical basis was primal infeasible).
  long phase1_nodes = 0;
  /// Sparse-kernel diagnostics: full LU factorizations of the basis and
  /// Forrest-Tomlin basis updates absorbed between them.
  long refactorizations = 0;
  long ft_updates = 0;
  /// Presolve diagnostics (zero when SolverOptions::presolve is off): how
  /// much of the model never reached the simplex, and what the reductions
  /// cost.  presolve_seconds is included in solve_seconds.
  long presolve_rows_removed = 0;
  long presolve_cols_removed = 0;
  long presolve_nonzeros_removed = 0;
  double presolve_seconds = 0.0;
  double best_bound = 0.0;  ///< Proven lower bound on the optimum.
  double solve_seconds = 0.0;

  [[nodiscard]] bool is_optimal() const noexcept {
    return status == Status::Optimal;
  }
  /// True when `values` can be used as a (possibly suboptimal) answer.
  [[nodiscard]] bool usable() const noexcept {
    return status == Status::Optimal || has_incumbent;
  }

  /// Wraps a heuristic feasible point as a seed incumbent for
  /// branch-and-bound (initial upper bound; pruning starts at node 0).
  /// The objective is recomputed from the model so seeded and tree-found
  /// incumbents compare on identical arithmetic.  Status is NodeLimit:
  /// feasible but unproven.  Defined in branch_and_bound.cpp.
  [[nodiscard]] static Solution incumbent_from_heuristic(
      const Model& model, std::vector<double> values);
};

/// Process-wide default for SolverOptions::presolve: true unless the
/// WW_PRESOLVE environment variable says off|0|false (the ablation switch
/// CI uses to run the whole suite down the raw solver path).  Defined in
/// presolve.cpp.
[[nodiscard]] bool presolve_enabled_by_default() noexcept;

/// Process-wide switch forcing a refactorization after every simplex pivot
/// (the slow-but-simple ablation path): true when the WW_REFACTOR_EVERY_PIVOT
/// environment variable says on|1|true.  CI runs the whole suite this way so
/// the Forrest-Tomlin update can always be cross-checked against fresh
/// factorizations.  Defined in simplex.cpp.
[[nodiscard]] bool refactor_every_pivot_forced() noexcept;

/// Entering-variable selection rule for the primal simplex.
enum class Pricing {
  Devex,    ///< Reference-framework Devex weights with a candidate list.
  Dantzig,  ///< Most-negative reduced cost (full scan of maintained costs).
};

struct SolverOptions {
  double pivot_tolerance = 1e-9;       ///< Reduced-cost / pivot threshold.
  double feasibility_tolerance = 1e-7; ///< Bound/row violation acceptance.
  double integrality_tolerance = 1e-6; ///< |x - round(x)| for integer vars.
  long max_iterations = 200000;        ///< Simplex iterations per LP solve.
  long max_nodes = 200000;             ///< Branch-and-bound node budget.
  double time_limit_seconds = 120.0;   ///< Wall-clock budget for the tree.
  double mip_gap_abs = 1e-9;           ///< Prune nodes within this of the
                                       ///< incumbent (absolute).
  double mip_gap_rel = 1e-6;           ///< ... or within this fraction.
  int refactor_interval = 100;         ///< Iteration cadence backstop for
                                       ///< refactorization (numeric hygiene
                                       ///< for xb / reduced-cost drift).
  /// Maximum Forrest-Tomlin basis updates absorbed between
  /// refactorizations.  0 refactorizes after every pivot — the
  /// slow-but-simple ablation path (also reachable process-wide through
  /// the WW_REFACTOR_EVERY_PIVOT environment switch, which overrides
  /// everything here).  Unlike the product-form eta file this replaced,
  /// updates keep ftran/btran cost flat, so the budget is numeric hygiene
  /// rather than a speed knob.
  int update_budget = 64;
  /// Refactorize when the factors' fill — U spikes plus row-eta nonzeros —
  /// grows past this multiple of the freshly factorized nonzero count
  /// (BasisLU::fill_ratio()).  Growth degrades both solve cost and
  /// accuracy, so it triggers refactorization instead of a fixed eta cap.
  double fill_growth_limit = 3.0;
  /// Deprecated: pre-Forrest-Tomlin name for the update cadence.  The eta
  /// file is gone; a nonzero value overrides update_budget so existing
  /// callers keep their refactorization cadence.  0 (the default) defers
  /// to update_budget.
  int eta_limit = 0;
  /// Entering-variable rule; Devex is the default, Dantzig kept for
  /// equivalence testing.  Both fall back to Bland's rule after
  /// `bland_iterations` for anti-cycling.
  Pricing pricing = Pricing::Devex;
  /// Branch-and-bound re-solves child nodes from the parent's optimal basis
  /// with the dual simplex (a single tightened bound keeps the parent basis
  /// dual feasible, so phase 1 and its artificial columns are skipped).
  /// Disable to force cold solves at every node (equivalence testing).
  bool warm_start = true;
  /// Best-first node selection (priority queue on node bound) with diving;
  /// false restores pure depth-first diving.
  bool best_first = true;
  /// Simplex iteration at which pricing falls back to Bland's rule for
  /// guaranteed termination on degenerate instances (the rule is active
  /// from this iteration onward).  0 = automatic (1000 + 20 * columns);
  /// tests set 1 to force Bland from the very first pivot.
  long bland_iterations = 0;
  /// Run the presolve/postsolve subsystem (milp/presolve.hpp) around the
  /// solve: singleton/redundant rows, fixed and implied-free columns, and
  /// integer bound tightening are folded out before the simplex sees the
  /// model, and the solution is mapped back afterwards.  Off solves the
  /// model verbatim (ablation/equivalence testing).
  bool presolve = presolve_enabled_by_default();
};

}  // namespace ww::milp
