// Sparse LU factorization of a simplex basis with eta-file updates.
//
// The basis matrix B maps basis positions to rows: column i of B is the
// constraint-matrix column of the variable basic in position i.  BasisLU
// factorizes P B Q = L U by left-looking Gilbert-Peierls elimination — the
// per-column lower solve first runs the symbolic phase, a DFS over the L
// pattern that finds exactly the elimination steps whose multiplier can be
// structurally nonzero, so each column costs O(|reach| + pattern edges)
// instead of probing all prior pivots (Theta(m^2) per refactorization) —
// with a Markowitz-biased static column order
// (ascending nonzero count, so logical/slack singletons peel off
// fill-free) and threshold row pivoting that prefers sparse rows among
// numerically acceptable candidates.  Between
// refactorizations, basis changes are absorbed as product-form eta columns:
// replacing the column in position r by a new column a with w = B^-1 a
// appends the elementary matrix E(r, w), so B_new^-1 = E^-1 B^-1 and both
// triangular factors stay untouched.
//
// ftran solves B x = a (entering-column transformation); btran solves
// B^T y = c (dual/pivot-row transformation).  Both exploit sparsity by
// skipping zero positions, so a solve costs O(nnz touched) instead of the
// dense kernel's O(m^2) matrix-vector products.
#pragma once

#include <vector>

namespace ww::milp {

/// One sparse column/vector in parallel (row index, value) form.  Shared
/// with SimplexSolver's constraint-column storage.
struct SparseVec {
  std::vector<int> rows;
  std::vector<double> values;
};

class BasisLU {
 public:
  /// Factorizes the basis given by `basis` (column index per position) over
  /// the column pool `cols`.  Discards any eta file.  Returns false when the
  /// basis is numerically singular (no acceptable pivot in some column), in
  /// which case the factorization must not be used.
  bool factorize(int m, const std::vector<SparseVec>& cols,
                 const std::vector<int>& basis);

  /// Solves B x = a in place: `x` enters as the dense right-hand side
  /// indexed by row and leaves as the solution indexed by basis position.
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = c in place: `x` enters as the dense right-hand side
  /// indexed by basis position and leaves as the solution indexed by row.
  void btran(std::vector<double>& x) const;

  /// Absorbs the replacement of the column in position `pos` by a column
  /// whose ftran image is `w` (position-indexed, w = B^-1 a_entering).
  /// Returns false when the pivot |w[pos]| is below the stability threshold;
  /// the caller must refactorize instead.
  bool update(const std::vector<double>& w, int pos);

  [[nodiscard]] int dimension() const noexcept { return m_; }
  [[nodiscard]] int eta_count() const noexcept {
    return static_cast<int>(etas_.size());
  }
  /// Nonzeros in L + U (diagnostic; excludes etas).
  [[nodiscard]] long factor_nonzeros() const noexcept { return factor_nnz_; }

 private:
  struct Eta {
    int pos;                  ///< Replaced basis position.
    double pivot;             ///< w[pos].
    std::vector<int> idx;     ///< Off-pivot positions with nonzero w.
    std::vector<double> val;  ///< Matching w values.
  };

  int m_ = 0;
  // Factors of P B Q = L U, stored column-wise per elimination step k:
  // L columns hold (original row, multiplier) below the pivot; U columns
  // hold (earlier step, value) above the diagonal, diagonal kept apart.
  std::vector<std::vector<int>> l_rows_;
  std::vector<std::vector<double>> l_vals_;
  std::vector<std::vector<int>> u_steps_;
  std::vector<std::vector<double>> u_vals_;
  std::vector<double> diag_;
  std::vector<int> p_;      ///< p_[k]: original row pivotal at step k.
  std::vector<int> pinv_;   ///< pinv_[row]: step at which `row` was pivotal.
  std::vector<int> q_;      ///< q_[k]: basis position eliminated at step k.
  std::vector<Eta> etas_;   ///< Product-form updates since factorize().
  long factor_nnz_ = 0;

  mutable std::vector<double> work_;  ///< Step-indexed scratch for solves.
};

}  // namespace ww::milp
