// Sparse LU factorization of a simplex basis with Forrest-Tomlin updates.
//
// The basis matrix B maps basis positions to rows: column i of B is the
// constraint-matrix column of the variable basic in position i.  BasisLU
// factorizes P B Q = L U by left-looking Gilbert-Peierls elimination — the
// per-column lower solve first runs the symbolic phase, a DFS over the L
// pattern that finds exactly the elimination steps whose multiplier can be
// structurally nonzero, so each column costs O(|reach| + pattern edges)
// instead of probing all prior pivots (Theta(m^2) per refactorization) —
// with a Markowitz-biased static column order (ascending nonzero count, so
// logical/slack singletons peel off fill-free) and threshold row pivoting
// that prefers sparse rows among numerically acceptable candidates.
//
// Update algebra (Forrest & Tomlin 1972).  Replacing the column in basis
// position r rewrites one column of U with the spike s = E_k...E_1 L^-1 a
// (the entering column's partial transform).  Cyclically permuting the
// spiked step to the end of the elimination order leaves a matrix that is
// upper triangular except for its last row — the old row of U — which is
// eliminated against the trailing diagonal by one sparse transposed solve.
// The multipliers form a *row eta* E = I - e_t mu^T stored between L and U,
// so the factorization evolves as
//   B = L  E_1^-1 E_2^-1 ... E_k^-1  U
// with U modified *in place*: the spiked column is overwritten, the
// eliminated row's entries are deleted, and the new diagonal becomes
// d_new = s_t - mu . s (= w_r * d_old by the determinant identity, so a
// vanishing d_new is exactly a vanishing update pivot).  Unlike the
// product-form eta file this kernel replaced, ftran/btran stay
// O(nnz(L) + nnz(U) + nnz(row etas)) — flat over arbitrarily long pivot
// runs, because each update costs one row eta instead of one full eta
// column applied to every subsequent solve.
//
// Refactorization is triggered by the caller from two monitors exposed
// here rather than a fixed update cap: update_count() (the budget) and
// fill_ratio() (current factor + row-eta nonzeros over the freshly
// factorized count — update fill degrades both speed and accuracy).
// update() itself is transactional: when the new diagonal fails the
// stability test (absolutely tiny, or vanishing relative to the spike) it
// returns false *without touching the factors*, so the caller can simply
// refactorize and carry on.
//
// ftran solves B x = a (entering-column transformation); btran solves
// B^T y = c (dual/pivot-row transformation).  Both exploit sparsity by
// skipping zero positions, so a solve costs O(nnz touched) instead of the
// dense kernel's O(m^2) matrix-vector products.
#pragma once

#include <utility>
#include <vector>

namespace ww::milp {

/// One sparse column/vector in parallel (row index, value) form.  Shared
/// with SimplexSolver's constraint-column storage.
struct SparseVec {
  std::vector<int> rows;
  std::vector<double> values;
};

class BasisLU {
 public:
  /// Factorizes the basis given by `basis` (column index per position) over
  /// the column pool `cols`.  Discards any pending updates.  Returns false
  /// when the basis is numerically singular (no acceptable pivot in some
  /// column), in which case the factorization must not be used.
  bool factorize(int m, const std::vector<SparseVec>& cols,
                 const std::vector<int>& basis);

  /// Solves B x = a in place: `x` enters as the dense right-hand side
  /// indexed by row and leaves as the solution indexed by basis position.
  /// With `save_spike`, the partial transform (after L and the row etas,
  /// before U) is additionally saved as the spike a subsequent update()
  /// consumes — the solver sets it when transforming the entering column,
  /// which makes the update's spike free instead of a U multiply.
  void ftran(std::vector<double>& x, bool save_spike = false) const;

  /// Solves B^T y = c in place: `x` enters as the dense right-hand side
  /// indexed by basis position and leaves as the solution indexed by row.
  void btran(std::vector<double>& x) const;

  /// Absorbs the replacement of the column in position `pos` by the
  /// entering column whose spike the most recent ftran(x, true) saved, as
  /// a Forrest-Tomlin update of U.  Returns false — leaving the factors
  /// untouched — when no saved spike is pending or the updated diagonal
  /// fails the stability test; the caller must refactorize instead.
  bool update(int pos);

  [[nodiscard]] int dimension() const noexcept { return m_; }
  /// Forrest-Tomlin updates absorbed since the last factorize().
  [[nodiscard]] int update_count() const noexcept { return update_count_; }
  /// Nonzeros in L + U as currently updated (spikes included, row etas
  /// excluded; diagnostic).
  [[nodiscard]] long factor_nonzeros() const noexcept { return factor_nnz_; }
  /// Fill monitor: (current L + U + row-eta nonzeros) over the nonzero
  /// count of the last fresh factorization.  1.0 right after factorize();
  /// grows as update spikes and row etas accumulate fill.
  [[nodiscard]] double fill_ratio() const noexcept {
    return fresh_nnz_ > 0 ? static_cast<double>(factor_nnz_ + eta_nnz_) /
                                static_cast<double>(fresh_nnz_)
                          : 1.0;
  }

 private:
  /// One Forrest-Tomlin row elimination: step `step` was spiked and moved
  /// to the end of the elimination order; [begin, end) indexes the shared
  /// entry pools holding the multipliers mu of E = I - e_step mu^T over
  /// the steps it was eliminated against.  Pooled storage keeps the
  /// per-solve eta sweep contiguous instead of chasing one heap block per
  /// update.
  struct RowEta {
    int step;
    int begin;
    int end;
  };

  int m_ = 0;
  // Factors of P B Q = L U, stored column-wise per elimination step k:
  // L columns hold (original row, multiplier) below the pivot; U columns
  // hold (earlier step, value) above the diagonal, diagonal kept apart.
  // After updates the elimination order of U's steps is order_ (a
  // permutation of 0..m-1; rank_ is its inverse), while L keeps the
  // original 0..m-1 order — Forrest-Tomlin never touches L.
  std::vector<std::vector<int>> l_rows_;
  std::vector<std::vector<double>> l_vals_;
  std::vector<std::vector<int>> u_steps_;
  std::vector<std::vector<double>> u_vals_;
  std::vector<double> diag_;
  std::vector<int> p_;      ///< p_[k]: original row pivotal at step k.
  std::vector<int> pinv_;   ///< pinv_[row]: step at which `row` was pivotal.
  std::vector<int> q_;      ///< q_[k]: basis position eliminated at step k.
  std::vector<int> qinv_;   ///< qinv_[pos]: step eliminating position pos.
  // Elimination order of U's steps: updates move their spiked step to the
  // end.  Kept contiguous (one erase + suffix rank rebuild per update, a
  // few microseconds) because ftran/btran traverse it every solve and a
  // linked list's dependent loads measurably serialize those hot loops.
  std::vector<int> order_;  ///< Steps in elimination order.
  std::vector<int> rank_;   ///< rank_[step]: its index in order_.
  std::vector<RowEta> updates_;  ///< Row etas since factorize(), oldest first.
  std::vector<int> eta_pool_steps_;     ///< Pooled row-eta support steps.
  std::vector<double> eta_pool_vals_;   ///< Pooled row-eta multipliers.
  int update_count_ = 0;
  long factor_nnz_ = 0;  ///< Current L + U nonzeros (updated in place).
  long fresh_nnz_ = 0;   ///< L + U nonzeros right after factorize().
  long eta_nnz_ = 0;     ///< Row-eta nonzeros accumulated by updates.

  /// Lazy row-wise index of U: row_cols_[step] lists the steps of columns
  /// that have (or once had) an entry in that row.  Appended on insertion,
  /// never pruned on column rewrites — a listed column that no longer
  /// carries the entry is detected (and skipped) by the scan that would
  /// have used it.  This is what makes the update's row elimination a
  /// sparse reach-set solve instead of a scan of every trailing column.
  std::vector<std::vector<int>> row_cols_;

  mutable std::vector<double> work_;  ///< Step-indexed scratch for solves.
  // Spike saved by ftran(x, true): the entering column after L and the row
  // etas, step-indexed dense values plus the nonzero list (so update()
  // touches O(nnz(spike)) instead of O(m)); consumed by the next update().
  mutable std::vector<double> spike_;
  mutable std::vector<int> spike_idx_;
  mutable std::vector<unsigned char> spike_mark_;
  mutable bool spike_valid_ = false;
  // update() scratch: the mu workspace of the row elimination, the
  // rank-ordered column worklist, and the located row-t entries.
  std::vector<double> mu_;
  std::vector<unsigned char> mu_mark_;
  std::vector<unsigned char> col_mark_;
  std::vector<int> heap_;
  std::vector<int> processed_;
  std::vector<int> eta_steps_;
  std::vector<double> eta_vals_;
  std::vector<std::pair<int, int>> row_hits_;
};

}  // namespace ww::milp
