#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/timer.hpp"

namespace ww::milp {

namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound;  ///< Parent LP objective: a valid lower bound for this node.
  int depth = 0;
};

std::string to_string_impl(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
    case Status::NodeLimit: return "node-limit";
  }
  return "unknown";
}

}  // namespace

std::string to_string(Status s) { return to_string_impl(s); }

BranchAndBound::BranchAndBound(const Model& model, SolverOptions options)
    : model_(model), options_(options) {}

Solution BranchAndBound::solve() {
  const util::Stopwatch watch;
  SimplexSolver lp(model_, options_);

  const int n = model_.num_variables();
  std::vector<bool> is_int(static_cast<std::size_t>(n), false);
  for (int j = 0; j < n; ++j)
    is_int[static_cast<std::size_t>(j)] =
        model_.variable(j).type != VarType::Continuous;

  Solution best;
  best.status = Status::Infeasible;
  double incumbent = std::numeric_limits<double>::infinity();
  long nodes = 0;
  long total_iterations = 0;
  bool limits_hit = false;
  double root_bound = -std::numeric_limits<double>::infinity();

  Node root;
  root.lower.resize(static_cast<std::size_t>(n));
  root.upper.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    root.lower[static_cast<std::size_t>(j)] = model_.variable(j).lower;
    root.upper[static_cast<std::size_t>(j)] = model_.variable(j).upper;
  }
  root.bound = -std::numeric_limits<double>::infinity();

  std::vector<Node> stack;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    if (nodes >= options_.max_nodes ||
        watch.elapsed_seconds() > options_.time_limit_seconds) {
      limits_hit = true;
      break;
    }
    const double prune_margin =
        std::max(options_.mip_gap_abs,
                 options_.mip_gap_rel * std::abs(incumbent));
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.bound >= incumbent - prune_margin) continue;  // pruned

    ++nodes;
    const Solution relax = lp.solve_with_bounds(node.lower, node.upper);
    total_iterations += relax.simplex_iterations;
    if (relax.status == Status::Infeasible) continue;
    if (relax.status == Status::Unbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded or
      // infeasible; report unbounded (integrality cannot bound a ray here
      // for the model classes WaterWise builds).
      Solution sol;
      sol.status = Status::Unbounded;
      sol.nodes_explored = nodes;
      sol.simplex_iterations = total_iterations;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
    if (relax.status == Status::IterationLimit) {
      limits_hit = true;
      continue;
    }
    if (nodes == 1) root_bound = relax.objective;
    if (relax.objective >= incumbent - prune_margin) continue;

    // Most-fractional branching variable.
    int branch_var = -1;
    double worst_frac = options_.integrality_tolerance;
    for (int j = 0; j < n; ++j) {
      if (!is_int[static_cast<std::size_t>(j)]) continue;
      const double v = relax.values[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integral: candidate incumbent (snap integer values exactly).
      Solution cand = relax;
      for (int j = 0; j < n; ++j)
        if (is_int[static_cast<std::size_t>(j)])
          cand.values[static_cast<std::size_t>(j)] =
              std::round(cand.values[static_cast<std::size_t>(j)]);
      cand.objective = model_.objective_value(cand.values);
      if (cand.objective < incumbent) {
        incumbent = cand.objective;
        best = std::move(cand);
        best.has_incumbent = true;
      }
      continue;
    }

    const auto bu = static_cast<std::size_t>(branch_var);
    const double v = relax.values[bu];
    const double fl = std::floor(v);

    Node down = node;  // x <= floor(v)
    down.upper[bu] = fl;
    down.bound = relax.objective;
    down.depth = node.depth + 1;

    Node up = std::move(node);  // x >= floor(v) + 1
    up.lower[bu] = fl + 1.0;
    up.bound = relax.objective;
    up.depth = down.depth;

    // Dive toward the nearest integer first (explored last-pushed-first).
    if (v - fl < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  best.nodes_explored = nodes;
  best.simplex_iterations = total_iterations;
  best.solve_seconds = watch.elapsed_seconds();
  if (limits_hit) {
    best.status = Status::NodeLimit;
    // Remaining open nodes bound the optimum from below.
    double open_bound = incumbent;
    for (const Node& nd : stack) open_bound = std::min(open_bound, nd.bound);
    best.best_bound = std::min(open_bound, incumbent);
  } else if (best.has_incumbent) {
    best.status = Status::Optimal;
    best.best_bound = best.objective;
  } else {
    best.status = Status::Infeasible;
    best.best_bound = root_bound;
  }
  return best;
}

Solution solve(const Model& model, SolverOptions options) {
  if (!model.has_integer_variables()) {
    SimplexSolver lp(model, options);
    return lp.solve();
  }
  BranchAndBound bb(model, options);
  return bb.solve();
}

}  // namespace ww::milp
