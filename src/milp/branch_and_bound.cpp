#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "milp/presolve.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ww::milp {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = kNegInf;  ///< Parent LP objective: valid lower bound here.
  int depth = 0;
  long seq = 0;            ///< Creation order, for deterministic tie-breaks.
  int branch_var = -1;     ///< Variable whose bound this node tightened.
  bool branch_up = false;  ///< True for the x >= ceil(v) child.
  double branch_frac = 0.0;  ///< Fractional distance the branch rounded away.
  double parent_obj = 0.0;   ///< Parent LP objective (pseudocost updates).
  /// Parent's optimal basis; shared by both children, replayed via the
  /// dual simplex so the child LP skips phase 1.
  std::shared_ptr<const SimplexSolver::WarmStartBasis> warm;
};

/// Heap comparator: "a is worse than b".  Best-first pops the smallest
/// bound; ties prefer deeper (diving) then newer nodes, deterministically.
bool worse_node(const Node& a, const Node& b) {
  if (a.bound != b.bound) return a.bound > b.bound;
  if (a.depth != b.depth) return a.depth < b.depth;
  return a.seq < b.seq;
}

/// Per-variable branching history: average objective degradation per unit
/// of fractionality, kept separately for the down and up directions.
struct Pseudocost {
  double down_sum = 0.0;
  double up_sum = 0.0;
  long down_n = 0;
  long up_n = 0;
};

std::string to_string_impl(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
    case Status::NodeLimit: return "node-limit";
  }
  return "unknown";
}

}  // namespace

std::string to_string(Status s) { return to_string_impl(s); }

Solution Solution::incumbent_from_heuristic(const Model& model,
                                            std::vector<double> values) {
  Solution sol;
  sol.values = std::move(values);
  sol.objective = model.objective_value(sol.values);
  sol.has_incumbent = true;
  sol.status = Status::NodeLimit;  // feasible, not proven optimal
  sol.best_bound = kNegInf;
  return sol;
}

BranchAndBound::BranchAndBound(const Model& model, SolverOptions options)
    : model_(model), options_(options) {}

Solution BranchAndBound::solve(const Solution* seed) {
  // Presolve lives in the milp::solve facade; route through it so a
  // directly-constructed BranchAndBound sees the same reductions.  The
  // facade clears the flag before solving the reduced model, so the tree
  // below always runs on a presolved (or deliberately raw) model.
  if (options_.presolve) return ww::milp::solve(model_, options_, seed);

  const util::Stopwatch watch;
  SimplexSolver lp(model_, options_);

  const int n = model_.num_variables();
  std::vector<bool> is_int(static_cast<std::size_t>(n), false);
  for (int j = 0; j < n; ++j)
    is_int[static_cast<std::size_t>(j)] =
        model_.variable(j).type != VarType::Continuous;

  Solution best;
  best.status = Status::Infeasible;
  double incumbent = std::numeric_limits<double>::infinity();
  // Heuristic seed: adopt it as the initial incumbent when it is actually
  // feasible.  While the incumbent is still the seed, pruning uses only the
  // absolute gap — the relative gap could discard a tree solution within
  // mip_gap_rel of the (possibly weak) heuristic, changing the answer the
  // un-seeded tree would have returned.
  bool incumbent_is_seed = false;
  if (seed != nullptr && seed->has_incumbent &&
      static_cast<int>(seed->values.size()) == n &&
      model_.max_violation(seed->values) <= options_.feasibility_tolerance) {
    // MILP feasibility also demands integrality, which max_violation does
    // not check — a fractional (e.g. LP-relaxation) "seed" must be ignored
    // or it would prune the subtree holding the true integral optimum.
    bool integral = true;
    for (int j = 0; j < n && integral; ++j) {
      if (!is_int[static_cast<std::size_t>(j)]) continue;
      const double v = seed->values[static_cast<std::size_t>(j)];
      integral = std::abs(v - std::round(v)) <= options_.integrality_tolerance;
    }
    if (integral) {
      best = *seed;
      // Defensive recompute: the pruning bound must reflect these exact
      // values even when a caller hand-built the seed with a stale
      // objective field instead of using incumbent_from_heuristic.
      best.objective = model_.objective_value(best.values);
      incumbent = best.objective;
      incumbent_is_seed = true;
    }
  }
  long nodes = 0;
  long total_iterations = 0;
  long warm_nodes = 0;
  long phase1_nodes = 0;
  long total_refactor = 0;
  long total_updates = 0;
  long next_seq = 0;
  bool limits_hit = false;        ///< Node/time budget exhausted.
  bool subtree_dropped = false;   ///< A node LP hit its iteration limit.
  double root_bound = kNegInf;
  /// Bounds of nodes we could not resolve (limits); folded into best_bound
  /// so an abandoned subtree can never make the reported bound overstate
  /// the true optimum.
  double unresolved_bound = std::numeric_limits<double>::infinity();

  // Pseudocosts seeded from objective magnitudes: before a variable has
  // branching history, a larger |cost| is the best available proxy for the
  // objective movement its rounding will cause.
  std::vector<Pseudocost> pseudo(static_cast<std::size_t>(n));
  std::vector<double> pseudo_seed(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j)
    pseudo_seed[static_cast<std::size_t>(j)] =
        1e-6 + std::abs(model_.variable(j).objective);

  Node root;
  root.lower.resize(static_cast<std::size_t>(n));
  root.upper.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    root.lower[static_cast<std::size_t>(j)] = model_.variable(j).lower;
    root.upper[static_cast<std::size_t>(j)] = model_.variable(j).upper;
  }
  root.seq = next_seq++;

  // Open nodes: a binary heap under best-first selection, a plain stack
  // under DFS.  `current` carries the preferred child of the node just
  // branched, so both modes dive toward an incumbent before backtracking.
  std::vector<Node> open;
  std::optional<Node> current(std::move(root));
  const bool best_first = options_.best_first;

  auto pop_open = [&]() -> Node {
    if (best_first)
      std::pop_heap(open.begin(), open.end(), worse_node);
    Node nd = std::move(open.back());
    open.pop_back();
    return nd;
  };
  auto push_open = [&](Node&& nd) {
    open.push_back(std::move(nd));
    if (best_first) std::push_heap(open.begin(), open.end(), worse_node);
  };

  for (;;) {
    Node node;
    bool from_heap = false;
    if (current) {
      node = std::move(*current);
      current.reset();
    } else if (!open.empty()) {
      node = pop_open();
      from_heap = true;
    } else {
      break;
    }

    if (nodes >= options_.max_nodes ||
        watch.elapsed_seconds() > options_.time_limit_seconds) {
      // Budget exhausted: fold the in-hand node and every open node into
      // the unresolved bound in one pass (the limit can't un-trip, so
      // popping them through the heap would be pure teardown cost).
      limits_hit = true;
      unresolved_bound = std::min(unresolved_bound, node.bound);
      for (const Node& nd : open)
        unresolved_bound = std::min(unresolved_bound, nd.bound);
      open.clear();
      break;
    }
    const double prune_margin =
        incumbent_is_seed
            ? options_.mip_gap_abs
            : std::max(options_.mip_gap_abs,
                       options_.mip_gap_rel * std::abs(incumbent));
    if (node.bound >= incumbent - prune_margin) {
      // Pruned.  When this node came off the best-first heap, its bound is
      // the minimum of the open set and the incumbent only improves, so
      // every remaining open node is pruned too — discard them wholesale.
      // (A dive child in `current` proves nothing about the heap.)
      if (best_first && from_heap) {
        open.clear();
        break;
      }
      continue;
    }

    ++nodes;
    const Solution relax =
        lp.solve_with_bounds(node.lower, node.upper, node.warm.get());
    total_iterations += relax.simplex_iterations;
    warm_nodes += relax.warm_started_nodes;
    phase1_nodes += relax.phase1_nodes;
    total_refactor += relax.refactorizations;
    total_updates += relax.ft_updates;
    if (relax.status == Status::Infeasible) continue;
    if (relax.status == Status::Unbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded or
      // infeasible; report unbounded (integrality cannot bound a ray here
      // for the model classes WaterWise builds).
      Solution sol;
      sol.status = Status::Unbounded;
      sol.nodes_explored = nodes;
      sol.simplex_iterations = total_iterations;
      sol.warm_started_nodes = warm_nodes;
      sol.phase1_nodes = phase1_nodes;
      sol.refactorizations = total_refactor;
      sol.ft_updates = total_updates;
      sol.solve_seconds = watch.elapsed_seconds();
      return sol;
    }
    if (relax.status == Status::IterationLimit) {
      // The subtree is unresolved, not pruned: its parent bound must keep
      // weighing on best_bound or the final bound would overstate.
      subtree_dropped = true;
      unresolved_bound = std::min(unresolved_bound, node.bound);
      continue;
    }
    if (nodes == 1) root_bound = relax.objective;

    // Pseudocost update: objective degradation of this branch per unit of
    // the fractionality it rounded away.
    if (node.branch_var >= 0) {
      const auto bv = static_cast<std::size_t>(node.branch_var);
      const double gain =
          std::max(0.0, relax.objective - node.parent_obj) /
          std::max(node.branch_frac, 1e-9);
      if (node.branch_up) {
        pseudo[bv].up_sum += gain;
        ++pseudo[bv].up_n;
      } else {
        pseudo[bv].down_sum += gain;
        ++pseudo[bv].down_n;
      }
    }
    if (relax.objective >= incumbent - prune_margin) continue;

    // Branching variable: highest pseudocost-estimated degradation product,
    // falling back to the seed estimate where no history exists yet.
    int branch_var = -1;
    double best_score = -1.0;
    double best_frac = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!is_int[static_cast<std::size_t>(j)]) continue;
      const auto ju = static_cast<std::size_t>(j);
      const double v = relax.values[ju];
      const double f_down = v - std::floor(v);
      const double frac = std::min(f_down, 1.0 - f_down);
      if (frac <= options_.integrality_tolerance) continue;
      const double down_est =
          pseudo[ju].down_n
              ? pseudo[ju].down_sum / static_cast<double>(pseudo[ju].down_n)
              : pseudo_seed[ju];
      const double up_est =
          pseudo[ju].up_n
              ? pseudo[ju].up_sum / static_cast<double>(pseudo[ju].up_n)
              : pseudo_seed[ju];
      const double score = (down_est * f_down + 1e-9) *
                           (up_est * (1.0 - f_down) + 1e-9);
      if (score > best_score ||
          (score == best_score && frac > best_frac)) {
        best_score = score;
        best_frac = frac;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integral: candidate incumbent (snap integer values exactly).
      Solution cand = relax;
      for (int j = 0; j < n; ++j)
        if (is_int[static_cast<std::size_t>(j)])
          cand.values[static_cast<std::size_t>(j)] =
              std::round(cand.values[static_cast<std::size_t>(j)]);
      cand.objective = model_.objective_value(cand.values);
      // Tree incumbents also take over from a seed on exact objective
      // ties.  (Best effort: a tying node can still be gap-pruned before
      // its integral solution is formed, in which case the seed's
      // assignment is returned at the same objective.)
      if (cand.objective < incumbent ||
          (incumbent_is_seed && cand.objective <= incumbent)) {
        incumbent = cand.objective;
        best = std::move(cand);
        best.has_incumbent = true;
        incumbent_is_seed = false;
      }
      continue;
    }

    std::shared_ptr<const SimplexSolver::WarmStartBasis> snap;
    if (options_.warm_start) {
      auto basis = lp.capture_basis();
      if (basis.valid())
        snap = std::make_shared<const SimplexSolver::WarmStartBasis>(
            std::move(basis));
    }

    const auto bu = static_cast<std::size_t>(branch_var);
    const double v = relax.values[bu];
    const double fl = std::floor(v);

    Node down = node;  // x <= floor(v)
    down.upper[bu] = fl;
    down.bound = relax.objective;
    down.depth = node.depth + 1;
    down.branch_var = branch_var;
    down.branch_up = false;
    down.branch_frac = v - fl;
    down.parent_obj = relax.objective;
    down.warm = snap;

    Node up = std::move(node);  // x >= floor(v) + 1
    up.lower[bu] = fl + 1.0;
    up.bound = relax.objective;
    up.depth = down.depth;
    up.branch_var = branch_var;
    up.branch_up = true;
    up.branch_frac = fl + 1.0 - v;
    up.parent_obj = relax.objective;
    up.warm = std::move(snap);

    // Dive toward the nearest integer first; the sibling joins the open set.
    if (v - fl < 0.5) {
      up.seq = next_seq++;
      down.seq = next_seq++;
      push_open(std::move(up));
      current = std::move(down);
    } else {
      down.seq = next_seq++;
      up.seq = next_seq++;
      push_open(std::move(down));
      current = std::move(up);
    }
  }

  best.nodes_explored = nodes;
  best.simplex_iterations = total_iterations;
  best.warm_started_nodes = warm_nodes;
  best.phase1_nodes = phase1_nodes;
  best.refactorizations = total_refactor;
  best.ft_updates = total_updates;
  best.solve_seconds = watch.elapsed_seconds();
  if (limits_hit || subtree_dropped) {
    // NodeLimit when the tree budget stopped us; IterationLimit when the
    // tree was exhausted but some node LP could not be resolved.  Either
    // way the unresolved bounds cap the proven bound.
    best.status = limits_hit ? Status::NodeLimit : Status::IterationLimit;
    best.best_bound = std::min(unresolved_bound, incumbent);
  } else if (best.has_incumbent) {
    best.status = Status::Optimal;
    best.best_bound = best.objective;
  } else {
    best.status = Status::Infeasible;
    best.best_bound = root_bound;
  }
  return best;
}

namespace {

/// The raw dispatch: LP relaxation solver for continuous models,
/// branch-and-bound otherwise.  Callers have already dealt with presolve.
Solution solve_raw(const Model& model, const SolverOptions& options,
                   const Solution* seed) {
  if (!model.has_integer_variables()) {
    SimplexSolver lp(model, options);
    return lp.solve();
  }
  BranchAndBound bb(model, options);
  return bb.solve(seed);
}

/// solve() minus the tracing wrapper; callers go through solve().
Solution solve_impl(const Model& model, SolverOptions options,
                    const Solution* seed) {
  if (!options.presolve) return solve_raw(model, options, seed);

  // Presolve wrapper: reduce, solve the reduced model with presolve off,
  // then map the solution (values, duals, counters) back onto `model` so
  // callers cannot tell the difference from a raw solve.
  options.presolve = false;
  Presolve pre;
  if (pre.run(model, options) == Presolve::Result::Infeasible) {
    Solution sol;
    sol.status = Status::Infeasible;
    pre.postsolve(model, sol);  // annotates counters and presolve time
    return sol;
  }
  // Reduction-ratio gate: applying presolve means rebuilding the model and
  // perturbing the (tie-heavy) pivot path, so marginal reductions can cost
  // more than they save.  Proceed when the model shrank meaningfully (>= 2%
  // of rows+columns), a bound was tightened (can shrink the B&B tree out of
  // proportion), or presolve decided everything; otherwise solve the
  // original and charge only the scan.
  const PresolveStats& ps = pre.stats();
  const long scale = model.num_variables() + model.num_constraints();
  const bool decided = ps.cols_removed == model.num_variables() &&
                       ps.rows_removed == model.num_constraints();
  if (!decided && ps.bounds_tightened == 0 &&
      ps.rows_removed + ps.cols_removed < std::max<long>(4, scale / 50)) {
    Solution sol = solve_raw(model, options, seed);
    sol.presolve_seconds += ps.seconds;
    sol.solve_seconds += ps.seconds;
    return sol;
  }

  pre.build_reduced(model);
  const Model& red = pre.reduced();
  Solution sol;
  if (red.num_variables() == 0 && red.num_constraints() == 0) {
    // Empty-problem fast path: presolve decided every variable; postsolve
    // reconstructs the full assignment from the reduction stack alone.
    sol.status = Status::Optimal;
    sol.has_incumbent = true;
  } else {
    // A seed incumbent survives presolve when it agrees with every fixing;
    // otherwise the tree simply starts unseeded (seeding is an
    // acceleration, never a correctness requirement).
    Solution red_seed;
    const Solution* sp = nullptr;
    std::vector<double> vals;
    if (seed != nullptr && seed->has_incumbent &&
        pre.reduce_point(seed->values, &vals,
                         options.feasibility_tolerance)) {
      red_seed = Solution::incumbent_from_heuristic(red, std::move(vals));
      sp = &red_seed;
    }
    sol = solve_raw(red, options, sp);
  }
  pre.postsolve(model, sol);
  return sol;
}

}  // namespace

Solution solve(const Model& model, SolverOptions options,
               const Solution* seed) {
  // Span annotations are written after the solve and never read back, so
  // tracing cannot perturb the solver path (see src/obs/trace.hpp).
  obs::Span span("milp.solve");
  Solution sol = solve_impl(model, options, seed);
  span.arg("status", static_cast<int>(sol.status));
  span.arg("simplex_iterations", sol.simplex_iterations);
  span.arg("nodes_explored", sol.nodes_explored);
  span.arg("warm_started_nodes", sol.warm_started_nodes);
  span.arg("refactorizations", sol.refactorizations);
  span.arg("ft_updates", sol.ft_updates);
  span.arg("presolve_rows_removed", sol.presolve_rows_removed);
  span.arg("presolve_cols_removed", sol.presolve_cols_removed);
  span.arg("solve_seconds", sol.solve_seconds);
  return sol;
}

}  // namespace ww::milp
