// Mixed-integer linear program model builder.
//
// This replaces the paper's PuLP/GLPK dependency: WaterWise's Decision
// Controller (Eq. 8-13) builds its program through this API and solves it
// with ww::milp::solve().  Convention: minimize c^T x subject to row
// constraints and variable bounds; integrality per variable.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace ww::milp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType { Continuous, Binary, Integer };
enum class Sense { LessEqual, GreaterEqual, Equal };

/// One nonzero of a constraint row.
struct Term {
  int var = -1;
  double coeff = 0.0;
};

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  VarType type = VarType::Continuous;
  double objective = 0.0;
};

struct Constraint {
  std::string name;
  std::vector<Term> terms;
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
};

class Model {
 public:
  /// Returns the new variable's index.  Binary forces bounds to [0, 1].
  /// Names are optional debug metadata: the unnamed overloads store an
  /// empty string (no heap traffic on the model-build hot path) and
  /// variable_name()/constraint_name() synthesize an "x<i>"/"c<i>" label
  /// on demand for printing and error messages.
  int add_variable(std::string name, double lower, double upper,
                   VarType type = VarType::Continuous, double objective = 0.0);
  int add_variable(double lower, double upper,
                   VarType type = VarType::Continuous, double objective = 0.0) {
    return add_variable(std::string(), lower, upper, type, objective);
  }
  int add_continuous(std::string name, double lower, double upper,
                     double objective = 0.0);
  int add_continuous(double lower, double upper, double objective = 0.0) {
    return add_continuous(std::string(), lower, upper, objective);
  }
  int add_binary(std::string name, double objective = 0.0);
  int add_binary(double objective = 0.0) {
    return add_binary(std::string(), objective);
  }

  /// Pre-sizes the variable/constraint vectors so chunked model builds
  /// (thousands of columns per scheduling window) do not reallocate.
  void reserve(int variables, int constraints);

  void set_objective_coefficient(int var, double coeff);
  /// Adds `delta` to the variable's current objective coefficient.
  void add_objective_coefficient(int var, double delta);
  /// Tightens/replaces a variable's bounds (e.g. fixing a binary to 0).
  void set_variable_bounds(int var, double lower, double upper);

  /// Returns the new constraint's index.  Duplicate variables within `terms`
  /// are merged.
  int add_constraint(std::string name, std::vector<Term> terms, Sense sense,
                     double rhs);
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs) {
    return add_constraint(std::string(), std::move(terms), sense, rhs);
  }

  [[nodiscard]] int num_variables() const noexcept {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int num_constraints() const noexcept {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Variable& variable(int i) const {
    return variables_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const Constraint& constraint(int i) const {
    return constraints_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const std::vector<Variable>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// Stored name, or a synthesized "x<i>" / "c<i>" label when the entity
  /// was added through an unnamed overload.
  [[nodiscard]] std::string variable_name(int i) const;
  [[nodiscard]] std::string constraint_name(int i) const;

  [[nodiscard]] bool has_integer_variables() const noexcept;

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Max constraint/bound violation of an assignment; 0 means feasible.
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace ww::milp
