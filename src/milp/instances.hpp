// Shared MILP instance generators for stress tests and benchmarks.
//
// These builders produce the model families the solver is hardened
// against; tests and benches must exercise the *same* instances, so the
// generators live here rather than being copied into each harness.
#pragma once

#include <vector>

#include "milp/model.hpp"
#include "util/rng.hpp"

namespace ww::milp {

/// Weak-relaxation soft-penalty model (the WaterWise pathology of Alg. 1's
/// softened delay rows): per-job assignment binaries with random remote
/// penalties absorbed by a cheap continuous excess variable.  The LP
/// relaxation is fractional nearly everywhere, so branch-and-bound builds a
/// deep tree — the workload the warm-start path exists to accelerate.
inline Model weak_relaxation_model(int jobs, int regions, double cap,
                                   std::uint64_t seed = 5) {
  util::Rng rng(seed);
  Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.2, 1.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), Sense::Equal, 1.0);
    std::vector<Term> d;
    for (int r = 1; r < regions; ++r)
      d.push_back({x[static_cast<std::size_t>(j * regions + r)],
                   rng.uniform(50.0, 400.0)});
    const int p = m.add_continuous("p", 0.0, kInfinity, 0.5);
    d.push_back({p, -1.0});
    (void)m.add_constraint("soft", std::move(d), Sense::LessEqual, 20.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("c", std::move(t), Sense::LessEqual, cap);
  }
  return m;
}

}  // namespace ww::milp
