// Shared MILP instance generators for stress tests and benchmarks.
//
// These builders produce the model families the solver is hardened
// against; tests and benches must exercise the *same* instances, so the
// generators live here rather than being copied into each harness.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "milp/model.hpp"
#include "util/rng.hpp"

namespace ww::milp {

/// WaterWise-shaped assignment MILP: jobs x regions binaries, per-job
/// assignment rows, per-region capacity rows, and summed-latency delay
/// rows.  The 200x5 instance is 405 rows — the scale the sparse-kernel
/// speedup bars are measured at.
inline Model waterwise_shaped_model(int jobs, int regions,
                                    std::uint64_t seed = 42) {
  util::Rng rng(seed);
  Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.1, 2.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(
        "c", std::move(t), Sense::LessEqual,
        std::ceil(jobs / static_cast<double>(regions)) + 1.0);
  }
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 1; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)],
                   rng.uniform(1.0, 20.0)});
    (void)m.add_constraint("d", std::move(t), Sense::LessEqual, 25.0);
  }
  return m;
}

/// The scheduler's *hard* chunk model as WaterWiseScheduler::run_model
/// actually emits it: assignment + capacity rows only, with the Eq. 11
/// delay constraint expressed as explicit x_mn = 0 bound fixings
/// (`fixed_fraction` of the remote pairs).  This is the shape presolve
/// feeds on — fixed columns substitute out and capacity rows go redundant.
/// The home region (r = 0) is never fixed, so the model stays feasible.
inline Model hard_chunk_model(int jobs, int regions, double fixed_fraction,
                              std::uint64_t seed = 11) {
  util::Rng rng(seed);
  Model m;
  m.reserve(jobs * regions, jobs + regions);
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.1, 2.0));
  for (int j = 0; j < jobs; ++j)
    for (int r = 1; r < regions; ++r)
      if (rng.bernoulli(fixed_fraction))
        m.set_variable_bounds(x[static_cast<std::size_t>(j * regions + r)],
                              0.0, 0.0);
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(
        "c", std::move(t), Sense::LessEqual,
        std::ceil(jobs / static_cast<double>(regions)) + 1.0);
  }
  return m;
}

/// The scheduler's *soft* chunk model (Eq. 12-13) at selectable scale: one
/// penalty variable and one exceedance row per (job, remote region) pair
/// whose latency overruns the allowance, exactly as run_model emits it.
/// At 400 jobs x 10 regions this is a several-thousand-row program — the
/// soft-model pathology at paper scale.
inline Model soft_chunk_model(int jobs, int regions, std::uint64_t seed = 13) {
  util::Rng rng(seed);
  Model m;
  m.reserve(2 * jobs * regions, jobs + regions + jobs * regions);
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.1, 2.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(
        "c", std::move(t), Sense::LessEqual,
        std::ceil(jobs / static_cast<double>(regions)) + 1.0);
  }
  for (int j = 0; j < jobs; ++j) {
    const double allowance = rng.uniform(0.0, 10.0);
    for (int r = 1; r < regions; ++r) {
      const double exceedance = rng.uniform(1.0, 20.0) - allowance;
      if (exceedance <= 0.0) continue;
      const int p = m.add_continuous("p", 0.0, kInfinity, 0.5);
      (void)m.add_constraint(
          "soft",
          {{x[static_cast<std::size_t>(j * regions + r)], exceedance},
           {p, -1.0}},
          Sense::LessEqual, 0.0);
    }
  }
  return m;
}

/// Weak-relaxation soft-penalty model (the WaterWise pathology of Alg. 1's
/// softened delay rows): per-job assignment binaries with random remote
/// penalties absorbed by a cheap continuous excess variable.  The LP
/// relaxation is fractional nearly everywhere, so branch-and-bound builds a
/// deep tree — the workload the warm-start path exists to accelerate.
inline Model weak_relaxation_model(int jobs, int regions, double cap,
                                   std::uint64_t seed = 5) {
  util::Rng rng(seed);
  Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.2, 1.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), Sense::Equal, 1.0);
    std::vector<Term> d;
    for (int r = 1; r < regions; ++r)
      d.push_back({x[static_cast<std::size_t>(j * regions + r)],
                   rng.uniform(50.0, 400.0)});
    const int p = m.add_continuous("p", 0.0, kInfinity, 0.5);
    d.push_back({p, -1.0});
    (void)m.add_constraint("soft", std::move(d), Sense::LessEqual, 20.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("c", std::move(t), Sense::LessEqual, cap);
  }
  return m;
}

}  // namespace ww::milp
