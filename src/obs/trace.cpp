#include "obs/trace.hpp"

#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/timer.hpp"

namespace ww::obs {

namespace {

/// Per-thread event cap: a fig13-scale campaign with full span coverage
/// stays well under this; anything beyond is a runaway and gets counted
/// into `dropped_events()` instead of eating memory.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

void write_double(std::ostream& out, double v) {
  std::ostringstream buf;
  buf.precision(std::numeric_limits<double>::max_digits10);
  buf << v;
  out << buf.str();
}

}  // namespace

Trace& Trace::instance() {
  static Trace trace;
  return trace;
}

std::atomic<bool>& Trace::enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

void Trace::set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void Trace::configure_from_env() {
  const char* v = std::getenv("WW_TRACE");
  if (v == nullptr) return;
  const std::string s(v);
  if (s.empty() || s == "0" || s == "off" || s == "OFF" || s == "false")
    return;
  if (!(s == "1" || s == "on" || s == "ON" || s == "true"))
    set_output_path(s);
  set_enabled(true);
}

void Trace::set_output_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
}

std::string Trace::output_path() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

std::string Trace::metrics_path() const {
  std::string p = output_path();
  const std::string suffix = ".json";
  if (p.size() >= suffix.size() &&
      p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0)
    p.erase(p.size() - suffix.size());
  return p + ".metrics.json";
}

Trace::Buffer& Trace::local_buffer() {
  // One buffer per thread, registered on first use and never deallocated
  // (clear() empties contents but keeps the object), so this cached
  // pointer stays valid for the thread's lifetime.  Tids are assigned in
  // registration order: stable across identical runs of a serial program,
  // and stable enough under the pool (threads register in task order).
  static thread_local Buffer* cached = nullptr;
  if (cached != nullptr) return *cached;
  const std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  buffers_.back()->tid = static_cast<int>(buffers_.size() - 1);
  cached = buffers_.back().get();
  return *cached;
}

void Trace::append(TraceEvent ev) {
  Buffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(std::move(ev));
}

void Trace::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

std::size_t Trace::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::size_t Trace::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->dropped;
  }
  return n;
}

std::size_t Trace::thread_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

void Trace::write_chrome_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Normalize timestamps to the earliest buffered event so traces start
  // near t=0 regardless of process uptime.
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    if (!buf->events.empty() && buf->events.front().ts_us < t0)
      t0 = buf->events.front().ts_us;
  }
  if (t0 == std::numeric_limits<std::int64_t>::max()) t0 = 0;

  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const TraceEvent& ev : buf->events) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\": \"" << ev.name << "\", \"ph\": \"" << ev.phase
          << "\", \"ts\": " << (ev.ts_us - t0)
          << ", \"pid\": 1, \"tid\": " << buf->tid;
      if (!ev.args.empty()) {
        out << ", \"args\": {";
        for (std::size_t i = 0; i < ev.args.size(); ++i) {
          const TraceArg& a = ev.args[i];
          if (i != 0) out << ", ";
          out << '"' << a.key << "\": ";
          if (a.is_int) {
            out << a.int_value;
          } else {
            write_double(out, a.double_value);
          }
        }
        out << '}';
      }
      out << '}';
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

std::string Trace::to_chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

Span::Span(const char* name) : name_(name) {
  if (!Trace::enabled()) return;  // Disabled path: one relaxed load.
  active_ = true;
  TraceEvent ev;
  ev.name = name_;
  ev.phase = 'B';
  ev.ts_us = util::monotonic_micros();
  Trace::instance().append(std::move(ev));
}

Span::~Span() {
  if (!active_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.phase = 'E';
  ev.ts_us = util::monotonic_micros();
  ev.args = std::move(args_);
  Trace::instance().append(std::move(ev));
}

void Span::arg(const char* key, std::int64_t value) {
  if (!active_) return;
  TraceArg a;
  a.key = key;
  a.is_int = true;
  a.int_value = value;
  args_.push_back(a);
}

void Span::arg(const char* key, double value) {
  if (!active_) return;
  TraceArg a;
  a.key = key;
  a.is_int = false;
  a.double_value = value;
  args_.push_back(a);
}

}  // namespace ww::obs
