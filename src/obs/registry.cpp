#include "obs/registry.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ww::obs {

namespace {

/// Round-trip double formatting so exported metrics re-parse exactly;
/// integral values print without an exponent for readability.
void write_double(std::ostream& out, double v) {
  std::ostringstream buf;
  buf.precision(std::numeric_limits<double>::max_digits10);
  buf << v;
  out << buf.str();
}

/// Metric names are code-controlled identifiers (dots, brackets, ascii), so
/// escaping only needs to cover the JSON-breaking characters.
void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void Shard::add(Counter c, std::uint64_t delta) noexcept {
  if (!c.valid() || c.id >= counters_.size()) return;
  counters_[c.id] += delta;
}

void Shard::observe(Hist h, double sample) noexcept {
  if (!h.valid() || h.id >= hists_.size()) return;
  hists_[h.id].add(sample);
}

Counter Registry::counter(const std::string& name) {
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return Counter{it->second};
  const std::size_t id = counters_.size();
  counters_.push_back(0);
  counter_ids_.emplace(name, id);
  return Counter{id};
}

Gauge Registry::gauge(const std::string& name) {
  const auto it = gauge_ids_.find(name);
  if (it != gauge_ids_.end()) return Gauge{it->second};
  const std::size_t id = gauges_.size();
  gauges_.push_back(0.0);
  gauge_ids_.emplace(name, id);
  return Gauge{id};
}

Hist Registry::histogram(const std::string& name, double lo, double hi,
                         std::size_t bins) {
  const auto it = hist_ids_.find(name);
  if (it != hist_ids_.end()) {
    const util::Histogram& h = hists_[it->second];
    if (h.lo() != lo || h.hi() != hi || h.bins() != bins)
      throw std::invalid_argument(
          "Registry::histogram: '" + name +
          "' re-registered with a different layout");
    return Hist{it->second};
  }
  const std::size_t id = hists_.size();
  hists_.emplace_back(lo, hi, bins);
  hist_ids_.emplace(name, id);
  return Hist{id};
}

void Registry::add(Counter c, std::uint64_t delta) noexcept {
  if (!c.valid() || c.id >= counters_.size()) return;
  counters_[c.id] += delta;
}

void Registry::add(Gauge g, double delta) noexcept {
  if (!g.valid() || g.id >= gauges_.size()) return;
  gauges_[g.id] += delta;
}

void Registry::set(Gauge g, double value) noexcept {
  if (!g.valid() || g.id >= gauges_.size()) return;
  gauges_[g.id] = value;
}

void Registry::observe(Hist h, double sample) noexcept {
  if (!h.valid() || h.id >= hists_.size()) return;
  hists_[h.id].add(sample);
}

std::uint64_t Registry::counter_value(Counter c) const {
  return counters_.at(c.id);
}

double Registry::gauge_value(Gauge g) const { return gauges_.at(g.id); }

const util::Histogram& Registry::hist(Hist h) const { return hists_.at(h.id); }

const std::uint64_t* Registry::find_counter(const std::string& name) const {
  const auto it = counter_ids_.find(name);
  return it == counter_ids_.end() ? nullptr : &counters_[it->second];
}

const util::Histogram* Registry::find_hist(const std::string& name) const {
  const auto it = hist_ids_.find(name);
  return it == hist_ids_.end() ? nullptr : &hists_[it->second];
}

Shard Registry::make_shard() const {
  Shard shard;
  shard.counters_.assign(counters_.size(), 0);
  shard.hists_.reserve(hists_.size());
  for (const util::Histogram& h : hists_)
    shard.hists_.emplace_back(h.lo(), h.hi(), h.bins());
  return shard;
}

void Registry::merge_shard(const Shard& shard) {
  // A shard minted before later registrations is shorter than the registry;
  // the missing tail slots simply contribute nothing.
  const std::size_t nc = std::min(shard.counters_.size(), counters_.size());
  for (std::size_t i = 0; i < nc; ++i) counters_[i] += shard.counters_[i];
  const std::size_t nh = std::min(shard.hists_.size(), hists_.size());
  for (std::size_t i = 0; i < nh; ++i) hists_[i].merge(shard.hists_[i]);
}

void Registry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, id] : counter_ids_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << counters_[id];
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, id] : gauge_ids_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": ";
    write_double(out, gauges_[id]);
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, id] : hist_ids_) {
    const util::Histogram& h = hists_[id];
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": {\"lo\": ";
    write_double(out, h.lo());
    out << ", \"hi\": ";
    write_double(out, h.hi());
    out << ", \"total\": " << h.total() << ", \"dropped\": " << h.dropped();
    out << ", \"p50\": ";
    write_double(out, h.quantile(0.50));
    out << ", \"p95\": ";
    write_double(out, h.quantile(0.95));
    out << ", \"p99\": ";
    write_double(out, h.quantile(0.99));
    out << ", \"counts\": [";
    for (std::size_t i = 0; i < h.bins(); ++i) {
      if (i != 0) out << ", ";
      out << h.bin_count(i);
    }
    out << "]}";
  }
  out << (first ? "}\n" : "\n  }\n") << "}\n";
}

std::string Registry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void Registry::reset_values() noexcept {
  for (auto& c : counters_) c = 0;
  for (auto& g : gauges_) g = 0.0;
  for (auto& h : hists_) h = util::Histogram(h.lo(), h.hi(), h.bins());
}

}  // namespace ww::obs
