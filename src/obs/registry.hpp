// Deterministic metrics registry: named counters, gauges, and
// quantile-capable histograms behind typed handles.
//
// Determinism contract (the reason this exists instead of a third-party
// metrics client): every exported artifact is reproducible given the same
// inputs.  Registration order defines handle ids; JSON export iterates
// name-ordered; thread-sharded accumulation happens in `Shard` objects that
// the *caller* folds back in a deterministic order (the scheduler commits
// chunk shards in chunk-index order, never completion order).  The registry
// itself is single-writer: registration and mutation happen on the owning
// thread, worker threads only ever touch their own Shard.
//
// Wall-clock derived samples (decision latency) are observational — they
// may differ run to run and are exported for humans, while counters and
// sim-time histograms (queue depth, time-to-admission) are byte-stable and
// safe to assert on in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ww::obs {

/// Typed handles: cheap value types resolved once at registration so hot
/// paths never do string lookups.  Default-constructed handles are invalid
/// and ignored by mutators (so optional instrumentation can stay unwired).
struct Counter {
  std::size_t id = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const noexcept {
    return id != static_cast<std::size_t>(-1);
  }
};
struct Gauge {
  std::size_t id = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const noexcept {
    return id != static_cast<std::size_t>(-1);
  }
};
struct Hist {
  std::size_t id = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const noexcept {
    return id != static_cast<std::size_t>(-1);
  }
};

class Registry;

/// Thread-local accumulation slice with the same counter/histogram layout
/// as the registry that minted it (`Registry::make_shard`).  A worker fills
/// its shard in isolation; the owner folds shards back with `merge_shard`
/// in a deterministic order.  Default-constructed shards are empty and
/// merge as no-ops, so carrying one in a result struct costs nothing when
/// unused.  Gauges are deliberately absent: a "last write wins" cell has no
/// order-independent merge.
class Shard {
 public:
  Shard() = default;

  void add(Counter c, std::uint64_t delta = 1) noexcept;
  void observe(Hist h, double sample) noexcept;

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && hists_.empty();
  }

 private:
  friend class Registry;
  std::vector<std::uint64_t> counters_;
  std::vector<util::Histogram> hists_;
};

class Registry {
 public:
  /// Register-or-lookup by name.  Re-registering an existing name returns
  /// the same handle; a histogram re-registered with a different layout
  /// throws (two call sites disagreeing on bins is a bug, not a merge).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Hist histogram(const std::string& name, double lo, double hi,
                 std::size_t bins);

  void add(Counter c, std::uint64_t delta = 1) noexcept;
  void add(Gauge g, double delta) noexcept;
  void set(Gauge g, double value) noexcept;
  void observe(Hist h, double sample) noexcept;

  [[nodiscard]] std::uint64_t counter_value(Counter c) const;
  [[nodiscard]] double gauge_value(Gauge g) const;
  [[nodiscard]] const util::Histogram& hist(Hist h) const;

  /// Const lookups by name for consumers without handles (bench printers,
  /// tests); nullptr when the name was never registered.
  [[nodiscard]] const std::uint64_t* find_counter(
      const std::string& name) const;
  [[nodiscard]] const util::Histogram* find_hist(const std::string& name) const;

  /// Empty shard whose slots mirror every counter/histogram registered so
  /// far (histograms copy their layout with zeroed bins).
  [[nodiscard]] Shard make_shard() const;
  /// Folds a shard's counts into the registry.  Commutative and
  /// associative, so any *fixed* fold order gives identical bytes; callers
  /// supply that order (chunk index, scenario index).
  void merge_shard(const Shard& shard);

  /// Name-ordered JSON: counters and gauges as flat maps, histograms with
  /// layout, totals, p50/p95/p99 (util::Histogram::quantile), and bin
  /// counts.  Deterministic given deterministic values.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

  /// Zeroes all values; names and handles stay registered.
  void reset_values() noexcept;

 private:
  std::map<std::string, std::size_t> counter_ids_;
  std::map<std::string, std::size_t> gauge_ids_;
  std::map<std::string, std::size_t> hist_ids_;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<util::Histogram> hists_;
};

}  // namespace ww::obs
