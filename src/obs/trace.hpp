// Span tracing with Chrome trace-event JSON export.
//
// `obs::Span` is a scoped RAII marker: construction appends a 'B' (begin)
// event to the calling thread's buffer, destruction appends the matching
// 'E' (end) event carrying any `arg()` annotations.  Buffers are
// per-thread (registered once, stable tids in registration order, each
// guarded by its own uncontended mutex), so appends never serialize
// against other threads and per-thread timestamp order is monotone by
// construction.
//
// Determinism contract: tracing is *observational*.  Timestamps come from
// util::monotonic_micros() and are write-only — no scheduling decision may
// read them — so decision streams are byte-identical with tracing on or
// off (tests/core_scheduler_parallel_test.cpp enforces this).  When
// tracing is disabled (the default) a Span constructor is a single relaxed
// atomic load and an early return.
//
// Export is the Chrome trace-event JSON array format: load the file in
// chrome://tracing or https://ui.perfetto.dev.  Gating: WW_TRACE env
// (Trace::configure_from_env), `--trace-out` on tools/waterwise_sim, or
// WaterWiseConfig::trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ww::obs {

/// One key/value annotation on a span.  Keys and span names must be
/// string literals (or otherwise outlive the Trace singleton): events
/// store the pointer, not a copy, to keep the hot path allocation-light.
struct TraceArg {
  const char* key = nullptr;
  bool is_int = true;
  std::int64_t int_value = 0;
  double double_value = 0.0;
};

struct TraceEvent {
  const char* name = nullptr;
  char phase = 'B';  ///< 'B' or 'E' (Chrome trace duration events).
  std::int64_t ts_us = 0;
  std::vector<TraceArg> args;
};

class Trace {
 public:
  static Trace& instance();

  [[nodiscard]] static bool enabled() noexcept {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept;

  /// WW_TRACE unset/""/"0"/"off" leaves tracing disabled; "1"/"on" enables
  /// with the default output path ("ww_trace.json"); any other value
  /// enables and is taken as the output path.  Reads the environment on
  /// every call (benches invoke it once at startup).
  void configure_from_env();

  void set_output_path(std::string path);
  [[nodiscard]] std::string output_path() const;
  /// Companion metrics dump path: output path with the trailing ".json"
  /// (if any) replaced by ".metrics.json".
  [[nodiscard]] std::string metrics_path() const;

  /// Appends to the calling thread's buffer; drops (and counts) once the
  /// per-thread cap is hit so a runaway trace cannot exhaust memory.
  void append(TraceEvent ev);

  /// Drops all buffered events and drop counts.  Buffers stay registered
  /// (thread_local pointers into them must remain valid), tids are stable.
  void clear();

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t dropped_events() const;
  [[nodiscard]] std::size_t thread_count() const;

  /// Chrome trace-event JSON: {"traceEvents": [...]} with ts normalized to
  /// the earliest buffered event.  Buffers emit in tid order, events in
  /// append order (monotone per tid).
  void write_chrome_json(std::ostream& out) const;
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  struct Buffer {
    mutable std::mutex mu;
    int tid = 0;
    std::vector<TraceEvent> events;
    std::size_t dropped = 0;
  };

  Trace() = default;
  static std::atomic<bool>& enabled_flag() noexcept;
  Buffer& local_buffer();

  mutable std::mutex mu_;  ///< Guards buffers_ growth and path config.
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::string path_ = "ww_trace.json";
};

class Span {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

  /// Annotations surface in the trace viewer on the span's end event.
  /// No-ops when tracing was disabled at construction.
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, double value);
  void arg(const char* key, int value) {
    arg(key, static_cast<std::int64_t>(value));
  }
  void arg(const char* key, std::size_t value) {
    arg(key, static_cast<std::int64_t>(value));
  }

  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  const char* name_;
  bool active_ = false;
  std::vector<TraceArg> args_;
};

}  // namespace ww::obs
