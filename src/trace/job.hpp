// Job record: what a trace entry carries into the simulator.
#pragma once

#include <cstdint>

namespace ww::trace {

struct Job {
  std::uint64_t id = 0;
  double submit_time = 0.0;    ///< Seconds since campaign start.
  int home_region = 0;         ///< Region where the user submitted the job.
  int benchmark = 0;           ///< Index into the benchmark-profile table.
  double exec_seconds = 0.0;   ///< True execution time (hardware-uniform
                               ///< across regions, per the paper).
  double avg_power_watts = 0.0;///< True average power draw while running.
  double package_bytes = 0.0;  ///< .tar size moved on cross-region transfer.

  /// True IT energy of the job, kWh.
  [[nodiscard]] double energy_kwh() const noexcept {
    return avg_power_watts * exec_seconds / 3.6e6;
  }
};

}  // namespace ww::trace
