#include "trace/arrival.hpp"

#include <algorithm>
#include <cmath>

namespace ww::trace {

double diurnal_factor(DiurnalShape shape, double swing, double peak_hour,
                      double t_seconds) {
  const double hour = std::fmod(t_seconds / 3600.0, 24.0);
  switch (shape) {
    case DiurnalShape::Flat:
      return 1.0;
    case DiurnalShape::SinglePeak:
      return 1.0 + swing * std::cos(2.0 * M_PI * (hour - peak_hour) / 24.0);
    case DiurnalShape::DoublePeak: {
      // Two peaks 10 hours apart; mean of the cosine pair is zero.
      const double a = std::cos(2.0 * M_PI * (hour - peak_hour) / 24.0);
      const double b = std::cos(2.0 * M_PI * (hour - (peak_hour - 10.0)) / 24.0);
      return 1.0 + 0.5 * swing * (a + b);
    }
  }
  return 1.0;
}

std::vector<double> generate_arrivals(const ArrivalConfig& config,
                                      double horizon_seconds, util::Rng rng) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(
      std::max(16.0, config.base_rate_per_s * horizon_seconds * 1.1)));

  // Upper bound on the instantaneous rate, for thinning.
  const double rate_max = config.base_rate_per_s *
                          (1.0 + config.diurnal_swing) *
                          std::max(config.burst_rate_multiplier, 1.0);

  // MMPP state evolves on its own exponential clock.
  bool bursting = false;
  double state_until = rng.exponential(1.0 / config.mean_calm_seconds);

  double t = 0.0;
  for (;;) {
    t += rng.exponential(rate_max);
    if (t >= horizon_seconds) break;
    while (t > state_until) {
      bursting = !bursting;
      state_until += rng.exponential(
          1.0 / (bursting ? config.mean_burst_seconds : config.mean_calm_seconds));
    }
    const double mult =
        bursting ? config.burst_rate_multiplier : config.calm_rate_multiplier;
    const double rate = config.base_rate_per_s * mult *
                        diurnal_factor(config.shape, config.diurnal_swing,
                                       config.peak_hour, t);
    if (rng.uniform() * rate_max < rate) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace ww::trace
