#include "trace/benchmark_profile.hpp"

#include <cmath>
#include <stdexcept>

namespace ww::trace {

const std::vector<BenchmarkProfile>& benchmark_profiles() {
  static const std::vector<BenchmarkProfile> profiles = {
      // PARSEC-3.0 (Table 1).
      {"Dedup", "PARSEC", "Data Compression", 60.0, 0.12, 310.0, 0.08, 350.0},
      {"Netdedup", "PARSEC", "Data Compression", 75.0, 0.12, 320.0, 0.08, 380.0},
      {"Canneal", "PARSEC", "Engineering", 140.0, 0.15, 340.0, 0.08, 480.0},
      {"Blackscholes", "PARSEC", "Financial Analysis", 45.0, 0.1, 290.0, 0.07, 160.0},
      {"Swaptions", "PARSEC", "Financial Analysis", 55.0, 0.1, 300.0, 0.07, 170.0},
      // CloudSuite (Table 1).
      {"DataCaching", "CloudSuite", "Data Caching", 120.0, 0.16, 280.0, 0.10, 700.0},
      {"GraphAnalytics", "CloudSuite", "Graph Analytics", 220.0, 0.18, 360.0, 0.10, 900.0},
      {"WebServing", "CloudSuite", "Web Serving", 90.0, 0.14, 270.0, 0.09, 650.0},
      {"MemoryAnalytics", "CloudSuite", "Memory Analytics", 160.0, 0.16, 350.0, 0.09, 800.0},
      {"MediaStreaming", "CloudSuite", "Media Streaming", 110.0, 0.14, 300.0, 0.09, 1000.0},
  };
  return profiles;
}

const BenchmarkProfile& profile(int benchmark) {
  const auto& all = benchmark_profiles();
  if (benchmark < 0 || static_cast<std::size_t>(benchmark) >= all.size())
    throw std::out_of_range("unknown benchmark index");
  return all[static_cast<std::size_t>(benchmark)];
}

int num_benchmarks() {
  return static_cast<int>(benchmark_profiles().size());
}

void sample_instance(int benchmark, util::Rng& rng, Job& out) {
  const BenchmarkProfile& p = profile(benchmark);
  out.benchmark = benchmark;
  // Log-normal with the profile's mean and CV:
  //   sigma^2 = ln(1 + cv^2),  mu = ln(mean) - sigma^2 / 2.
  const double s2e = std::log(1.0 + p.exec_cv * p.exec_cv);
  out.exec_seconds =
      rng.lognormal(std::log(p.mean_exec_s) - 0.5 * s2e, std::sqrt(s2e));
  const double s2p = std::log(1.0 + p.power_cv * p.power_cv);
  out.avg_power_watts =
      rng.lognormal(std::log(p.mean_power_w) - 0.5 * s2p, std::sqrt(s2p));
  // Package size varies mildly with input set.
  out.package_bytes = p.package_mb * 1.0e6 * rng.uniform(0.85, 1.15);
}

double mean_exec_seconds_overall() {
  double total = 0.0;
  for (const auto& p : benchmark_profiles()) total += p.mean_exec_s;
  return total / static_cast<double>(benchmark_profiles().size());
}

}  // namespace ww::trace
