// Workload profiles for the ten benchmarks of Table 1.
//
// The paper profiles PARSEC-3.0 and CloudSuite applications on m5.metal
// (Likwid/RAPL energy, wall-clock time) and feeds the *mean* estimates to the
// scheduler while actual per-invocation behaviour varies.  We encode each
// benchmark as mean execution time / mean power with log-normal dispersion;
// individual job instances are sampled from these distributions, so the
// scheduler's estimates are naturally inaccurate — exactly the situation
// Sec. 4 describes.
#pragma once

#include <string>
#include <vector>

#include "trace/job.hpp"
#include "util/rng.hpp"

namespace ww::trace {

struct BenchmarkProfile {
  std::string name;
  std::string suite;    ///< "PARSEC" or "CloudSuite".
  std::string domain;   ///< Scientific domain per Table 1.
  double mean_exec_s = 60.0;
  double exec_cv = 0.3;       ///< Coefficient of variation (log-normal).
  double mean_power_w = 300.0;
  double power_cv = 0.08;
  double package_mb = 200.0;  ///< Execution-files .tar size.
};

/// The ten benchmarks of Table 1 (five PARSEC, five CloudSuite), with means
/// calibrated so the Borg-rate campaign lands at ~15% cluster utilization.
[[nodiscard]] const std::vector<BenchmarkProfile>& benchmark_profiles();

[[nodiscard]] const BenchmarkProfile& profile(int benchmark);
[[nodiscard]] int num_benchmarks();

/// Samples a concrete job instance of `benchmark` (exec time, power, package
/// size) from the profile distributions.
void sample_instance(int benchmark, util::Rng& rng, Job& out);

/// Mean execution time across benchmarks weighted uniformly; used to size
/// utilization targets.
[[nodiscard]] double mean_exec_seconds_overall();

}  // namespace ww::trace
