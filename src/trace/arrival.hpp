// Arrival-process library: diurnal envelopes and Markov-modulated Poisson
// burst structure, the two features of production cluster traces (Google
// Borg, Alibaba) that stress batch scheduling.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace ww::trace {

/// Diurnal modulation shapes.
enum class DiurnalShape {
  Flat,        ///< No time-of-day structure.
  SinglePeak,  ///< One broad daytime peak (Borg-like).
  DoublePeak,  ///< Morning + evening peaks (Alibaba-like).
};

struct ArrivalConfig {
  double base_rate_per_s = 0.27;  ///< Long-run mean arrival rate.
  DiurnalShape shape = DiurnalShape::SinglePeak;
  double diurnal_swing = 0.45;    ///< Relative amplitude of the envelope.
  double peak_hour = 14.0;        ///< Local hour of the (first) peak.

  // Two-state MMPP burst modulation.
  double burst_rate_multiplier = 2.2;  ///< Rate multiplier in the burst state.
  double calm_rate_multiplier = 0.65;  ///< Rate multiplier in the calm state.
  double mean_burst_seconds = 1800.0;  ///< Mean burst-state sojourn.
  double mean_calm_seconds = 5400.0;   ///< Mean calm-state sojourn.
};

/// Deterministic arrival-time sequence over [0, horizon_seconds).
///
/// Implemented by thinning a homogeneous Poisson process against the
/// time-varying rate, which keeps the sequence exact for any envelope.
[[nodiscard]] std::vector<double> generate_arrivals(const ArrivalConfig& config,
                                                    double horizon_seconds,
                                                    util::Rng rng);

/// The instantaneous diurnal envelope factor at time t (mean ~1 over a day).
[[nodiscard]] double diurnal_factor(DiurnalShape shape, double swing,
                                    double peak_hour, double t_seconds);

}  // namespace ww::trace
