#include "trace/generator.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"

namespace ww::trace {

TraceConfig borg_config(std::uint64_t seed, double days) {
  TraceConfig c;
  c.seed = seed;
  c.days = days;
  // 230,000 jobs over 10 days ~= 0.2662 jobs/s.
  c.arrival.base_rate_per_s = 230000.0 / (10.0 * 86400.0);
  c.arrival.shape = DiurnalShape::SinglePeak;
  c.arrival.diurnal_swing = 0.45;
  c.arrival.peak_hour = 14.0;
  c.arrival.burst_rate_multiplier = 2.2;
  c.arrival.calm_rate_multiplier = 0.65;
  // Submission skews toward the large-population regions.
  c.region_weights = {0.15, 0.18, 0.30, 0.15, 0.22};
  return c;
}

TraceConfig alibaba_config(std::uint64_t seed, double days) {
  TraceConfig c;
  c.seed = seed;
  c.days = days;
  c.arrival.base_rate_per_s = 8.5 * 230000.0 / (10.0 * 86400.0);
  c.arrival.shape = DiurnalShape::DoublePeak;
  c.arrival.diurnal_swing = 0.6;
  c.arrival.peak_hour = 20.0;  // evening peak (Asia-centric usage)
  c.arrival.burst_rate_multiplier = 3.0;
  c.arrival.calm_rate_multiplier = 0.55;
  c.arrival.mean_burst_seconds = 900.0;
  c.arrival.mean_calm_seconds = 3600.0;
  // Short-lived VM-style invocations keep utilization comparable despite the
  // 8.5x request rate.
  c.exec_scale = 1.0 / 8.5;
  c.region_weights = {0.10, 0.12, 0.18, 0.10, 0.50};
  return c;
}

std::vector<Job> generate_trace(const TraceConfig& config) {
  if (config.num_regions <= 0)
    throw std::invalid_argument("generate_trace: need at least one region");
  util::Rng root(config.seed);

  ArrivalConfig arrival = config.arrival;
  arrival.base_rate_per_s *= config.rate_multiplier;
  const double horizon = config.days * 86400.0;
  const std::vector<double> times =
      generate_arrivals(arrival, horizon, root.child("arrivals"));

  std::vector<double> weights = config.region_weights;
  if (weights.empty())
    weights.assign(static_cast<std::size_t>(config.num_regions), 1.0);
  if (static_cast<int>(weights.size()) != config.num_regions)
    throw std::invalid_argument(
        "generate_trace: region_weights size must match num_regions");

  util::Rng rng = root.child("jobs");
  std::vector<Job> jobs;
  jobs.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    Job j;
    j.id = static_cast<std::uint64_t>(i);
    j.submit_time = times[i];
    j.home_region = static_cast<int>(rng.weighted_index(weights));
    const int bench =
        static_cast<int>(rng.uniform_int(0, num_benchmarks() - 1));
    sample_instance(bench, rng, j);
    j.exec_seconds *= config.exec_scale;
    jobs.push_back(j);
  }
  return jobs;  // arrival thinning emits times in increasing order
}

void write_trace_csv(std::ostream& out, const std::vector<Job>& jobs) {
  util::CsvWriter w(out);
  w.write_row({"id", "submit_time", "home_region", "benchmark", "exec_seconds",
               "avg_power_watts", "package_bytes"});
  for (const Job& j : jobs) {
    w.write_row({std::to_string(j.id), util::format_double(j.submit_time),
                 std::to_string(j.home_region), std::to_string(j.benchmark),
                 util::format_double(j.exec_seconds),
                 util::format_double(j.avg_power_watts),
                 util::format_double(j.package_bytes)});
  }
}

std::vector<Job> read_trace_csv(std::istream& in) {
  const util::CsvReader reader(in);
  const auto& rows = reader.rows();
  if (rows.empty()) return {};
  std::vector<Job> jobs;
  jobs.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& r = rows[i];
    if (r.size() < 7)
      throw std::runtime_error("read_trace_csv: malformed row");
    Job j;
    j.id = std::stoull(r[0]);
    j.submit_time = std::stod(r[1]);
    j.home_region = std::stoi(r[2]);
    j.benchmark = std::stoi(r[3]);
    j.exec_seconds = std::stod(r[4]);
    j.avg_power_watts = std::stod(r[5]);
    j.package_bytes = std::stod(r[6]);
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace ww::trace
