// Production-trace synthesis: Google-Borg-like and Alibaba-like campaigns.
//
// The paper replays a 10-day window of the Google Borg trace (~230,000 jobs;
// ~0.27 jobs/s long-run rate against 175 servers => ~15% utilization) and,
// for robustness, the Alibaba VM trace, which invokes jobs 8.5x faster
// (Sec. 6 / Fig. 13).  The generators reproduce those aggregate rates, the
// diurnal + bursty arrival structure, per-region submission weights, and
// per-job workload sampling from the Table 1 benchmark profiles.
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/arrival.hpp"
#include "trace/benchmark_profile.hpp"
#include "trace/job.hpp"

namespace ww::trace {

struct TraceConfig {
  std::uint64_t seed = 7;
  double days = 10.0;
  int num_regions = 5;
  double rate_multiplier = 1.0;  ///< 2.0 = the doubled-request experiment.
  /// Per-region submission weights; empty = uniform.
  std::vector<double> region_weights;
  /// Scales sampled execution times (Alibaba jobs are short-lived VMs).
  double exec_scale = 1.0;
  ArrivalConfig arrival;
};

/// Borg-like defaults: 0.2662 jobs/s => ~230k jobs over 10 days, single
/// afternoon peak, moderate burstiness.
[[nodiscard]] TraceConfig borg_config(std::uint64_t seed = 7,
                                      double days = 10.0);

/// Alibaba-like defaults: 8.5x invocation rate, double-peaked day, burstier,
/// proportionally shorter jobs (so cluster utilization stays comparable).
[[nodiscard]] TraceConfig alibaba_config(std::uint64_t seed = 7,
                                         double days = 10.0);

/// Generates a submit-time-sorted job list.
[[nodiscard]] std::vector<Job> generate_trace(const TraceConfig& config);

/// CSV persistence (header + one row per job), for sharing traces between
/// binaries and for offline inspection.
void write_trace_csv(std::ostream& out, const std::vector<Job>& jobs);
[[nodiscard]] std::vector<Job> read_trace_csv(std::istream& in);

}  // namespace ww::trace
