// Scheduler interface between the simulator and all scheduling policies.
//
// The simulator batches pending jobs at a fixed window (the paper's Decision
// Controller cadence), presents them with the current environment state and
// capacity view, and applies the returned placement decisions.  Jobs the
// scheduler does not decide on stay pending and reappear in the next batch
// (the paper's J_delay set in Algorithm 1).
#pragma once

#include <string>
#include <vector>

#include "env/environment.hpp"
#include "footprint/footprint.hpp"
#include "trace/job.hpp"

namespace ww::dc {

/// A job awaiting placement, with the controller's (possibly inaccurate)
/// mean estimates of its execution time and energy (paper Sec. 4).
struct PendingJob {
  const trace::Job* job = nullptr;
  double first_seen = 0.0;      ///< T_start_m: when the controller got it.
  double est_exec_s = 0.0;      ///< Mean estimate from prior executions.
  double est_energy_kwh = 0.0;  ///< Mean estimate from prior executions.
};

/// Placement decision for one job.
struct Decision {
  std::uint64_t job_id = 0;
  int region = 0;
  /// Execution start time; must be >= now + transfer latency for remote
  /// placements.  Greedy-optimal oracles may set it further in the future.
  double start_time = 0.0;
  /// Ecovisor-style power scaling in (0, 1]: power multiplies by this,
  /// duration divides by it (energy conserved).
  double power_scale = 1.0;
};

/// Read-only view of region capacities, implemented by the simulator.
class CapacityView {
 public:
  virtual ~CapacityView() = default;
  [[nodiscard]] virtual int num_regions() const = 0;
  [[nodiscard]] virtual int capacity(int region) const = 0;
  /// Free servers at instant t (cap(n) of Eq. 10 when t = now).
  [[nodiscard]] virtual int free_at(int region, double t) const = 0;
  /// Peak occupancy over [start, end) — the greedy oracles' future view.
  [[nodiscard]] virtual int max_occupancy(int region, double start,
                                          double end) const = 0;
};

struct ScheduleContext {
  double now = 0.0;
  double tol = 0.25;  ///< Delay tolerance (fraction; 0.25 = 25%).
  const env::Environment* env = nullptr;
  const footprint::FootprintModel* footprint = nullptr;
  const CapacityView* capacity = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Returns decisions for any subset of `batch`; undecided jobs stay
  /// pending.  Decisions violating capacity or starting before transfer
  /// completion are rejected by the simulator (the job stays pending).
  [[nodiscard]] virtual std::vector<Decision> schedule(
      const std::vector<PendingJob>& batch, const ScheduleContext& ctx) = 0;

  /// Completion callback (drives online execution-time/energy learning).
  virtual void on_job_finished(const trace::Job& job) { (void)job; }
};

}  // namespace ww::dc
