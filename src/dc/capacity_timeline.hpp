// Per-region server-capacity reservation timeline.
//
// Supports the two capacity views the schedulers need: the instantaneous
// remaining capacity cap(n) that WaterWise's MILP consumes (Eq. 10), and
// future-interval queries for the greedy-optimal oracles, which reserve
// (region, start-time) slots against future availability.  Events older than
// the prune point fold into a base count so the structure stays small over
// multi-day campaigns.
#pragma once

#include <map>

namespace ww::dc {

class CapacityTimeline {
 public:
  explicit CapacityTimeline(int capacity);

  [[nodiscard]] int capacity() const noexcept { return capacity_; }

  /// Occupancy at instant t (reservations with start <= t < end).
  [[nodiscard]] int occupancy_at(double t) const;

  /// Peak occupancy over [start, end).
  [[nodiscard]] int max_occupancy(double start, double end) const;

  /// True when one more reservation fits everywhere in [start, end).
  [[nodiscard]] bool fits(double start, double end) const {
    return max_occupancy(start, end) < capacity_;
  }

  /// Records a reservation; caller is responsible for checking fits().
  void reserve(double start, double end);

  /// Folds events at or before `now` into the base occupancy.  Queries for
  /// times >= now remain exact; earlier times are no longer queryable.
  void prune(double now);

  [[nodiscard]] std::size_t event_count() const noexcept {
    return deltas_.size();
  }

 private:
  int capacity_;
  int base_ = 0;  ///< Reservations spanning the pruned horizon.
  std::map<double, int> deltas_;
};

}  // namespace ww::dc
