// Event-driven geo-distributed datacenter simulator.
//
// Mirrors the paper's evaluation loop: jobs arrive per a production trace,
// the Decision Controller runs every batch window over all pending jobs
// (new arrivals plus previously deferred J_delay), decisions reserve a
// server in the chosen region from transfer completion through execution,
// and the ledger integrates carbon/water footprints over each job's actual
// run interval.  Execution-time/energy estimates given to schedulers are
// online means over finished jobs of the same benchmark — so estimates are
// realistically inaccurate, exactly as Sec. 4 assumes.
#pragma once

#include <vector>

#include "dc/capacity_timeline.hpp"
#include "dc/metrics.hpp"
#include "dc/scheduler.hpp"
#include "trace/job.hpp"

namespace ww::dc {

struct SimConfig {
  double batch_window_s = 60.0;  ///< Max wait between controller batches.
  /// Minimum spacing between controller batches.  Ticks align to job
  /// arrivals (event-driven) but never fire more often than this, so bursts
  /// accumulate into multi-job MILP batches while an idle controller reacts
  /// to a lone arrival immediately.
  double min_batch_interval_s = 2.0;
  double tol = 0.25;             ///< Delay tolerance (fraction of exec time).
  double capacity_scale = 1.0;   ///< Scales per-region servers (Fig. 11).
  bool record_jobs = false;      ///< Keep per-job outcomes in the result.
  bool integrate_footprints = true;  ///< Hourly integration vs. start-time
                                     ///< point sampling (faster).
};

class Simulator {
 public:
  Simulator(const env::Environment& env,
            const footprint::FootprintModel& footprint, SimConfig config = {});

  /// Runs the whole campaign; `jobs` must be sorted by submit_time.
  [[nodiscard]] CampaignResult run(const std::vector<trace::Job>& jobs,
                                   Scheduler& scheduler);

  /// Attaches a fault-injection campaign (env/faults.hpp).  All pointers are
  /// borrowed and must outlive the simulator.  `faults` drives the effective
  /// per-region capacity (outages and flaps gate *new* placements; running
  /// jobs drain through — degraded infrastructure stops accepting work, it
  /// does not kill work in flight).  `observed_env` / `observed_fp`, when
  /// given, replace the ScheduleContext's environment/footprint so the
  /// controller sees the biased Controller view while the ledger keeps
  /// integrating the true World view.  Pass nullptrs to detach.
  void set_fault_injection(
      const env::FaultSchedule* faults,
      const env::Environment* observed_env = nullptr,
      const footprint::FootprintModel* observed_fp = nullptr) noexcept {
    faults_ = faults;
    observed_env_ = observed_env;
    observed_footprint_ = observed_fp;
  }

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  /// Effective server count per region after capacity scaling.
  [[nodiscard]] std::vector<int> region_capacities() const;

 private:
  const env::Environment* env_;
  const footprint::FootprintModel* footprint_;
  SimConfig config_;
  const env::FaultSchedule* faults_ = nullptr;
  const env::Environment* observed_env_ = nullptr;
  const footprint::FootprintModel* observed_footprint_ = nullptr;
};

}  // namespace ww::dc
