#include "dc/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "obs/trace.hpp"
#include "trace/benchmark_profile.hpp"
#include "util/timer.hpp"

namespace ww::dc {

namespace {

/// CapacityView adapter over the simulator's timelines.  With an attached
/// FaultSchedule the *effective* capacity is the nominal capacity scaled by
/// the schedule's factor at the query instant (floored; an outage reads as
/// 0), so schedulers observe outages and flaps the moment they query.
class TimelineView final : public CapacityView {
 public:
  TimelineView(const std::vector<CapacityTimeline>* timelines,
               const env::FaultSchedule* faults)
      : timelines_(timelines), faults_(faults) {}

  /// Batch tick; capacity(r) is evaluated at this instant.
  void set_now(double now) noexcept { now_ = now; }

  [[nodiscard]] int effective_capacity(int region, double t) const {
    const int cap =
        (*timelines_)[static_cast<std::size_t>(region)].capacity();
    if (faults_ == nullptr) return cap;
    return static_cast<int>(std::floor(static_cast<double>(cap) *
                                       faults_->capacity_factor(region, t)));
  }

  [[nodiscard]] int num_regions() const override {
    return static_cast<int>(timelines_->size());
  }
  [[nodiscard]] int capacity(int region) const override {
    return effective_capacity(region, now_);
  }
  [[nodiscard]] int free_at(int region, double t) const override {
    const auto& tl = (*timelines_)[static_cast<std::size_t>(region)];
    return std::max(0, effective_capacity(region, t) - tl.occupancy_at(t));
  }
  [[nodiscard]] int max_occupancy(int region, double start,
                                  double end) const override {
    return (*timelines_)[static_cast<std::size_t>(region)].max_occupancy(start,
                                                                         end);
  }

 private:
  const std::vector<CapacityTimeline>* timelines_;
  const env::FaultSchedule* faults_;
  double now_ = 0.0;
};

/// Online per-benchmark mean estimates of execution time and energy.
class EstimateDb {
 public:
  void observe(const trace::Job& job) {
    auto& e = entries_[job.benchmark];
    e.exec.add(job.exec_seconds);
    e.energy.add(job.energy_kwh());
  }
  [[nodiscard]] double est_exec(const trace::Job& job) const {
    const auto it = entries_.find(job.benchmark);
    if (it != entries_.end() && it->second.exec.count() >= 3)
      return it->second.exec.mean();
    return trace::profile(job.benchmark).mean_exec_s;
  }
  [[nodiscard]] double est_energy(const trace::Job& job) const {
    const auto it = entries_.find(job.benchmark);
    if (it != entries_.end() && it->second.energy.count() >= 3)
      return it->second.energy.mean();
    const auto& p = trace::profile(job.benchmark);
    return p.mean_power_w * p.mean_exec_s / 3.6e6;
  }

 private:
  struct Entry {
    util::RunningStats exec;
    util::RunningStats energy;
  };
  // Keyed by benchmark id; accessed via observe()/find() only, so the
  // unspecified bucket order can never reach an estimate or an output.
  // det-ok: lookup-only, never iterated
  std::unordered_map<int, Entry> entries_;
};

struct FinishEvent {
  double time;
  std::size_t job_index;
  bool operator>(const FinishEvent& o) const { return time > o.time; }
};

}  // namespace

Simulator::Simulator(const env::Environment& env,
                     const footprint::FootprintModel& footprint,
                     SimConfig config)
    : env_(&env), footprint_(&footprint), config_(config) {
  if (config_.batch_window_s <= 0.0)
    throw std::invalid_argument("Simulator: batch window must be positive");
  if (config_.min_batch_interval_s <= 0.0 ||
      config_.min_batch_interval_s > config_.batch_window_s)
    throw std::invalid_argument(
        "Simulator: min batch interval must be in (0, batch_window]");
  if (config_.tol < 0.0)
    throw std::invalid_argument("Simulator: delay tolerance must be >= 0");
}

std::vector<int> Simulator::region_capacities() const {
  std::vector<int> caps;
  caps.reserve(static_cast<std::size_t>(env_->num_regions()));
  for (int r = 0; r < env_->num_regions(); ++r) {
    const int scaled = static_cast<int>(
        std::lround(config_.capacity_scale * env_->region(r).servers));
    caps.push_back(std::max(1, scaled));
  }
  return caps;
}

CampaignResult Simulator::run(const std::vector<trace::Job>& jobs,
                              Scheduler& scheduler) {
  for (std::size_t i = 1; i < jobs.size(); ++i)
    if (jobs[i].submit_time < jobs[i - 1].submit_time)
      throw std::invalid_argument("Simulator: trace must be submit-sorted");

  const int num_regions = env_->num_regions();
  std::vector<CapacityTimeline> timelines;
  {
    const std::vector<int> caps = region_capacities();
    timelines.reserve(caps.size());
    for (const int c : caps) timelines.emplace_back(c);
  }
  TimelineView view(&timelines, faults_);

  CampaignResult result;
  result.scheduler_name = scheduler.name();
  result.tol = config_.tol;
  result.jobs_per_region.assign(static_cast<std::size_t>(num_regions), 0);
  if (config_.record_jobs) result.jobs.reserve(jobs.size());

  EstimateDb estimates;
  std::vector<PendingJob> pending;
  // Job-id -> trace-index translation for finish events; written on arrival,
  // read with at() when a decision lands — never iterated, so bucket order
  // cannot perturb the finish heap (which orders by time, not insertion).
  // det-ok: lookup-only, never iterated
  std::unordered_map<std::uint64_t, std::size_t> job_index_by_id;
  std::priority_queue<FinishEvent, std::vector<FinishEvent>, std::greater<>>
      finish_heap;

  std::size_t next_arrival = 0;
  double now = 0.0;
  long stalled_batches = 0;
  double total_exec = 0.0;
  for (const auto& j : jobs) total_exec += j.exec_seconds;
  result.mean_exec_seconds =
      jobs.empty() ? 0.0 : total_exec / static_cast<double>(jobs.size());

  while (next_arrival < jobs.size() || !pending.empty() ||
         !finish_heap.empty()) {
    // Completions up to now: feed the online estimate learner.
    while (!finish_heap.empty() && finish_heap.top().time <= now) {
      const std::size_t ji = finish_heap.top().job_index;
      finish_heap.pop();
      estimates.observe(jobs[ji]);
      scheduler.on_job_finished(jobs[ji]);
    }

    // Absorb arrivals; T_start_m is the tick when the controller first
    // holds the job.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].submit_time <= now) {
      PendingJob p;
      p.job = &jobs[next_arrival];
      p.first_seen = now;
      pending.push_back(p);
      job_index_by_id[jobs[next_arrival].id] = next_arrival;
      ++next_arrival;
    }

    if (!pending.empty()) {
      for (auto& tl : timelines) tl.prune(now);
      // Refresh estimates each batch (they improve as jobs finish).
      for (PendingJob& p : pending) {
        p.est_exec_s = estimates.est_exec(*p.job);
        p.est_energy_kwh = estimates.est_energy(*p.job);
      }

      ScheduleContext ctx;
      ctx.now = now;
      ctx.tol = config_.tol;
      // Under fault injection the controller observes the biased Controller
      // view; the ledger below keeps integrating the true World view.
      ctx.env = observed_env_ != nullptr ? observed_env_ : env_;
      ctx.footprint =
          observed_footprint_ != nullptr ? observed_footprint_ : footprint_;
      view.set_now(now);
      ctx.capacity = &view;

      obs::Span window_span("sim.window");
      window_span.arg("t", now);
      window_span.arg("pending", pending.size());
      const util::Stopwatch watch;
      const std::vector<Decision> decisions = scheduler.schedule(pending, ctx);
      const double batch_seconds = watch.elapsed_seconds();
      result.decision_seconds_total += batch_seconds;
      result.batch_decision_seconds.add(batch_seconds);
      result.overhead_series.emplace_back(now / 60.0, batch_seconds);

      const obs::Span apply_span("sim.apply");
      std::size_t applied = 0;
      for (const Decision& d : decisions) {
        const auto pit =
            std::find_if(pending.begin(), pending.end(),
                         [&](const PendingJob& p) { return p.job->id == d.job_id; });
        if (pit == pending.end()) continue;  // stale/duplicate decision
        const trace::Job& job = *pit->job;
        if (d.region < 0 || d.region >= num_regions) continue;
        if (!(d.power_scale > 0.0) || d.power_scale > 1.0) continue;

        const double transfer_latency = env_->transfer_latency_seconds(
            job.home_region, d.region, job.package_bytes);
        const double earliest = now + transfer_latency;
        if (d.start_time < earliest - 1e-6) continue;  // impossible start
        const double duration = job.exec_seconds / d.power_scale;
        const double start = std::max(d.start_time, earliest);
        const double end = start + duration;
        auto& tl = timelines[static_cast<std::size_t>(d.region)];
        // Admission: peak occupancy over the run must stay below the
        // effective capacity at the start instant (== tl.fits() without
        // faults).  An active outage/flap gates new placements while jobs
        // already on the servers drain through.
        const int eff_cap = view.effective_capacity(d.region, start);
        if (tl.max_occupancy(start, end) >= eff_cap) continue;  // stays pending
        tl.reserve(start, end);

        // --- ledger ---------------------------------------------------------
        const double energy = job.energy_kwh();  // power scaling conserves it
        footprint::Breakdown fb =
            config_.integrate_footprints
                ? footprint_->job_integrated(d.region, start, duration, energy)
                : footprint_->job_at(d.region, start, energy, duration);
        const footprint::Breakdown tb = footprint_->transfer(
            job.home_region, d.region, job.package_bytes, now);
        result.total_carbon_g += fb.carbon_g() + tb.carbon_g();
        result.total_water_l += fb.water_l() + tb.water_l();
        result.transfer_carbon_g += tb.carbon_g();
        result.transfer_water_l += tb.water_l();
        result.embodied_carbon_g += fb.embodied_carbon_g;
        result.embodied_water_l += fb.embodied_water_l;
        result.total_cost_usd += env_->pue(d.region) * energy *
                                 env_->electricity_price(d.region, start);

        const double service = end - job.submit_time;
        const double norm = service / job.exec_seconds;
        result.service_norm.add(norm);
        const bool violated =
            service > (1.0 + config_.tol) * job.exec_seconds * (1.0 + 1e-9);
        if (violated) ++result.violations;
        ++result.jobs_per_region[static_cast<std::size_t>(d.region)];
        ++result.num_jobs;
        result.makespan_seconds = std::max(result.makespan_seconds, end);

        if (config_.record_jobs) {
          JobOutcome o;
          o.job_id = job.id;
          o.home_region = job.home_region;
          o.exec_region = d.region;
          o.submit_time = job.submit_time;
          o.start_time = start;
          o.finish_time = end;
          o.exec_seconds = duration;
          o.carbon_g = fb.carbon_g() + tb.carbon_g();
          o.water_l = fb.water_l() + tb.water_l();
          o.violated = violated;
          result.jobs.push_back(o);
        }

        finish_heap.push(FinishEvent{end, job_index_by_id.at(job.id)});
        pending.erase(pit);
        ++applied;
      }
      stalled_batches = applied == 0 ? stalled_batches + 1 : 0;
      if (stalled_batches > 200000)
        throw std::runtime_error(
            "Simulator: scheduler made no progress for 200000 batches");
    }

    // Advance to the next batch tick: align to the next arrival (so an idle
    // controller reacts promptly), bounded below by the minimum batch
    // interval (so bursts batch together) and above by the batch window
    // (so deferred jobs are retried).
    double next_tick;
    if (pending.empty()) {
      next_tick = std::numeric_limits<double>::infinity();
      if (next_arrival < jobs.size())
        next_tick = jobs[next_arrival].submit_time;
      if (!finish_heap.empty())
        next_tick = std::min(next_tick, finish_heap.top().time);
      next_tick = std::max(next_tick, now + config_.min_batch_interval_s);
    } else {
      next_tick = now + config_.batch_window_s;
      if (next_arrival < jobs.size())
        next_tick = std::min(next_tick, jobs[next_arrival].submit_time);
      next_tick = std::max(next_tick, now + config_.min_batch_interval_s);
    }
    now = next_tick;
  }

  return result;
}

}  // namespace ww::dc
