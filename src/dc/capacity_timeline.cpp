#include "dc/capacity_timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace ww::dc {

CapacityTimeline::CapacityTimeline(int capacity) : capacity_(capacity) {
  if (capacity <= 0)
    throw std::invalid_argument("CapacityTimeline: capacity must be positive");
}

int CapacityTimeline::occupancy_at(double t) const {
  int occ = base_;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    occ += delta;
  }
  return occ;
}

int CapacityTimeline::max_occupancy(double start, double end) const {
  // Occupancy entering the window, then scan events inside it.
  int occ = base_;
  auto it = deltas_.begin();
  for (; it != deltas_.end() && it->first <= start; ++it) occ += it->second;
  int peak = occ;
  for (; it != deltas_.end() && it->first < end; ++it) {
    occ += it->second;
    peak = std::max(peak, occ);
  }
  return peak;
}

void CapacityTimeline::reserve(double start, double end) {
  if (!(end > start))
    throw std::invalid_argument("CapacityTimeline: end must exceed start");
  deltas_[start] += 1;
  deltas_[end] -= 1;
}

void CapacityTimeline::prune(double now) {
  auto it = deltas_.begin();
  while (it != deltas_.end() && it->first <= now) {
    base_ += it->second;
    it = deltas_.erase(it);
  }
}

}  // namespace ww::dc
