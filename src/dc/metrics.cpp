#include "dc/metrics.hpp"

namespace ww::dc {

namespace {
double saving_pct(double base, double value) {
  return base > 0.0 ? 100.0 * (base - value) / base : 0.0;
}
}  // namespace

double CampaignResult::carbon_saving_pct_vs(const CampaignResult& base) const {
  return saving_pct(base.total_carbon_g, total_carbon_g);
}

double CampaignResult::water_saving_pct_vs(const CampaignResult& base) const {
  return saving_pct(base.total_water_l, total_water_l);
}

double CampaignResult::cost_saving_pct_vs(const CampaignResult& base) const {
  return saving_pct(base.total_cost_usd, total_cost_usd);
}

double CampaignResult::mean_overhead_pct_of_exec() const {
  if (mean_exec_seconds <= 0.0 || batch_decision_seconds.count() == 0)
    return 0.0;
  return 100.0 * batch_decision_seconds.mean() / mean_exec_seconds;
}

std::vector<double> CampaignResult::region_share_pct() const {
  std::vector<double> shares(jobs_per_region.size(), 0.0);
  if (num_jobs == 0) return shares;
  for (std::size_t i = 0; i < shares.size(); ++i)
    shares[i] = 100.0 * static_cast<double>(jobs_per_region[i]) /
                static_cast<double>(num_jobs);
  return shares;
}

}  // namespace ww::dc
