// Campaign results: the figures of merit of Sec. 5.
//
// Primary metrics are total carbon footprint and total (scarcity-weighted)
// water footprint, reported as % savings against the Baseline run on the
// identical trace.  Secondary metrics: average service time normalized to
// execution time, % of jobs violating their delay tolerance (Table 2),
// per-region job distribution (Fig. 3b), and decision-making overhead
// (Fig. 13).
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ww::dc {

/// Per-job outcome (kept only when SimConfig::record_jobs is set).
struct JobOutcome {
  std::uint64_t job_id = 0;
  int home_region = 0;
  int exec_region = 0;
  double submit_time = 0.0;
  double start_time = 0.0;   ///< Execution start (after queue + transfer).
  double finish_time = 0.0;
  double exec_seconds = 0.0; ///< Actual run duration (after power scaling).
  double carbon_g = 0.0;     ///< Execution + transfer share.
  double water_l = 0.0;
  bool violated = false;
};

struct CampaignResult {
  std::string scheduler_name;
  double tol = 0.0;

  long num_jobs = 0;
  double total_carbon_g = 0.0;
  double total_water_l = 0.0;
  double transfer_carbon_g = 0.0;  ///< Included in total_carbon_g.
  double transfer_water_l = 0.0;   ///< Included in total_water_l.
  double embodied_carbon_g = 0.0;  ///< Included in total_carbon_g.
  double embodied_water_l = 0.0;   ///< Included in total_water_l.
  double total_cost_usd = 0.0;     ///< Electricity cost (Sec. 7 extension).

  util::RunningStats service_norm;  ///< service_time / exec_time per job.
  long violations = 0;
  std::vector<long> jobs_per_region;

  double decision_seconds_total = 0.0;
  util::RunningStats batch_decision_seconds;
  /// (sim minute, decision seconds in that batch) pairs for Fig. 13.
  std::vector<std::pair<double, double>> overhead_series;

  double mean_exec_seconds = 0.0;
  double makespan_seconds = 0.0;

  std::vector<JobOutcome> jobs;  ///< Optional per-job records.

  [[nodiscard]] double violation_pct() const {
    return num_jobs ? 100.0 * static_cast<double>(violations) /
                          static_cast<double>(num_jobs)
                    : 0.0;
  }
  [[nodiscard]] double mean_service_norm() const {
    return service_norm.mean();
  }
  /// % carbon saving relative to `base` (positive = this result is better).
  [[nodiscard]] double carbon_saving_pct_vs(const CampaignResult& base) const;
  [[nodiscard]] double water_saving_pct_vs(const CampaignResult& base) const;
  [[nodiscard]] double cost_saving_pct_vs(const CampaignResult& base) const;
  /// Decision overhead as % of the mean job execution time (Fig. 13 metric).
  [[nodiscard]] double mean_overhead_pct_of_exec() const;
  /// Share of jobs executed in each region, % (Fig. 3b).
  [[nodiscard]] std::vector<double> region_share_pct() const;
};

}  // namespace ww::dc
