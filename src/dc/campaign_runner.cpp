#include "dc/campaign_runner.hpp"

#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/timer.hpp"
#include "util/work_steal.hpp"

namespace ww::dc {

namespace {

/// Scenario stream: child of the campaign seed by index, then by label, so
/// streams stay decoupled even when labels repeat across groups.
util::Rng scenario_rng(const CampaignConfig& config, std::size_t index,
                       const Scenario& s) {
  return util::Rng(config.seed)
      .child(static_cast<std::uint64_t>(index))
      .child(s.group + "/" + s.label);
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config)) {}

CampaignRunner& CampaignRunner::add(Scenario scenario) {
  if (!scenario.run)
    throw std::invalid_argument("CampaignRunner: scenario '" + scenario.label +
                                "' has no body");
  scenarios_.push_back(std::move(scenario));
  return *this;
}

CampaignRunner& CampaignRunner::add(
    std::string label, std::function<CampaignResult(ScenarioContext&)> run) {
  return add({/*group=*/"", std::move(label), /*baseline=*/false,
              std::move(run)});
}

CampaignRunner& CampaignRunner::add_baseline(
    std::string group, std::string label,
    std::function<CampaignResult(ScenarioContext&)> run) {
  return add({std::move(group), std::move(label), /*baseline=*/true,
              std::move(run)});
}

std::vector<ScenarioOutcome> CampaignRunner::run_all() {
  obs::Span campaign_span("campaign");
  campaign_span.arg("scenarios", scenarios_.size());
  std::vector<ScenarioOutcome> outcomes(scenarios_.size());
  const auto run_one = [&](std::size_t i) {
    const Scenario& s = scenarios_[i];
    obs::Span scenario_span("scenario");
    scenario_span.arg("index", i);
    ScenarioContext ctx{i, scenario_rng(config_, i, s)};
    const util::Stopwatch watch;
    CampaignResult result = s.run(ctx);
    outcomes[i] = {s.group, s.label, s.baseline, std::move(result),
                   watch.elapsed_seconds()};
  };

  if (config_.jobs == 1) {
    for (std::size_t i = 0; i < scenarios_.size(); ++i) run_one(i);
  } else {
    // Scenarios fan onto the process-global work-stealing pool — the same
    // pool the schedulers inside them use for chunk solves, so a campaign
    // of K scenarios × C chunks shares one set of workers instead of
    // oversubscribing K·C threads across nested pools.  Outcome slots are
    // written by add() index, so stealing never reorders results.
    util::global_parallel_for(config_.jobs, scenarios_.size(), run_one);
  }
  return outcomes;
}

util::Table CampaignRunner::aggregate(
    const std::vector<ScenarioOutcome>& outcomes) {
  bool grouped = false;
  for (const auto& o : outcomes) grouped |= !o.group.empty();

  std::vector<std::string> headers;
  if (grouped) headers.push_back("Group");
  for (const char* h : {"Scenario", "Jobs", "Carbon kg", "Water kL",
                        "Cost USD", "Service norm", "Violations %",
                        "Carbon saving %", "Water saving %"})
    headers.emplace_back(h);
  util::Table table(std::move(headers));

  for (const auto& o : outcomes) {
    // The group baseline, if any, is the savings reference for this row.
    const ScenarioOutcome* base = nullptr;
    for (const auto& b : outcomes)
      if (b.baseline && b.group == o.group) {
        base = &b;
        break;
      }

    std::vector<std::string> row;
    if (grouped) row.push_back(o.group);
    const CampaignResult& r = o.result;
    row.push_back(o.label);
    row.push_back(std::to_string(r.num_jobs));
    row.push_back(util::Table::fixed(r.total_carbon_g / 1e3, 2));
    row.push_back(util::Table::fixed(r.total_water_l / 1e3, 2));
    row.push_back(util::Table::fixed(r.total_cost_usd, 2));
    row.push_back(util::Table::fixed(r.mean_service_norm(), 3));
    row.push_back(util::Table::fixed(r.violation_pct(), 2));
    if (base != nullptr && base != &o) {
      row.push_back(util::Table::fixed(r.carbon_saving_pct_vs(base->result), 2));
      row.push_back(util::Table::fixed(r.water_saving_pct_vs(base->result), 2));
    } else {
      row.emplace_back(base == &o ? "(baseline)" : "-");
      row.emplace_back(base == &o ? "(baseline)" : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

CampaignResult CampaignRunner::merged_totals(
    const std::vector<ScenarioOutcome>& outcomes) {
  CampaignResult total;
  total.scheduler_name = "campaign";
  for (const auto& o : outcomes) {
    const CampaignResult& r = o.result;
    total.num_jobs += r.num_jobs;
    total.total_carbon_g += r.total_carbon_g;
    total.total_water_l += r.total_water_l;
    total.transfer_carbon_g += r.transfer_carbon_g;
    total.transfer_water_l += r.transfer_water_l;
    total.embodied_carbon_g += r.embodied_carbon_g;
    total.embodied_water_l += r.embodied_water_l;
    total.total_cost_usd += r.total_cost_usd;
    total.violations += r.violations;
    total.decision_seconds_total += r.decision_seconds_total;
  }
  return total;
}

}  // namespace ww::dc
