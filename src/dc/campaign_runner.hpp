// Parallel campaign engine: fans independent Simulator runs across the
// process-global work-stealing pool with shared-nothing per-scenario state.
//
// A campaign is an ordered list of scenarios (lambda sweeps, capacity
// scaling, region subsets, ...).  Each scenario body builds everything it
// needs — environment, footprint model, scheduler, simulator — so scenarios
// never share mutable state and can run on any thread.  Determinism is
// preserved under parallelism by construction: every scenario draws its
// randomness from an Rng stream derived from (campaign seed, scenario index,
// scenario label), never from execution order or thread identity, and
// outcomes are returned in add() order.  The same campaign therefore
// produces byte-identical aggregated results at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dc/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ww::dc {

/// Per-scenario execution context handed to the scenario body.
struct ScenarioContext {
  std::size_t index = 0;  ///< Position in add() order.
  /// Deterministic stream derived from the campaign seed + index + label;
  /// identical regardless of which thread runs the scenario.
  util::Rng rng;
};

/// One independent unit of work in a campaign.
struct Scenario {
  /// Scenarios sharing a group are compared against that group's baseline
  /// in aggregate(); empty group means the campaign-wide group.
  std::string group;
  std::string label;
  bool baseline = false;  ///< Reference row for savings within its group.
  std::function<CampaignResult(ScenarioContext&)> run;
};

/// A finished scenario: its identity plus the simulator result.
struct ScenarioOutcome {
  std::string group;
  std::string label;
  bool baseline = false;
  CampaignResult result;
  double wall_seconds = 0.0;  ///< Wall-clock time of this scenario body.
};

struct CampaignConfig {
  /// Concurrency floor for the fan-out: the global work-stealing pool is
  /// grown to at least this many workers (0 selects hardware concurrency;
  /// 1 runs scenarios inline on the calling thread).  Scenario tasks and
  /// the chunk subtasks their schedulers spawn share those workers.
  std::size_t jobs = 0;
  /// Master seed; per-scenario streams are derived children.
  std::uint64_t seed = 7;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {});

  /// Adds a scenario; returns *this for chaining.
  CampaignRunner& add(Scenario scenario);
  /// Convenience: ungrouped, non-baseline scenario.
  CampaignRunner& add(std::string label,
                      std::function<CampaignResult(ScenarioContext&)> run);
  /// Convenience: marks the group's reference row.
  CampaignRunner& add_baseline(
      std::string group, std::string label,
      std::function<CampaignResult(ScenarioContext&)> run);

  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }
  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }

  /// Runs every scenario across the pool and returns outcomes in add()
  /// order.  With jobs == 1 the scenarios run inline on the calling thread.
  /// The first scenario exception (in add() order) is rethrown.
  [[nodiscard]] std::vector<ScenarioOutcome> run_all();

  /// Merges outcomes into one comparison table: absolute figures of merit
  /// per scenario plus carbon/water savings against the scenario's group
  /// baseline where one exists.  Row order follows outcome order, so the
  /// table is byte-identical for any thread count.
  [[nodiscard]] static util::Table aggregate(
      const std::vector<ScenarioOutcome>& outcomes);

  /// Sums the headline totals across outcomes (campaign-level ledger).
  [[nodiscard]] static CampaignResult merged_totals(
      const std::vector<ScenarioOutcome>& outcomes);

 private:
  CampaignConfig config_;
  std::vector<Scenario> scenarios_;
};

}  // namespace ww::dc
