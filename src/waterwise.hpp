// Umbrella header: everything a downstream user needs to run WaterWise
// campaigns.  Link against the CMake target `ww::waterwise`.
//
//   #include "waterwise.hpp"
//
//   const ww::env::Environment env = ww::env::Environment::builtin();
//   const ww::footprint::FootprintModel footprint(env);
//   const auto jobs = ww::trace::generate_trace(ww::trace::borg_config());
//   ww::dc::Simulator sim(env, footprint, {});
//   ww::core::WaterWiseScheduler scheduler;
//   const ww::dc::CampaignResult result = sim.run(jobs, scheduler);
#pragma once

// Substrates.
#include "env/environment.hpp"    // regions, energy mixes, weather, WSF
#include "footprint/footprint.hpp"// Eq. 1-6 carbon/water model
#include "milp/branch_and_bound.hpp"  // MILP solver (ww::milp::solve)
#include "trace/generator.hpp"    // Borg-/Alibaba-like traces

// Simulation.
#include "dc/metrics.hpp"
#include "dc/scheduler.hpp"
#include "dc/simulator.hpp"

// Policies.
#include "core/waterwise.hpp"     // the paper's scheduler
#include "sched/basic.hpp"        // Baseline / Round-Robin / Least-Load
#include "sched/ecovisor.hpp"
#include "sched/greedy_opt.hpp"   // Carbon-/Water-Greedy-Opt oracles

// Utilities commonly used alongside.
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
