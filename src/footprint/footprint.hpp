// Carbon- and water-footprint model: Sec. 2 of the paper, Eq. 1-6.
//
// Carbon (Eq. 1):  CO2_j = E_j * CI + (t_j / T_lifetime) * CO2_embodied
// Offsite water (Eq. 2):  PUE * E_j * EWIF * (1 + WSF_dc)
// Onsite water (Eq. 3):   E_j * WUE * (1 + WSF_dc)
// Embodied water (Eq. 4): E_manufacturing * EWIF * (1 + WSF_mfg), amortized
//                         by t_j / T_lifetime like embodied carbon.
// Water intensity (Eq. 6): (WUE + PUE * EWIF) * (1 + WSF_dc)
//
// Two evaluation modes:
//  * `at`          — intensities sampled at a single instant; this is what
//                    the scheduler uses for decisions (it has no future).
//  * `integrated`  — intensities integrated hourly across the execution
//                    interval; this is what the simulator's ledger records.
#pragma once

#include "env/environment.hpp"

namespace ww::footprint {

/// Server constants for embodied-footprint amortization; defaults model the
/// AWS m5.metal estimate from the Teads EC2 dataset the paper uses [13].
struct ServerSpec {
  double embodied_carbon_g = 7.0e6;        ///< ~7 tCO2e per 4-socket server.
  double lifetime_seconds = 4.0 * 365.25 * 86400.0;  ///< 4-year depreciation.
  double manufacturing_ci_g_per_kwh = 700.0;  ///< Grid CI at the fab.
  double manufacturing_ewif_l_per_kwh = 1.8;
  double manufacturing_wsf = 0.6;          ///< Fabs sit in stressed regions.

  /// Eq. 4 precursor: back out manufacturing energy from embodied carbon.
  [[nodiscard]] double manufacturing_energy_kwh() const {
    return embodied_carbon_g / manufacturing_ci_g_per_kwh;
  }
  /// Total embodied water per server, Eq. 4.
  [[nodiscard]] double embodied_water_l() const {
    return manufacturing_energy_kwh() * manufacturing_ewif_l_per_kwh *
           (1.0 + manufacturing_wsf);
  }
};

/// Per-job footprint decomposition (grams CO2e / liters, scarcity-weighted).
struct Breakdown {
  double operational_carbon_g = 0.0;
  double embodied_carbon_g = 0.0;
  double offsite_water_l = 0.0;
  double onsite_water_l = 0.0;
  double embodied_water_l = 0.0;

  [[nodiscard]] double carbon_g() const noexcept {
    return operational_carbon_g + embodied_carbon_g;
  }
  [[nodiscard]] double water_l() const noexcept {
    return offsite_water_l + onsite_water_l + embodied_water_l;
  }
  Breakdown& operator+=(const Breakdown& o) noexcept;
};

class FootprintModel {
 public:
  /// `embodied_scale` is the +-10% sensitivity knob of Sec. 6.
  explicit FootprintModel(const env::Environment& env, ServerSpec server = {},
                          double embodied_scale = 1.0);

  /// Footprint of running a job of `energy_kwh` / `exec_seconds` in region
  /// `r` with all intensities frozen at instant `t` (scheduler view).
  [[nodiscard]] Breakdown job_at(int r, double t, double energy_kwh,
                                 double exec_seconds) const;

  /// Footprint with intensities integrated hourly over
  /// [t_start, t_start + exec_seconds] (ledger view).
  [[nodiscard]] Breakdown job_integrated(int r, double t_start,
                                         double exec_seconds,
                                         double energy_kwh) const;

  /// Footprint of moving `bytes` from `from` to `to` at time `t`; transfer
  /// energy is billed at the mean of the two regions' intensities.
  [[nodiscard]] Breakdown transfer(int from, int to, double bytes,
                                   double t) const;

  /// Eq. 6 convenience forward.
  [[nodiscard]] double water_intensity(int r, double t) const {
    return env_->water_intensity(r, t);
  }

  [[nodiscard]] const ServerSpec& server() const noexcept { return server_; }
  [[nodiscard]] const env::Environment& environment() const noexcept {
    return *env_;
  }
  [[nodiscard]] double embodied_scale() const noexcept {
    return embodied_scale_;
  }

 private:
  [[nodiscard]] Breakdown operational_at(int r, double t, double energy_kwh) const;
  void add_embodied(Breakdown& b, double exec_seconds) const;

  const env::Environment* env_;
  ServerSpec server_;
  double embodied_scale_;
};

}  // namespace ww::footprint
