#include "footprint/footprint.hpp"

#include <algorithm>
#include <cmath>

namespace ww::footprint {

Breakdown& Breakdown::operator+=(const Breakdown& o) noexcept {
  operational_carbon_g += o.operational_carbon_g;
  embodied_carbon_g += o.embodied_carbon_g;
  offsite_water_l += o.offsite_water_l;
  onsite_water_l += o.onsite_water_l;
  embodied_water_l += o.embodied_water_l;
  return *this;
}

FootprintModel::FootprintModel(const env::Environment& env, ServerSpec server,
                               double embodied_scale)
    : env_(&env), server_(server), embodied_scale_(embodied_scale) {}

Breakdown FootprintModel::operational_at(int r, double t,
                                         double energy_kwh) const {
  Breakdown b;
  const double scarcity = 1.0 + env_->wsf(r, t);
  b.operational_carbon_g = energy_kwh * env_->carbon_intensity(r, t);
  b.offsite_water_l = env_->pue(r) * energy_kwh * env_->ewif(r, t) * scarcity;
  b.onsite_water_l = energy_kwh * env_->wue(r, t) * scarcity;
  return b;
}

void FootprintModel::add_embodied(Breakdown& b, double exec_seconds) const {
  const double amortization = exec_seconds / server_.lifetime_seconds;
  b.embodied_carbon_g =
      embodied_scale_ * amortization * server_.embodied_carbon_g;
  b.embodied_water_l =
      embodied_scale_ * amortization * server_.embodied_water_l();
}

Breakdown FootprintModel::job_at(int r, double t, double energy_kwh,
                                 double exec_seconds) const {
  Breakdown b = operational_at(r, t, energy_kwh);
  add_embodied(b, exec_seconds);
  return b;
}

Breakdown FootprintModel::job_integrated(int r, double t_start,
                                         double exec_seconds,
                                         double energy_kwh) const {
  Breakdown total;
  if (exec_seconds <= 0.0) return total;
  // Integrate hourly: energy is spread uniformly across the execution
  // interval and each slice is billed at its own intensities.
  const double t_end = t_start + exec_seconds;
  double t = t_start;
  while (t < t_end) {
    const double slice_end = std::min(t_end, (std::floor(t / 3600.0) + 1.0) * 3600.0);
    const double frac = (slice_end - t) / exec_seconds;
    const double mid = 0.5 * (t + slice_end);
    const Breakdown slice = operational_at(r, mid, energy_kwh * frac);
    total += slice;
    t = slice_end;
  }
  add_embodied(total, exec_seconds);
  return total;
}

Breakdown FootprintModel::transfer(int from, int to, double bytes,
                                   double t) const {
  Breakdown b;
  if (from == to) return b;
  const double energy = env_->transfer_energy_kwh(from, to, bytes);
  if (energy <= 0.0) return b;
  // Split the transfer energy across the two endpoints' grids.
  const Breakdown a = operational_at(from, t, 0.5 * energy);
  const Breakdown c = operational_at(to, t, 0.5 * energy);
  b += a;
  b += c;
  return b;
}

}  // namespace ww::footprint
