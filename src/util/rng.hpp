// Deterministic random number generation for reproducible experiments.
//
// Every stochastic input in WaterWise (traces, weather, energy-mix noise,
// estimate error) is derived from a named 64-bit seed through this module, so
// any experiment re-runs bit-for-bit.  The generator is xoshiro256**, seeded
// through SplitMix64 as its authors recommend; named child streams are formed
// by hashing a label into the parent seed, which keeps independent subsystems
// statistically decoupled without a global ordering dependency.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ww::util {

/// SplitMix64 step: the standard 64-bit seed expander / string mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a hash of a label, used to derive named child seeds.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) noexcept;

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies std::uniform_random_bit_generator, so it can also feed
/// <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Independent child stream identified by a stable label.
  [[nodiscard]] Rng child(std::string_view label) const noexcept;
  /// Independent child stream identified by an index (e.g. per-region).
  [[nodiscard]] Rng child(std::uint64_t index) const noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }
  result_type operator()() noexcept { return next(); }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached spare).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Log-normal with given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept;
  /// Gamma(shape k, scale theta) via Marsaglia-Tsang.
  [[nodiscard]] double gamma(double shape, double scale) noexcept;
  /// Bernoulli with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Index sampled from (unnormalized, non-negative) weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t next() noexcept;

  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ww::util
