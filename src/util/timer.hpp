// Wall-clock stopwatch used to measure scheduler decision-making overhead
// (Fig. 13 of the paper reports it as a fraction of mean job execution time).
#pragma once

#include <chrono>

namespace ww::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ww::util
