// Wall-clock stopwatch used to measure scheduler decision-making overhead
// (Fig. 13 of the paper reports it as a fraction of mean job execution time).
#pragma once

#include <chrono>
#include <cstdint>

namespace ww::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic timestamp in microseconds since an arbitrary process-local
/// epoch.  This is the only clock the observability layer (`src/obs/`) may
/// read: values are observational — they annotate trace events and latency
/// histograms — and must never feed a scheduling decision, or the
/// byte-identity invariant across thread counts breaks.
[[nodiscard]] inline std::int64_t monotonic_micros() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ww::util
