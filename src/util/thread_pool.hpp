// Fixed-size thread pool for parallel parameter sweeps.
//
// The simulator itself is deterministic and single-threaded; parallelism in
// WaterWise lives one level up, where benches fan independent configurations
// (delay tolerances, lambda settings, utilization levels) across cores.
// Work is partitioned by configuration, never by simulated time, so parallel
// sweeps produce bit-identical results to serial runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ww::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Worker count a pool constructed with `requested` will have
  /// (0 => hardware_concurrency, at least 1).
  [[nodiscard]] static std::size_t resolve_threads(
      std::size_t requested) noexcept;

  /// Enqueues a task; the returned future rethrows any task exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ww::util
