#include "util/work_steal.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ww::util {

namespace {

// Identity of the current thread within a pool: set for the lifetime of a
// worker thread, null on external threads (main, bench drivers, test
// threads). submit() and try_run_one() use it to pick the owner deque.
struct TlsWorker {
  WorkStealingPool* pool = nullptr;
  std::size_t id = 0;
};

thread_local TlsWorker tls_current;

}  // namespace

// --- StealDeque -------------------------------------------------------------

void StealDeque::push_bottom(std::function<void()> task) {
  const std::lock_guard lock(mutex_);
  tasks_.push_back(std::move(task));
}

bool StealDeque::try_pop_bottom(std::function<void()>& out) {
  const std::lock_guard lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.back());
  tasks_.pop_back();
  return true;
}

bool StealDeque::try_steal_top(std::function<void()>& out) {
  const std::lock_guard lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

std::size_t StealDeque::size() const {
  const std::lock_guard lock(mutex_);
  return tasks_.size();
}

// --- WorkStealingPool -------------------------------------------------------

WorkStealingPool& WorkStealingPool::global() {
  static WorkStealingPool pool(0);
  return pool;
}

WorkStealingPool::WorkStealingPool(std::size_t threads)
    : workers_(kMaxWorkers) {
  ensure_workers(resolve_threads(threads));
}

WorkStealingPool::~WorkStealingPool() {
  stopping_.store(true, std::memory_order_release);
  notify_all_workers();
  const std::size_t n = num_workers_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) workers_[i]->thread.join();
}

std::size_t WorkStealingPool::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return std::min(requested, kMaxWorkers);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void WorkStealingPool::ensure_workers(std::size_t n) {
  n = std::min(n, kMaxWorkers);
  if (num_workers_.load(std::memory_order_acquire) >= n) return;
  const std::lock_guard lock(grow_mutex_);
  while (num_workers_.load(std::memory_order_relaxed) < n) {
    const std::size_t id = num_workers_.load(std::memory_order_relaxed);
    workers_[id] = std::make_unique<Worker>();
    Worker* w = workers_[id].get();
    w->thread = std::thread([this, id] { worker_loop(id); });
    // Publish the slot only after it is fully constructed: thieves iterate
    // [0, num_workers_) with an acquire load and never lock grow_mutex_.
    num_workers_.store(id + 1, std::memory_order_release);
  }
}

void WorkStealingPool::submit(std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire))
    throw std::runtime_error("WorkStealingPool: spawn after stop");
  // Increment before the push so queued_ never underflows: a dequeue can
  // only succeed after the push, which follows this increment. If the push
  // itself throws (bad_alloc in the deque), roll the count back — a stale
  // nonzero queued_ would keep every idle worker's sleep predicate true
  // forever (busy-spin with nothing to dequeue).
  queued_.fetch_add(1, std::memory_order_acq_rel);
  try {
    if (tls_current.pool == this) {
      workers_[tls_current.id]->deque.push_bottom(std::move(task));
    } else {
      inject_.push_bottom(std::move(task));
    }
  } catch (...) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
  notify_one_worker();
}

bool WorkStealingPool::try_run_one() {
  std::function<void()> task;
  const bool is_worker = tls_current.pool == this;
  const std::size_t self = is_worker ? tls_current.id : 0;
  bool stolen = false;
  if (is_worker && workers_[self]->deque.try_pop_bottom(task)) {
    // Own deque, LIFO: the most recently spawned subtask runs first, which
    // keeps nested fork-join working sets hot and depth-first.
  } else if (inject_.try_steal_top(task)) {
    // Externally injected work drains FIFO; not counted as a steal.
  } else {
    steal_attempts_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = num_workers_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n && !task; ++i) {
      const std::size_t victim = (self + 1 + i) % n;
      if (is_worker && victim == self) continue;
      if (workers_[victim]->deque.try_steal_top(task)) stolen = true;
    }
    if (!task) return false;
  }
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void WorkStealingPool::worker_loop(std::size_t id) {
  tls_current = {this, id};
  for (;;) {
    if (try_run_one()) continue;
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0)
      return;
  }
}

void WorkStealingPool::notify_one_worker() {
  // Notify while holding sleep_mutex_ so a worker between its predicate
  // check and its park cannot miss the wakeup.
  const std::lock_guard lock(sleep_mutex_);
  sleep_cv_.notify_one();
}

void WorkStealingPool::notify_all_workers() {
  const std::lock_guard lock(sleep_mutex_);
  sleep_cv_.notify_all();
}

void WorkStealingPool::wait_for_work(const std::function<bool()>& done) {
  std::unique_lock lock(sleep_mutex_);
  sleep_cv_.wait(lock, [this, &done] {
    return done() || queued_.load(std::memory_order_acquire) > 0;
  });
}

void WorkStealingPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Legacy ThreadPool::parallel_for contract: fail fast (iterations queued
  // after the first failure are skipped), drain every task before returning,
  // and rethrow the exception of the lowest failing index — deterministic
  // regardless of which worker stole what.
  std::vector<std::exception_ptr> errors(n);
  std::atomic<bool> failed{false};
  TaskGroup group(*this);
  for (std::size_t i = 0; i < n; ++i) {
    group.spawn([&fn, &errors, &failed, i] {
      if (failed.load(std::memory_order_acquire)) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    });
  }
  group.wait();
  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
}

void global_parallel_for(std::size_t threads, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  WorkStealingPool& pool = WorkStealingPool::global();
  pool.ensure_workers(WorkStealingPool::resolve_threads(threads));
  pool.parallel_for(n, fn);
}

// --- TaskGroup --------------------------------------------------------------

TaskGroup::TaskGroup(WorkStealingPool& pool) : pool_(pool) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor join swallows task exceptions; call wait() to observe them.
  }
}

void TaskGroup::spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  try {
    // `&pool = pool_` is captured separately because the epilogue below may
    // run after wait() has returned and the group been destroyed; past that
    // point the wrapper must not read through `this` (see below).
    pool_.submit([this, &pool = pool_, fn = std::move(fn)]() mutable {
      std::exception_ptr err;
      try {
        fn();
      } catch (...) {
        err = std::current_exception();
      }
      bool last = false;
      {
        // Decrement pending_ while holding mutex_. wait() re-takes mutex_
        // after observing pending_ == 0, so by the time it can return this
        // wrapper has provably released the lock — decrementing first and
        // locking after would let a waiter slip through, destroy the group,
        // and leave us locking a dead mutex.
        const std::lock_guard lock(mutex_);
        if (err && !error_) error_ = std::move(err);
        last = pending_.fetch_sub(1, std::memory_order_acq_rel) == 1;
      }
      // Group members are off limits from here on. Wake any waiter parked
      // on the pool's channel (idle workers re-check their predicate and
      // park again). The captured pool reference outlives the group.
      if (last) pool.notify_all_workers();
    });
  } catch (...) {
    // submit() threw (pool stopping, or bad_alloc building the wrapper):
    // the task will never run, so roll back the count a wait() — including
    // the destructor's — would otherwise block on forever.
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
}

void TaskGroup::wait() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    // Help while waiting: run any pending pool task (this group's or
    // another's) instead of parking the thread. Only when every deque is
    // observed empty — all remaining work running on other threads — do we
    // park, on the pool's wake channel: submit() notifies it for every new
    // task (so late-spawned work is helped immediately) and the last task's
    // wrapper notifies it on group completion, so no timed repoll is needed.
    if (pool_.try_run_one()) continue;
    pool_.wait_for_work(
        [this] { return pending_.load(std::memory_order_acquire) == 0; });
  }
  // pending_ reached 0, so no wrapper will touch error_ again; taking
  // mutex_ here additionally guarantees the last wrapper has *released* the
  // lock it decremented under, making it safe for the caller to destroy the
  // group the moment we return.
  std::exception_ptr err;
  {
    const std::lock_guard lock(mutex_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace ww::util
