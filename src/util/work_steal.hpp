// Process-global work-stealing task pool for scenarios × chunks.
//
// The campaign layer (dc::CampaignRunner) fans scenarios and the scheduler
// (core::WaterWiseScheduler) fans chunk MILP solves. Running those two axes on
// separate per-owner ThreadPools either oversubscribes (K·C tasks on K·C
// threads) or idles workers behind the nested-pool barrier. This pool merges
// the axes: every worker owns a deque (owner pushes/pops the bottom, LIFO;
// thieves steal the top, FIFO), so a scenario task running on a worker spawns
// its chunk subtasks into the *same* scheduler, and an idle worker — or a
// thread blocked in TaskGroup::wait() — helps by stealing pending tasks
// instead of sleeping (help-while-waiting join).
//
// Determinism contract: the pool never orders results. Callers commit results
// in spawn-index order (scenario index, chunk index) into caller-owned slots,
// so aggregates and decision streams are byte-identical at any worker count
// and under any steal interleaving. Stealing is observable only through the
// counters below (tasks_stolen / steal_attempts / queue_depth), which are
// *observational* — like decision latency, they are excluded from
// byte-identity comparisons.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ww::util {

/// One worker's task deque. Mutex-guarded rather than lock-free Chase–Lev:
/// tasks here are coarse (a chunk MILP solve, a scenario simulation), so the
/// lock is never contended enough to matter, and the implementation is
/// trivially TSan-clean with no fences to reason about.
class StealDeque {
 public:
  /// Owner side: push a task on the bottom.
  void push_bottom(std::function<void()> task);
  /// Owner side: pop the most recently pushed task (LIFO). Returns false if
  /// the deque is empty.
  bool try_pop_bottom(std::function<void()>& out);
  /// Thief side: steal the oldest task (FIFO). Returns false if empty.
  bool try_steal_top(std::function<void()>& out);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::function<void()>> tasks_;
};

class WorkStealingPool;

/// Structured fork-join scope: spawn tasks into a pool, then wait() for all
/// of them. wait() is a *helping* join — while the group has pending tasks,
/// the waiting thread pops its own deque (if it is a pool worker) and steals
/// from others, so a scenario task blocked on its chunk subtasks executes
/// pending work instead of parking a worker. When every deque is observed
/// empty the waiter parks on the pool's wake channel, which both new
/// submissions and this group's completion notify — no timed repoll. The
/// first exception thrown by a spawned task is captured and rethrown from
/// wait(); capture order under concurrency is nondeterministic, so callers
/// needing a deterministic error (lowest index) should use parallel_for or
/// catch inside the task, as WaterWiseScheduler's guarded_solve does.
///
/// Lifetime: a finishing task decrements pending_ while holding mutex_, and
/// wait() takes mutex_ after observing pending_ == 0 before returning, so by
/// the time wait() returns the last task wrapper has provably released the
/// lock and never touches the group again — the (typically stack-allocated)
/// group is then safe to destroy even though that wrapper may still be
/// running epilogue code against the pool.
class TaskGroup {
 public:
  explicit TaskGroup(WorkStealingPool& pool);
  /// Waits for stragglers but swallows their exceptions; call wait()
  /// explicitly to observe them.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues fn. From a pool worker this pushes the worker's own deque
  /// (LIFO, stealable from the top); from any other thread it goes to the
  /// pool's injection queue.
  void spawn(std::function<void()> fn);

  /// Blocks until every spawned task has finished, helping with pending pool
  /// work (any task, not just this group's) while waiting. Rethrows the
  /// first captured task exception.
  void wait();

 private:
  WorkStealingPool& pool_;
  std::atomic<std::size_t> pending_{0};
  // Guards error_ and the pending_ decrement (see class comment: the
  // decrement-under-lock is what makes destroying the group right after
  // wait() returns safe). Group completion is signalled through the pool's
  // wake channel, not a per-group condition variable, so parked waiters and
  // idle workers share one notification path.
  std::mutex mutex_;
  std::exception_ptr error_;
};

/// Work-stealing pool. One process-global instance (global()) serves the
/// campaign and scheduler layers; tests may construct private instances.
class WorkStealingPool {
 public:
  /// The process-wide pool. Created on first use with hardware_concurrency
  /// workers; callers with an explicit thread request (WW_SCHED_THREADS,
  /// CampaignConfig::jobs) grow it via ensure_workers().
  static WorkStealingPool& global();

  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit WorkStealingPool(std::size_t threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Current worker count.
  [[nodiscard]] std::size_t size() const noexcept {
    return num_workers_.load(std::memory_order_acquire);
  }

  /// Worker count a pool constructed with `requested` will have
  /// (0 => hardware_concurrency, at least 1). Mirrors
  /// ThreadPool::resolve_threads so call sites migrate 1:1.
  [[nodiscard]] static std::size_t resolve_threads(
      std::size_t requested) noexcept;

  /// Grows the pool to at least n workers (never shrinks; capped at
  /// kMaxWorkers). Workers are appended into preallocated slots and
  /// published with a release store on the count, so concurrent thieves
  /// iterating [0, size()) never race the growth.
  void ensure_workers(std::size_t n);

  /// Runs fn(i) for i in [0, n) on the pool and waits, helping while
  /// waiting. Matches the legacy ThreadPool contract: after the first
  /// failure, still-queued iterations are skipped (fail-fast), every task is
  /// drained before returning, and the exception for the *lowest* failing
  /// index is rethrown — deterministic regardless of steal interleaving.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // --- Observational counters (never part of byte-identity comparisons) ---

  /// Tasks executed by a thread other than the one that spawned them.
  [[nodiscard]] std::uint64_t tasks_stolen() const noexcept {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }
  /// Steal sweeps attempted (own deque and injection queue were empty).
  [[nodiscard]] std::uint64_t steal_attempts() const noexcept {
    return steal_attempts_.load(std::memory_order_relaxed);
  }
  /// Total tasks executed (by owners, thieves, and helping waiters).
  [[nodiscard]] std::uint64_t tasks_run() const noexcept {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  /// Tasks currently queued across all deques (instantaneous, approximate).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Hard cap on workers (growth requests above this are clamped).
  static constexpr std::size_t kMaxWorkers = 512;

 private:
  friend class TaskGroup;

  struct Worker {
    StealDeque deque;
    std::thread thread;
  };

  /// Enqueues a task from the current thread: own deque when called on a
  /// worker of *this* pool, injection queue otherwise.
  void submit(std::function<void()> task);

  /// Tries to dequeue-and-run one task: own deque (LIFO), then the
  /// injection queue, then a steal sweep over the other workers (FIFO).
  /// Returns false only if every deque was observed empty.
  bool try_run_one();

  /// Parks the calling thread on the pool's wake channel until done() holds
  /// or queued work appears. Used by TaskGroup::wait(): submit() notifies
  /// the channel on every enqueue and a group's last task wrapper notifies
  /// it on completion, so external waiters never need a timed repoll.
  void wait_for_work(const std::function<bool()>& done);

  void worker_loop(std::size_t id);
  void notify_one_worker();
  void notify_all_workers();

  // Fixed-capacity slot array: the vector is sized once in the constructor
  // and never reallocates, so thieves may read slots [0, num_workers_)
  // without holding grow_mutex_.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> num_workers_{0};
  std::mutex grow_mutex_;

  StealDeque inject_;  // tasks from threads that are not pool workers

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::size_t> queued_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
};

/// Shorthand: global().parallel_for(n, fn) after ensuring at least
/// resolve_threads(threads) workers. `threads` follows the same convention
/// as everywhere else (0 => hardware_concurrency).
void global_parallel_for(std::size_t threads, std::size_t n,
                         const std::function<void(std::size_t)>& fn);

}  // namespace ww::util
