// Minimal command-line flag parser for the tools/ binaries.
//
// Supports `--name value`, `--name=value`, boolean `--name` switches, typed
// accessors with defaults, required-flag validation, and auto-generated
// help text.  No external dependencies; order-independent.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ww::util {

class Flags {
 public:
  /// Registers a flag before parsing (for help text and validation).
  Flags& define(const std::string& name, const std::string& help,
                const std::string& default_value = "");
  Flags& define_bool(const std::string& name, const std::string& help);

  /// Parses argv; throws std::invalid_argument on unknown flags or a flag
  /// missing its value.  Non-flag arguments collect into positional().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Formatted help text from the define() calls.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool boolean = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string program_;
};

}  // namespace ww::util
