#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ww::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
  return *this;
}

Table& Table::add_row_numeric(const std::string& label,
                              const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(fixed(v, precision));
  return add_row(std::move(row));
}

std::string Table::fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  return fixed(v, precision) + "%";
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto print_sep = [&] {
    out << "+";
    for (const std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace ww::util
