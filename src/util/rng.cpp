#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ww::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::child(std::string_view label) const noexcept {
  // Mix the label hash with the parent's initial state image so that
  // child("a").child("b") != child("b").child("a").
  std::uint64_t mixed = s_[0] ^ rotl(s_[1], 17) ^ hash_label(label);
  return Rng(splitmix64(mixed));
}

Rng Rng::child(std::uint64_t index) const noexcept {
  std::uint64_t mixed = s_[0] ^ rotl(s_[1], 17) ^
                        (index * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull);
  return Rng(splitmix64(mixed));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa construction for uniform doubles in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (weights.empty() || total <= 0.0)
    throw std::invalid_argument("weighted_index: weights must be non-empty with positive sum");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ww::util
