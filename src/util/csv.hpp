// Minimal CSV reader/writer for trace and result files.
//
// Deliberately small: quoted fields with embedded commas/quotes/newlines are
// supported on read and produced on write when needed; no locale dependence.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ww::util {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  /// Convenience: formats doubles with round-trippable precision.
  void write_row_numeric(const std::vector<double>& fields);

  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  /// Parses the entire stream eagerly; rows() is then random-access.
  explicit CsvReader(std::istream& in);

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Parses a single CSV line (no embedded newlines).
  static std::vector<std::string> parse_line(const std::string& line);

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with enough digits to round-trip.
[[nodiscard]] std::string format_double(double value);

}  // namespace ww::util
