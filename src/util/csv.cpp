#include "util/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>

namespace ww::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& fields) {
  std::vector<std::string> row;
  row.reserve(fields.size());
  for (const double v : fields) row.push_back(format_double(v));
  write_row(row);
}

std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::general, 17);
  (void)ec;
  return std::string(buf, ptr);
}

CsvReader::CsvReader(std::istream& in) {
  std::string field;
  std::vector<std::string> row;
  bool in_quotes = false;
  bool field_started = false;
  char c;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows_.push_back(std::move(row));
    row.clear();
  };
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (field_started || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace ww::util
