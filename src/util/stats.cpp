#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ww::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> sample) noexcept {
  RunningStats s;
  for (const double x : sample) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> sample) noexcept {
  RunningStats s;
  for (const double x : sample) s.add(x);
  return s.stddev();
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("correlation: size mismatch");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("linear_fit: bad input sizes");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
}

void Histogram::add(double x) noexcept {
  // Casting a NaN or out-of-range scaled value to an integer is undefined
  // behaviour, so non-finite samples land in a counted drop bucket and
  // finite samples are range-checked *before* the cast (clamping after the
  // cast would be too late for huge values like 1e300).
  if (!std::isfinite(x)) {
    ++dropped_;
    return;
  }
  std::size_t idx;
  if (x <= lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    const double span = hi_ - lo_;
    const double scaled = (x - lo_) / span * static_cast<double>(counts_.size());
    idx = std::min(static_cast<std::size_t>(scaled), counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("Histogram::quantile: q out of [0,1]");
  if (total_ == 0) return 0.0;
  // Target rank in [1, total]; ceil keeps q=0 on the first sample and the
  // whole walk in exact integer arithmetic.
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(q * static_cast<double>(total_))));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= rank) {
      // Interpolate inside the bin: the k-th of c samples sits at fraction
      // (k - 0.5) / c of the bin width (midpoint convention, so a
      // single-sample bin reports its midpoint, not an edge).
      const auto k = static_cast<double>(rank - seen);
      const auto c = static_cast<double>(counts_[i]);
      const double frac = (k - 0.5) / c;
      return bin_lo(i) + (bin_hi(i) - bin_lo(i)) * frac;
    }
    seen += counts_[i];
  }
  return hi_;  // Unreachable when counts are consistent with total_.
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size())
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  dropped_ += other.dropped_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace ww::util
