#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace ww::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = resolve_threads(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  // Fail fast without dangling: after the first exception, still-queued
  // tasks are skipped rather than run, but every future is drained before
  // rethrowing — queued tasks reference `fn` (and `failed`), which live in
  // this frame, so unwinding early would leave workers invoking dangling
  // references.
  std::atomic<bool> failed{false};
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(submit([&fn, &failed, i] {
      if (failed.load(std::memory_order_acquire)) return;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_release);
        throw;
      }
    }));
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace ww::util
