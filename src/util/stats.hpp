// Streaming and batch statistics used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ww::util {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max, usable over arbitrarily long simulations without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> sample, double p);

[[nodiscard]] double mean(std::span<const double> sample) noexcept;
[[nodiscard]] double stddev(std::span<const double> sample) noexcept;

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y);

/// Least-squares line y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Fixed-width histogram over [lo, hi); finite out-of-range samples clamp
/// to the edge bins so mass is conserved.  Non-finite samples (NaN, ±inf)
/// are routed to a counted drop bucket — binning them would be undefined
/// behaviour — and are excluded from total().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Deterministic quantile estimate, q in [0, 1]: walks the bins to the
  /// one holding the q-th sample and interpolates linearly inside it
  /// (samples assumed uniform within a bin).  Pure integer bin walk plus
  /// one fixed-order float expression, so the result depends only on bin
  /// contents — never on insertion order or thread count.  Returns 0 on an
  /// empty histogram; dropped (non-finite) samples are excluded.
  [[nodiscard]] double quantile(double q) const;

  /// Fold `other` into this histogram bin-by-bin.  Both sides must share
  /// the exact same layout (lo, hi, bin count) — merging differently-shaped
  /// histograms would silently rebin, so a mismatch throws instead.
  /// Drop-bucket counts accumulate too.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;  ///< Non-finite samples rejected by add().
};

}  // namespace ww::util
