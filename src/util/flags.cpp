#include "util/flags.hpp"

#include <sstream>
#include <stdexcept>

namespace ww::util {

Flags& Flags::define(const std::string& name, const std::string& help,
                     const std::string& default_value) {
  specs_[name] = Spec{help, default_value, false};
  return *this;
}

Flags& Flags::define_bool(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, "false", true};
  return *this;
}

void Flags::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end())
      throw std::invalid_argument("unknown flag --" + arg + "\n" + help());
    if (it->second.boolean) {
      values_[arg] = has_value ? value : "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::invalid_argument("flag --" + arg + " needs a value");
      value = argv[++i];
    }
    values_[arg] = value;
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const auto spec = specs_.find(name);
  if (spec != specs_.end()) return spec->second.default_value;
  throw std::out_of_range("flag --" + name + " was never defined");
}

std::string Flags::get_or(const std::string& name,
                          const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const std::string v = get_or(name, "");
  if (v.empty()) {
    const auto spec = specs_.find(name);
    if (spec != specs_.end() && !spec->second.default_value.empty())
      return std::stod(spec->second.default_value);
    return fallback;
  }
  return std::stod(v);
}

long Flags::get_long(const std::string& name, long fallback) const {
  const std::string v = get_or(name, "");
  if (v.empty()) {
    const auto spec = specs_.find(name);
    if (spec != specs_.end() && !spec->second.default_value.empty())
      return std::stol(spec->second.default_value);
    return fallback;
  }
  return std::stol(v);
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get_or(name, "false");
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Flags::help() const {
  std::ostringstream os;
  os << "Flags:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.boolean) os << " <value>";
    if (!spec.default_value.empty() && spec.default_value != "false")
      os << " (default: " << spec.default_value << ")";
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

}  // namespace ww::util
