// Aligned console tables: the benchmark harness prints paper-style rows with
// this helper so every bench produces consistent, diffable output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ww::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> row);
  /// Numeric convenience; `precision` digits after the decimal point.
  Table& add_row_numeric(const std::string& label,
                         const std::vector<double>& values, int precision = 2);

  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Formats a double with fixed precision (helper shared with benches).
  static std::string fixed(double v, int precision = 2);
  /// Formats a percentage like "12.34%".
  static std::string pct(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ww::util
