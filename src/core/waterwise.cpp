#include "core/waterwise.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/slack.hpp"
#include "env/faults.hpp"
#include "obs/trace.hpp"
#include "sched/greedy_opt.hpp"
#include "util/timer.hpp"

namespace ww::core {

namespace {

/// WW_SCHED_THREADS overrides WaterWiseConfig::solver_threads process-wide
/// (mirroring WW_PRESOLVE / WW_REFACTOR_EVERY_PIVOT): a non-negative integer
/// thread count, 0 = all cores.  Unset or unparsable leaves the config in
/// charge.  Cached: the switch is a process property, not a per-call one.
std::optional<int> sched_threads_override() noexcept {
  static const std::optional<int> value = []() -> std::optional<int> {
    const char* v = std::getenv("WW_SCHED_THREADS");
    if (v == nullptr || *v == '\0') return std::nullopt;
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || parsed < 0 || parsed > 1024)
      return std::nullopt;
    return static_cast<int>(parsed);
  }();
  return value;
}

}  // namespace

double default_solve_failure_rate() noexcept {
  static const double value = [] {
    const char* v = std::getenv("WW_FAULT_SOLVES");
    if (v == nullptr || *v == '\0') return 0.0;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || !(parsed >= 0.0) || parsed > 1.0)
      return 0.0;
    return parsed;
  }();
  return value;
}

WaterWiseScheduler::WaterWiseScheduler(WaterWiseConfig config)
    : config_(config) {
  if (config_.lambda_co2 < 0.0 || config_.lambda_h2o < 0.0)
    throw std::invalid_argument("WaterWise: lambda weights must be >= 0");
  const double sum = config_.lambda_co2 + config_.lambda_h2o;
  if (sum <= 0.0)
    throw std::invalid_argument("WaterWise: lambda weights must sum > 0");
  // The paper requires the weights to sum to one; normalize defensively.
  config_.lambda_co2 /= sum;
  config_.lambda_h2o /= sum;
  register_metrics();
  if (config_.trace) obs::Trace::instance().set_enabled(true);
}

void WaterWiseScheduler::register_metrics() {
  auto& r = registry_;
  handles_.milp_solves = r.counter("sched.milp_solves");
  handles_.soft_fallbacks = r.counter("sched.soft_fallbacks");
  handles_.nodes_explored = r.counter("sched.nodes_explored");
  handles_.simplex_iterations = r.counter("sched.simplex_iterations");
  handles_.warm_started_nodes = r.counter("sched.warm_started_nodes");
  handles_.phase1_nodes = r.counter("sched.phase1_nodes");
  handles_.refactorizations = r.counter("sched.refactorizations");
  handles_.ft_updates = r.counter("sched.ft_updates");
  handles_.seeded_incumbents = r.counter("sched.seeded_incumbents");
  handles_.presolve_rows_removed = r.counter("sched.presolve_rows_removed");
  handles_.presolve_cols_removed = r.counter("sched.presolve_cols_removed");
  handles_.presolve_nonzeros_removed =
      r.counter("sched.presolve_nonzeros_removed");
  handles_.chunks_planned = r.counter("sched.chunks_planned");
  handles_.spill_jobs = r.counter("sched.spill_jobs");
  handles_.spill_resolves = r.counter("sched.spill_resolves");
  handles_.fault_events = r.counter("sched.fault_events");
  handles_.degraded_windows = r.counter("sched.degraded_windows");
  handles_.solve_retries = r.counter("sched.solve_retries");
  handles_.fallback_placements = r.counter("sched.fallback_placements");
  handles_.deferred_jobs = r.counter("sched.deferred_jobs");
  handles_.windows = r.counter("sched.windows");
  handles_.presolve_seconds = r.gauge("sched.presolve_seconds");
  handles_.solve_seconds = r.gauge("sched.solve_seconds");
  // Service-level distributions (ROADMAP item 4).  decision_latency is
  // wall-clock and observational; queue_depth and time_to_admission are
  // sim-time/count based and byte-deterministic.
  handles_.decision_latency_s =
      r.histogram("service.decision_latency_s", 0.0, 2.0, 80);
  handles_.queue_depth = r.histogram("service.queue_depth", 0.0, 2048.0, 64);
  handles_.time_to_admission_s =
      r.histogram("service.time_to_admission_s", 0.0, 3600.0, 72);
  // Work-stealing visibility (observational, like decision_latency_s):
  // deltas of the global pool's counters around each window's fan-out.
  handles_.tasks_stolen = r.counter("pool.tasks_stolen");
  handles_.steal_attempts = r.counter("pool.steal_attempts");
  handles_.pool_depth = r.gauge("pool.queue_depth");
}

void WaterWiseScheduler::fold_stats(const SchedulerStats& delta) {
  const auto add = [this](obs::Counter c, long v) {
    if (v > 0) registry_.add(c, static_cast<std::uint64_t>(v));
  };
  add(handles_.milp_solves, delta.milp_solves);
  add(handles_.soft_fallbacks, delta.soft_fallbacks);
  add(handles_.nodes_explored, delta.nodes_explored);
  add(handles_.simplex_iterations, delta.simplex_iterations);
  add(handles_.warm_started_nodes, delta.warm_started_nodes);
  add(handles_.phase1_nodes, delta.phase1_nodes);
  add(handles_.refactorizations, delta.refactorizations);
  add(handles_.ft_updates, delta.ft_updates);
  add(handles_.seeded_incumbents, delta.seeded_incumbents);
  add(handles_.presolve_rows_removed, delta.presolve_rows_removed);
  add(handles_.presolve_cols_removed, delta.presolve_cols_removed);
  add(handles_.presolve_nonzeros_removed, delta.presolve_nonzeros_removed);
  add(handles_.chunks_planned, delta.chunks_planned);
  add(handles_.spill_jobs, delta.spill_jobs);
  add(handles_.spill_resolves, delta.spill_resolves);
  add(handles_.fault_events, delta.fault_events);
  add(handles_.degraded_windows, delta.degraded_windows);
  add(handles_.solve_retries, delta.solve_retries);
  add(handles_.fallback_placements, delta.fallback_placements);
  add(handles_.deferred_jobs, delta.deferred_jobs);
  registry_.add(handles_.presolve_seconds, delta.presolve_seconds);
  registry_.add(handles_.solve_seconds, delta.solve_seconds);
}

const SchedulerStats& WaterWiseScheduler::stats() const {
  const auto get = [this](obs::Counter c) {
    return static_cast<long>(registry_.counter_value(c));
  };
  SchedulerStats& s = stats_view_;
  s.milp_solves = get(handles_.milp_solves);
  s.soft_fallbacks = get(handles_.soft_fallbacks);
  s.nodes_explored = get(handles_.nodes_explored);
  s.simplex_iterations = get(handles_.simplex_iterations);
  s.warm_started_nodes = get(handles_.warm_started_nodes);
  s.phase1_nodes = get(handles_.phase1_nodes);
  s.refactorizations = get(handles_.refactorizations);
  s.ft_updates = get(handles_.ft_updates);
  s.seeded_incumbents = get(handles_.seeded_incumbents);
  s.presolve_rows_removed = get(handles_.presolve_rows_removed);
  s.presolve_cols_removed = get(handles_.presolve_cols_removed);
  s.presolve_nonzeros_removed = get(handles_.presolve_nonzeros_removed);
  s.chunks_planned = get(handles_.chunks_planned);
  s.spill_jobs = get(handles_.spill_jobs);
  s.spill_resolves = get(handles_.spill_resolves);
  s.fault_events = get(handles_.fault_events);
  s.degraded_windows = get(handles_.degraded_windows);
  s.solve_retries = get(handles_.solve_retries);
  s.fallback_placements = get(handles_.fallback_placements);
  s.deferred_jobs = get(handles_.deferred_jobs);
  s.presolve_seconds = registry_.gauge_value(handles_.presolve_seconds);
  s.solve_seconds = registry_.gauge_value(handles_.solve_seconds);
  return stats_view_;
}

std::size_t WaterWiseScheduler::effective_solver_threads() const noexcept {
  const int configured =
      sched_threads_override().value_or(config_.solver_threads);
  return util::WorkStealingPool::resolve_threads(
      configured <= 0 ? 0 : static_cast<std::size_t>(configured));
}

milp::Solution WaterWiseScheduler::run_model(
    const std::vector<const dc::PendingJob*>& chunk,
    const std::vector<int>& quota, const dc::ScheduleContext& ctx, bool soft,
    long budget_scale, int* out_num_assign_vars, SchedulerStats& stats) const {
  const int m = static_cast<int>(chunk.size());
  const int n = static_cast<int>(quota.size());
  milp::Model model;
  // Unnamed variables/constraints (names are synthesized on demand for
  // debugging) and pre-sized vectors: a 400-job x 10-region chunk would
  // otherwise allocate thousands of "x_j_r" strings per batch window.
  // The soft model adds up to one penalty variable and one delay row per
  // (job, region) pair on top of the assignment block.
  if (soft)
    model.reserve(2 * m * n, m + n + m * n);
  else
    model.reserve(m * n, m + n);

  // x_mn assignment binaries, laid out row-major (job-major).
  std::vector<int> x(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (int j = 0; j < m; ++j)
    for (int r = 0; r < n; ++r)
      x[static_cast<std::size_t>(j * n + r)] = model.add_binary();
  *out_num_assign_vars = m * n;

  // A region with no quota cannot take any job from this chunk.  The
  // capacity row (sum x <= 0) already implies it, but stating the fixings
  // as explicit bounds lets presolve substitute the columns out (and drop
  // the then-empty capacity row) before the simplex ever sees them.
  for (int r = 0; r < n; ++r) {
    if (quota[static_cast<std::size_t>(r)] > 0) continue;
    for (int j = 0; j < m; ++j)
      model.set_variable_bounds(x[static_cast<std::size_t>(j * n + r)], 0.0,
                                0.0);
  }

  // Objective: Eq. 8 normalized footprint costs + history reference terms.
  for (int j = 0; j < m; ++j) {
    const dc::PendingJob& p = *chunk[static_cast<std::size_t>(j)];
    std::vector<double> co2(static_cast<std::size_t>(n));
    std::vector<double> h2o(static_cast<std::size_t>(n));
    std::vector<double> usd(static_cast<std::size_t>(n));
    std::vector<double> perf(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      // Decision-time estimates: current intensities, estimated E and t.
      const footprint::Breakdown fb = ctx.footprint->job_at(
          r, ctx.now, p.est_energy_kwh, p.est_exec_s);
      const footprint::Breakdown tb = ctx.footprint->transfer(
          p.job->home_region, r, p.job->package_bytes, ctx.now);
      co2[static_cast<std::size_t>(r)] = fb.carbon_g() + tb.carbon_g();
      h2o[static_cast<std::size_t>(r)] = fb.water_l() + tb.water_l();
      usd[static_cast<std::size_t>(r)] = ctx.env->pue(r) * p.est_energy_kwh *
                                         ctx.env->electricity_price(r, ctx.now);
      perf[static_cast<std::size_t>(r)] =
          ctx.env->transfer_latency_seconds(p.job->home_region, r,
                                            p.job->package_bytes) /
          std::max(1.0, p.est_exec_s);
    }
    const double co2_max =
        std::max(1e-12, *std::max_element(co2.begin(), co2.end()));
    const double h2o_max =
        std::max(1e-12, *std::max_element(h2o.begin(), h2o.end()));
    const double usd_max =
        std::max(1e-12, *std::max_element(usd.begin(), usd.end()));
    const double perf_max =
        std::max(1e-12, *std::max_element(perf.begin(), perf.end()));
    for (int r = 0; r < n; ++r) {
      double cost = config_.lambda_co2 * co2[static_cast<std::size_t>(r)] / co2_max +
                    config_.lambda_h2o * h2o[static_cast<std::size_t>(r)] / h2o_max;
      if (config_.lambda_cost > 0.0)
        cost += config_.lambda_cost * usd[static_cast<std::size_t>(r)] / usd_max;
      if (config_.lambda_perf > 0.0)
        cost += config_.lambda_perf * perf[static_cast<std::size_t>(r)] / perf_max;
      if (config_.enable_history) {
        cost += config_.lambda_ref *
                (config_.lambda_co2 * history_->carbon_ref(r) +
                 config_.lambda_h2o * history_->water_ref(r));
      }
      // Deterministic symmetry-breaking epsilon: jobs of the same benchmark
      // share identical estimates, which otherwise makes the branch-and-
      // bound tree explore exponentially many equivalent assignments.
      cost += 1e-9 * static_cast<double>(j * n + r);
      model.set_objective_coefficient(x[static_cast<std::size_t>(j * n + r)],
                                      cost);
    }
  }

  // Eq. 9: each job placed exactly once.
  for (int j = 0; j < m; ++j) {
    std::vector<milp::Term> terms;
    terms.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      terms.push_back({x[static_cast<std::size_t>(j * n + r)], 1.0});
    (void)model.add_constraint(std::move(terms), milp::Sense::Equal, 1.0);
  }

  // Eq. 10: region capacity — this chunk's private quota, never the shared
  // window capacity, so concurrent chunks cannot double-book a region.
  for (int r = 0; r < n; ++r) {
    std::vector<milp::Term> terms;
    terms.reserve(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j)
      terms.push_back({x[static_cast<std::size_t>(j * n + r)], 1.0});
    (void)model.add_constraint(
        std::move(terms), milp::Sense::LessEqual,
        static_cast<double>(quota[static_cast<std::size_t>(r)]));
  }

  // Eq. 11 (hard) / Eq. 12-13 (soft): delay tolerance.  The remaining
  // allowance discounts time already spent waiting in the controller.
  //
  // The hard model states Eq. 11 verbatim: one row per job over the summed
  // transfer latency.  The soft model uses the paper's per-(job, region)
  // penalty variables P_mn; because exactly one x_mn is 1, the two forms
  // agree at integral points, but the per-pair form keeps the LP relaxation
  // near-integral (a per-job penalty would let fractional solutions absorb
  // the allowance "for free", opening a large LP/MIP gap that forces
  // branch-and-bound to enumerate job subsets).
  // Per-(job, region) soft-penalty bookkeeping, reused by the greedy seed:
  // the penalty variable and the exceedance its placement would incur.
  std::vector<int> soft_pvar(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n), -1);
  std::vector<double> soft_exceed(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < m; ++j) {
    const dc::PendingJob& p = *chunk[static_cast<std::size_t>(j)];
    const double waited = ctx.now - p.first_seen;
    const double allowance = std::max(
        0.0,
        ctx.tol * config_.delay_estimate_margin * p.est_exec_s - waited);
    const double penalty_rate =
        config_.sigma / std::max(1.0, ctx.tol * p.est_exec_s);
    if (soft) {
      // P_mn >= (L_mn - allowance_m) * x_mn: the exceedance this placement
      // would cause, proportional to x so the relaxation has no penalty-free
      // fractional region and LP vertices stay integral.
      for (int r = 0; r < n; ++r) {
        if (quota[static_cast<std::size_t>(r)] <= 0)
          continue;  // x_mn fixed to 0 above; no penalty row needed
        const double latency = ctx.env->transfer_latency_seconds(
            p.job->home_region, r, p.job->package_bytes);
        const double exceedance = latency - allowance;
        if (exceedance <= 0.0) continue;  // placement cannot violate
        const int pmn =
            model.add_continuous(0.0, milp::kInfinity, penalty_rate);
        (void)model.add_constraint(
            {{x[static_cast<std::size_t>(j * n + r)], exceedance}, {pmn, -1.0}},
            milp::Sense::LessEqual, 0.0);
        soft_pvar[static_cast<std::size_t>(j * n + r)] = pmn;
        soft_exceed[static_cast<std::size_t>(j * n + r)] = exceedance;
      }
      continue;
    }
    // Hard Eq. 11: since exactly one x_mn is 1, the summed-latency row is
    // equivalent to forbidding every region whose transfer latency exceeds
    // the allowance.  Expressing it as bound fixing (x_mn = 0) keeps the
    // LP relaxation a pure transportation polytope — integral vertices,
    // instant infeasibility detection — where an explicit row would admit
    // fractional "free allowance" points and force branching.
    for (int r = 0; r < n; ++r) {
      const double latency = ctx.env->transfer_latency_seconds(
          p.job->home_region, r, p.job->package_bytes);
      if (latency > allowance)
        model.set_variable_bounds(x[static_cast<std::size_t>(j * n + r)], 0.0,
                                  0.0);
    }
  }

  milp::SolverOptions options = config_.solver;
  // Scheduler-path solver budgets are node/iteration counts only — a
  // wall-clock cap would make the decision stream depend on machine speed
  // and thread contention, breaking the byte-identity contract.
  // det-ok: neutralizes the wall-clock limit; budgets are deterministic
  options.time_limit_seconds = std::numeric_limits<double>::infinity();
  if (budget_scale > 1) {
    // Retry rung: relax the deterministic budgets (saturating multiply).
    const long cap = std::numeric_limits<long>::max();
    options.max_nodes = options.max_nodes > cap / budget_scale
                            ? cap
                            : options.max_nodes * budget_scale;
    options.max_iterations = options.max_iterations > cap / budget_scale
                                 ? cap
                                 : options.max_iterations * budget_scale;
  }
  if (!soft && config_.enable_soft_constraints) {
    // With softening enabled the hard model is a feasibility probe: when its
    // LP relaxation is fractionally feasible but no integral point exists
    // (capacity overflow against tight delay rows), branch-and-bound would
    // have to enumerate the tree to prove infeasibility.  Cap the probe's
    // effort — an inconclusive probe falls through to the soft model
    // (Algorithm 1, lines 10-11) exactly like a proven-infeasible one.
    // A conservative (false-negative) probe is harmless: softening is
    // always valid, so the probe gets a small budget.  In the soft-disabled
    // ablation the hard model is the primary model and keeps (scaled) full
    // budgets, so the ladder's retry rung has headroom to use.
    options.max_nodes = std::min<long>(options.max_nodes, 200);
  }

  // Greedy seed incumbent: jobs most-constrained-first (longest estimated
  // runtime, then chunk order), each placed at the cheapest admissible
  // region with remaining quota.  The resulting feasible point enters
  // branch-and-bound as the initial upper bound, so best-first search
  // prunes from node 0 instead of waiting for its first dive to bottom out.
  //
  // The budget-capped *hard* model is a feasibility probe (Algorithm 1,
  // lines 10-11): an inconclusive probe must stay unusable so the chunk
  // falls through to the penalty-optimized soft model.  A seed would make
  // the probe always usable and commit the raw greedy assignment instead,
  // so seeding applies only to the soft model — where the weak relaxation
  // actually branches — and to the soft-disabled ablation.
  std::optional<milp::Solution> seed;
  if (soft || !config_.enable_soft_constraints) {
    std::vector<int> order(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) order[static_cast<std::size_t>(j)] = j;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return chunk[static_cast<std::size_t>(a)]->est_exec_s >
             chunk[static_cast<std::size_t>(b)]->est_exec_s;
    });
    std::vector<int> quota_left(quota);
    std::vector<double> vals(static_cast<std::size_t>(model.num_variables()),
                             0.0);
    bool ok = true;
    for (const int j : order) {
      int chosen = -1;
      double chosen_cost = 0.0;
      for (int r = 0; r < n; ++r) {
        if (quota_left[static_cast<std::size_t>(r)] <= 0) continue;
        const auto xi = static_cast<std::size_t>(x[static_cast<std::size_t>(
            j * n + r)]);
        const milp::Variable& v = model.variable(static_cast<int>(xi));
        if (v.upper < 0.5) continue;  // hard-model delay forbids this region
        double c = v.objective;
        if (soft && soft_pvar[static_cast<std::size_t>(j * n + r)] >= 0)
          c += model
                   .variable(soft_pvar[static_cast<std::size_t>(j * n + r)])
                   .objective *
               soft_exceed[static_cast<std::size_t>(j * n + r)];
        if (chosen < 0 || c < chosen_cost) {
          chosen = r;
          chosen_cost = c;
        }
      }
      if (chosen < 0) {
        ok = false;  // no admissible region left; let the solver decide
        break;
      }
      --quota_left[static_cast<std::size_t>(chosen)];
      const auto xi =
          static_cast<std::size_t>(x[static_cast<std::size_t>(j * n + chosen)]);
      vals[xi] = 1.0;
      if (soft && soft_pvar[static_cast<std::size_t>(j * n + chosen)] >= 0)
        vals[static_cast<std::size_t>(
            soft_pvar[static_cast<std::size_t>(j * n + chosen)])] =
            soft_exceed[static_cast<std::size_t>(j * n + chosen)];
    }
    if (ok) {
      seed = milp::Solution::incumbent_from_heuristic(model, std::move(vals));
      ++stats.seeded_incumbents;
    }
  }

  milp::Solution sol =
      milp::solve(model, options, seed ? &*seed : nullptr);
  stats.add_solve(sol);
  return sol;
}

std::vector<ChunkPlan> WaterWiseScheduler::plan_chunks(
    const std::vector<const dc::PendingJob*>& selected,
    const std::vector<int>& caps) const {
  const int n = static_cast<int>(caps.size());
  const auto chunk_cap = static_cast<std::size_t>(
      std::max(1, config_.max_jobs_per_solve));
  std::vector<ChunkPlan> plans;
  if (selected.empty()) return plans;
  const std::size_t num_chunks = (selected.size() + chunk_cap - 1) / chunk_cap;
  plans.resize(num_chunks);
  for (std::size_t k = 0; k < num_chunks; ++k) {
    const std::size_t begin = k * chunk_cap;
    const std::size_t end = std::min(selected.size(), begin + chunk_cap);
    plans[k].index = static_cast<int>(k);
    plans[k].jobs.assign(
        selected.begin() + static_cast<std::ptrdiff_t>(begin),
        selected.begin() + static_cast<std::ptrdiff_t>(end));
    plans[k].quota.assign(static_cast<std::size_t>(n), 0);
  }
  if (num_chunks == 1) {
    // The common case: one chunk owns the whole window's capacity, making
    // the pipeline placement-identical to a monolithic solve.
    plans[0].quota = caps;
    return plans;
  }

  // Apportion every region's capacity across chunks proportionally to chunk
  // size by the largest-remainder method; remainder ties break toward the
  // lower chunk index.  All capacity is handed out — slots no chunk uses
  // flow back through ChunkResult::leftover into the spill pool.
  std::size_t total_jobs = 0;
  for (const ChunkPlan& p : plans) total_jobs += p.jobs.size();
  std::vector<long> chunk_total(num_chunks, 0);
  std::vector<std::pair<double, std::size_t>> frac(num_chunks);
  for (int r = 0; r < n; ++r) {
    const long cap = caps[static_cast<std::size_t>(r)];
    if (cap <= 0) continue;
    long handed = 0;
    for (std::size_t k = 0; k < num_chunks; ++k) {
      const double exact =
          static_cast<double>(cap) *
          (static_cast<double>(plans[k].jobs.size()) /
           static_cast<double>(total_jobs));
      const long share = static_cast<long>(std::floor(exact));
      plans[k].quota[static_cast<std::size_t>(r)] += static_cast<int>(share);
      chunk_total[k] += share;
      handed += share;
      frac[k] = {exact - static_cast<double>(share), k};
    }
    // Largest fractional remainder first; equal remainders go to the lower
    // chunk index (stable sort on a deterministically ordered input).
    std::stable_sort(frac.begin(), frac.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (long i = 0; i < cap - handed; ++i) {
      const std::size_t k =
          frac[static_cast<std::size_t>(i) % num_chunks].second;
      plans[k].quota[static_cast<std::size_t>(r)] += 1;
      chunk_total[k] += 1;
    }
  }

  // Repair pass: per-region rounding can leave a chunk with fewer total
  // slots than jobs (adversarial tiny-capacity windows: many cap-1 regions
  // whose remainders all land on one chunk).  Move single slots from the
  // largest-surplus chunk (ties: lower index), taking from its
  // largest-quota region (ties: lower region), until every chunk covers
  // its job count.  Total capacity >= total selected jobs (the slack
  // manager guarantees it), so enough surplus always exists.
  for (std::size_t k = 0; k < num_chunks; ++k) {
    while (chunk_total[k] < static_cast<long>(plans[k].jobs.size())) {
      std::size_t donor = num_chunks;
      long best_surplus = 0;
      for (std::size_t j = 0; j < num_chunks; ++j) {
        const long surplus =
            chunk_total[j] - static_cast<long>(plans[j].jobs.size());
        if (surplus > best_surplus) {
          best_surplus = surplus;
          donor = j;
        }
      }
      if (donor == num_chunks) break;  // defensive: selected exceeded caps
      int region = -1;
      for (int r = 0; r < n; ++r) {
        if (plans[donor].quota[static_cast<std::size_t>(r)] <= 0) continue;
        if (region < 0 || plans[donor].quota[static_cast<std::size_t>(r)] >
                              plans[donor].quota[static_cast<std::size_t>(
                                  region)])
          region = r;
      }
      if (region < 0) break;  // defensive: donor surplus was stale
      plans[donor].quota[static_cast<std::size_t>(region)] -= 1;
      chunk_total[donor] -= 1;
      plans[k].quota[static_cast<std::size_t>(region)] += 1;
      chunk_total[k] += 1;
    }
  }
  return plans;
}

ChunkResult WaterWiseScheduler::solve_one(const ChunkPlan& plan,
                                          const dc::ScheduleContext& ctx)
    const {
  if (config_.chunk_solve_hook) config_.chunk_solve_hook(plan.index);
  const int n = static_cast<int>(plan.quota.size());
  ChunkResult out;
  out.index = plan.index;
  out.leftover = plan.quota;
  out.shard = registry_.make_shard();
  int num_x = 0;

  obs::Span span("sched.chunk_solve");
  span.arg("chunk", plan.index);
  span.arg("jobs", plan.jobs.size());
  // Retry-ladder rung that produced the chunk's placements: 1 = primary
  // MILP, 2 = relaxed-budget retry, 3 = greedy fallback.  Annotated on the
  // span together with the per-solve solver counters.
  int rung = 1;
  const auto annotate = [&span, &out](int final_rung) {
    span.arg("rung", final_rung);
    span.arg("milp_solves", out.stats.milp_solves);
    span.arg("simplex_iterations", out.stats.simplex_iterations);
    span.arg("nodes_explored", out.stats.nodes_explored);
    span.arg("ft_updates", out.stats.ft_updates);
    span.arg("presolve_rows_removed", out.stats.presolve_rows_removed);
    span.arg("retries", out.stats.solve_retries);
    span.arg("decisions", out.decisions.size());
  };

  // Injected solve failure (WW_FAULT_SOLVES / config): a pure function of
  // (seed, window, chunk, attempt), so the same campaign hits the same
  // ladder rungs at every thread count.  A hit discards the rung's outcome
  // exactly as a real solver crash would.
  const auto injected = [&](int attempt) {
    if (!env::injected_solve_failure(config_.fault_seed, ctx.now, plan.index,
                                     attempt, config_.solve_failure_rate))
      return false;
    ++out.stats.fault_events;
    return true;
  };

  // --- Retry-then-degrade ladder ------------------------------------------
  // Rung 0: hard feasibility probe (soft-enabled path only).
  // Rung 1: primary model (soft, or hard in the soft-disabled ablation).
  // Rung 2: one retry of the primary model with relaxed node/iteration
  //         budgets — skipped when the model is *proven* infeasible, since
  //         a bigger tree can only re-prove it.
  // Rung 3: guaranteed-feasible greedy placement against the chunk quota.
  // Remainder: spill-eligible, then an explicit deferral — never a drop.
  milp::Solution sol;
  bool proven_infeasible = false;
  if (config_.enable_soft_constraints) {
    sol = run_model(plan.jobs, plan.quota, ctx, /*soft=*/false,
                    /*budget_scale=*/1, &num_x, out.stats);
    if (injected(0)) sol = milp::Solution{};
    if (!sol.usable()) {
      // Algorithm 1, lines 10-11: soften and retry.
      ++out.stats.soft_fallbacks;
      sol = run_model(plan.jobs, plan.quota, ctx, /*soft=*/true,
                      /*budget_scale=*/1, &num_x, out.stats);
      if (injected(1)) sol = milp::Solution{};
    }
  } else {
    sol = run_model(plan.jobs, plan.quota, ctx, /*soft=*/false,
                    /*budget_scale=*/1, &num_x, out.stats);
    proven_infeasible = sol.status == milp::Status::Infeasible;
    // An injected failure loses the outcome *and* the infeasibility proof.
    if (injected(1)) {
      sol = milp::Solution{};
      proven_infeasible = false;
    }
  }

  if (!sol.usable() && !proven_infeasible) {
    ++out.stats.solve_retries;
    sol = run_model(plan.jobs, plan.quota, ctx,
                    /*soft=*/config_.enable_soft_constraints,
                    config_.retry_budget_multiplier, &num_x, out.stats);
    if (injected(2)) sol = milp::Solution{};
    if (sol.usable()) rung = 2;
  }

  if (!sol.usable()) {
    // Rung 3: place what the quota admits via the deterministic greedy;
    // delay violations are allowed exactly when the soft model would have
    // traded them (the soft-disabled ablation keeps Eq. 11 hard, so there
    // the greedy defers instead — the backlog is that ablation's
    // measurement).  The remainder spills, then defers explicitly.
    const std::vector<int> assign = sched::greedy_fallback_assign(
        plan.jobs, out.leftover, ctx, config_.lambda_co2, config_.lambda_h2o,
        config_.delay_estimate_margin,
        /*allow_delay_violations=*/config_.enable_soft_constraints);
    for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
      const dc::PendingJob* p = plan.jobs[j];
      const int r = assign[j];
      if (r < 0) {
        out.unplaced.push_back(p);
        continue;
      }
      --out.leftover[static_cast<std::size_t>(r)];
      ++out.stats.fallback_placements;
      const double start =
          ctx.now + ctx.env->transfer_latency_seconds(p->job->home_region, r,
                                                      p->job->package_bytes);
      out.decisions.push_back(dc::Decision{p->job->id, r, start, 1.0});
      // Sim-time wait from first sighting to admission: deterministic.
      out.shard.observe(handles_.time_to_admission_s, ctx.now - p->first_seen);
    }
    annotate(3);
    return out;
  }

  for (int j = 0; j < static_cast<int>(plan.jobs.size()); ++j) {
    const dc::PendingJob& p = *plan.jobs[static_cast<std::size_t>(j)];
    int chosen = -1;
    for (int r = 0; r < n; ++r) {
      if (sol.values[static_cast<std::size_t>(j * n + r)] > 0.5) {
        chosen = r;
        break;
      }
    }
    // Eq. 9 places every job and Eq. 10 caps placements at the quota, so
    // both guards are defensive (a budget-limited incumbent is still
    // feasible); an unplaced job is spill-eligible rather than dropped.
    if (chosen < 0 || out.leftover[static_cast<std::size_t>(chosen)] <= 0) {
      out.unplaced.push_back(&p);
      continue;
    }
    --out.leftover[static_cast<std::size_t>(chosen)];
    const double start = ctx.now + ctx.env->transfer_latency_seconds(
                                       p.job->home_region, chosen,
                                       p.job->package_bytes);
    out.decisions.push_back(dc::Decision{p.job->id, chosen, start, 1.0});
    out.shard.observe(handles_.time_to_admission_s, ctx.now - p.first_seen);
  }
  annotate(rung);
  return out;
}

std::vector<dc::Decision> WaterWiseScheduler::commit(
    std::vector<ChunkResult>&& results, const dc::ScheduleContext& ctx) {
  obs::Span span("sched.commit");
  span.arg("chunks", results.size());
  std::vector<dc::Decision> decisions;
  if (results.empty()) return decisions;
  // Deterministic reduction: chunk-index order, never completion order.
  std::sort(results.begin(), results.end(),
            [](const ChunkResult& a, const ChunkResult& b) {
              return a.index < b.index;
            });

  // Fail fast on any chunk whose solve threw inside the pooled fan-out:
  // surface the lowest-index failure with chunk/window context instead of
  // committing a batch that silently lost a chunk's decisions.
  for (const ChunkResult& r : results) {
    if (r.error.empty()) continue;
    throw std::runtime_error("WaterWise: chunk " + std::to_string(r.index) +
                             " solve failed at window t=" +
                             std::to_string(ctx.now) + ": " + r.error);
  }

  std::vector<int> spill(results.front().leftover.size(), 0);
  std::vector<const dc::PendingJob*> unplaced;
  int next_index = 0;
  for (ChunkResult& r : results) {
    // Registry accumulation in chunk-index order (results are sorted
    // above), so counter and histogram bytes match at every thread count.
    fold_stats(r.stats);
    registry_.merge_shard(r.shard);
    decisions.insert(decisions.end(), r.decisions.begin(), r.decisions.end());
    for (std::size_t i = 0; i < spill.size(); ++i)
      spill[i] += r.leftover[i];
    unplaced.insert(unplaced.end(), r.unplaced.begin(), r.unplaced.end());
    next_index = r.index + 1;
  }

  long spill_total = 0;
  for (const int s : spill) spill_total += s;
  if (unplaced.empty()) return decisions;
  if (spill_total <= 0) {
    // No pooled quota left: every unplaced job is an explicit deferral to
    // the next batch window.
    registry_.add(handles_.deferred_jobs, unplaced.size());
    return decisions;
  }
  const obs::Span spill_span("sched.spill");

  // One serial spill re-solve: jobs no chunk placed get the pooled unused
  // quota, exactly as a serial scheduler with the same quotas would.  Jobs
  // beyond the pool (or beyond one chunk's worth) stay pending and reappear
  // in the next batch window, matching the pre-pipeline deferral behavior.
  ChunkPlan rest;
  rest.index = next_index;
  const long unplaced_total = static_cast<long>(unplaced.size());
  rest.jobs = std::move(unplaced);
  const auto spill_jobs = static_cast<std::size_t>(
      std::min<long>({static_cast<long>(rest.jobs.size()), spill_total,
                      static_cast<long>(
                          std::max(1, config_.max_jobs_per_solve))}));
  rest.jobs.resize(spill_jobs);
  rest.quota = std::move(spill);
  registry_.add(handles_.spill_resolves);
  registry_.add(handles_.spill_jobs, rest.jobs.size());
  ChunkResult rr;
  try {
    rr = solve_one(rest, ctx);
  } catch (const std::exception& e) {
    throw std::runtime_error("WaterWise: spill re-solve (chunk " +
                             std::to_string(rest.index) +
                             ") failed at window t=" + std::to_string(ctx.now) +
                             ": " + e.what());
  }
  fold_stats(rr.stats);
  registry_.merge_shard(rr.shard);
  decisions.insert(decisions.end(), rr.decisions.begin(), rr.decisions.end());
  // Whatever even the spill re-solve could not place defers explicitly:
  // jobs truncated from the spill chunk plus the re-solve's own unplaced.
  registry_.add(
      handles_.deferred_jobs,
      static_cast<std::uint64_t>(
          unplaced_total - static_cast<long>(rr.decisions.size())));
  return decisions;
}

std::vector<dc::Decision> WaterWiseScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  // Observability wrapper: spans and service-level histograms around the
  // untouched decision logic.  Everything recorded here is write-only —
  // nothing below reads a clock or a metric — so the decision stream is
  // byte-identical with tracing/metrics on or off.
  obs::Span span("sched.window");
  span.arg("t", ctx.now);
  span.arg("batch", batch.size());
  const util::Stopwatch watch;
  registry_.add(handles_.windows);
  registry_.observe(handles_.queue_depth, static_cast<double>(batch.size()));
  std::vector<dc::Decision> decisions = schedule_impl(batch, ctx);
  registry_.observe(handles_.decision_latency_s, watch.elapsed_seconds());
  span.arg("decisions", decisions.size());
  return decisions;
}

std::vector<dc::Decision> WaterWiseScheduler::schedule_impl(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  const int n = ctx.capacity->num_regions();
  if (!history_ || history_->observations() == 0) {
    // Lazily size the learner to the environment.
    if (!history_)
      history_ = std::make_unique<HistoryLearner>(n, config_.history_window);
  }

  // Feed the history learner the current intensity landscape.
  {
    std::vector<double> ci(static_cast<std::size_t>(n));
    std::vector<double> wi(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ci[static_cast<std::size_t>(r)] = ctx.env->carbon_intensity(r, ctx.now);
      wi[static_cast<std::size_t>(r)] = ctx.env->water_intensity(r, ctx.now);
    }
    history_->observe(ci, wi);
  }

  std::vector<int> caps(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    caps[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);
  // Degraded-mode state machine: observe this window, clamp faulty regions'
  // caps (serial — the machine is scheduler state, not chunk state).
  update_region_health(ctx, caps);
  int total_cap = 0;
  for (const int c : caps) total_cap += c;
  if (batch.empty()) return {};
  if (total_cap <= 0) {
    // Nothing placeable this window (e.g. a total outage): every pending
    // job is an explicit deferral, re-examined next window.
    registry_.add(handles_.deferred_jobs, batch.size());
    return {};
  }

  // Algorithm 1: oversubscription goes through the slack manager.
  std::vector<const dc::PendingJob*> selected;
  if (static_cast<int>(batch.size()) > total_cap && config_.enable_slack_manager) {
    const auto order = select_most_urgent(
        batch, ctx, static_cast<std::size_t>(total_cap));
    selected.reserve(order.size());
    for (const std::size_t i : order) selected.push_back(&batch[i]);
  } else {
    selected.reserve(batch.size());
    for (const auto& p : batch) selected.push_back(&p);
    if (static_cast<int>(selected.size()) > total_cap)
      selected.resize(static_cast<std::size_t>(total_cap));
  }
  // Jobs the slack manager (or cap truncation) left out defer explicitly.
  registry_.add(handles_.deferred_jobs,
                batch.size() - selected.size());

  // Plan -> solve -> commit: quota partition, pure per-chunk solves (fanned
  // across the pool when configured), deterministic in-order merge.
  std::vector<ChunkPlan> plans = plan_chunks(selected, caps);
  registry_.add(handles_.chunks_planned, plans.size());
  std::vector<ChunkResult> results(plans.size());
  // Exception safety across the fan-out: a throwing chunk solve records its
  // message in ChunkResult::error (never crosses the pool boundary raw);
  // commit() re-throws the lowest-index failure with chunk/window context.
  const auto guarded_solve = [&](std::size_t k) {
    try {
      results[k] = solve_one(plans[k], ctx);
    } catch (const std::exception& e) {
      results[k].index = plans[k].index;
      results[k].error = e.what();
    } catch (...) {
      results[k].index = plans[k].index;
      results[k].error = "unknown exception";
    }
  };
  const std::size_t threads = effective_solver_threads();
  if (threads > 1 && plans.size() > 1) {
    // Fan chunk solves onto the process-global work-stealing pool.  When
    // this window is itself a task on that pool (a campaign scenario), the
    // spawns land on the current worker's own deque and idle workers steal
    // them — one scheduler for both axes, no nested-pool oversubscription.
    // TaskGroup::wait() helps while waiting, so this thread executes
    // pending chunks instead of parking.  guarded_solve never throws
    // (errors land in ChunkResult::error), and commit() below merges in
    // chunk-index order, so steal interleavings cannot reach the outputs.
    util::WorkStealingPool& pool = util::WorkStealingPool::global();
    pool.ensure_workers(threads);
    const std::uint64_t stolen_before = pool.tasks_stolen();
    const std::uint64_t attempts_before = pool.steal_attempts();
    {
      util::TaskGroup group(pool);
      for (std::size_t k = 0; k < plans.size(); ++k)
        group.spawn([&guarded_solve, k] { guarded_solve(k); });
      registry_.set(handles_.pool_depth,
                    static_cast<double>(pool.queue_depth()));
      group.wait();
    }
    // Observational steal visibility: deltas include steals performed for
    // concurrently running scenarios, so these are never byte-compared.
    registry_.add(handles_.tasks_stolen, pool.tasks_stolen() - stolen_before);
    registry_.add(handles_.steal_attempts,
                  pool.steal_attempts() - attempts_before);
  } else {
    for (std::size_t k = 0; k < plans.size(); ++k) guarded_solve(k);
  }
  return commit(std::move(results), ctx);
}

void WaterWiseScheduler::update_region_health(const dc::ScheduleContext& ctx,
                                              std::vector<int>& caps) {
  if (!config_.degraded.enabled) return;
  const DegradedModeConfig& dm = config_.degraded;
  const int n = ctx.capacity->num_regions();
  health_.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    RegionHealth& h = health_[static_cast<std::size_t>(r)];
    const int cap_now = ctx.capacity->capacity(r);
    const int prev_max = h.max_capacity_seen;
    h.max_capacity_seen = std::max(h.max_capacity_seen, cap_now);

    // Fault events this window: capacity below the best we have seen (an
    // outage or flap is eating servers), or an observed intensity jump too
    // steep for the smooth hourly-interpolated series (an injected forecast
    // bias stepping in or out).
    const bool capacity_reduced = prev_max > 0 && cap_now < prev_max;
    const bool outage = prev_max > 0 && cap_now <= 0;
    const double ci = ctx.env->carbon_intensity(r, ctx.now);
    const double wi = ctx.env->water_intensity(r, ctx.now);
    bool intensity_jump = false;
    if (h.has_obs && ctx.now - h.last_obs_time <= dm.flap_window_s) {
      const double ci_rel =
          std::abs(ci - h.last_ci) / std::max(std::abs(h.last_ci), 1e-9);
      const double wi_rel =
          std::abs(wi - h.last_wi) / std::max(std::abs(h.last_wi), 1e-9);
      intensity_jump = ci_rel > dm.intensity_jump_fraction ||
                       wi_rel > dm.intensity_jump_fraction;
    }
    h.last_ci = ci;
    h.last_wi = wi;
    h.last_obs_time = ctx.now;
    h.has_obs = true;

    const bool event = capacity_reduced || intensity_jump;
    if (event) {
      registry_.add(handles_.fault_events);
      h.event_score = std::min(h.event_score + 1, 1000);
      h.clean_windows = 0;
    } else {
      ++h.clean_windows;
    }

    ++h.windows_in_state;
    switch (h.state) {
      case RegionHealth::State::Normal:
        if (outage || h.event_score >= dm.degrade_after_events) {
          h.state = RegionHealth::State::Degraded;
          h.windows_in_state = 0;
        }
        break;
      case RegionHealth::State::Degraded:
        if (!event && !capacity_reduced &&
            h.clean_windows >= dm.recover_after_clean) {
          h.state = RegionHealth::State::Recovery;
          h.windows_in_state = 0;
          h.event_score = 0;
        }
        break;
      case RegionHealth::State::Recovery:
        if (event) {
          h.state = RegionHealth::State::Degraded;
          h.windows_in_state = 0;
        } else if (h.windows_in_state >= dm.recovery_windows) {
          h.state = RegionHealth::State::Normal;
          h.windows_in_state = 0;
        }
        break;
    }

    // Hard-cap safety rails: a Degraded region takes almost no new work; a
    // recovering one ramps back gradually instead of absorbing the whole
    // backlog the moment the fault clears.
    auto& cap_ref = caps[static_cast<std::size_t>(r)];
    if (h.state == RegionHealth::State::Degraded) {
      registry_.add(handles_.degraded_windows);
      cap_ref = std::min(
          cap_ref, static_cast<int>(std::floor(dm.degraded_cap_fraction *
                                               static_cast<double>(cap_now))));
    } else if (h.state == RegionHealth::State::Recovery) {
      cap_ref = std::min(
          cap_ref,
          std::max(1, static_cast<int>(std::floor(
                          dm.recovery_cap_fraction *
                          static_cast<double>(cap_now)))));
    }
  }
}

}  // namespace ww::core
