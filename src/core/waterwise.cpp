#include "core/waterwise.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/slack.hpp"

namespace ww::core {

WaterWiseScheduler::WaterWiseScheduler(WaterWiseConfig config)
    : config_(config) {
  if (config_.lambda_co2 < 0.0 || config_.lambda_h2o < 0.0)
    throw std::invalid_argument("WaterWise: lambda weights must be >= 0");
  const double sum = config_.lambda_co2 + config_.lambda_h2o;
  if (sum <= 0.0)
    throw std::invalid_argument("WaterWise: lambda weights must sum > 0");
  // The paper requires the weights to sum to one; normalize defensively.
  config_.lambda_co2 /= sum;
  config_.lambda_h2o /= sum;
}

milp::Solution WaterWiseScheduler::run_model(
    const std::vector<const dc::PendingJob*>& chunk,
    const std::vector<int>& caps, const dc::ScheduleContext& ctx, bool soft,
    int* out_num_assign_vars) {
  const int m = static_cast<int>(chunk.size());
  const int n = static_cast<int>(caps.size());
  milp::Model model;
  // Unnamed variables/constraints (names are synthesized on demand for
  // debugging) and pre-sized vectors: a 400-job x 10-region chunk would
  // otherwise allocate thousands of "x_j_r" strings per batch window.
  // The soft model adds up to one penalty variable and one delay row per
  // (job, region) pair on top of the assignment block.
  if (soft)
    model.reserve(2 * m * n, m + n + m * n);
  else
    model.reserve(m * n, m + n);

  // x_mn assignment binaries, laid out row-major (job-major).
  std::vector<int> x(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (int j = 0; j < m; ++j)
    for (int r = 0; r < n; ++r)
      x[static_cast<std::size_t>(j * n + r)] = model.add_binary();
  *out_num_assign_vars = m * n;

  // A region with no free capacity cannot take any job this window.  The
  // capacity row (sum x <= 0) already implies it, but stating the fixings
  // as explicit bounds lets presolve substitute the columns out (and drop
  // the then-empty capacity row) before the simplex ever sees them.
  for (int r = 0; r < n; ++r) {
    if (caps[static_cast<std::size_t>(r)] > 0) continue;
    for (int j = 0; j < m; ++j)
      model.set_variable_bounds(x[static_cast<std::size_t>(j * n + r)], 0.0,
                                0.0);
  }

  // Objective: Eq. 8 normalized footprint costs + history reference terms.
  for (int j = 0; j < m; ++j) {
    const dc::PendingJob& p = *chunk[static_cast<std::size_t>(j)];
    std::vector<double> co2(static_cast<std::size_t>(n));
    std::vector<double> h2o(static_cast<std::size_t>(n));
    std::vector<double> usd(static_cast<std::size_t>(n));
    std::vector<double> perf(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      // Decision-time estimates: current intensities, estimated E and t.
      const footprint::Breakdown fb = ctx.footprint->job_at(
          r, ctx.now, p.est_energy_kwh, p.est_exec_s);
      const footprint::Breakdown tb = ctx.footprint->transfer(
          p.job->home_region, r, p.job->package_bytes, ctx.now);
      co2[static_cast<std::size_t>(r)] = fb.carbon_g() + tb.carbon_g();
      h2o[static_cast<std::size_t>(r)] = fb.water_l() + tb.water_l();
      usd[static_cast<std::size_t>(r)] = ctx.env->pue(r) * p.est_energy_kwh *
                                         ctx.env->electricity_price(r, ctx.now);
      perf[static_cast<std::size_t>(r)] =
          ctx.env->transfer_latency_seconds(p.job->home_region, r,
                                            p.job->package_bytes) /
          std::max(1.0, p.est_exec_s);
    }
    const double co2_max =
        std::max(1e-12, *std::max_element(co2.begin(), co2.end()));
    const double h2o_max =
        std::max(1e-12, *std::max_element(h2o.begin(), h2o.end()));
    const double usd_max =
        std::max(1e-12, *std::max_element(usd.begin(), usd.end()));
    const double perf_max =
        std::max(1e-12, *std::max_element(perf.begin(), perf.end()));
    for (int r = 0; r < n; ++r) {
      double cost = config_.lambda_co2 * co2[static_cast<std::size_t>(r)] / co2_max +
                    config_.lambda_h2o * h2o[static_cast<std::size_t>(r)] / h2o_max;
      if (config_.lambda_cost > 0.0)
        cost += config_.lambda_cost * usd[static_cast<std::size_t>(r)] / usd_max;
      if (config_.lambda_perf > 0.0)
        cost += config_.lambda_perf * perf[static_cast<std::size_t>(r)] / perf_max;
      if (config_.enable_history) {
        cost += config_.lambda_ref *
                (config_.lambda_co2 * history_->carbon_ref(r) +
                 config_.lambda_h2o * history_->water_ref(r));
      }
      // Deterministic symmetry-breaking epsilon: jobs of the same benchmark
      // share identical estimates, which otherwise makes the branch-and-
      // bound tree explore exponentially many equivalent assignments.
      cost += 1e-9 * static_cast<double>(j * n + r);
      model.set_objective_coefficient(x[static_cast<std::size_t>(j * n + r)],
                                      cost);
    }
  }

  // Eq. 9: each job placed exactly once.
  for (int j = 0; j < m; ++j) {
    std::vector<milp::Term> terms;
    terms.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      terms.push_back({x[static_cast<std::size_t>(j * n + r)], 1.0});
    (void)model.add_constraint(std::move(terms), milp::Sense::Equal, 1.0);
  }

  // Eq. 10: region capacity.
  for (int r = 0; r < n; ++r) {
    std::vector<milp::Term> terms;
    terms.reserve(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j)
      terms.push_back({x[static_cast<std::size_t>(j * n + r)], 1.0});
    (void)model.add_constraint(
        std::move(terms), milp::Sense::LessEqual,
        static_cast<double>(caps[static_cast<std::size_t>(r)]));
  }

  // Eq. 11 (hard) / Eq. 12-13 (soft): delay tolerance.  The remaining
  // allowance discounts time already spent waiting in the controller.
  //
  // The hard model states Eq. 11 verbatim: one row per job over the summed
  // transfer latency.  The soft model uses the paper's per-(job, region)
  // penalty variables P_mn; because exactly one x_mn is 1, the two forms
  // agree at integral points, but the per-pair form keeps the LP relaxation
  // near-integral (a per-job penalty would let fractional solutions absorb
  // the allowance "for free", opening a large LP/MIP gap that forces
  // branch-and-bound to enumerate job subsets).
  // Per-(job, region) soft-penalty bookkeeping, reused by the greedy seed:
  // the penalty variable and the exceedance its placement would incur.
  std::vector<int> soft_pvar(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n), -1);
  std::vector<double> soft_exceed(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < m; ++j) {
    const dc::PendingJob& p = *chunk[static_cast<std::size_t>(j)];
    const double waited = ctx.now - p.first_seen;
    const double allowance = std::max(
        0.0,
        ctx.tol * config_.delay_estimate_margin * p.est_exec_s - waited);
    const double penalty_rate =
        config_.sigma / std::max(1.0, ctx.tol * p.est_exec_s);
    if (soft) {
      // P_mn >= (L_mn - allowance_m) * x_mn: the exceedance this placement
      // would cause, proportional to x so the relaxation has no penalty-free
      // fractional region and LP vertices stay integral.
      for (int r = 0; r < n; ++r) {
        if (caps[static_cast<std::size_t>(r)] <= 0)
          continue;  // x_mn fixed to 0 above; no penalty row needed
        const double latency = ctx.env->transfer_latency_seconds(
            p.job->home_region, r, p.job->package_bytes);
        const double exceedance = latency - allowance;
        if (exceedance <= 0.0) continue;  // placement cannot violate
        const int pmn =
            model.add_continuous(0.0, milp::kInfinity, penalty_rate);
        (void)model.add_constraint(
            {{x[static_cast<std::size_t>(j * n + r)], exceedance}, {pmn, -1.0}},
            milp::Sense::LessEqual, 0.0);
        soft_pvar[static_cast<std::size_t>(j * n + r)] = pmn;
        soft_exceed[static_cast<std::size_t>(j * n + r)] = exceedance;
      }
      continue;
    }
    // Hard Eq. 11: since exactly one x_mn is 1, the summed-latency row is
    // equivalent to forbidding every region whose transfer latency exceeds
    // the allowance.  Expressing it as bound fixing (x_mn = 0) keeps the
    // LP relaxation a pure transportation polytope — integral vertices,
    // instant infeasibility detection — where an explicit row would admit
    // fractional "free allowance" points and force branching.
    for (int r = 0; r < n; ++r) {
      const double latency = ctx.env->transfer_latency_seconds(
          p.job->home_region, r, p.job->package_bytes);
      if (latency > allowance)
        model.set_variable_bounds(x[static_cast<std::size_t>(j * n + r)], 0.0,
                                  0.0);
    }
  }

  milp::SolverOptions options = config_.solver;
  if (!soft) {
    // The hard model is a feasibility probe: when its LP relaxation is
    // fractionally feasible but no integral point exists (capacity overflow
    // against tight delay rows), branch-and-bound would have to enumerate
    // the tree to prove infeasibility.  Cap the probe's effort — an
    // inconclusive probe falls through to the soft model (Algorithm 1,
    // lines 10-11) exactly like a proven-infeasible one.
    // A conservative (false-negative) probe is harmless: softening is
    // always valid, so the probe gets a small budget.
    options.max_nodes = std::min<long>(options.max_nodes, 200);
    options.time_limit_seconds = std::min(options.time_limit_seconds, 0.5);
  }

  // Greedy seed incumbent: jobs most-constrained-first (longest estimated
  // runtime, then chunk order), each placed at the cheapest admissible
  // region with remaining capacity.  The resulting feasible point enters
  // branch-and-bound as the initial upper bound, so best-first search
  // prunes from node 0 instead of waiting for its first dive to bottom out.
  //
  // The budget-capped *hard* model is a feasibility probe (Algorithm 1,
  // lines 10-11): an inconclusive probe must stay unusable so the chunk
  // falls through to the penalty-optimized soft model.  A seed would make
  // the probe always usable and commit the raw greedy assignment instead,
  // so seeding applies only to the soft model — where the weak relaxation
  // actually branches — and to the soft-disabled ablation.
  std::optional<milp::Solution> seed;
  if (soft || !config_.enable_soft_constraints) {
    std::vector<int> order(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) order[static_cast<std::size_t>(j)] = j;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return chunk[static_cast<std::size_t>(a)]->est_exec_s >
             chunk[static_cast<std::size_t>(b)]->est_exec_s;
    });
    std::vector<int> caps_left(caps);
    std::vector<double> vals(static_cast<std::size_t>(model.num_variables()),
                             0.0);
    bool ok = true;
    for (const int j : order) {
      int chosen = -1;
      double chosen_cost = 0.0;
      for (int r = 0; r < n; ++r) {
        if (caps_left[static_cast<std::size_t>(r)] <= 0) continue;
        const auto xi = static_cast<std::size_t>(x[static_cast<std::size_t>(
            j * n + r)]);
        const milp::Variable& v = model.variable(static_cast<int>(xi));
        if (v.upper < 0.5) continue;  // hard-model delay forbids this region
        double c = v.objective;
        if (soft && soft_pvar[static_cast<std::size_t>(j * n + r)] >= 0)
          c += model
                   .variable(soft_pvar[static_cast<std::size_t>(j * n + r)])
                   .objective *
               soft_exceed[static_cast<std::size_t>(j * n + r)];
        if (chosen < 0 || c < chosen_cost) {
          chosen = r;
          chosen_cost = c;
        }
      }
      if (chosen < 0) {
        ok = false;  // no admissible region left; let the solver decide
        break;
      }
      --caps_left[static_cast<std::size_t>(chosen)];
      const auto xi =
          static_cast<std::size_t>(x[static_cast<std::size_t>(j * n + chosen)]);
      vals[xi] = 1.0;
      if (soft && soft_pvar[static_cast<std::size_t>(j * n + chosen)] >= 0)
        vals[static_cast<std::size_t>(
            soft_pvar[static_cast<std::size_t>(j * n + chosen)])] =
            soft_exceed[static_cast<std::size_t>(j * n + chosen)];
    }
    if (ok) {
      seed = milp::Solution::incumbent_from_heuristic(model, std::move(vals));
      ++stats_.seeded_incumbents;
    }
  }

  milp::Solution sol =
      milp::solve(model, options, seed ? &*seed : nullptr);
  ++stats_.milp_solves;
  stats_.nodes_explored += sol.nodes_explored;
  stats_.simplex_iterations += sol.simplex_iterations;
  stats_.warm_started_nodes += sol.warm_started_nodes;
  stats_.phase1_nodes += sol.phase1_nodes;
  stats_.refactorizations += sol.refactorizations;
  stats_.ft_updates += sol.ft_updates;
  stats_.presolve_rows_removed += sol.presolve_rows_removed;
  stats_.presolve_cols_removed += sol.presolve_cols_removed;
  stats_.presolve_nonzeros_removed += sol.presolve_nonzeros_removed;
  stats_.presolve_seconds += sol.presolve_seconds;
  stats_.solve_seconds += sol.solve_seconds;
  return sol;
}

void WaterWiseScheduler::solve_chunk(
    const std::vector<const dc::PendingJob*>& chunk, std::vector<int>& caps,
    const dc::ScheduleContext& ctx, std::vector<dc::Decision>& decisions) {
  const int n = static_cast<int>(caps.size());
  int num_x = 0;

  milp::Solution sol;
  bool used_soft = false;
  if (config_.enable_soft_constraints) {
    sol = run_model(chunk, caps, ctx, /*soft=*/false, &num_x);
    if (!sol.usable()) {
      // Algorithm 1, lines 10-11: soften and retry.
      ++stats_.soft_fallbacks;
      used_soft = true;
      sol = run_model(chunk, caps, ctx, /*soft=*/true, &num_x);
    }
  } else {
    sol = run_model(chunk, caps, ctx, /*soft=*/false, &num_x);
  }
  (void)used_soft;
  if (!sol.usable()) {
    if (!config_.enable_soft_constraints) {
      // Degraded (ablation) mode: with softening disabled, an infeasible
      // hard model would otherwise defer the whole chunk forever while the
      // backlog grows.  Fall back to home placement for whatever fits —
      // the violations this causes are the ablation's measurement.
      for (const dc::PendingJob* p : chunk) {
        auto& home_cap = caps[static_cast<std::size_t>(p->job->home_region)];
        if (home_cap <= 0) continue;
        --home_cap;
        decisions.push_back(
            dc::Decision{p->job->id, p->job->home_region, ctx.now, 1.0});
      }
    }
    return;  // otherwise defer the chunk to the next batch
  }

  for (int j = 0; j < static_cast<int>(chunk.size()); ++j) {
    const dc::PendingJob& p = *chunk[static_cast<std::size_t>(j)];
    int chosen = -1;
    for (int r = 0; r < n; ++r) {
      if (sol.values[static_cast<std::size_t>(j * n + r)] > 0.5) {
        chosen = r;
        break;
      }
    }
    if (chosen < 0) continue;
    if (caps[static_cast<std::size_t>(chosen)] <= 0) continue;
    --caps[static_cast<std::size_t>(chosen)];
    const double start = ctx.now + ctx.env->transfer_latency_seconds(
                                       p.job->home_region, chosen,
                                       p.job->package_bytes);
    decisions.push_back(dc::Decision{p.job->id, chosen, start, 1.0});
  }
}

std::vector<dc::Decision> WaterWiseScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  const int n = ctx.capacity->num_regions();
  if (!history_ || history_->observations() == 0) {
    // Lazily size the learner to the environment.
    if (!history_)
      history_ = std::make_unique<HistoryLearner>(n, config_.history_window);
  }

  // Feed the history learner the current intensity landscape.
  {
    std::vector<double> ci(static_cast<std::size_t>(n));
    std::vector<double> wi(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ci[static_cast<std::size_t>(r)] = ctx.env->carbon_intensity(r, ctx.now);
      wi[static_cast<std::size_t>(r)] = ctx.env->water_intensity(r, ctx.now);
    }
    history_->observe(ci, wi);
  }

  std::vector<int> caps(static_cast<std::size_t>(n));
  int total_cap = 0;
  for (int r = 0; r < n; ++r) {
    caps[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);
    total_cap += caps[static_cast<std::size_t>(r)];
  }
  if (total_cap <= 0 || batch.empty()) return {};

  // Algorithm 1: oversubscription goes through the slack manager.
  std::vector<const dc::PendingJob*> selected;
  if (static_cast<int>(batch.size()) > total_cap && config_.enable_slack_manager) {
    const auto order = select_most_urgent(
        batch, ctx, static_cast<std::size_t>(total_cap));
    selected.reserve(order.size());
    for (const std::size_t i : order) selected.push_back(&batch[i]);
  } else {
    selected.reserve(batch.size());
    for (const auto& p : batch) selected.push_back(&p);
    if (static_cast<int>(selected.size()) > total_cap)
      selected.resize(static_cast<std::size_t>(total_cap));
  }

  std::vector<dc::Decision> decisions;
  decisions.reserve(selected.size());
  for (std::size_t offset = 0; offset < selected.size();
       offset += static_cast<std::size_t>(config_.max_jobs_per_solve)) {
    const std::size_t end = std::min(
        selected.size(),
        offset + static_cast<std::size_t>(config_.max_jobs_per_solve));
    const std::vector<const dc::PendingJob*> chunk(
        selected.begin() + static_cast<std::ptrdiff_t>(offset),
        selected.begin() + static_cast<std::ptrdiff_t>(end));
    solve_chunk(chunk, caps, ctx, decisions);
  }
  return decisions;
}

}  // namespace ww::core
