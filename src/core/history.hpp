// History learner (Eq. 8's CO2_ref / H2O_ref terms).
//
// WaterWise biases the objective with the recent normalized carbon and water
// footprint of every region over a sliding window (default 10 observations,
// weight lambda_ref = 0.1), nudging placements away from regions that have
// been persistently expensive and damping oscillation between regions.
#pragma once

#include <deque>
#include <vector>

namespace ww::core {

class HistoryLearner {
 public:
  HistoryLearner(int num_regions, int window);

  /// Records one batch observation: per-region carbon and water intensity,
  /// normalized internally by the batch max so values are comparable across
  /// time (each entry lands in [0, 1]).
  void observe(const std::vector<double>& carbon_intensity,
               const std::vector<double>& water_intensity);

  /// Window-mean normalized carbon footprint of region r (0 before any
  /// observation).
  [[nodiscard]] double carbon_ref(int region) const;
  [[nodiscard]] double water_ref(int region) const;

  [[nodiscard]] int window() const noexcept { return window_; }
  [[nodiscard]] int observations() const noexcept {
    return static_cast<int>(carbon_.size());
  }

 private:
  int num_regions_;
  int window_;
  std::deque<std::vector<double>> carbon_;
  std::deque<std::vector<double>> water_;
};

}  // namespace ww::core
