// WaterWise: the carbon- and water-footprint co-optimizing scheduler
// (the paper's primary contribution, Sec. 4).
//
// Every batch window, the Decision Controller builds the MILP of Eq. 8-11
// over all pending jobs and the current (not future) carbon/water intensity
// of every region:
//
//   min sum_mn x_mn [ l_CO2 * CO2(m,n)/CO2max_m + l_H2O * H2O(m,n)/H2Omax_m
//                     + l_ref (l_CO2 * CO2ref_n + l_H2O * H2Oref_n) ]
//   s.t.  sum_n x_mn = 1          (every selected job placed once, Eq. 9)
//         sum_m x_mn <= cap(n)    (region capacity, Eq. 10)
//         sum_n x_mn L_mn <= max(0, TOL * t_m - waited_m)   (Eq. 11)
//
// Algorithm 1 wraps the solver: when pending jobs exceed total capacity the
// slack manager (Eq. 14) picks the most-urgent subset and the relaxed model
// runs; when the hard model is infeasible the delay constraint is softened
// with penalty variables P_m entering the objective at weight sigma
// (Eq. 12-13).  Estimates of execution time and energy come from the online
// means the simulator learns — the controller never sees true per-job values.
#pragma once

#include <memory>

#include "core/history.hpp"
#include "dc/scheduler.hpp"
#include "milp/branch_and_bound.hpp"

namespace ww::core {

struct WaterWiseConfig {
  double lambda_co2 = 0.5;   ///< Carbon objective weight (Fig. 8 sweeps it).
  double lambda_h2o = 0.5;   ///< Water objective weight.
  double lambda_ref = 0.1;   ///< History-learner weight (paper default).
  int history_window = 10;   ///< History-learner window (paper default).
  /// Sec. 7 extensions (default off = exact paper objective):
  /// additional additive objective terms for electricity cost and
  /// performance (normalized transfer-induced service-time stretch).
  double lambda_cost = 0.0;
  double lambda_perf = 0.0;
  double sigma = 10.0;       ///< Soft-constraint penalty weight (Eq. 12).
  /// Safety factor on the estimated execution time inside the delay rows
  /// (Eq. 11): the controller only knows *mean* estimates, so it reserves
  /// headroom against jobs that run shorter than their estimate.  1.0
  /// trusts the estimate fully (more remote moves, more violations).
  double delay_estimate_margin = 0.8;
  bool enable_soft_constraints = true;  ///< Ablation knob.
  bool enable_slack_manager = true;     ///< Ablation knob.
  bool enable_history = true;           ///< Ablation knob.
  int max_jobs_per_solve = 400;  ///< Chunk very large batches for the solver.
  milp::SolverOptions solver = [] {
    milp::SolverOptions o;
    // Scheduling batches must decide quickly; a best-incumbent answer at
    // the limit is still a valid (near-optimal) placement, and placements
    // within 0.01% of each other are operationally identical.
    o.time_limit_seconds = 10.0;
    o.mip_gap_rel = 1e-4;
    return o;
  }();
};

/// Aggregate Decision-Controller solver diagnostics over the scheduler's
/// lifetime: how many MILPs ran, how big the trees were, and how much of
/// the tree the warm-start path covered (Fig. 13 overhead attribution).
struct SchedulerStats {
  long milp_solves = 0;
  long soft_fallbacks = 0;       ///< Hard model failed, soft model ran.
  long nodes_explored = 0;       ///< Branch-and-bound nodes across solves.
  long simplex_iterations = 0;
  long warm_started_nodes = 0;   ///< Nodes re-solved from a parent basis.
  long phase1_nodes = 0;         ///< Nodes that needed phase-1 artificials.
  long refactorizations = 0;     ///< Sparse-kernel LU factorizations.
  long ft_updates = 0;           ///< Forrest-Tomlin basis updates absorbed.
  /// Solves handed a greedy seed candidate (the solver re-validates the
  /// seed against bounds/rows/integrality before adopting it).
  long seeded_incumbents = 0;
  /// Presolve reductions across all solves: model rows/columns/nonzeros the
  /// simplex never saw (delay-fixed columns, redundant capacity rows, ...)
  /// and the wall-clock the reductions cost (included in solve_seconds).
  long presolve_rows_removed = 0;
  long presolve_cols_removed = 0;
  long presolve_nonzeros_removed = 0;
  double presolve_seconds = 0.0;
  double solve_seconds = 0.0;    ///< Wall-clock inside milp::solve.

  /// Non-root branch-and-bound nodes across all solves (the population the
  /// warm-start path can cover); 0 when no tree ever branched.
  [[nodiscard]] long non_root_nodes() const noexcept {
    return nodes_explored > milp_solves ? nodes_explored - milp_solves : 0;
  }
  /// Fraction of non-root nodes the warm-start path covered, in [0, 1].
  /// 0 when nothing branched — report the raw counters alongside so a
  /// branch-free workload is not mistaken for missing warm coverage.
  [[nodiscard]] double warm_start_fraction() const noexcept {
    const long non_root = non_root_nodes();
    return non_root > 0
               ? static_cast<double>(warm_started_nodes) /
                     static_cast<double>(non_root)
               : 0.0;
  }
};

class WaterWiseScheduler final : public dc::Scheduler {
 public:
  explicit WaterWiseScheduler(WaterWiseConfig config = {});

  [[nodiscard]] std::string name() const override { return "WaterWise"; }

  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;

  [[nodiscard]] const WaterWiseConfig& config() const noexcept {
    return config_;
  }
  /// Lifetime solver diagnostics (accumulated over every schedule() call).
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }
  /// Batches where the hard model failed and the soft model ran (Alg. 1
  /// lines 10-11); diagnostic for tests and the ablation bench.
  [[nodiscard]] long soft_fallbacks() const noexcept {
    return stats_.soft_fallbacks;
  }
  [[nodiscard]] long milp_solves() const noexcept { return stats_.milp_solves; }

 private:
  /// Solves one chunk of at most max_jobs_per_solve jobs against the
  /// remaining capacity; appends decisions and decrements `caps`.
  void solve_chunk(const std::vector<const dc::PendingJob*>& chunk,
                   std::vector<int>& caps, const dc::ScheduleContext& ctx,
                   std::vector<dc::Decision>& decisions);

  /// Builds and solves Eq. 8-13 for the chunk; `soft` enables penalties.
  [[nodiscard]] milp::Solution run_model(
      const std::vector<const dc::PendingJob*>& chunk,
      const std::vector<int>& caps, const dc::ScheduleContext& ctx, bool soft,
      int* out_num_assign_vars);

  WaterWiseConfig config_;
  std::unique_ptr<HistoryLearner> history_;
  SchedulerStats stats_;
};

}  // namespace ww::core
