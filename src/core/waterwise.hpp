// WaterWise: the carbon- and water-footprint co-optimizing scheduler
// (the paper's primary contribution, Sec. 4).
//
// Every batch window, the Decision Controller builds the MILP of Eq. 8-11
// over all pending jobs and the current (not future) carbon/water intensity
// of every region:
//
//   min sum_mn x_mn [ l_CO2 * CO2(m,n)/CO2max_m + l_H2O * H2O(m,n)/H2Omax_m
//                     + l_ref (l_CO2 * CO2ref_n + l_H2O * H2Oref_n) ]
//   s.t.  sum_n x_mn = 1          (every selected job placed once, Eq. 9)
//         sum_m x_mn <= cap(n)    (region capacity, Eq. 10)
//         sum_n x_mn L_mn <= max(0, TOL * t_m - waited_m)   (Eq. 11)
//
// Algorithm 1 wraps the solver: when pending jobs exceed total capacity the
// slack manager (Eq. 14) picks the most-urgent subset and the relaxed model
// runs; when the hard model is infeasible the delay constraint is softened
// with penalty variables P_m entering the objective at weight sigma
// (Eq. 12-13).  Estimates of execution time and energy come from the online
// means the simulator learns — the controller never sees true per-job values.
//
// ## The plan -> solve -> commit pipeline
//
// Batches larger than `max_jobs_per_solve` decompose into independent chunk
// MILPs.  Chunk solves are structured as a three-stage pipeline so they can
// fan out across the process-global work-stealing pool
// (`util::WorkStealingPool::global()`) without any shared mutable state:
//
//   1. `plan_chunks()` partitions the window's remaining capacity into
//      per-chunk quotas up front (proportional largest-remainder per region,
//      repaired so every chunk's quota covers its job count).  Quotas are
//      disjoint by construction, so concurrent chunks can never double-book
//      a region.
//   2. `solve_one()` is `const` and side-effect-free: it builds, presolves
//      and branch-and-bounds one chunk against its private quota and returns
//      a self-contained `ChunkResult` (decisions, a `SchedulerStats` delta,
//      leftover quota, spill-eligible jobs).  Pure per-chunk work is what
//      makes the fan-out sound at any thread count.
//   3. `commit()` merges results in chunk-index order — the only stage that
//      touches scheduler state — returns unused quota to a spill pool, and
//      re-solves any spill-eligible remainder serially against that pool.
//
// Determinism contract: each `ChunkResult` is a pure function of its
// `ChunkPlan` (the solver itself is deterministic and keeps no global
// state), and the commit order is the chunk index, never completion order.
// Decision streams and campaign aggregates are therefore byte-identical for
// every `solver_threads` value and under any steal interleaving of the
// shared pool; tests/core_scheduler_parallel_test.cpp,
// bench_fig8/11/12's equivalence check, and bench_fig13's startup
// self-check enforce it.  Work stealing is observable only through the
// `pool.*` registry entries (tasks_stolen / steal_attempts counters and a
// queue_depth gauge), which — like decision latency — are observational and
// excluded from byte-identity comparisons.
//
// Knobs: `WaterWiseConfig::solver_threads` (1 = serial, 0 = all cores) and
// the `WW_SCHED_THREADS` environment switch, which overrides the config
// process-wide (mirroring `WW_PRESOLVE` / `WW_REFACTOR_EVERY_PIVOT`).
//
// ## Graceful degradation
//
// Chunk solves run a bounded retry-then-degrade ladder instead of a single
// hard->soft fallback: hard probe -> (soft model) -> one retry with relaxed
// node/iteration budgets -> guaranteed-feasible greedy placement
// (sched::greedy_fallback_assign) -> explicit deferral.  Every rung is
// deterministic — budgets are node/iteration counts, never wall-clock — and
// every job ends placed or counted in `SchedulerStats::deferred_jobs`;
// nothing is silently dropped.  A per-region Normal -> Degraded -> Recovery
// state machine (DegradedModeConfig) watches capacity losses and observed
// intensity jumps and clamps how much of a faulty region's capacity new
// placements may claim.  `WW_FAULT_SOLVES` injects deterministic solve
// failures (env::injected_solve_failure) to exercise the ladder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/history.hpp"
#include "dc/scheduler.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/registry.hpp"
#include "util/work_steal.hpp"

namespace ww::core {

/// Probability in [0, 1] that a chunk solve outcome is discarded as an
/// injected fault, from the `WW_FAULT_SOLVES` environment switch (unset or
/// unparsable = 0, i.e. no injection).  Cached once per process, mirroring
/// WW_SCHED_THREADS: fault campaigns are a process property.
[[nodiscard]] double default_solve_failure_rate() noexcept;

/// Per-region Normal -> Degraded -> Recovery state machine thresholds.
/// All triggers are event counts over batch windows — never wall-clock — so
/// the machine's trajectory is a pure function of the decision stream.
struct DegradedModeConfig {
  bool enabled = true;
  /// Observed carbon/water intensity change (relative) between consecutive
  /// observations <= flap_window_s apart that counts as a fault event.  The
  /// builtin environment series are hourly-interpolated and move far less
  /// than this across 60 s batch ticks, so only injected bias steps fire it.
  double intensity_jump_fraction = 0.4;
  double flap_window_s = 900.0;  ///< Max spacing for a jump comparison.
  int degrade_after_events = 2;  ///< Event score that trips Normal->Degraded.
  int recover_after_clean = 3;   ///< Clean windows before Degraded->Recovery.
  int recovery_windows = 3;      ///< Recovery windows before Normal.
  /// Hard-cap safety rails: fraction of a region's current capacity new
  /// placements may claim while Degraded / in Recovery.
  double degraded_cap_fraction = 0.25;
  double recovery_cap_fraction = 0.5;
};

struct WaterWiseConfig {
  double lambda_co2 = 0.5;   ///< Carbon objective weight (Fig. 8 sweeps it).
  double lambda_h2o = 0.5;   ///< Water objective weight.
  double lambda_ref = 0.1;   ///< History-learner weight (paper default).
  int history_window = 10;   ///< History-learner window (paper default).
  /// Sec. 7 extensions (default off = exact paper objective):
  /// additional additive objective terms for electricity cost and
  /// performance (normalized transfer-induced service-time stretch).
  double lambda_cost = 0.0;
  double lambda_perf = 0.0;
  double sigma = 10.0;       ///< Soft-constraint penalty weight (Eq. 12).
  /// Safety factor on the estimated execution time inside the delay rows
  /// (Eq. 11): the controller only knows *mean* estimates, so it reserves
  /// headroom against jobs that run shorter than their estimate.  1.0
  /// trusts the estimate fully (more remote moves, more violations).
  double delay_estimate_margin = 0.8;
  bool enable_soft_constraints = true;  ///< Ablation knob.
  bool enable_slack_manager = true;     ///< Ablation knob.
  bool enable_history = true;           ///< Ablation knob.
  int max_jobs_per_solve = 400;  ///< Chunk very large batches for the solver.
  /// Threads for the chunk MILP solves inside one batch window (the plan ->
  /// solve -> commit pipeline): 1 = serial, 0 = all cores, N = fixed pool.
  /// Results are byte-identical at every setting; the WW_SCHED_THREADS
  /// environment switch overrides this process-wide.
  int solver_threads = 1;
  /// Degraded-mode state machine (see DegradedModeConfig).
  DegradedModeConfig degraded;
  /// Injected solve-failure probability (WW_FAULT_SOLVES); each discarded
  /// outcome is a deterministic function of (fault_seed, window, chunk,
  /// attempt) — see env::injected_solve_failure — so fault campaigns are
  /// byte-identical at every thread count.
  double solve_failure_rate = default_solve_failure_rate();
  std::uint64_t fault_seed = 0x57415457ULL;  ///< Stream id for injection.
  /// Node/iteration budget multiplier for the ladder's retry rung.
  long retry_budget_multiplier = 8;
  /// Convenience gate for span tracing: constructing a scheduler with this
  /// set enables the process-wide obs::Trace (equivalent to WW_TRACE=1 /
  /// --trace-out without a custom path).  Tracing is observational only —
  /// decision streams are byte-identical with it on or off.
  bool trace = false;
  /// Test hook, called with the chunk index before each chunk solve; lets
  /// tests inject exceptions into the pooled fan-out.  Must be thread-safe.
  std::function<void(int)> chunk_solve_hook;
  milp::SolverOptions solver = [] {
    milp::SolverOptions o;
    // Scheduling batches must decide quickly; a best-incumbent answer at
    // the budget is still a valid (near-optimal) placement, and placements
    // within 0.01% of each other are operationally identical.  The budget
    // is a node count — deterministic at any machine speed or thread count
    // — never a wall-clock limit (see tools/lint_determinism.py).
    o.max_nodes = 20000;
    o.mip_gap_rel = 1e-4;
    return o;
  }();
};

/// Aggregate Decision-Controller solver diagnostics over the scheduler's
/// lifetime: how many MILPs ran, how big the trees were, and how much of
/// the tree the warm-start path covered (Fig. 13 overhead attribution).
///
/// Since the observability PR this struct is a *view*, not the store: the
/// scheduler accumulates every counter in its `obs::Registry` (typed
/// handles, thread-sharded, merged in chunk-index order) and `stats()`
/// materializes this struct from the registry on access.  The struct keeps
/// two other jobs: `solve_one()` fills one per chunk as the self-contained
/// per-chunk delta (`ChunkResult::stats`), and `operator+=` remains the
/// canonical field-by-field merge for tests and benches that fold several
/// schedulers' lifetimes together.  Service-level distributions (decision
/// latency, queue depth, time-to-admission) live only in the registry —
/// see `WaterWiseScheduler::registry()` and README "Observability".
struct SchedulerStats {
  long milp_solves = 0;
  long soft_fallbacks = 0;       ///< Hard model failed, soft model ran.
  long nodes_explored = 0;       ///< Branch-and-bound nodes across solves.
  long simplex_iterations = 0;
  long warm_started_nodes = 0;   ///< Nodes re-solved from a parent basis.
  long phase1_nodes = 0;         ///< Nodes that needed phase-1 artificials.
  long refactorizations = 0;     ///< Sparse-kernel LU factorizations.
  long ft_updates = 0;           ///< Forrest-Tomlin basis updates absorbed.
  /// Solves handed a greedy seed candidate (the solver re-validates the
  /// seed against bounds/rows/integrality before adopting it).
  long seeded_incumbents = 0;
  /// Presolve reductions across all solves: model rows/columns/nonzeros the
  /// simplex never saw (delay-fixed columns, redundant capacity rows, ...)
  /// and the wall-clock the reductions cost (included in solve_seconds).
  long presolve_rows_removed = 0;
  long presolve_cols_removed = 0;
  long presolve_nonzeros_removed = 0;
  double presolve_seconds = 0.0;
  double solve_seconds = 0.0;    ///< Wall-clock inside milp::solve.
  /// Plan/solve/commit pipeline counters: chunk plans produced, jobs routed
  /// through the serial spill re-solve, and spill re-solves run.
  long chunks_planned = 0;
  long spill_jobs = 0;
  long spill_resolves = 0;
  /// Fault/degradation counters (see "Graceful degradation" above):
  /// injected-or-observed fault events, windows a region spent rail-capped
  /// in Degraded state, relaxed-budget retry solves, greedy-ladder
  /// placements, and jobs explicitly deferred to a later batch window.
  long fault_events = 0;
  long degraded_windows = 0;
  long solve_retries = 0;
  long fallback_placements = 0;
  long deferred_jobs = 0;

  /// Merges another stats delta (per-chunk result, or another scheduler's
  /// lifetime stats) into this one.  All accumulation routes through here.
  SchedulerStats& operator+=(const SchedulerStats& o) noexcept {
    milp_solves += o.milp_solves;
    soft_fallbacks += o.soft_fallbacks;
    nodes_explored += o.nodes_explored;
    simplex_iterations += o.simplex_iterations;
    warm_started_nodes += o.warm_started_nodes;
    phase1_nodes += o.phase1_nodes;
    refactorizations += o.refactorizations;
    ft_updates += o.ft_updates;
    seeded_incumbents += o.seeded_incumbents;
    presolve_rows_removed += o.presolve_rows_removed;
    presolve_cols_removed += o.presolve_cols_removed;
    presolve_nonzeros_removed += o.presolve_nonzeros_removed;
    presolve_seconds += o.presolve_seconds;
    solve_seconds += o.solve_seconds;
    chunks_planned += o.chunks_planned;
    spill_jobs += o.spill_jobs;
    spill_resolves += o.spill_resolves;
    fault_events += o.fault_events;
    degraded_windows += o.degraded_windows;
    solve_retries += o.solve_retries;
    fallback_placements += o.fallback_placements;
    deferred_jobs += o.deferred_jobs;
    return *this;
  }

  /// Folds one milp::solve outcome into the counters.
  void add_solve(const milp::Solution& sol) noexcept {
    ++milp_solves;
    nodes_explored += sol.nodes_explored;
    simplex_iterations += sol.simplex_iterations;
    warm_started_nodes += sol.warm_started_nodes;
    phase1_nodes += sol.phase1_nodes;
    refactorizations += sol.refactorizations;
    ft_updates += sol.ft_updates;
    presolve_rows_removed += sol.presolve_rows_removed;
    presolve_cols_removed += sol.presolve_cols_removed;
    presolve_nonzeros_removed += sol.presolve_nonzeros_removed;
    presolve_seconds += sol.presolve_seconds;
    solve_seconds += sol.solve_seconds;
  }

  /// Non-root branch-and-bound nodes across all solves (the population the
  /// warm-start path can cover); 0 when no tree ever branched.
  [[nodiscard]] long non_root_nodes() const noexcept {
    return nodes_explored > milp_solves ? nodes_explored - milp_solves : 0;
  }
  /// Fraction of non-root nodes the warm-start path covered, in [0, 1].
  /// 0 when nothing branched — report the raw counters alongside so a
  /// branch-free workload is not mistaken for missing warm coverage.
  [[nodiscard]] double warm_start_fraction() const noexcept {
    const long non_root = non_root_nodes();
    return non_root > 0
               ? static_cast<double>(warm_started_nodes) /
                     static_cast<double>(non_root)
               : 0.0;
  }
};

/// One chunk's share of a batch window: the jobs it must decide and the
/// per-region capacity quota reserved exclusively for it.  Quotas of the
/// plans returned by one `plan_chunks()` call are disjoint and sum to the
/// window's capacity, so no two chunks can place into the same server slot.
struct ChunkPlan {
  int index = 0;  ///< Commit order; chunk 0 holds the most-urgent jobs.
  std::vector<const dc::PendingJob*> jobs;
  std::vector<int> quota;  ///< Per-region slots this chunk alone may use.
};

/// Self-contained outcome of one pure chunk solve: everything `commit()`
/// needs, nothing shared with any other chunk.
struct ChunkResult {
  int index = 0;
  std::vector<dc::Decision> decisions;
  /// Quota slots the solve did not consume; returned to the spill pool.
  std::vector<int> leftover;
  /// Jobs the chunk could not place (solver budget exhausted, or the
  /// soft-disabled ablation hit an infeasible hard model): eligible for one
  /// serial spill re-solve against the pooled leftover quota.
  std::vector<const dc::PendingJob*> unplaced;
  SchedulerStats stats;  ///< Per-chunk delta, merged by commit().
  /// Per-chunk registry slice (service histograms observed during the
  /// solve, e.g. time-to-admission per placed job).  Filled in isolation by
  /// the worker, folded by commit() in chunk-index order so histogram bins
  /// are byte-identical at every thread count.
  obs::Shard shard;
  /// Non-empty when the chunk solve threw: commit() re-throws fail-fast with
  /// this message plus chunk/window context, lowest chunk index first, so an
  /// exception inside the pooled fan-out can never be swallowed.
  std::string error;
};

class WaterWiseScheduler final : public dc::Scheduler {
 public:
  explicit WaterWiseScheduler(WaterWiseConfig config = {});

  [[nodiscard]] std::string name() const override { return "WaterWise"; }

  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;

  [[nodiscard]] const WaterWiseConfig& config() const noexcept {
    return config_;
  }
  /// Lifetime solver diagnostics: a SchedulerStats view materialized from
  /// the metrics registry on each call (see the SchedulerStats comment).
  [[nodiscard]] const SchedulerStats& stats() const;

  /// The scheduler's metrics registry: every SchedulerStats counter under
  /// "sched.*" plus the service-level distributions under "service.*"
  /// (decision-latency seconds per window, queue depth per window,
  /// time-to-admission seconds per placed job).  Counters and sim-time
  /// histograms are deterministic; decision-latency is wall-clock and
  /// observational only.
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  /// Thread count the chunk fan-out actually uses: WW_SCHED_THREADS when
  /// set, else config().solver_threads, with 0 resolving to all cores.
  [[nodiscard]] std::size_t effective_solver_threads() const noexcept;

  // --- The plan -> solve -> commit pipeline (public for tests/benches). ---

  /// Stage 1: splits `selected` (already urgency-ordered and capped at the
  /// window's total capacity) into chunks of at most max_jobs_per_solve and
  /// partitions `caps` into disjoint per-chunk quotas.  Each region is
  /// apportioned proportionally to chunk sizes (largest remainder, ties to
  /// the lower chunk index), then repaired so every chunk's quota total
  /// covers its job count.  Pure: depends only on the arguments and config.
  [[nodiscard]] std::vector<ChunkPlan> plan_chunks(
      const std::vector<const dc::PendingJob*>& selected,
      const std::vector<int>& caps) const;

  /// Stage 2: solves one chunk against its private quota (hard model, then
  /// the Algorithm-1 soft fallback) and extracts decisions.  Const and
  /// side-effect-free — safe to run concurrently for different plans; all
  /// diagnostics land in the returned ChunkResult.
  [[nodiscard]] ChunkResult solve_one(const ChunkPlan& plan,
                                      const dc::ScheduleContext& ctx) const;

  /// Stage 3: merges results in chunk-index order (decisions, stats),
  /// pools leftover quota, and re-solves spill-eligible jobs serially
  /// against the pool.  The only stage that mutates scheduler state.
  [[nodiscard]] std::vector<dc::Decision> commit(
      std::vector<ChunkResult>&& results, const dc::ScheduleContext& ctx);

 private:
  /// Builds and solves Eq. 8-13 for the chunk against `quota`; `soft`
  /// enables penalties; `budget_scale` multiplies the node/iteration budgets
  /// (saturating) for the ladder's retry rung.  Solver counters accumulate
  /// into `stats`.
  [[nodiscard]] milp::Solution run_model(
      const std::vector<const dc::PendingJob*>& chunk,
      const std::vector<int>& quota, const dc::ScheduleContext& ctx, bool soft,
      long budget_scale, int* out_num_assign_vars, SchedulerStats& stats) const;

  /// Per-region degraded-mode state (see DegradedModeConfig).  Updated once
  /// per batch window, serially, before the chunk fan-out.
  struct RegionHealth {
    enum class State { Normal, Degraded, Recovery };
    State state = State::Normal;
    int event_score = 0;     ///< Recent fault events (saturating).
    int clean_windows = 0;   ///< Consecutive event-free windows.
    int windows_in_state = 0;
    int max_capacity_seen = 0;
    double last_ci = 0.0;    ///< Last observed carbon intensity.
    double last_wi = 0.0;    ///< Last observed water intensity.
    double last_obs_time = -1.0;
    bool has_obs = false;
  };

  /// Advances every region's state machine on this window's observations
  /// (capacity losses, intensity jumps) and applies the Degraded/Recovery
  /// hard-cap rails to `caps` in place.
  void update_region_health(const dc::ScheduleContext& ctx,
                            std::vector<int>& caps);

  /// schedule() minus the observability wrapper (spans, latency/queue
  /// histograms); keeps the decision logic free of instrumentation.
  [[nodiscard]] std::vector<dc::Decision> schedule_impl(
      const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx);

  /// Typed registry handles, resolved once at construction so the hot path
  /// never does string lookups.  One counter per SchedulerStats long field,
  /// one gauge per double field, plus the service-level histograms.
  struct Handles {
    obs::Counter milp_solves, soft_fallbacks, nodes_explored;
    obs::Counter simplex_iterations, warm_started_nodes, phase1_nodes;
    obs::Counter refactorizations, ft_updates, seeded_incumbents;
    obs::Counter presolve_rows_removed, presolve_cols_removed;
    obs::Counter presolve_nonzeros_removed;
    obs::Counter chunks_planned, spill_jobs, spill_resolves;
    obs::Counter fault_events, degraded_windows, solve_retries;
    obs::Counter fallback_placements, deferred_jobs, windows;
    obs::Gauge presolve_seconds, solve_seconds;
    obs::Hist decision_latency_s, queue_depth, time_to_admission_s;
    /// Work-stealing visibility (observational, like decision_latency_s:
    /// steal interleavings vary run to run and are never byte-compared).
    obs::Counter tasks_stolen, steal_attempts;
    obs::Gauge pool_depth;
  };
  void register_metrics();
  /// Folds a per-chunk SchedulerStats delta into the registry counters.
  void fold_stats(const SchedulerStats& delta);

  WaterWiseConfig config_;
  std::unique_ptr<HistoryLearner> history_;
  obs::Registry registry_;
  Handles handles_;
  /// Compatibility view rebuilt from the registry by stats().
  mutable SchedulerStats stats_view_;
  std::vector<RegionHealth> health_;
  // No scheduler-local pool: multi-chunk windows fan out on the process
  // global util::WorkStealingPool, so campaign scenario tasks and chunk
  // subtasks share one set of workers (no nested-pool oversubscription).
};

}  // namespace ww::core
