#include "core/history.hpp"

#include <algorithm>
#include <stdexcept>

namespace ww::core {

HistoryLearner::HistoryLearner(int num_regions, int window)
    : num_regions_(num_regions), window_(window) {
  if (num_regions <= 0 || window <= 0)
    throw std::invalid_argument("HistoryLearner: bad dimensions");
}

namespace {
std::vector<double> normalized(const std::vector<double>& v) {
  const double mx = *std::max_element(v.begin(), v.end());
  std::vector<double> out(v.size(), 0.0);
  if (mx > 0.0)
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] / mx;
  return out;
}
}  // namespace

void HistoryLearner::observe(const std::vector<double>& carbon_intensity,
                             const std::vector<double>& water_intensity) {
  if (static_cast<int>(carbon_intensity.size()) != num_regions_ ||
      static_cast<int>(water_intensity.size()) != num_regions_)
    throw std::invalid_argument("HistoryLearner: observation size mismatch");
  carbon_.push_back(normalized(carbon_intensity));
  water_.push_back(normalized(water_intensity));
  while (static_cast<int>(carbon_.size()) > window_) carbon_.pop_front();
  while (static_cast<int>(water_.size()) > window_) water_.pop_front();
}

double HistoryLearner::carbon_ref(int region) const {
  if (carbon_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& obs : carbon_)
    total += obs[static_cast<std::size_t>(region)];
  return total / static_cast<double>(carbon_.size());
}

double HistoryLearner::water_ref(int region) const {
  if (water_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& obs : water_)
    total += obs[static_cast<std::size_t>(region)];
  return total / static_cast<double>(water_.size());
}

}  // namespace ww::core
