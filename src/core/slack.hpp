// Job slack management (Eq. 14 and Algorithm 1, line 6).
//
// The MILP is stateless across batches; the slack manager is WaterWise's
// memory of how close each waiting job is to violating its delay tolerance.
// When pending jobs exceed total free capacity, the top-capacity most-urgent
// jobs (smallest urgency score) enter the solver and the rest carry over to
// the next batch.
//
//   Urgency = TOL% * t_m  -  L_avg_m  -  (T_current - T_start_m)
//
// i.e. remaining slack = allowance minus mean transfer cost minus time
// already spent waiting; smaller = more urgent.
#pragma once

#include <vector>

#include "dc/scheduler.hpp"

namespace ww::core {

/// Urgency score of one pending job at time `now` (Eq. 14).
[[nodiscard]] double urgency_score(const dc::PendingJob& job,
                                   const dc::ScheduleContext& ctx);

/// Indices into `batch` of the (at most) `limit` most-urgent jobs, ordered
/// most-urgent first.
[[nodiscard]] std::vector<std::size_t> select_most_urgent(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx,
    std::size_t limit);

}  // namespace ww::core
