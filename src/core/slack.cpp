#include "core/slack.hpp"

#include <algorithm>
#include <numeric>

namespace ww::core {

double urgency_score(const dc::PendingJob& job, const dc::ScheduleContext& ctx) {
  const int n = ctx.capacity->num_regions();
  double latency_total = 0.0;
  for (int r = 0; r < n; ++r)
    latency_total += ctx.env->transfer_latency_seconds(
        job.job->home_region, r, job.job->package_bytes);
  const double latency_avg = latency_total / static_cast<double>(n);
  const double allowance = ctx.tol * job.est_exec_s;
  const double waited = ctx.now - job.first_seen;
  return allowance - latency_avg - waited;
}

std::vector<std::size_t> select_most_urgent(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx,
    std::size_t limit) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> score(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    score[i] = urgency_score(batch[i], ctx);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score[a] < score[b];
                   });
  if (order.size() > limit) order.resize(limit);
  return order;
}

}  // namespace ww::core
