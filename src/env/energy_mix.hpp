// Per-region energy-mix time series.
//
// The paper feeds real-time energy-mix breakdowns from Electricity Maps into
// the regional EWIF / carbon-intensity estimation.  Offline we synthesize the
// mix: each region has base generation shares per source (calibrated so the
// regional carbon-intensity ordering of Fig. 2(a) and the EWIF ordering of
// Fig. 2(b) hold), modulated over time — solar follows the daylight curve,
// wind carries AR(1) stochastic swings, hydro follows a seasonal profile —
// with dispatchable fossil generation absorbing the residual demand.  This
// produces the temporal carbon/water-intensity variation (and their partial
// anti-correlation) that Fig. 2(e) shows and the scheduler exploits.
#pragma once

#include <array>
#include <vector>

#include "env/energy_source.hpp"
#include "util/rng.hpp"

namespace ww::env {

struct MixConfig {
  /// Base (time-average) generation shares per source; normalized internally.
  std::array<double, kNumEnergySources> base_share{};
  double solar_diurnal_swing = 1.0;  ///< 0 = flat, 1 = full daylight shape.
  double wind_noise = 0.65;          ///< Relative AR(1) swing on wind share.
  double hydro_seasonal_swing = 0.35;///< Relative spring-melt swing on hydro.
  double wind_noise_rho = 0.80;      ///< Hourly persistence of wind swings.
};

/// Deterministic, precomputed hourly generation-share series.
class EnergyMixModel {
 public:
  EnergyMixModel(MixConfig config, util::Rng rng, int horizon_hours);

  /// Generation share of `source` at time t (seconds); shares sum to 1.
  [[nodiscard]] double share(EnergySource source, double t_seconds) const;

  /// Mix-weighted grid carbon intensity, gCO2/kWh (paper Sec. 2.1).
  [[nodiscard]] double carbon_intensity(double t_seconds) const;

  /// Mix-weighted regional EWIF, L/kWh (paper Sec. 2.2), per dataset.
  [[nodiscard]] double ewif(double t_seconds, WaterDataset dataset) const;

  [[nodiscard]] const MixConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::array<double, kNumEnergySources> shares_at(
      double t_seconds) const;

  MixConfig config_;
  /// samples_[h][s]: share of source s in hour h.
  std::vector<std::array<double, kNumEnergySources>> samples_;
  /// Hourly mix-weighted aggregates (cached for fast queries).
  std::vector<double> ci_;
  std::vector<double> ewif_em_;
  std::vector<double> ewif_wri_;
};

}  // namespace ww::env
