#include "env/energy_source.hpp"

#include <stdexcept>

namespace ww::env {

namespace {

// gCO2/kWh, life-cycle (IPCC AR5 medians; coal/hydro anchored to the 1050
// and 17 the paper quotes).
constexpr std::array<double, kNumEnergySources> kCarbonIntensity = {
    12.0,   // Nuclear
    11.0,   // Wind
    17.0,   // Hydro
    38.0,   // Geothermal
    41.0,   // Solar (utility PV)
    230.0,  // Biomass
    490.0,  // Gas (combined cycle)
    720.0,  // Oil
    1050.0, // Coal
};

// L/kWh operational water consumption (Macknick et al. medians; hydro
// anchored to the 17 L/kWh the paper quotes, ~11x coal's 1.55).
constexpr std::array<double, kNumEnergySources> kEwifElectricityMaps = {
    2.30,  // Nuclear (tower-cooled)
    0.01,  // Wind
    17.00, // Hydro (reservoir evaporation)
    1.40,  // Geothermal
    0.90,  // Solar (PV cleaning + CSP share)
    11.00, // Biomass (irrigated feedstock + cooling)
    0.95,  // Gas
    1.30,  // Oil
    1.55,  // Coal
};

// WRI purchased-electricity guidance: different system boundaries shift
// hydro/biomass down and thermal sources up relative to Macknick.
constexpr std::array<double, kNumEnergySources> kEwifWri = {
    2.70,  // Nuclear
    0.02,  // Wind
    9.00,  // Hydro
    1.10,  // Geothermal
    0.35,  // Solar
    7.50,  // Biomass
    1.20,  // Gas
    1.60,  // Oil
    1.90,  // Coal
};

constexpr std::array<bool, kNumEnergySources> kRenewable = {
    true,  // Nuclear (carbon-friendly; grouped with renewables in Fig. 1)
    true,  // Wind
    true,  // Hydro
    true,  // Geothermal
    true,  // Solar
    true,  // Biomass
    false, // Gas
    false, // Oil
    false, // Coal
};

constexpr std::array<std::string_view, kNumEnergySources> kNames = {
    "Nuclear", "Wind", "Hydro", "Geothermal", "Solar",
    "Biomass", "Gas",  "Oil",   "Coal",
};

std::size_t index_of(EnergySource s) {
  const int i = static_cast<int>(s);
  if (i < 0 || i >= kNumEnergySources)
    throw std::out_of_range("EnergySource out of range");
  return static_cast<std::size_t>(i);
}

}  // namespace

std::string_view to_string(EnergySource s) { return kNames[index_of(s)]; }

std::string_view to_string(WaterDataset d) {
  return d == WaterDataset::ElectricityMaps ? "ElectricityMaps"
                                            : "WorldResourcesInstitute";
}

bool is_renewable(EnergySource s) { return kRenewable[index_of(s)]; }

double carbon_intensity(EnergySource s) {
  return kCarbonIntensity[index_of(s)];
}

double ewif(EnergySource s, WaterDataset dataset) {
  return dataset == WaterDataset::ElectricityMaps
             ? kEwifElectricityMaps[index_of(s)]
             : kEwifWri[index_of(s)];
}

const std::array<EnergySource, kNumEnergySources>& all_sources() {
  static const std::array<EnergySource, kNumEnergySources> sources = {
      EnergySource::Nuclear,    EnergySource::Wind,  EnergySource::Hydro,
      EnergySource::Geothermal, EnergySource::Solar, EnergySource::Biomass,
      EnergySource::Gas,        EnergySource::Oil,   EnergySource::Coal,
  };
  return sources;
}

}  // namespace ww::env
