// Deterministic fault injection: seeded failure schedules for robustness
// campaigns (ROADMAP item 5, Sec. 6 robustness experiments extended from
// input perturbation to actual mid-campaign failures).
//
// A FaultSchedule is a per-region list of time windows, each carrying one of
// four effects:
//
//   * region outage        — capacity factor 0: no new placements start
//                            while the window is active (running jobs drain
//                            through; the infrastructure degrades, it does
//                            not kill work already on the servers).
//   * capacity flap        — capacity factor in (0, 1): partial loss of
//                            placement headroom.
//   * forecast bias        — the *controller's observed* carbon/water
//                            intensities are off by a systematic factor
//                            (the world — and hence the ledger — is
//                            unchanged).  This models a mispredicting
//                            renewable forecast, not noise.
//   * water-scarcity shock — an additive WSF delta applied in *both* views
//                            (a real drought raises the true scarcity
//                            weighting of Eq. 6, and the controller sees it).
//
// Windows are generated from util::Rng named seed streams, so an injected
// campaign is a pure function of (trace, schedule seed): byte-identical at
// any WW_SCHED_THREADS / WW_PRESOLVE setting.  Tests and storm benches can
// also place windows explicitly via the add_*() methods.
//
// The module also hosts the deterministic solve-failure predicate the
// scheduler's retry ladder consumes: a pure hash of (seed, window time,
// chunk index, attempt), never a coin flipped from mutable RNG state, so
// injected solver faults land on the same (chunk, attempt) pairs at every
// thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ww::env {

/// One fault window on one region.  Neutral values (factor 1, bias 1,
/// shock 0) mean "no effect on that axis"; each window perturbs one axis.
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;
  double capacity_factor = 1.0;  ///< 0 = outage, (0,1) = flap.
  double carbon_bias = 1.0;      ///< Observed-CI multiplier (controller view).
  double water_bias = 1.0;       ///< Observed EWIF/WUE multiplier.
  double wsf_shock = 0.0;        ///< Additive WSF delta (both views).
};

/// Generation knobs: per-region Poisson arrival rates (windows per simulated
/// day) and per-kind duration/magnitude ranges.  All rates default to 0, so
/// a default-constructed config yields an empty (fault-free) schedule.
struct FaultScheduleConfig {
  std::uint64_t seed = 20250808;
  double horizon_seconds = 86400.0;
  int num_regions = 5;

  double outages_per_region_day = 0.0;
  double outage_mean_seconds = 1800.0;

  double flaps_per_region_day = 0.0;
  double flap_mean_seconds = 600.0;
  double flap_capacity_min = 0.3;
  double flap_capacity_max = 0.8;

  double bias_windows_per_region_day = 0.0;
  double bias_mean_seconds = 7200.0;
  double carbon_bias_min = 1.4;
  double carbon_bias_max = 2.2;
  double water_bias_min = 1.0;
  double water_bias_max = 1.0;

  double shocks_per_region_day = 0.0;
  double shock_mean_seconds = 14400.0;
  double shock_wsf_min = 0.5;
  double shock_wsf_max = 1.5;

  /// Deterministic injected solve-failure rate in [0, 1], consumed by
  /// core::WaterWiseConfig (the schedule only carries it so one config
  /// describes a whole storm).
  double solve_failure_rate = 0.0;
};

/// Immutable after construction; queries are const and lock-free, so one
/// schedule can back a fault-aware Environment and Simulator concurrently.
class FaultSchedule {
 public:
  /// Generates windows from the config's seed: per (region, kind) child
  /// streams, exponential inter-arrivals and durations, uniform magnitudes.
  explicit FaultSchedule(FaultScheduleConfig config);

  /// Empty schedule for `num_regions` regions; populate with add_*().
  explicit FaultSchedule(int num_regions);

  void add_outage(int region, double start, double end);
  void add_capacity_flap(int region, double start, double end, double factor);
  void add_forecast_bias(int region, double start, double end,
                         double carbon_factor, double water_factor);
  void add_water_shock(int region, double start, double end, double wsf_delta);

  [[nodiscard]] int num_regions() const noexcept {
    return static_cast<int>(windows_.size());
  }
  [[nodiscard]] const FaultScheduleConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<FaultWindow>& windows(int region) const;
  [[nodiscard]] std::size_t total_windows() const noexcept;

  /// Effective capacity multiplier at instant t: the minimum factor over
  /// active windows (an outage dominates a concurrent flap).  1 when no
  /// window is active.
  [[nodiscard]] double capacity_factor(int region, double t) const;
  /// Minimum capacity factor anywhere in [t0, t1].
  [[nodiscard]] double min_capacity_factor(int region, double t0,
                                           double t1) const;
  /// Observed-intensity bias multipliers at instant t (product over active
  /// windows; 1 when none).
  [[nodiscard]] double carbon_bias(int region, double t) const;
  [[nodiscard]] double water_bias(int region, double t) const;
  /// Additive WSF delta at instant t (sum over active windows; 0 when none).
  [[nodiscard]] double wsf_shock(int region, double t) const;

 private:
  FaultScheduleConfig config_;
  std::vector<std::vector<FaultWindow>> windows_;  ///< Per region, by start.
};

/// Pure deterministic solve-failure predicate for the scheduler's retry
/// ladder: true when the injected fault campaign fails the solve attempt
/// `attempt` of chunk `chunk_index` in the batch window at time `now`.
/// A pure hash of its arguments — no stream state — so the same (window,
/// chunk, attempt) fails at every thread count, presolve mode, and run.
[[nodiscard]] bool injected_solve_failure(std::uint64_t seed, double now,
                                          int chunk_index, int attempt,
                                          double rate) noexcept;

}  // namespace ww::env
