#include "env/latency.hpp"

#include <stdexcept>

#include "env/region.hpp"

namespace ww::env {

TransferModel::TransferModel(std::vector<std::pair<double, double>> lat_lon,
                             TransferConfig config)
    : points_(std::move(lat_lon)), config_(config) {
  if (points_.empty())
    throw std::invalid_argument("TransferModel: need at least one region");
}

double TransferModel::distance_km(int from, int to) const {
  const auto& a = points_.at(static_cast<std::size_t>(from));
  const auto& b = points_.at(static_cast<std::size_t>(to));
  return haversine_km(a.first, a.second, b.first, b.second);
}

double TransferModel::latency_seconds(int from, int to, double bytes) const {
  if (from == to) return 0.0;
  const double km = distance_km(from, to) * config_.route_stretch;
  const double one_way = km / config_.fiber_speed_km_per_s;
  const double handshakes = config_.rtt_setup_count * 2.0 * one_way;
  const double serialization = bytes / config_.effective_bandwidth_bytes_per_s;
  return handshakes + serialization;
}

double TransferModel::energy_kwh(int from, int to, double bytes) const {
  if (from == to) return 0.0;
  const double gb = bytes / 1.0e9;
  const double km = distance_km(from, to);
  return gb * (config_.energy_kwh_per_gb +
               config_.energy_kwh_per_gb_per_1000km * km / 1000.0);
}

}  // namespace ww::env
