#include "env/energy_mix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ww::env {

namespace {

constexpr std::size_t idx(EnergySource s) {
  return static_cast<std::size_t>(static_cast<int>(s));
}

/// Daylight factor in [0, ~2]: zero at night, normalized so its daily mean
/// is ~1 (so the base solar share is also the time-average share).
double daylight_factor(double hour_of_day, double day_of_year) {
  // Longer days in summer: half-day length varies 4..8 hours around noon.
  const double season =
      std::cos(2.0 * M_PI * (day_of_year - 172.0) / 365.0);  // peak ~Jun 21
  const double half_day = 6.0 + 2.0 * season;
  const double x = (hour_of_day - 12.0) / half_day;
  if (std::abs(x) >= 1.0) return 0.0;
  const double shape = std::cos(0.5 * M_PI * x);
  // Mean of cos(pi/2 x) over [-1,1] scaled by duty cycle ~ (2/pi)*(2*half/24).
  const double daily_mean = (2.0 / M_PI) * (2.0 * half_day / 24.0);
  return shape * shape / std::max(0.05, daily_mean);
}

}  // namespace

EnergyMixModel::EnergyMixModel(MixConfig config, util::Rng rng,
                               int horizon_hours)
    : config_(config) {
  if (horizon_hours <= 0)
    throw std::invalid_argument("EnergyMixModel: horizon must be positive");
  // Normalize base shares.
  double total = std::accumulate(config_.base_share.begin(),
                                 config_.base_share.end(), 0.0);
  if (total <= 0.0)
    throw std::invalid_argument("EnergyMixModel: base shares must be positive");
  for (double& s : config_.base_share) s /= total;

  samples_.resize(static_cast<std::size_t>(horizon_hours));
  ci_.resize(samples_.size());
  ewif_em_.resize(samples_.size());
  ewif_wri_.resize(samples_.size());

  double wind_swing = 0.0;
  const double innovation =
      config_.wind_noise *
      std::sqrt(1.0 - config_.wind_noise_rho * config_.wind_noise_rho);

  for (int h = 0; h < horizon_hours; ++h) {
    const double day_of_year = std::fmod(static_cast<double>(h) / 24.0, 365.0);
    const double hour_of_day = static_cast<double>(h % 24);

    auto share = config_.base_share;

    // Solar follows the daylight curve.
    const double solar_mult =
        (1.0 - config_.solar_diurnal_swing) +
        config_.solar_diurnal_swing * daylight_factor(hour_of_day, day_of_year);
    share[idx(EnergySource::Solar)] *= solar_mult;

    // Wind swings stochastically with hourly persistence.
    wind_swing = config_.wind_noise_rho * wind_swing + innovation * rng.normal();
    share[idx(EnergySource::Wind)] *=
        std::max(0.05, 1.0 + std::clamp(wind_swing, -0.9, 0.9));

    // Hydro follows the melt season (peak ~May, day 135).
    const double hydro_mult =
        1.0 + config_.hydro_seasonal_swing *
                  std::cos(2.0 * M_PI * (day_of_year - 135.0) / 365.0);
    share[idx(EnergySource::Hydro)] *= std::max(0.05, hydro_mult);

    // Dispatchable fossil generation absorbs the renewable deficit/surplus so
    // total supply stays constant: rescale gas/oil/coal to fill to 1.
    double renewable = 0.0;
    for (const EnergySource s :
         {EnergySource::Nuclear, EnergySource::Wind, EnergySource::Hydro,
          EnergySource::Geothermal, EnergySource::Solar, EnergySource::Biomass})
      renewable += share[idx(s)];
    double fossil_base = share[idx(EnergySource::Gas)] +
                         share[idx(EnergySource::Oil)] +
                         share[idx(EnergySource::Coal)];
    const double cap = 0.97;  // grids keep some dispatchable margin
    if (renewable > cap) {
      // Curtail renewables proportionally.
      const double scale = cap / renewable;
      for (const EnergySource s :
           {EnergySource::Nuclear, EnergySource::Wind, EnergySource::Hydro,
            EnergySource::Geothermal, EnergySource::Solar,
            EnergySource::Biomass})
        share[idx(s)] *= scale;
      renewable = cap;
    }
    const double fossil_needed = 1.0 - renewable;
    if (fossil_base > 1e-12) {
      const double scale = fossil_needed / fossil_base;
      share[idx(EnergySource::Gas)] *= scale;
      share[idx(EnergySource::Oil)] *= scale;
      share[idx(EnergySource::Coal)] *= scale;
    } else {
      // No fossil capacity configured: backfill with gas.
      share[idx(EnergySource::Gas)] += fossil_needed;
    }

    auto& out = samples_[static_cast<std::size_t>(h)];
    out = share;

    double ci = 0.0;
    double wem = 0.0;
    double wwri = 0.0;
    for (const EnergySource s : all_sources()) {
      ci += share[idx(s)] * env::carbon_intensity(s);
      wem += share[idx(s)] * env::ewif(s, WaterDataset::ElectricityMaps);
      wwri += share[idx(s)] * env::ewif(s, WaterDataset::WorldResourcesInstitute);
    }
    ci_[static_cast<std::size_t>(h)] = ci;
    ewif_em_[static_cast<std::size_t>(h)] = wem;
    ewif_wri_[static_cast<std::size_t>(h)] = wwri;
  }
}

std::array<double, kNumEnergySources> EnergyMixModel::shares_at(
    double t_seconds) const {
  const double h = std::max(0.0, t_seconds / 3600.0);
  const auto lo = static_cast<std::size_t>(
      std::min(h, static_cast<double>(samples_.size() - 1)));
  return samples_[lo];
}

double EnergyMixModel::share(EnergySource source, double t_seconds) const {
  return shares_at(t_seconds)[idx(source)];
}

namespace {
double interp(const std::vector<double>& v, double t_seconds) {
  const double h = std::max(0.0, t_seconds / 3600.0);
  const auto lo =
      static_cast<std::size_t>(std::min(h, static_cast<double>(v.size() - 1)));
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = std::clamp(h - static_cast<double>(lo), 0.0, 1.0);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}
}  // namespace

double EnergyMixModel::carbon_intensity(double t_seconds) const {
  return interp(ci_, t_seconds);
}

double EnergyMixModel::ewif(double t_seconds, WaterDataset dataset) const {
  return dataset == WaterDataset::ElectricityMaps ? interp(ewif_em_, t_seconds)
                                                  : interp(ewif_wri_, t_seconds);
}

}  // namespace ww::env
