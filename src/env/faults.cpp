#include "env/faults.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace ww::env {

namespace {

constexpr double kSecondsPerDay = 86400.0;

void check_window(int region, int num_regions, double start, double end) {
  if (region < 0 || region >= num_regions)
    throw std::out_of_range("FaultSchedule: region index out of range");
  if (!(end > start))
    throw std::invalid_argument("FaultSchedule: window must have end > start");
}

/// Appends Poisson-arrival windows of one kind to `out`, drawn from `rng`.
/// `make` fills the effect fields of a window given the magnitude stream.
template <typename MakeFn>
void generate_kind(util::Rng rng, double per_day, double mean_seconds,
                   double horizon_seconds, std::vector<FaultWindow>& out,
                   MakeFn make) {
  if (per_day <= 0.0 || mean_seconds <= 0.0 || horizon_seconds <= 0.0) return;
  const double rate_per_second = per_day / kSecondsPerDay;
  double t = rng.exponential(rate_per_second);
  while (t < horizon_seconds) {
    const double duration = rng.exponential(1.0 / mean_seconds);
    FaultWindow w;
    w.start = t;
    w.end = std::min(horizon_seconds, t + duration);
    if (w.end > w.start) {
      make(w, rng);
      out.push_back(w);
    }
    t += duration + rng.exponential(rate_per_second);
  }
}

}  // namespace

FaultSchedule::FaultSchedule(FaultScheduleConfig config) : config_(config) {
  if (config_.num_regions <= 0)
    throw std::invalid_argument("FaultSchedule: need at least one region");
  windows_.resize(static_cast<std::size_t>(config_.num_regions));
  const util::Rng root(config_.seed);
  for (int r = 0; r < config_.num_regions; ++r) {
    // Per-(region, kind) child streams: adding a kind (or changing one
    // kind's rate) never perturbs the windows another kind generates.
    const util::Rng region_rng = root.child(static_cast<std::uint64_t>(r));
    auto& win = windows_[static_cast<std::size_t>(r)];
    generate_kind(region_rng.child("outage"), config_.outages_per_region_day,
                  config_.outage_mean_seconds, config_.horizon_seconds, win,
                  [](FaultWindow& w, util::Rng&) { w.capacity_factor = 0.0; });
    generate_kind(region_rng.child("flap"), config_.flaps_per_region_day,
                  config_.flap_mean_seconds, config_.horizon_seconds, win,
                  [this](FaultWindow& w, util::Rng& rng) {
                    w.capacity_factor = rng.uniform(
                        config_.flap_capacity_min, config_.flap_capacity_max);
                  });
    generate_kind(region_rng.child("bias"),
                  config_.bias_windows_per_region_day,
                  config_.bias_mean_seconds, config_.horizon_seconds, win,
                  [this](FaultWindow& w, util::Rng& rng) {
                    w.carbon_bias = rng.uniform(config_.carbon_bias_min,
                                                config_.carbon_bias_max);
                    w.water_bias = rng.uniform(config_.water_bias_min,
                                               config_.water_bias_max);
                  });
    generate_kind(region_rng.child("shock"), config_.shocks_per_region_day,
                  config_.shock_mean_seconds, config_.horizon_seconds, win,
                  [this](FaultWindow& w, util::Rng& rng) {
                    w.wsf_shock = rng.uniform(config_.shock_wsf_min,
                                              config_.shock_wsf_max);
                  });
    std::stable_sort(win.begin(), win.end(),
                     [](const FaultWindow& a, const FaultWindow& b) {
                       return a.start < b.start;
                     });
  }
}

FaultSchedule::FaultSchedule(int num_regions) {
  if (num_regions <= 0)
    throw std::invalid_argument("FaultSchedule: need at least one region");
  config_.num_regions = num_regions;
  windows_.resize(static_cast<std::size_t>(num_regions));
}

void FaultSchedule::add_outage(int region, double start, double end) {
  check_window(region, num_regions(), start, end);
  FaultWindow w;
  w.start = start;
  w.end = end;
  w.capacity_factor = 0.0;
  windows_[static_cast<std::size_t>(region)].push_back(w);
}

void FaultSchedule::add_capacity_flap(int region, double start, double end,
                                      double factor) {
  check_window(region, num_regions(), start, end);
  if (factor < 0.0 || factor >= 1.0)
    throw std::invalid_argument("FaultSchedule: flap factor must be in [0, 1)");
  FaultWindow w;
  w.start = start;
  w.end = end;
  w.capacity_factor = factor;
  windows_[static_cast<std::size_t>(region)].push_back(w);
}

void FaultSchedule::add_forecast_bias(int region, double start, double end,
                                      double carbon_factor,
                                      double water_factor) {
  check_window(region, num_regions(), start, end);
  if (carbon_factor <= 0.0 || water_factor <= 0.0)
    throw std::invalid_argument("FaultSchedule: bias factors must be > 0");
  FaultWindow w;
  w.start = start;
  w.end = end;
  w.carbon_bias = carbon_factor;
  w.water_bias = water_factor;
  windows_[static_cast<std::size_t>(region)].push_back(w);
}

void FaultSchedule::add_water_shock(int region, double start, double end,
                                    double wsf_delta) {
  check_window(region, num_regions(), start, end);
  FaultWindow w;
  w.start = start;
  w.end = end;
  w.wsf_shock = wsf_delta;
  windows_[static_cast<std::size_t>(region)].push_back(w);
}

const std::vector<FaultWindow>& FaultSchedule::windows(int region) const {
  return windows_.at(static_cast<std::size_t>(region));
}

std::size_t FaultSchedule::total_windows() const noexcept {
  std::size_t total = 0;
  for (const auto& win : windows_) total += win.size();
  return total;
}

double FaultSchedule::capacity_factor(int region, double t) const {
  double factor = 1.0;
  for (const FaultWindow& w : windows(region))
    if (w.start <= t && t < w.end)
      factor = std::min(factor, w.capacity_factor);
  return factor;
}

double FaultSchedule::min_capacity_factor(int region, double t0,
                                          double t1) const {
  double factor = 1.0;
  for (const FaultWindow& w : windows(region))
    if (w.start < t1 && t0 < w.end)
      factor = std::min(factor, w.capacity_factor);
  return factor;
}

double FaultSchedule::carbon_bias(int region, double t) const {
  double bias = 1.0;
  for (const FaultWindow& w : windows(region))
    if (w.start <= t && t < w.end) bias *= w.carbon_bias;
  return bias;
}

double FaultSchedule::water_bias(int region, double t) const {
  double bias = 1.0;
  for (const FaultWindow& w : windows(region))
    if (w.start <= t && t < w.end) bias *= w.water_bias;
  return bias;
}

double FaultSchedule::wsf_shock(int region, double t) const {
  double shock = 0.0;
  for (const FaultWindow& w : windows(region))
    if (w.start <= t && t < w.end) shock += w.wsf_shock;
  return shock;
}

bool injected_solve_failure(std::uint64_t seed, double now, int chunk_index,
                            int attempt, double rate) noexcept {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // SplitMix64 over the argument tuple: stateless, so the verdict for a
  // (window, chunk, attempt) triple is identical at any thread count.
  std::uint64_t state = seed;
  state ^= std::bit_cast<std::uint64_t>(now);
  (void)util::splitmix64(state);
  state ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(chunk_index))
            << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt));
  const std::uint64_t h = util::splitmix64(state);
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < rate;
}

}  // namespace ww::env
