#include "env/environment.hpp"

#include <cmath>
#include <stdexcept>

namespace ww::env {

Environment::Environment(std::vector<RegionSpec> specs,
                         EnvironmentConfig config)
    : config_(config) {
  if (specs.empty())
    throw std::invalid_argument("Environment: need at least one region");
  const int horizon_hours = config_.horizon_days * 24;
  const util::Rng root(config_.seed);

  std::vector<std::pair<double, double>> points;
  points.reserve(specs.size());
  regions_.reserve(specs.size());
  for (auto& spec : specs) {
    if (config_.pue_override) spec.pue = *config_.pue_override;
    RegionRuntime rt;
    // Child streams are keyed by region *name* so a subset environment sees
    // exactly the same series for a region as the full environment does.
    const util::Rng region_rng = root.child(spec.name);
    rt.mix = std::make_unique<EnergyMixModel>(spec.mix, region_rng.child("mix"),
                                              horizon_hours);
    rt.weather = std::make_unique<WeatherModel>(
        spec.weather, region_rng.child("weather"), horizon_hours);
    points.emplace_back(spec.latitude, spec.longitude);
    rt.spec = std::move(spec);
    regions_.push_back(std::move(rt));
  }
  transfer_ = std::make_unique<TransferModel>(std::move(points),
                                              config_.transfer);
}

Environment Environment::builtin(EnvironmentConfig config) {
  return Environment(builtin_region_specs(), config);
}

Environment Environment::builtin_subset(const std::vector<int>& region_indices,
                                        EnvironmentConfig config) {
  const auto all = builtin_region_specs();
  std::vector<RegionSpec> specs;
  specs.reserve(region_indices.size());
  for (const int i : region_indices)
    specs.push_back(all.at(static_cast<std::size_t>(i)));
  return Environment(std::move(specs), config);
}

int Environment::region_index(const std::string& name) const {
  for (std::size_t i = 0; i < regions_.size(); ++i)
    if (regions_[i].spec.name == name) return static_cast<int>(i);
  throw std::out_of_range("Environment: unknown region '" + name + "'");
}

double Environment::carbon_intensity(int r, double t) const {
  double v = config_.carbon_intensity_scale *
             regions_.at(static_cast<std::size_t>(r)).mix->carbon_intensity(t);
  if (faults_ != nullptr && fault_view_ == FaultView::Controller)
    v *= faults_->carbon_bias(r, t);
  return v;
}

double Environment::ewif(int r, double t) const {
  double v = config_.water_intensity_scale *
             regions_.at(static_cast<std::size_t>(r))
                 .mix->ewif(t, config_.dataset);
  if (faults_ != nullptr && fault_view_ == FaultView::Controller)
    v *= faults_->water_bias(r, t);
  return v;
}

double Environment::wue(int r, double t) const {
  double v = config_.water_intensity_scale *
             regions_.at(static_cast<std::size_t>(r)).weather->wue(t);
  if (faults_ != nullptr && fault_view_ == FaultView::Controller)
    v *= faults_->water_bias(r, t);
  return v;
}

double Environment::wsf(int r) const {
  return regions_.at(static_cast<std::size_t>(r)).spec.wsf;
}

double Environment::wsf(int r, double t) const {
  double v = regions_.at(static_cast<std::size_t>(r)).spec.wsf;
  // Scarcity shocks are world-level: a drought raises the true Eq. 6
  // weighting, so both the ledger and the controller see it.
  if (faults_ != nullptr) v += faults_->wsf_shock(r, t);
  return v;
}

void Environment::attach_faults(const FaultSchedule* faults,
                                FaultView view) noexcept {
  faults_ = faults;
  fault_view_ = view;
}

double Environment::pue(int r) const {
  return regions_.at(static_cast<std::size_t>(r)).spec.pue;
}

double Environment::water_intensity(int r, double t) const {
  // Eq. 6: (WUE + PUE * EWIF) * (1 + WSF).
  return (wue(r, t) + pue(r) * ewif(r, t)) * (1.0 + wsf(r, t));
}

double Environment::electricity_price(int r, double t) const {
  const double hour = std::fmod(t / 3600.0, 24.0);
  // Peak tariff around 18:00 local-ish; off-peak overnight.
  const double swing = 0.25 * std::cos(2.0 * M_PI * (hour - 18.0) / 24.0);
  return regions_.at(static_cast<std::size_t>(r)).spec.price_usd_per_kwh *
         (1.0 + swing);
}

double Environment::mix_share(int r, EnergySource s, double t) const {
  return regions_.at(static_cast<std::size_t>(r)).mix->share(s, t);
}

double Environment::transfer_latency_seconds(int from, int to,
                                             double bytes) const {
  return transfer_->latency_seconds(from, to, bytes);
}

double Environment::transfer_energy_kwh(int from, int to, double bytes) const {
  return transfer_->energy_kwh(from, to, bytes);
}

double Environment::transfer_distance_km(int from, int to) const {
  return transfer_->distance_km(from, to);
}

int Environment::total_servers() const noexcept {
  int total = 0;
  for (const auto& r : regions_) total += r.spec.servers;
  return total;
}

}  // namespace ww::env
