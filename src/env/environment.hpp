// Environment facade: everything WaterWise observes about the world.
//
// Owns the region profiles, their energy-mix and weather series, the Water
// Scarcity Factors, and the transfer model, and exposes the quantities the
// footprint equations (Sec. 2) and the scheduler (Sec. 4) consume:
// carbon intensity, EWIF, WUE, WSF, PUE, water intensity (Eq. 6), and
// inter-region transfer latency/energy.  Sensitivity experiments plug in via
// multiplicative perturbation knobs (the +-10% studies of Sec. 6) and the
// dataset switch (Electricity Maps vs. WRI, Fig. 6).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "env/energy_mix.hpp"
#include "env/faults.hpp"
#include "env/latency.hpp"
#include "env/region.hpp"
#include "env/weather.hpp"
#include "util/rng.hpp"

namespace ww::env {

/// Which side of a fault campaign this Environment instance models.
///
/// World: the ground truth the simulator's ledger integrates — only
/// world-level faults apply (water-scarcity shocks; capacity faults are
/// consumed by the Simulator, not the Environment).
/// Controller: what the scheduler observes — world-level faults *plus* the
/// systematic forecast-bias multipliers on carbon/water intensities.
enum class FaultView { World, Controller };

struct EnvironmentConfig {
  std::uint64_t seed = 20250612;
  int horizon_days = 400;  ///< Precomputed series length.
  WaterDataset dataset = WaterDataset::ElectricityMaps;
  std::optional<double> pue_override;  ///< Force one PUE across regions.
  double carbon_intensity_scale = 1.0; ///< Sensitivity knob.
  double water_intensity_scale = 1.0;  ///< Sensitivity knob (scales EWIF+WUE).
  TransferConfig transfer;
};

class Environment {
 public:
  /// Builds an environment from explicit region specs.
  Environment(std::vector<RegionSpec> specs, EnvironmentConfig config = {});

  /// The paper's five-region setup (Zurich, Madrid, Oregon, Milan, Mumbai).
  [[nodiscard]] static Environment builtin(EnvironmentConfig config = {});

  /// Subset of the built-in regions by index into builtin_region_specs()
  /// (Fig. 12 region-availability experiments).
  [[nodiscard]] static Environment builtin_subset(
      const std::vector<int>& region_indices, EnvironmentConfig config = {});

  [[nodiscard]] int num_regions() const noexcept {
    return static_cast<int>(regions_.size());
  }
  [[nodiscard]] const RegionSpec& region(int r) const {
    return regions_.at(static_cast<std::size_t>(r)).spec;
  }
  [[nodiscard]] int region_index(const std::string& name) const;

  /// Grid carbon intensity, gCO2/kWh.
  [[nodiscard]] double carbon_intensity(int r, double t) const;
  /// Regional energy water intensity factor, L/kWh (active dataset).
  [[nodiscard]] double ewif(int r, double t) const;
  /// Water usage effectiveness (cooling), L/kWh.
  [[nodiscard]] double wue(int r, double t) const;
  /// Water scarcity factor (dimensionless, base spec value).
  [[nodiscard]] double wsf(int r) const;
  /// Water scarcity factor at instant t: the base value plus any active
  /// injected scarcity shock (identical to wsf(r) without attached faults).
  [[nodiscard]] double wsf(int r, double t) const;
  /// Power usage effectiveness.
  [[nodiscard]] double pue(int r) const;
  /// Water intensity, Eq. 6: (WUE + PUE * EWIF) * (1 + WSF).
  [[nodiscard]] double water_intensity(int r, double t) const;

  /// Attaches a fault-injection overlay (env/faults.hpp).  The schedule is
  /// borrowed, not owned — the caller keeps it alive for the Environment's
  /// lifetime.  World view applies only world-level faults (WSF shocks);
  /// Controller view additionally biases the observed carbon/water
  /// intensities.  Pass nullptr to detach.
  void attach_faults(const FaultSchedule* faults,
                     FaultView view = FaultView::World) noexcept;
  [[nodiscard]] const FaultSchedule* faults() const noexcept {
    return faults_;
  }

  /// Time-of-use electricity price, USD/kWh (Sec. 7 cost extension):
  /// the region's base tariff with a +-25% peak/off-peak swing.
  [[nodiscard]] double electricity_price(int r, double t) const;

  /// Generation share of a source in region r at time t.
  [[nodiscard]] double mix_share(int r, EnergySource s, double t) const;

  [[nodiscard]] double transfer_latency_seconds(int from, int to,
                                                double bytes) const;
  [[nodiscard]] double transfer_energy_kwh(int from, int to,
                                           double bytes) const;
  [[nodiscard]] double transfer_distance_km(int from, int to) const;

  [[nodiscard]] const EnvironmentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] WaterDataset dataset() const noexcept {
    return config_.dataset;
  }
  [[nodiscard]] double horizon_seconds() const noexcept {
    return static_cast<double>(config_.horizon_days) * 86400.0;
  }
  [[nodiscard]] int total_servers() const noexcept;

 private:
  struct RegionRuntime {
    RegionSpec spec;
    std::unique_ptr<EnergyMixModel> mix;
    std::unique_ptr<WeatherModel> weather;
  };

  std::vector<RegionRuntime> regions_;
  std::unique_ptr<TransferModel> transfer_;
  EnvironmentConfig config_;
  const FaultSchedule* faults_ = nullptr;  ///< Borrowed; see attach_faults.
  FaultView fault_view_ = FaultView::World;
};

}  // namespace ww::env
