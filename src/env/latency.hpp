// Inter-region transfer model.
//
// The paper compresses job execution files into a .tar and moves them across
// regions with SCP over 25 Gbps links; Table 3 shows the resulting latency /
// carbon / water overheads are small but nonzero.  We model transfer latency
// as propagation (great-circle distance over fiber with a routing stretch)
// plus serialization at an effective WAN throughput, and transfer energy with
// a per-byte WAN energy factor plus a small distance term.
#pragma once

#include <vector>

namespace ww::env {

struct TransferConfig {
  double fiber_speed_km_per_s = 200000.0;  ///< ~2/3 c in glass.
  double route_stretch = 1.6;              ///< Path vs. great-circle.
  double rtt_setup_count = 8.0;            ///< SCP/TCP handshake round trips.
  /// Single-stream cross-region SCP throughput.  Deliberately WAN-realistic
  /// (not the 25 Gbps NIC rate): at ~25 MB/s a 200-500 MB package costs
  /// 8-20 s, which is what makes the delay-tolerance constraint (Eq. 11)
  /// bind for short jobs — the effect Figs. 3/5 sweep.
  double effective_bandwidth_bytes_per_s = 25.0e6;
  double energy_kwh_per_gb = 6.0e-5;       ///< WAN transport energy.
  double energy_kwh_per_gb_per_1000km = 6.0e-6;  ///< Distance-dependent hops.
};

class TransferModel {
 public:
  TransferModel(std::vector<std::pair<double, double>> lat_lon,
                TransferConfig config = {});

  /// Seconds to move `bytes` from region `from` to region `to`.  Zero when
  /// from == to (local execution needs no transfer).
  [[nodiscard]] double latency_seconds(int from, int to, double bytes) const;

  /// Energy consumed by the transfer (kWh); split evenly between endpoints
  /// for accounting purposes.
  [[nodiscard]] double energy_kwh(int from, int to, double bytes) const;

  [[nodiscard]] double distance_km(int from, int to) const;
  [[nodiscard]] int num_regions() const noexcept {
    return static_cast<int>(points_.size());
  }

 private:
  std::vector<std::pair<double, double>> points_;
  TransferConfig config_;
};

}  // namespace ww::env
