// Energy sources and their carbon / water characteristics (paper Fig. 1).
//
// Carbon intensity per source follows the IPCC life-cycle figures the paper
// cites [Bruckner et al. 2014]; energy-water-intensity factors (EWIF) follow
// the Macknick et al. operational water-consumption review (the paper's
// "widely-used open-source dataset" [35, 36]).  A second EWIF table emulates
// the World Resources Institute guidance [45] used for the Fig. 6
// dataset-sensitivity experiment.
#pragma once

#include <array>
#include <string_view>

namespace ww::env {

enum class EnergySource : int {
  Nuclear = 0,
  Wind,
  Hydro,
  Geothermal,
  Solar,
  Biomass,
  Gas,
  Oil,
  Coal,
};

inline constexpr int kNumEnergySources = 9;

[[nodiscard]] std::string_view to_string(EnergySource s);

/// True for the carbon-friendly (renewable/low-carbon) sources.
[[nodiscard]] bool is_renewable(EnergySource s);

/// Life-cycle carbon intensity, gCO2/kWh (lower is better).
[[nodiscard]] double carbon_intensity(EnergySource s);

/// Which EWIF dataset feeds the water model.
enum class WaterDataset {
  ElectricityMaps,        ///< Default: Macknick-style operational factors.
  WorldResourcesInstitute ///< Alternative table for the Fig. 6 experiment.
};

[[nodiscard]] std::string_view to_string(WaterDataset d);

/// Energy water intensity factor, L/kWh (higher = more water-thirsty).
[[nodiscard]] double ewif(EnergySource s,
                          WaterDataset dataset = WaterDataset::ElectricityMaps);

/// All sources in enum order, for iteration.
[[nodiscard]] const std::array<EnergySource, kNumEnergySources>& all_sources();

}  // namespace ww::env
