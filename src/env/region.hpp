// Data-center region profiles.
//
// The paper evaluates five AWS regions: eu-central-2 (Zurich), us-west-2
// (Oregon), eu-south-2 (Madrid/Spain), eu-south-1 (Milan), ap-south-1
// (Mumbai).  Each profile bundles the sustainability factors WaterWise needs:
// energy mix (carbon intensity + EWIF), weather (WUE), Water Scarcity Factor,
// PUE, geographic location for the transfer model, and server capacity.
#pragma once

#include <string>

#include "env/energy_mix.hpp"
#include "env/weather.hpp"

namespace ww::env {

struct RegionSpec {
  std::string name;      ///< Human name, e.g. "Zurich".
  std::string aws_zone;  ///< e.g. "eu-central-2".
  double latitude = 0.0;
  double longitude = 0.0;
  double wsf = 0.0;      ///< Water Scarcity Factor (Fig. 2d; [0, 1)).
  double pue = 1.2;      ///< Power Usage Effectiveness (paper default 1.2).
  int servers = 35;      ///< Server count (paper: 175 nodes / 5 regions).
  /// Base industrial electricity price (USD/kWh), for the cost-objective
  /// extension the paper's Discussion section sketches (Sec. 7).
  double price_usd_per_kwh = 0.12;
  MixConfig mix;
  WeatherConfig weather;
};

/// Built-in specs for the paper's five regions, calibrated so the regional
/// averages reproduce Fig. 2: carbon intensity ordered Zurich < Madrid <
/// Oregon < Milan < Mumbai; Zurich highest EWIF (hydro/biomass grid);
/// Mumbai low EWIF but high WSF and WUE; Madrid carbon-friendly yet
/// water-stressed.
[[nodiscard]] RegionSpec zurich_spec();
[[nodiscard]] RegionSpec madrid_spec();
[[nodiscard]] RegionSpec oregon_spec();
[[nodiscard]] RegionSpec milan_spec();
[[nodiscard]] RegionSpec mumbai_spec();

/// All five in the paper's sort order (by carbon intensity).
[[nodiscard]] std::vector<RegionSpec> builtin_region_specs();

/// Great-circle distance between two lat/lon points, kilometers.
[[nodiscard]] double haversine_km(double lat1, double lon1, double lat2,
                                  double lon2);

}  // namespace ww::env
