#include "env/region.hpp"

#include <cmath>

namespace ww::env {

namespace {
constexpr std::size_t idx(EnergySource s) {
  return static_cast<std::size_t>(static_cast<int>(s));
}

MixConfig make_mix(double nuclear, double wind, double hydro, double geo,
                   double solar, double biomass, double gas, double oil,
                   double coal) {
  MixConfig mix;
  mix.base_share[idx(EnergySource::Nuclear)] = nuclear;
  mix.base_share[idx(EnergySource::Wind)] = wind;
  mix.base_share[idx(EnergySource::Hydro)] = hydro;
  mix.base_share[idx(EnergySource::Geothermal)] = geo;
  mix.base_share[idx(EnergySource::Solar)] = solar;
  mix.base_share[idx(EnergySource::Biomass)] = biomass;
  mix.base_share[idx(EnergySource::Gas)] = gas;
  mix.base_share[idx(EnergySource::Oil)] = oil;
  mix.base_share[idx(EnergySource::Coal)] = coal;
  return mix;
}
}  // namespace

RegionSpec zurich_spec() {
  RegionSpec r;
  r.name = "Zurich";
  r.aws_zone = "eu-central-2";
  r.latitude = 47.38;
  r.longitude = 8.54;
  r.wsf = 0.15;
  r.price_usd_per_kwh = 0.16;
  // Hydro/nuclear/biomass-heavy Swiss grid: lowest carbon intensity of the
  // five but the highest EWIF (paper Fig. 2a/2b discussion).
  r.mix = make_mix(/*nuclear=*/0.28, /*wind=*/0.04, /*hydro=*/0.30,
                   /*geo=*/0.00, /*solar=*/0.06, /*biomass=*/0.12,
                   /*gas=*/0.16, /*oil=*/0.02, /*coal=*/0.02);
  r.weather = WeatherConfig{8.0, 8.0, 3.0, 1.6, 0.92, 200, 14.0};
  return r;
}

RegionSpec madrid_spec() {
  RegionSpec r;
  r.name = "Madrid";
  r.aws_zone = "eu-south-2";
  r.latitude = 40.42;
  r.longitude = -3.70;
  r.wsf = 0.72;  // carbon-friendly yet severely water-stressed (Fig. 2d)
  r.price_usd_per_kwh = 0.12;
  r.mix = make_mix(0.20, 0.24, 0.08, 0.00, 0.22, 0.03, 0.20, 0.01, 0.02);
  // Hot, dry interior: high wet-bulb summers drive the second-highest WUE
  // of the five regions (Fig. 2c), so Madrid is carbon-friendly but
  // water-expensive — the tension Observation 2 highlights.
  r.weather = WeatherConfig{14.5, 9.0, 5.0, 1.8, 0.90, 200, 14.0};
  return r;
}

RegionSpec oregon_spec() {
  RegionSpec r;
  r.name = "Oregon";
  r.aws_zone = "us-west-2";
  r.latitude = 45.52;
  r.longitude = -122.68;
  r.wsf = 0.55;  // low regional EWIF but high scarcity (paper Sec. 3, Obs. 2)
  r.price_usd_per_kwh = 0.08;
  r.mix = make_mix(0.16, 0.10, 0.14, 0.01, 0.05, 0.01, 0.40, 0.01, 0.12);
  r.weather = WeatherConfig{9.5, 7.0, 4.0, 1.7, 0.91, 200, 14.0};
  return r;
}

RegionSpec milan_spec() {
  RegionSpec r;
  r.name = "Milan";
  r.aws_zone = "eu-south-1";
  r.latitude = 45.46;
  r.longitude = 9.19;
  r.wsf = 0.35;
  r.price_usd_per_kwh = 0.18;
  r.mix = make_mix(0.02, 0.06, 0.13, 0.01, 0.10, 0.06, 0.50, 0.08, 0.04);
  r.weather = WeatherConfig{11.5, 9.0, 3.5, 1.6, 0.91, 200, 14.0};
  return r;
}

RegionSpec mumbai_spec() {
  RegionSpec r;
  r.name = "Mumbai";
  r.aws_zone = "ap-south-1";
  r.latitude = 19.08;
  r.longitude = 72.88;
  r.wsf = 0.78;
  r.price_usd_per_kwh = 0.09;
  // Coal-dominated grid: highest carbon intensity, but low regional EWIF
  // (fossil sources are water-light per Fig. 1).
  r.mix = make_mix(0.03, 0.02, 0.05, 0.00, 0.08, 0.01, 0.14, 0.08, 0.59);
  r.weather = WeatherConfig{24.0, 3.5, 2.0, 1.2, 0.93, 135, 11.0};
  return r;
}

std::vector<RegionSpec> builtin_region_specs() {
  return {zurich_spec(), madrid_spec(), oregon_spec(), milan_spec(),
          mumbai_spec()};
}

double haversine_km(double lat1, double lon1, double lat2, double lon2) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDeg2Rad = M_PI / 180.0;
  const double phi1 = lat1 * kDeg2Rad;
  const double phi2 = lat2 * kDeg2Rad;
  const double dphi = (lat2 - lat1) * kDeg2Rad;
  const double dlambda = (lon2 - lon1) * kDeg2Rad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

}  // namespace ww::env
