// Regional wet-bulb temperature synthesis and the WUE cooling model.
//
// The paper sources wet-bulb temperature from Meteologix and derives Water
// Usage Effectiveness (WUE) from it [32].  Offline we synthesize a per-region
// wet-bulb series as annual + diurnal sinusoids plus AR(1) weather noise,
// calibrated so regional WUE averages reproduce Fig. 2(c) (Mumbai and Madrid
// high, Zurich low).  WUE follows the standard cooling-tower evaporation
// curve: monotonically increasing in wet-bulb temperature.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace ww::env {

/// Cooling-tower WUE (L per kWh of IT energy) as a function of wet-bulb
/// temperature in Celsius.  Monotone non-decreasing, clamped below at the
/// drift/blowdown floor.
[[nodiscard]] double wue_from_wet_bulb(double wet_bulb_c);

struct WeatherConfig {
  double mean_c = 12.0;          ///< Annual mean wet-bulb temperature.
  double annual_amplitude_c = 8.0;
  double diurnal_amplitude_c = 3.0;
  double noise_stddev_c = 1.5;   ///< AR(1) innovation scale.
  double noise_rho = 0.92;       ///< AR(1) hourly persistence.
  double peak_day_of_year = 200; ///< Warmest day (July in the north).
  double peak_hour_utc = 14.0;   ///< Warmest hour of day.
};

/// Deterministic, precomputed hourly wet-bulb series.
class WeatherModel {
 public:
  /// `horizon_hours` samples are generated from `rng` at construction; all
  /// later queries are pure lookups + interpolation (bit-reproducible).
  WeatherModel(WeatherConfig config, util::Rng rng, int horizon_hours);

  /// Wet-bulb temperature at time t (seconds since epoch start); linear
  /// interpolation between hourly samples, clamped at the horizon.
  [[nodiscard]] double wet_bulb_c(double t_seconds) const;

  [[nodiscard]] double wue(double t_seconds) const {
    return wue_from_wet_bulb(wet_bulb_c(t_seconds));
  }

  [[nodiscard]] const WeatherConfig& config() const noexcept { return config_; }
  [[nodiscard]] int horizon_hours() const noexcept {
    return static_cast<int>(samples_.size());
  }

 private:
  WeatherConfig config_;
  std::vector<double> samples_;  ///< Hourly wet-bulb temperatures.
};

}  // namespace ww::env
