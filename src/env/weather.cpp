#include "env/weather.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ww::env {

double wue_from_wet_bulb(double wet_bulb_c) {
  // Quadratic fit to cooling-tower evaporation: ~0.4 L/kWh at 5C wet-bulb,
  // ~3 L/kWh at 15C, ~6.5 L/kWh at 25C, ~8.5 L/kWh at 30C — matching the
  // 0-8 L/kWh regional range of Fig. 2(c).  Floor models drift/blowdown.
  const double w = -0.72 + 0.198 * wet_bulb_c + 0.0036 * wet_bulb_c * wet_bulb_c;
  return std::max(0.05, w);
}

WeatherModel::WeatherModel(WeatherConfig config, util::Rng rng,
                           int horizon_hours)
    : config_(config) {
  if (horizon_hours <= 0)
    throw std::invalid_argument("WeatherModel: horizon must be positive");
  samples_.resize(static_cast<std::size_t>(horizon_hours));
  double noise = 0.0;
  const double innovation =
      config_.noise_stddev_c * std::sqrt(1.0 - config_.noise_rho * config_.noise_rho);
  for (int h = 0; h < horizon_hours; ++h) {
    const double day = static_cast<double>(h) / 24.0;
    const double hour_of_day = static_cast<double>(h % 24);
    const double annual =
        config_.annual_amplitude_c *
        std::cos(2.0 * M_PI * (day - config_.peak_day_of_year) / 365.0);
    const double diurnal =
        config_.diurnal_amplitude_c *
        std::cos(2.0 * M_PI * (hour_of_day - config_.peak_hour_utc) / 24.0);
    noise = config_.noise_rho * noise + innovation * rng.normal();
    samples_[static_cast<std::size_t>(h)] =
        config_.mean_c + annual + diurnal + noise;
  }
}

double WeatherModel::wet_bulb_c(double t_seconds) const {
  const double h = std::max(0.0, t_seconds / 3600.0);
  const auto lo = static_cast<std::size_t>(
      std::min(h, static_cast<double>(samples_.size() - 1)));
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = std::clamp(h - static_cast<double>(lo), 0.0, 1.0);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace ww::env
