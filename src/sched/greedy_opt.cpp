#include "sched/greedy_opt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

namespace ww::sched {

namespace {

/// In-batch reservation overlay so jobs placed earlier in this batch are
/// visible to later placements before the simulator applies the decisions.
class Overlay {
 public:
  explicit Overlay(const dc::CapacityView* base) : base_(base) {
    deltas_.resize(static_cast<std::size_t>(base->num_regions()));
  }

  [[nodiscard]] bool fits(int region, double start, double end) const {
    int occ = base_->max_occupancy(region, start, end);
    // Conservative: add every overlapping overlay reservation.
    for (const auto& [s, e] : deltas_[static_cast<std::size_t>(region)])
      if (s < end && start < e) ++occ;
    return occ < base_->capacity(region);
  }

  void reserve(int region, double start, double end) {
    deltas_[static_cast<std::size_t>(region)].emplace_back(start, end);
  }

 private:
  const dc::CapacityView* base_;
  std::vector<std::vector<std::pair<double, double>>> deltas_;
};

}  // namespace

std::vector<int> greedy_fallback_assign(
    const std::vector<const dc::PendingJob*>& jobs,
    const std::vector<int>& quota, const dc::ScheduleContext& ctx,
    double lambda_co2, double lambda_h2o, double delay_estimate_margin,
    bool allow_delay_violations) {
  const int n = static_cast<int>(quota.size());
  std::vector<int> assign(jobs.size(), -1);
  if (jobs.empty() || n == 0) return assign;

  // Region-level normalized cost at the decision instant — the Eq. 8
  // objective without the per-job energy factor, which scales every region
  // identically for a given job and so never changes the argmin.
  std::vector<double> cost(static_cast<std::size_t>(n));
  {
    std::vector<double> ci(static_cast<std::size_t>(n));
    std::vector<double> wi(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ci[static_cast<std::size_t>(r)] = ctx.env->carbon_intensity(r, ctx.now);
      wi[static_cast<std::size_t>(r)] = ctx.env->water_intensity(r, ctx.now);
    }
    const double ci_max =
        std::max(1e-12, *std::max_element(ci.begin(), ci.end()));
    const double wi_max =
        std::max(1e-12, *std::max_element(wi.begin(), wi.end()));
    for (int r = 0; r < n; ++r)
      cost[static_cast<std::size_t>(r)] =
          lambda_co2 * ci[static_cast<std::size_t>(r)] / ci_max +
          lambda_h2o * wi[static_cast<std::size_t>(r)] / wi_max;
  }

  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a]->est_exec_s > jobs[b]->est_exec_s;
                   });

  std::vector<int> quota_left(quota);
  for (const std::size_t ji : order) {
    const dc::PendingJob& p = *jobs[ji];
    const double waited = ctx.now - p.first_seen;
    const double allowance = std::max(
        0.0, ctx.tol * delay_estimate_margin * p.est_exec_s - waited);

    // Pass 1: cheapest admissible region, with admissibility stated exactly
    // as the hard model's Eq. 11 bound fixing (latency > allowance forbids);
    // ties break toward the lower region index.
    int chosen = -1;
    double chosen_cost = std::numeric_limits<double>::infinity();
    for (int r = 0; r < n; ++r) {
      if (quota_left[static_cast<std::size_t>(r)] <= 0) continue;
      const double latency = ctx.env->transfer_latency_seconds(
          p.job->home_region, r, p.job->package_bytes);
      if (latency > allowance) continue;
      if (cost[static_cast<std::size_t>(r)] < chosen_cost) {
        chosen = r;
        chosen_cost = cost[static_cast<std::size_t>(r)];
      }
    }

    // Pass 2 (soft semantics): no admissible region — take the smallest
    // exceedance, then the cheapest, then the lowest index, mirroring the
    // soft model's penalty trade instead of deferring the job.
    if (chosen < 0 && allow_delay_violations) {
      double chosen_exceed = std::numeric_limits<double>::infinity();
      chosen_cost = std::numeric_limits<double>::infinity();
      for (int r = 0; r < n; ++r) {
        if (quota_left[static_cast<std::size_t>(r)] <= 0) continue;
        const double latency = ctx.env->transfer_latency_seconds(
            p.job->home_region, r, p.job->package_bytes);
        const double exceedance = latency - allowance;
        const double c = cost[static_cast<std::size_t>(r)];
        if (exceedance < chosen_exceed ||
            (exceedance == chosen_exceed && c < chosen_cost)) {
          chosen = r;
          chosen_exceed = exceedance;
          chosen_cost = c;
        }
      }
    }

    if (chosen < 0) continue;  // deferred: quota exhausted or inadmissible
    --quota_left[static_cast<std::size_t>(chosen)];
    assign[ji] = chosen;
  }
  return assign;
}

std::vector<dc::Decision> GreedyOptScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  const int n = ctx.capacity->num_regions();
  Overlay overlay(ctx.capacity);

  // Most-constrained (least remaining slack) jobs pick their slots first.
  std::vector<const dc::PendingJob*> order;
  order.reserve(batch.size());
  for (const auto& p : batch) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [&](const dc::PendingJob* a, const dc::PendingJob* b) {
              const double slack_a = (a->job->submit_time +
                                      ctx.tol * a->job->exec_seconds) - ctx.now;
              const double slack_b = (b->job->submit_time +
                                      ctx.tol * b->job->exec_seconds) - ctx.now;
              return slack_a < slack_b;
            });

  std::vector<dc::Decision> decisions;
  for (const dc::PendingJob* p : order) {
    const trace::Job& job = *p->job;
    // Latest start honoring service <= (1 + TOL) * exec.
    const double latest_start =
        job.submit_time + (1.0 + ctx.tol) * job.exec_seconds - job.exec_seconds;

    double best_cost = std::numeric_limits<double>::infinity();
    int best_region = -1;
    double best_start = 0.0;

    for (int r = 0; r < n; ++r) {
      const double transfer = ctx.env->transfer_latency_seconds(
          job.home_region, r, job.package_bytes);
      const double earliest = ctx.now + transfer;
      if (earliest > latest_start + 1e-9 && !(r == job.home_region)) {
        // Remote start can't honor the tolerance; still allow home region
        // below if its earliest start fits.
      }
      const double window = latest_start - earliest;
      const int steps = window > 0.0 ? config_.start_candidates : 1;
      for (int k = 0; k < steps; ++k) {
        const double start =
            earliest + (steps > 1 ? window * static_cast<double>(k) /
                                        static_cast<double>(steps - 1)
                                  : 0.0);
        if (start > latest_start + 1e-9) break;
        const double end = start + job.exec_seconds;
        if (!overlay.fits(r, start, end)) continue;
        // Oracle: evaluate the true future footprint of this placement.
        const footprint::Breakdown fb = ctx.footprint->job_integrated(
            r, start, job.exec_seconds, job.energy_kwh());
        const footprint::Breakdown tb = ctx.footprint->transfer(
            job.home_region, r, job.package_bytes, ctx.now);
        const double cost = metric_ == GreedyMetric::Carbon
                                ? fb.carbon_g() + tb.carbon_g()
                                : fb.water_l() + tb.water_l();
        if (cost < best_cost) {
          best_cost = cost;
          best_region = r;
          best_start = start;
        }
      }
    }

    if (best_region < 0) {
      // Nothing fits inside the tolerance window: place at the earliest
      // feasible home slot we can see (may violate; Table 2 shows the
      // oracles do violate occasionally under capacity pressure).
      const int r = job.home_region;
      for (double start = ctx.now;
           start < ctx.now + 64.0 * job.exec_seconds + 3600.0;
           start += std::max(30.0, job.exec_seconds * 0.5)) {
        if (overlay.fits(r, start, start + job.exec_seconds)) {
          best_region = r;
          best_start = start;
          break;
        }
      }
      if (best_region < 0) continue;  // stay pending for the next batch
    }

    overlay.reserve(best_region, best_start, best_start + job.exec_seconds);
    decisions.push_back(dc::Decision{job.id, best_region, best_start, 1.0});
  }
  return decisions;
}

}  // namespace ww::sched
