#include "sched/basic.hpp"

#include <algorithm>

namespace ww::sched {

std::vector<dc::Decision> BaselineScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  std::vector<dc::Decision> decisions;
  std::vector<int> free(static_cast<std::size_t>(ctx.capacity->num_regions()));
  for (int r = 0; r < ctx.capacity->num_regions(); ++r)
    free[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);

  for (const dc::PendingJob& p : batch) {
    const int home = p.job->home_region;
    auto& f = free[static_cast<std::size_t>(home)];
    if (f <= 0) continue;  // wait for a home server (stays pending)
    --f;
    decisions.push_back(dc::Decision{p.job->id, home, ctx.now, 1.0});
  }
  return decisions;
}

std::vector<dc::Decision> RoundRobinScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  const int n = ctx.capacity->num_regions();
  std::vector<int> free(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    free[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);

  std::vector<dc::Decision> decisions;
  for (const dc::PendingJob& p : batch) {
    int chosen = -1;
    for (int k = 0; k < n; ++k) {
      const int r = (cursor_ + k) % n;
      if (free[static_cast<std::size_t>(r)] > 0) {
        chosen = r;
        cursor_ = (r + 1) % n;
        break;
      }
    }
    if (chosen < 0) continue;
    --free[static_cast<std::size_t>(chosen)];
    const double start = ctx.now + ctx.env->transfer_latency_seconds(
                                       p.job->home_region, chosen,
                                       p.job->package_bytes);
    decisions.push_back(dc::Decision{p.job->id, chosen, start, 1.0});
  }
  return decisions;
}

std::vector<dc::Decision> LeastLoadScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  const int n = ctx.capacity->num_regions();
  std::vector<int> free(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    free[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);

  std::vector<dc::Decision> decisions;
  for (const dc::PendingJob& p : batch) {
    const auto it = std::max_element(free.begin(), free.end());
    if (*it <= 0) continue;
    const int chosen = static_cast<int>(it - free.begin());
    --*it;
    const double start = ctx.now + ctx.env->transfer_latency_seconds(
                                       p.job->home_region, chosen,
                                       p.job->package_bytes);
    decisions.push_back(dc::Decision{p.job->id, chosen, start, 1.0});
  }
  return decisions;
}

}  // namespace ww::sched
