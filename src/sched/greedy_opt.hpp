// Carbon-Greedy-Opt and Water-Greedy-Opt oracles (Sec. 3 / Sec. 5).
//
// Infeasible-in-practice reference schedulers: they know each job's true
// execution time and the *future* carbon/water intensity of every region,
// and brute-force, per job, every (region, start-time) pair inside the
// delay-tolerance window, reserving the single-metric cheapest slot that
// fits capacity.  They are greedy over jobs (no knowledge of future
// arrivals), exactly as the paper qualifies: "not truly optimal since they
// make the scheduling decision without knowing the characteristics of
// future job arrivals."
#pragma once

#include "dc/scheduler.hpp"

namespace ww::sched {

enum class GreedyMetric { Carbon, Water };

struct GreedyOptConfig {
  int start_candidates = 9;  ///< Start times sampled across the slack window.
};

class GreedyOptScheduler final : public dc::Scheduler {
 public:
  explicit GreedyOptScheduler(GreedyMetric metric, GreedyOptConfig config = {})
      : metric_(metric), config_(config) {}

  [[nodiscard]] std::string name() const override {
    return metric_ == GreedyMetric::Carbon ? "Carbon-Greedy-Opt"
                                           : "Water-Greedy-Opt";
  }

  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;

 private:
  GreedyMetric metric_;
  GreedyOptConfig config_;
};

}  // namespace ww::sched
