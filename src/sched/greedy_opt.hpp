// Carbon-Greedy-Opt and Water-Greedy-Opt oracles (Sec. 3 / Sec. 5).
//
// Infeasible-in-practice reference schedulers: they know each job's true
// execution time and the *future* carbon/water intensity of every region,
// and brute-force, per job, every (region, start-time) pair inside the
// delay-tolerance window, reserving the single-metric cheapest slot that
// fits capacity.  They are greedy over jobs (no knowledge of future
// arrivals), exactly as the paper qualifies: "not truly optimal since they
// make the scheduling decision without knowing the characteristics of
// future job arrivals."
#pragma once

#include "dc/scheduler.hpp"

namespace ww::sched {

enum class GreedyMetric { Carbon, Water };

struct GreedyOptConfig {
  int start_candidates = 9;  ///< Start times sampled across the slack window.
};

/// Guaranteed-feasible greedy placement for WaterWise's retry-then-degrade
/// ladder (core/waterwise.cpp): when every solver rung has failed, assign
/// jobs most-constrained-first (longest estimated runtime, stable by input
/// order) to the cheapest region with remaining quota, where "cheapest"
/// ranks regions by the normalized lambda-weighted carbon/water intensity at
/// ctx.now.  A region is delay-admissible when its transfer latency fits the
/// job's remaining allowance (exactly the hard model's Eq. 11 fixing rule).
/// With `allow_delay_violations` set, jobs with no admissible region fall
/// back to the region minimizing (exceedance, cost) — mirroring the soft
/// model's penalty trade — instead of deferring.
///
/// Returns one region index per input job, aligned with `jobs`; -1 means
/// "not placed" (quota exhausted, or inadmissible with violations
/// disallowed).  Placements never exceed `quota`, so the result is
/// capacity-feasible by construction, and the function is pure — the same
/// arguments produce the same assignment at any thread count.
[[nodiscard]] std::vector<int> greedy_fallback_assign(
    const std::vector<const dc::PendingJob*>& jobs,
    const std::vector<int>& quota, const dc::ScheduleContext& ctx,
    double lambda_co2, double lambda_h2o, double delay_estimate_margin,
    bool allow_delay_violations);

class GreedyOptScheduler final : public dc::Scheduler {
 public:
  explicit GreedyOptScheduler(GreedyMetric metric, GreedyOptConfig config = {})
      : metric_(metric), config_(config) {}

  [[nodiscard]] std::string name() const override {
    return metric_ == GreedyMetric::Carbon ? "Carbon-Greedy-Opt"
                                           : "Water-Greedy-Opt";
  }

  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;

 private:
  GreedyMetric metric_;
  GreedyOptConfig config_;
};

}  // namespace ww::sched
