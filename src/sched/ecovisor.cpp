#include "sched/ecovisor.hpp"

#include <algorithm>

namespace ww::sched {

std::vector<dc::Decision> EcovisorScheduler::schedule(
    const std::vector<dc::PendingJob>& batch, const dc::ScheduleContext& ctx) {
  std::vector<int> free(static_cast<std::size_t>(ctx.capacity->num_regions()));
  for (int r = 0; r < ctx.capacity->num_regions(); ++r)
    free[static_cast<std::size_t>(r)] = ctx.capacity->free_at(r, ctx.now);

  std::vector<dc::Decision> decisions;
  for (const dc::PendingJob& p : batch) {
    const int home = p.job->home_region;
    auto& f = free[static_cast<std::size_t>(home)];
    if (f <= 0) continue;
    --f;

    // Carbon scaler: the target carbon rate is anchored to the intensity at
    // campaign start; when the grid is dirtier than the anchor, power is
    // capped proportionally (stretching the job), shifting energy toward
    // hopefully-cleaner hours.
    const double anchor =
        ctx.env->carbon_intensity(home, config_.anchor_time);
    const double current = ctx.env->carbon_intensity(home, ctx.now);
    double scale = 1.0;
    if (current > anchor && current > 0.0)
      scale = std::clamp(anchor / current, config_.min_power_scale, 1.0);

    decisions.push_back(dc::Decision{p.job->id, home, ctx.now, scale});
  }
  return decisions;
}

}  // namespace ww::sched
