// Ecovisor-style carbon scaler (Souza et al., ASPLOS 2023), as the paper's
// customized comparison point (Sec. 5/6, Fig. 7).
//
// Behaviour reproduced per the paper's description of its customized
// implementation: every job executes in its *home* region (no cross-region
// scheduling); a carbon scaler anchors a target carbon rate to the carbon
// intensity observed when the job starts, and scales container power down
// (stretching execution) when the current intensity exceeds the anchor.
// Only operational carbon is managed; embodied carbon grows with the
// stretched execution time, and water is not considered at all — the two
// structural gaps Fig. 7 highlights.
#pragma once

#include "dc/scheduler.hpp"

namespace ww::sched {

struct EcovisorConfig {
  double min_power_scale = 0.6;  ///< Deepest power cap the scaler applies.
  /// The anchor intensity is the region's intensity at campaign start
  /// (the paper notes: "if the initial carbon intensity is high when the
  /// experiment begins, the target carbon footprint is always set high").
  double anchor_time = 0.0;
};

class EcovisorScheduler final : public dc::Scheduler {
 public:
  explicit EcovisorScheduler(EcovisorConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Ecovisor"; }

  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;

 private:
  EcovisorConfig config_;
};

}  // namespace ww::sched
