// Carbon/water-unaware scheduling policies (Sec. 5 "Relevant Techniques").
//
//  * Baseline    — every job runs in its home region as soon as a server is
//                  free; no migration, no intentional delay.  All savings in
//                  the paper (and in our benches) are reported against it.
//  * Round-Robin — cycles regions in order, skipping full ones.
//  * Least-Load  — picks the region with the most free servers.
#pragma once

#include "dc/scheduler.hpp"

namespace ww::sched {

class BaselineScheduler final : public dc::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Baseline"; }
  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;
};

class RoundRobinScheduler final : public dc::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Round-Robin"; }
  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;

 private:
  int cursor_ = 0;
};

class LeastLoadScheduler final : public dc::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Least-Load"; }
  [[nodiscard]] std::vector<dc::Decision> schedule(
      const std::vector<dc::PendingJob>& batch,
      const dc::ScheduleContext& ctx) override;
};

}  // namespace ww::sched
