// Presolve/postsolve subsystem: round-trip equivalence against the raw
// solver across the instance corpus, targeted cases for each reduction
// (singleton row, fixed column, redundant row, implied-free column
// singleton, infeasibility detected in presolve, empty-problem fast path),
// LP dual recovery through postsolve, and seed-incumbent translation.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "milp/presolve.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

Solution solve_with(const Model& m, bool presolve,
                    const Solution* seed = nullptr) {
  SolverOptions o;
  o.presolve = presolve;
  return solve(m, o, seed);
}

// --- round-trip equivalence across the corpus ------------------------------

struct CorpusCase {
  const char* name;
  Model model;
};

std::vector<CorpusCase> corpus() {
  std::vector<CorpusCase> cs;
  cs.push_back({"shaped-32x4", waterwise_shaped_model(32, 4)});
  cs.push_back({"shaped-64x5", waterwise_shaped_model(64, 5)});
  cs.push_back({"hard-chunk-60x5", hard_chunk_model(60, 5, 0.4)});
  cs.push_back({"hard-chunk-120x6", hard_chunk_model(120, 6, 0.5, 23)});
  cs.push_back({"soft-chunk-30x4", soft_chunk_model(30, 4)});
  cs.push_back({"weak-relax-8x3", weak_relaxation_model(8, 3, 4.0)});
  cs.push_back({"weak-relax-12x3", weak_relaxation_model(12, 3, 5.0)});
  return cs;
}

TEST(Presolve, RoundTripEquivalenceAcrossCorpus) {
  for (auto& c : corpus()) {
    const Solution on = solve_with(c.model, true);
    const Solution off = solve_with(c.model, false);
    ASSERT_EQ(on.status, off.status) << c.name;
    ASSERT_EQ(on.status, Status::Optimal) << c.name;
    EXPECT_NEAR(on.objective, off.objective, 1e-7) << c.name;
    // The postsolved point must be feasible in the *original* model.
    EXPECT_LE(c.model.max_violation(on.values), 1e-6) << c.name;
    EXPECT_EQ(on.values.size(),
              static_cast<std::size_t>(c.model.num_variables()))
        << c.name;
  }
}

// --- targeted reductions (Presolve class level, below the facade's
// reduction-ratio gate) -----------------------------------------------------

TEST(Presolve, SingletonRowBecomesBound) {
  // min -x: the 2x <= 8 singleton row is the only thing keeping x off 10.
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, -1.0);
  (void)m.add_constraint("s", {{0, 2.0}}, Sense::LessEqual, 8.0);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::Reduced);
  EXPECT_EQ(pre.stats().rows_removed, 1);
  pre.build_reduced(m);
  ASSERT_EQ(pre.reduced().num_constraints(), 0);
  ASSERT_EQ(pre.reduced().num_variables(), 1);
  EXPECT_DOUBLE_EQ(pre.reduced().variable(0).upper, 4.0);

  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-9);
  // The removed row supplied the binding bound, so it claims the reduced
  // cost as its dual: y = -1/2, rc_x = 0.
  ASSERT_EQ(sol.duals.size(), 1u);
  EXPECT_NEAR(sol.duals[0], -0.5, 1e-9);
  EXPECT_NEAR(sol.reduced_costs[0], 0.0, 1e-9);
}

TEST(Presolve, EqualitySingletonFixesVariable) {
  // 3x == 6 fixes x = 2; the other row then loses the term.
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, 1.0);
  (void)m.add_continuous("y", 0.0, 10.0, 1.0);
  (void)m.add_constraint("fix", {{0, 3.0}}, Sense::Equal, 6.0);
  (void)m.add_constraint("link", {{0, 1.0}, {1, 1.0}}, Sense::GreaterEqual,
                         5.0);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::Reduced);
  EXPECT_EQ(pre.stats().cols_removed, 1);
  pre.build_reduced(m);
  // The link row survives as a singleton-derived bound on y (y >= 3), so
  // everything collapses to bounds.
  EXPECT_EQ(pre.reduced().num_constraints(), 0);

  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 3.0, 1e-9);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
  // Equality-singleton dual zeroes x's reduced cost; the link row claims
  // y's cost.
  ASSERT_EQ(sol.duals.size(), 2u);
  EXPECT_NEAR(sol.reduced_costs[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.reduced_costs[1], 0.0, 1e-9);
  EXPECT_NEAR(sol.duals[1], 1.0, 1e-9);  // >= row, y >= 0
}

TEST(Presolve, TwoEqualitySingletonsOnOneColumnShareTheDual) {
  // Both rows pin the same variable (consistently); the two recovered
  // duals must split the objective coefficient, not each claim all of it:
  // y1 * 1 + y2 * 2 = c so the reduced cost lands at exactly zero.
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, 2.0);
  (void)m.add_constraint("e1", {{0, 1.0}}, Sense::Equal, 3.0);
  (void)m.add_constraint("e2", {{0, 2.0}}, Sense::Equal, 6.0);
  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 3.0, 1e-12);
  EXPECT_NEAR(sol.objective, 6.0, 1e-12);
  ASSERT_EQ(sol.duals.size(), 2u);
  EXPECT_NEAR(sol.reduced_costs[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.duals[0] * 1.0 + sol.duals[1] * 2.0, 2.0, 1e-9);
  // Identity: obj == y.b with both rows binding (zero slack).
  EXPECT_NEAR(sol.duals[0] * 3.0 + sol.duals[1] * 6.0, 6.0, 1e-9);
}

TEST(Presolve, FixedColumnSubstitutesIntoRows) {
  // z fixed at 3 by its bounds; its term folds into the row rhs.
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, -1.0);
  (void)m.add_continuous("z", 3.0, 3.0, 2.0);
  (void)m.add_constraint("r", {{0, 1.0}, {1, 1.0}}, Sense::LessEqual, 8.0);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::Reduced);
  EXPECT_EQ(pre.stats().cols_removed, 1);
  pre.build_reduced(m);
  ASSERT_EQ(pre.reduced().num_variables(), 1);
  // x <= 8 - 3 = 5, via the now-singleton row turned bound.
  EXPECT_EQ(pre.reduced().num_constraints(), 0);
  EXPECT_DOUBLE_EQ(pre.reduced().variable(0).upper, 5.0);

  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 5.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 3.0, 1e-9);
  EXPECT_NEAR(sol.objective, -5.0 + 6.0, 1e-9);
}

TEST(Presolve, RedundantRowRemoved) {
  // x + y <= 25 can never bind with x, y in [0, 10].
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, -1.0);
  (void)m.add_continuous("y", 0.0, 10.0, -1.0);
  (void)m.add_constraint("loose", {{0, 1.0}, {1, 1.0}}, Sense::LessEqual,
                         25.0);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::Reduced);
  EXPECT_EQ(pre.stats().rows_removed, 1);
  EXPECT_EQ(pre.stats().nonzeros_removed, 2);

  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -20.0, 1e-9);
  ASSERT_EQ(sol.duals.size(), 1u);
  EXPECT_NEAR(sol.duals[0], 0.0, 1e-12);  // non-binding row, dual 0
}

TEST(Presolve, ImpliedFreeColumnSingletonEliminated) {
  // t appears only in the equality row and its bounds [-100, 100] can never
  // bind given x, y in [0, 4]: t = 10 - x - y stays within [2, 10].
  Model m;
  (void)m.add_continuous("x", 0.0, 4.0, 1.0);
  (void)m.add_continuous("y", 0.0, 4.0, 2.0);
  (void)m.add_continuous("t", -100.0, 100.0, 3.0);
  (void)m.add_constraint("def", {{0, 1.0}, {1, 1.0}, {2, 1.0}}, Sense::Equal,
                         10.0);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::Reduced);
  EXPECT_EQ(pre.stats().cols_removed, 1);
  EXPECT_EQ(pre.stats().rows_removed, 1);

  // Substituting t = 10 - x - y turns the objective into
  // 30 - 2x - y over the box => x = 4, y = 4, t = 2, objective 18.
  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 4.0, 1e-9);
  EXPECT_NEAR(sol.values[2], 2.0, 1e-9);
  EXPECT_NEAR(sol.objective, 18.0, 1e-9);
  // The eliminated row's dual comes from the substituted column's cost
  // (y_row = c_t / a_t = 3), and equivalence with the raw path holds.
  ASSERT_EQ(sol.duals.size(), 1u);
  EXPECT_NEAR(sol.duals[0], 3.0, 1e-9);
  const Solution off = solve_with(m, false);
  EXPECT_NEAR(off.objective, sol.objective, 1e-9);
}

TEST(Presolve, InfeasibilityDetectedBySingletonConflict) {
  // x >= 5 and x <= 1 cannot both hold: presolve proves it without a
  // single simplex iteration.
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, 1.0);
  (void)m.add_constraint("lo", {{0, 1.0}}, Sense::GreaterEqual, 5.0);
  (void)m.add_constraint("hi", {{0, 1.0}}, Sense::LessEqual, 1.0);
  const Solution sol = solve_with(m, true);
  EXPECT_EQ(sol.status, Status::Infeasible);
  EXPECT_FALSE(sol.usable());
  EXPECT_EQ(sol.simplex_iterations, 0);
  // The raw path agrees.
  EXPECT_EQ(solve_with(m, false).status, Status::Infeasible);
}

TEST(Presolve, InfeasibilityDetectedByActivityBounds) {
  // x + y >= 25 with x, y in [0, 10] is impossible.
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, 1.0);
  (void)m.add_continuous("y", 0.0, 10.0, 1.0);
  (void)m.add_constraint("r", {{0, 1.0}, {1, 1.0}}, Sense::GreaterEqual,
                         25.0);
  const Solution sol = solve_with(m, true);
  EXPECT_EQ(sol.status, Status::Infeasible);
  EXPECT_EQ(sol.simplex_iterations, 0);
}

TEST(Presolve, EmptyProblemFastPath) {
  // Every variable is fixed and every row is implied: presolve decides the
  // whole program, branch-and-bound never runs.
  Model m;
  (void)m.add_variable("a", 2.0, 2.0, VarType::Integer, 3.0);
  (void)m.add_continuous("b", -1.0, -1.0, 5.0);
  (void)m.add_constraint("r", {{0, 1.0}, {1, 1.0}}, Sense::LessEqual, 4.0);
  const Solution sol = solve_with(m, true);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_EQ(sol.nodes_explored, 0);
  EXPECT_EQ(sol.simplex_iterations, 0);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-12);
  EXPECT_NEAR(sol.values[1], -1.0, 1e-12);
  EXPECT_NEAR(sol.objective, 6.0 - 5.0, 1e-12);
  EXPECT_GE(sol.presolve_rows_removed, 1);
  EXPECT_GE(sol.presolve_cols_removed, 2);
}

TEST(Presolve, IntegerBoundTighteningSkipsBranching) {
  // min -x, x integer in [0, 10], 2x <= 9: presolve tightens x <= 4, so the
  // root LP is already integral; the raw path must branch.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, VarType::Integer, -1.0);
  (void)m.add_constraint("c", {{x, 2.0}}, Sense::LessEqual, 9.0);
  const Solution on = solve_with(m, true);
  const Solution off = solve_with(m, false);
  ASSERT_EQ(on.status, Status::Optimal);
  EXPECT_NEAR(on.values[0], 4.0, 1e-9);
  EXPECT_NEAR(on.objective, off.objective, 1e-9);
  EXPECT_LT(on.nodes_explored, off.nodes_explored);
}

// --- dual recovery through postsolve ---------------------------------------

TEST(Presolve, LagrangianIdentityHoldsAfterPostsolve) {
  // Randomized LPs built to exercise singleton/redundant rows and fixed
  // columns, solved through the presolve facade; the identity
  //   c.x = y.b + sum_j d_j x_j + sum_i (-y_i) slack_i
  // and the optimality signs must hold exactly as on a raw solve.
  for (int trial = 0; trial < 30; ++trial) {
    util::Rng rng(static_cast<std::uint64_t>(trial) * 271 + 3);
    const int n = static_cast<int>(rng.uniform_int(3, 8));
    Model m;
    std::vector<double> witness;
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(-2.0, 0.0);
      const double hi = lo + rng.uniform(0.5, 4.0);
      (void)m.add_continuous("x", lo, hi, rng.uniform(-2.0, 2.0));
      witness.push_back(lo + 0.5 * (hi - lo));
    }
    // A fixed column, feeding the substitution path.
    (void)m.add_continuous("fixed", 1.5, 1.5, rng.uniform(-1.0, 1.0));
    witness.push_back(1.5);
    const int rows = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      double lhs = 0.0;
      for (int j = 0; j < n + 1; ++j) {
        if (rng.bernoulli(0.4)) continue;
        const double c = rng.uniform(-2.0, 2.0);
        terms.push_back({j, c});
        lhs += c * witness[static_cast<std::size_t>(j)];
      }
      if (terms.empty()) {
        terms.push_back({0, 1.0});
        lhs = witness[0];
      }
      (void)m.add_constraint("r", std::move(terms), Sense::LessEqual,
                             lhs + rng.uniform(0.05, 2.0));
    }
    // A guaranteed singleton row that binds for half the trials.
    (void)m.add_constraint("s", {{0, 1.0}}, Sense::LessEqual,
                           trial % 2 == 0 ? witness[0]
                                          : m.variable(0).upper + 1.0);

    const Solution sol = solve_with(m, true);
    const Solution raw = solve_with(m, false);
    ASSERT_EQ(sol.status, raw.status) << "trial " << trial;
    if (sol.status != Status::Optimal) continue;
    EXPECT_NEAR(sol.objective, raw.objective, 1e-6) << "trial " << trial;
    ASSERT_EQ(sol.duals.size(),
              static_cast<std::size_t>(m.num_constraints()));
    ASSERT_EQ(sol.reduced_costs.size(),
              static_cast<std::size_t>(m.num_variables()));

    double rhs_total = 0.0;
    for (int i = 0; i < m.num_constraints(); ++i) {
      const Constraint& c = m.constraint(i);
      double activity = 0.0;
      for (const Term& t : c.terms)
        activity += t.coeff * sol.values[static_cast<std::size_t>(t.var)];
      const double slack = c.rhs - activity;
      rhs_total += sol.duals[static_cast<std::size_t>(i)] * c.rhs;
      rhs_total += -sol.duals[static_cast<std::size_t>(i)] * slack;
      // All rows are <=: duals must be non-positive.
      EXPECT_LE(sol.duals[static_cast<std::size_t>(i)], 1e-6)
          << "trial " << trial << " row " << i;
    }
    for (int j = 0; j < m.num_variables(); ++j)
      rhs_total += sol.reduced_costs[static_cast<std::size_t>(j)] *
                   sol.values[static_cast<std::size_t>(j)];
    EXPECT_NEAR(sol.objective, rhs_total, 1e-6) << "trial " << trial;

    // Optimality signs at the original bounds (fixed column exempt).
    for (int j = 0; j < n; ++j) {
      const auto& v = m.variable(j);
      const double xv = sol.values[static_cast<std::size_t>(j)];
      const double d = sol.reduced_costs[static_cast<std::size_t>(j)];
      if (xv > v.lower + 1e-7 && xv < v.upper - 1e-7) {
        EXPECT_NEAR(d, 0.0, 1e-6) << "trial " << trial << " var " << j;
      }
      if (std::abs(xv - v.lower) <= 1e-9 && std::abs(xv - v.upper) > 1e-9) {
        EXPECT_GE(d, -1e-6) << "trial " << trial << " var " << j;
      }
      if (std::abs(xv - v.upper) <= 1e-9 && std::abs(xv - v.lower) > 1e-9) {
        EXPECT_LE(d, 1e-6) << "trial " << trial << " var " << j;
      }
    }
  }
}

// --- seed translation ------------------------------------------------------

TEST(Presolve, SeedIncumbentSurvivesReduction) {
  // A feasible integral seed translated into the reduced space must leave
  // the final objective identical to the unseeded solve (seeding is an
  // acceleration only).
  const int regions = 4;
  const int jobs = 40;
  const Model m = hard_chunk_model(jobs, regions, 0.4, 77);
  std::vector<double> vals(static_cast<std::size_t>(m.num_variables()), 0.0);
  // Greedy: each job to the admissible region with the most capacity left,
  // so a tight capacity total still yields a feasible assignment.
  std::vector<int> caps(regions, static_cast<int>(std::ceil(jobs / 4.0)) + 1);
  for (int j = 0; j < jobs; ++j) {
    int best = -1;
    for (int r = 0; r < regions; ++r) {
      const auto xi = static_cast<std::size_t>(j * regions + r);
      if (m.variable(static_cast<int>(xi)).upper < 0.5) continue;
      if (caps[static_cast<std::size_t>(r)] <= 0) continue;
      if (best < 0 || caps[static_cast<std::size_t>(r)] >
                          caps[static_cast<std::size_t>(best)])
        best = r;
    }
    ASSERT_GE(best, 0) << "job " << j;
    vals[static_cast<std::size_t>(j * regions + best)] = 1.0;
    --caps[static_cast<std::size_t>(best)];
  }
  ASSERT_LE(m.max_violation(vals), 1e-9);
  const Solution seed = Solution::incumbent_from_heuristic(m, vals);
  const Solution seeded = solve_with(m, true, &seed);
  const Solution unseeded = solve_with(m, true);
  ASSERT_EQ(seeded.status, Status::Optimal);
  EXPECT_NEAR(seeded.objective, unseeded.objective, 1e-9);

  // A seed contradicting a presolve fixing is dropped, not propagated: the
  // solve still returns the true optimum.
  std::vector<double> bad = vals;
  for (int v = 0; v < m.num_variables(); ++v) {
    if (m.variable(v).upper < 0.5 && bad[static_cast<std::size_t>(v)] == 0.0) {
      bad[static_cast<std::size_t>(v)] = 1.0;  // violates the x = 0 fixing
      break;
    }
  }
  const Solution bad_seed = Solution::incumbent_from_heuristic(m, bad);
  const Solution sol = solve_with(m, true, &bad_seed);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, unseeded.objective, 1e-9);
}

// --- reduce_point / postsolve plumbing -------------------------------------

TEST(Presolve, ReducePointChecksFixings) {
  Model m;
  (void)m.add_continuous("x", 2.0, 2.0, 1.0);
  (void)m.add_continuous("y", 0.0, 5.0, 1.0);
  (void)m.add_constraint("r", {{0, 1.0}, {1, 1.0}}, Sense::LessEqual, 6.0);
  Presolve pre;
  ASSERT_EQ(pre.run(m, {}), Presolve::Result::Reduced);
  pre.build_reduced(m);
  std::vector<double> out;
  EXPECT_TRUE(pre.reduce_point({2.0, 1.0}, &out, 1e-7));
  ASSERT_EQ(out.size(), static_cast<std::size_t>(
                            pre.reduced().num_variables()));
  EXPECT_FALSE(pre.reduce_point({3.0, 1.0}, &out, 1e-7));  // contradicts fix
  EXPECT_FALSE(pre.reduce_point({2.0}, &out, 1e-7));       // wrong length
}

TEST(Presolve, StatusesPassThroughUnchanged) {
  // Unbounded and iteration-limited solves keep their status and counters
  // through postsolve.
  Model m;
  (void)m.add_continuous("x", 0.0, kInfinity, -1.0);
  (void)m.add_continuous("z", 1.0, 1.0, 0.0);  // force a reduction
  (void)m.add_constraint("r", {{0, -1.0}, {1, 1.0}}, Sense::LessEqual, 1.0);
  const Solution sol = solve_with(m, true);
  EXPECT_EQ(sol.status, Status::Unbounded);
  EXPECT_EQ(solve_with(m, false).status, Status::Unbounded);
}

}  // namespace
}  // namespace ww::milp
