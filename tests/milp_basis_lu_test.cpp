// BasisLU kernel coverage: randomized sparse-basis factorization checked
// against a dense-inverse reference (FTRAN/BTRAN residuals < 1e-9),
// singular-basis rejection, and Forrest-Tomlin update correctness across forced
// refactorizations.
#include "milp/basis_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ww::milp {
namespace {

/// Dense column-major copy of the basis matrix: B[row][pos].
std::vector<std::vector<double>> dense_basis(
    int m, const std::vector<SparseVec>& cols, const std::vector<int>& basis) {
  std::vector<std::vector<double>> b(
      static_cast<std::size_t>(m),
      std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int pos = 0; pos < m; ++pos) {
    const SparseVec& c = cols[static_cast<std::size_t>(
        basis[static_cast<std::size_t>(pos)])];
    for (std::size_t k = 0; k < c.rows.size(); ++k)
      b[static_cast<std::size_t>(c.rows[k])][static_cast<std::size_t>(pos)] +=
          c.values[k];
  }
  return b;
}

/// Dense Gauss-Jordan inverse (the reference the sparse kernel replaced).
std::vector<std::vector<double>> dense_inverse(
    std::vector<std::vector<double>> a) {
  const std::size_t m = a.size();
  std::vector<std::vector<double>> inv(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) inv[i][i] = 1.0;
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < m; ++r)
      if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
    EXPECT_GT(std::abs(a[piv][col]), 1e-12) << "reference matrix singular";
    std::swap(a[piv], a[col]);
    std::swap(inv[piv], inv[col]);
    const double d = 1.0 / a[col][col];
    for (std::size_t k = 0; k < m; ++k) {
      a[col][k] *= d;
      inv[col][k] *= d;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (std::size_t k = 0; k < m; ++k) {
        a[r][k] -= f * a[col][k];
        inv[r][k] -= f * inv[col][k];
      }
    }
  }
  return inv;
}

/// Random sparse nonsingular pool: column j gets a dominant diagonal entry
/// on row perm[j] plus a few small off-diagonal nonzeros, so the matrix is
/// strictly diagonally dominant up to a row permutation (and therefore
/// well conditioned).  `dom_row` receives perm when provided, so callers
/// mutating the basis can preserve the dominance structure.
std::vector<SparseVec> random_sparse_columns(
    int m, util::Rng& rng, std::vector<int>* dom_row = nullptr) {
  std::vector<int> perm(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = m - 1; i > 0; --i)
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.uniform_int(0, i))]);
  if (dom_row != nullptr) *dom_row = perm;
  std::vector<SparseVec> cols(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    SparseVec& c = cols[static_cast<std::size_t>(j)];
    const int extras = static_cast<int>(rng.uniform_int(0, 3));
    c.rows.push_back(perm[static_cast<std::size_t>(j)]);
    c.values.push_back((rng.uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0) *
                       rng.uniform(4.0, 8.0));
    for (int e = 0; e < extras; ++e) {
      const int r = static_cast<int>(rng.uniform_int(0, m - 1));
      if (r == perm[static_cast<std::size_t>(j)]) continue;
      c.rows.push_back(r);
      c.values.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  return cols;
}

std::vector<int> identity_basis(int m) {
  std::vector<int> b(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) b[static_cast<std::size_t>(i)] = i;
  return b;
}

/// Max |B x - a| over rows for a position-indexed solution x.
double ftran_residual(const std::vector<std::vector<double>>& b,
                      const std::vector<double>& x,
                      const std::vector<double>& a) {
  const std::size_t m = b.size();
  double worst = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    double acc = 0.0;
    for (std::size_t p = 0; p < m; ++p) acc += b[r][p] * x[p];
    worst = std::max(worst, std::abs(acc - a[r]));
  }
  return worst;
}

/// Max |B^T y - c| over positions for a row-indexed solution y.
double btran_residual(const std::vector<std::vector<double>>& b,
                      const std::vector<double>& y,
                      const std::vector<double>& c) {
  const std::size_t m = b.size();
  double worst = 0.0;
  for (std::size_t p = 0; p < m; ++p) {
    double acc = 0.0;
    for (std::size_t r = 0; r < m; ++r) acc += b[r][p] * y[r];
    worst = std::max(worst, std::abs(acc - c[p]));
  }
  return worst;
}

class BasisLURandom : public ::testing::TestWithParam<int> {};

TEST_P(BasisLURandom, FtranBtranMatchDenseInverse) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2531 + 11);
  const int m = static_cast<int>(rng.uniform_int(3, 60));
  const std::vector<SparseVec> cols = random_sparse_columns(m, rng);
  const std::vector<int> basis = identity_basis(m);

  BasisLU lu;
  ASSERT_TRUE(lu.factorize(m, cols, basis));
  const auto b = dense_basis(m, cols, basis);
  const auto binv = dense_inverse(b);

  for (int trial = 0; trial < 4; ++trial) {
    std::vector<double> a(static_cast<std::size_t>(m));
    for (auto& v : a) v = rng.uniform(-5.0, 5.0);

    std::vector<double> x(a);
    lu.ftran(x);
    EXPECT_LT(ftran_residual(b, x, a), 1e-9);
    // Equivalence with the dense inverse the sparse kernel replaced.
    for (int i = 0; i < m; ++i) {
      double ref = 0.0;
      for (int r = 0; r < m; ++r)
        ref += binv[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)] *
               a[static_cast<std::size_t>(r)];
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], ref, 1e-9);
    }

    std::vector<double> y(a);
    lu.btran(y);
    EXPECT_LT(btran_residual(b, y, a), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BasisLURandom, ::testing::Range(0, 20));

TEST(BasisLU, RejectsDuplicateColumnBasis) {
  util::Rng rng(7);
  const int m = 12;
  const std::vector<SparseVec> cols = random_sparse_columns(m, rng);
  std::vector<int> basis = identity_basis(m);
  basis[3] = basis[9];  // structurally singular
  BasisLU lu;
  EXPECT_FALSE(lu.factorize(m, cols, basis));
}

TEST(BasisLU, RejectsZeroColumn) {
  util::Rng rng(8);
  const int m = 10;
  std::vector<SparseVec> cols = random_sparse_columns(m, rng);
  cols.push_back(SparseVec{});  // empty column
  std::vector<int> basis = identity_basis(m);
  basis[5] = m;
  BasisLU lu;
  EXPECT_FALSE(lu.factorize(m, cols, basis));
}

TEST(BasisLU, RejectsNumericallyDependentColumns) {
  // Two columns proportional to each other.
  const int m = 3;
  std::vector<SparseVec> cols(4);
  cols[0].rows = {0, 1};
  cols[0].values = {1.0, 2.0};
  cols[1].rows = {2};
  cols[1].values = {1.0};
  cols[2].rows = {0, 1};
  cols[2].values = {0.5, 1.0};  // = cols[0] / 2
  cols[3].rows = {0};
  cols[3].values = {1.0};
  BasisLU lu;
  EXPECT_FALSE(lu.factorize(m, cols, {0, 1, 2}));
  EXPECT_TRUE(lu.factorize(m, cols, {0, 1, 3}));
}

TEST(BasisLU, FtUpdatesTrackFreshFactorization) {
  // Apply a chain of column replacements through update(); after every
  // step, ftran/btran through the updated LU must agree with a from-scratch
  // factorization of the evolved basis and keep dense residuals < 1e-9.
  util::Rng rng(1234);
  const int m = 24;
  std::vector<int> dom_row;
  std::vector<SparseVec> cols = random_sparse_columns(m, rng, &dom_row);
  std::vector<int> basis = identity_basis(m);

  BasisLU lu;
  ASSERT_TRUE(lu.factorize(m, cols, basis));

  int applied = 0;
  for (int step = 0; step < 40 && applied < 12; ++step) {
    // Candidate replacement column: dominant entry on the same row the
    // replaced position dominates, so the evolving basis keeps its
    // permuted diagonal dominance and stays well conditioned.
    const int pos = static_cast<int>(rng.uniform_int(0, m - 1));
    SparseVec cand;
    cand.rows.push_back(dom_row[static_cast<std::size_t>(pos)]);
    cand.values.push_back(rng.uniform(3.0, 6.0));
    const int extra = static_cast<int>(rng.uniform_int(0, m - 1));
    if (extra != dom_row[static_cast<std::size_t>(pos)]) {
      cand.rows.push_back(extra);
      cand.values.push_back(rng.uniform(-1.0, 1.0));
    }

    // w = B^-1 a via the current (updated LU) kernel, saving the spike the
    // Forrest-Tomlin update consumes.
    std::vector<double> w(static_cast<std::size_t>(m), 0.0);
    for (std::size_t k = 0; k < cand.rows.size(); ++k)
      w[static_cast<std::size_t>(cand.rows[k])] += cand.values[k];
    lu.ftran(w, /*save_spike=*/true);
    if (std::abs(w[static_cast<std::size_t>(pos)]) < 1e-6) continue;

    cols.push_back(cand);
    basis[static_cast<std::size_t>(pos)] = static_cast<int>(cols.size()) - 1;
    ASSERT_TRUE(lu.update(pos));
    ++applied;

    const auto b = dense_basis(m, cols, basis);
    BasisLU fresh;
    ASSERT_TRUE(fresh.factorize(m, cols, basis));
    EXPECT_EQ(fresh.update_count(), 0);
    EXPECT_EQ(lu.update_count(), applied);

    std::vector<double> rhs(static_cast<std::size_t>(m));
    for (auto& v : rhs) v = rng.uniform(-2.0, 2.0);

    std::vector<double> via_upd(rhs), via_fresh(rhs);
    lu.ftran(via_upd);
    fresh.ftran(via_fresh);
    EXPECT_LT(ftran_residual(b, via_upd, rhs), 1e-9) << "step " << step;
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(via_upd[static_cast<std::size_t>(i)],
                  via_fresh[static_cast<std::size_t>(i)], 1e-8);

    std::vector<double> bt_upd(rhs), bt_fresh(rhs);
    lu.btran(bt_upd);
    fresh.btran(bt_fresh);
    EXPECT_LT(btran_residual(b, bt_upd, rhs), 1e-9) << "step " << step;
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(bt_upd[static_cast<std::size_t>(i)],
                  bt_fresh[static_cast<std::size_t>(i)], 1e-8);

    // Forced refactorization mid-chain: results must be unchanged.
    if (applied == 6) {
      ASSERT_TRUE(lu.factorize(m, cols, basis));
      EXPECT_EQ(lu.update_count(), 0);
      applied = 0;
    }
  }
  EXPECT_GT(applied, 0);  // the chain actually exercised the update path
}

TEST(BasisLU, UpdateRejectsSingularReplacement) {
  // Replacing the column in position 3 by a copy of the column basic in
  // position 5 makes the basis exactly singular: the update pivot
  // w[3] = 0, so the Forrest-Tomlin diagonal vanishes and update() must
  // refuse (and leave the factors untouched) instead of committing.
  util::Rng rng(99);
  const int m = 8;
  std::vector<SparseVec> cols = random_sparse_columns(m, rng);
  BasisLU lu;
  ASSERT_TRUE(lu.factorize(m, cols, identity_basis(m)));
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  for (std::size_t k = 0; k < cols[5].rows.size(); ++k)
    w[static_cast<std::size_t>(cols[5].rows[k])] += cols[5].values[k];
  lu.ftran(w, /*save_spike=*/true);
  EXPECT_FALSE(lu.update(3));
  EXPECT_EQ(lu.update_count(), 0);

  // The refused update must not have corrupted anything: solves still
  // match the original basis.
  const auto b = dense_basis(m, cols, identity_basis(m));
  std::vector<double> rhs(static_cast<std::size_t>(m));
  for (auto& v : rhs) v = rng.uniform(-2.0, 2.0);
  std::vector<double> x(rhs);
  lu.ftran(x);
  EXPECT_LT(ftran_residual(b, x, rhs), 1e-9);
}

TEST(BasisLU, UpdateWithoutSavedSpikeRefuses) {
  // update() consumes the spike saved by the most recent ftran(x, true);
  // without one pending it must refuse rather than use stale state.
  util::Rng rng(101);
  const int m = 6;
  const std::vector<SparseVec> cols = random_sparse_columns(m, rng);
  BasisLU lu;
  ASSERT_TRUE(lu.factorize(m, cols, identity_basis(m)));
  EXPECT_FALSE(lu.update(2));
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  for (std::size_t k = 0; k < cols[2].rows.size(); ++k)
    w[static_cast<std::size_t>(cols[2].rows[k])] += cols[2].values[k];
  lu.ftran(w, /*save_spike=*/true);
  EXPECT_TRUE(lu.update(2));   // identical column: a valid (trivial) update
  EXPECT_FALSE(lu.update(2));  // spike already consumed
}

}  // namespace
}  // namespace ww::milp
