// Graceful-degradation coverage for the scheduler (core/waterwise.hpp):
// the retry-then-degrade ladder never drops a job silently even when every
// MILP attempt is failed by injection, injected failures stay byte-identical
// across solver thread counts, a total outage defers explicitly and places
// everything after the blackout, a chunk-solve exception surfaces fail-fast
// with chunk/window context, and the per-region state machine walks
// Normal -> Degraded -> Recovery -> Normal with its hard-cap rails engaged.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "env/faults.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace ww::core {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 3;
  return cfg;
}

std::vector<trace::Job> burst_trace(int count, double at, int home = 2) {
  std::vector<trace::Job> jobs;
  util::Rng rng(99);
  for (int i = 0; i < count; ++i) {
    trace::Job j;
    j.id = static_cast<std::uint64_t>(i);
    j.submit_time = at;
    j.home_region = home;
    trace::sample_instance(i % trace::num_benchmarks(), rng, j);
    jobs.push_back(j);
  }
  return jobs;
}

/// Fixed free-capacity view for driving schedule() without a simulator.
class FixedCapacity final : public dc::CapacityView {
 public:
  explicit FixedCapacity(std::vector<int> caps) : caps_(std::move(caps)) {}
  [[nodiscard]] int num_regions() const override {
    return static_cast<int>(caps_.size());
  }
  [[nodiscard]] int capacity(int region) const override {
    return caps_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] int free_at(int region, double) const override {
    return caps_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] int max_occupancy(int, double, double) const override {
    return 0;
  }

 private:
  std::vector<int> caps_;
};

struct DirectRig {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  std::vector<trace::Job> jobs;
  std::vector<dc::PendingJob> batch;

  explicit DirectRig(int count, int home = 2)
      : jobs(burst_trace(count, 0.0, home)) {
    batch.reserve(jobs.size());
    for (const trace::Job& j : jobs) {
      dc::PendingJob p;
      p.job = &j;
      p.first_seen = 0.0;
      p.est_exec_s = j.exec_seconds > 0.0 ? j.exec_seconds : 100.0;
      p.est_energy_kwh = 1.0;
      batch.push_back(p);
    }
  }

  [[nodiscard]] std::vector<dc::Decision> run(WaterWiseScheduler& ww,
                                              const std::vector<int>& caps,
                                              double now = 0.0,
                                              double tol = 0.5) const {
    const FixedCapacity view(caps);
    dc::ScheduleContext ctx;
    ctx.now = now;
    ctx.tol = tol;
    ctx.env = &env;
    ctx.footprint = &fp;
    ctx.capacity = &view;
    return ww.schedule(batch, ctx);
  }
};

TEST(RetryLadder, AllAttemptsInjectedStillPlacesEveryJobViaFallback) {
  // solve_failure_rate = 1 fails every rung that consults the predicate:
  // the probe result is discarded, the primary solve is discarded, the
  // relaxed-budget retry runs (and is discarded too), and the greedy
  // fallback must then place the whole chunk — never a silent drop.
  const DirectRig rig(12);
  WaterWiseConfig cfg;
  cfg.solve_failure_rate = 1.0;
  cfg.fault_seed = 1001;
  WaterWiseScheduler ww(cfg);
  const auto placed = rig.run(ww, {5, 5, 10, 5, 5});

  ASSERT_EQ(placed.size(), 12u);
  std::set<std::uint64_t> ids;
  for (const dc::Decision& d : placed) ids.insert(d.job_id);
  EXPECT_EQ(ids.size(), 12u) << "a job was placed twice";

  const SchedulerStats& s = ww.stats();
  // One chunk (default max_jobs_per_solve), three injected discards on it
  // (post-probe, post-primary, post-retry), one budgeted retry, and every
  // placement from the greedy fallback.
  EXPECT_EQ(s.fault_events, 3);
  EXPECT_EQ(s.solve_retries, 1);
  EXPECT_EQ(s.fallback_placements, 12);
  EXPECT_EQ(s.deferred_jobs, 0);
}

TEST(RetryLadder, InjectedFailuresByteIdenticalAcrossThreadCounts) {
  const DirectRig rig(60);
  const std::vector<int> caps = {12, 12, 12, 12, 12};
  auto run = [&](int threads) {
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 7;  // many chunks per window
    cfg.solver_threads = threads;
    cfg.solve_failure_rate = 0.35;
    cfg.fault_seed = 1002;
    WaterWiseScheduler ww(cfg);
    auto decisions = rig.run(ww, caps);
    return std::make_pair(std::move(decisions), ww.stats());
  };

  const auto [ref, ref_stats] = run(1);
  EXPECT_GT(ref_stats.fault_events, 0) << "rate 0.35 injected nothing";
  for (const int threads : {2, 4}) {
    const auto [got, got_stats] = run(threads);
    ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].job_id, ref[i].job_id) << "threads=" << threads;
      EXPECT_EQ(got[i].region, ref[i].region) << "threads=" << threads;
      EXPECT_EQ(got[i].start_time, ref[i].start_time) << "threads=" << threads;
      EXPECT_EQ(got[i].power_scale, ref[i].power_scale)
          << "threads=" << threads;
    }
    EXPECT_EQ(got_stats.fault_events, ref_stats.fault_events);
    EXPECT_EQ(got_stats.solve_retries, ref_stats.solve_retries);
    EXPECT_EQ(got_stats.fallback_placements, ref_stats.fallback_placements);
    EXPECT_EQ(got_stats.deferred_jobs, ref_stats.deferred_jobs);
    EXPECT_EQ(got_stats.milp_solves, ref_stats.milp_solves);
  }
}

TEST(TotalOutage, DefersExplicitlyAndPlacesEverythingAfterTheBlackout) {
  // Every region out for the first hour.  Jobs submitted at t=0 must all be
  // explicitly deferred (counted, not dropped) and then start after the
  // blackout lifts — placed-or-deferred must reconcile with the trace.
  env::FaultSchedule faults(5);
  for (int r = 0; r < 5; ++r) faults.add_outage(r, 0.0, 3600.0);

  env::Environment world = env::Environment::builtin(small_env());
  world.attach_faults(&faults, env::FaultView::World);
  const footprint::FootprintModel world_fp(world);

  const auto jobs = burst_trace(25, 0.0);
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  sim_cfg.record_jobs = true;
  dc::Simulator sim(world, world_fp, sim_cfg);
  sim.set_fault_injection(&faults);

  WaterWiseScheduler ww;
  const dc::CampaignResult res = sim.run(jobs, ww);

  EXPECT_EQ(res.num_jobs, 25);
  ASSERT_EQ(res.jobs.size(), 25u);
  std::set<std::uint64_t> ids;
  for (const dc::JobOutcome& j : res.jobs) {
    ids.insert(j.job_id);
    EXPECT_GE(j.start_time, 3600.0)
        << "job " << j.job_id << " started inside the blackout";
  }
  EXPECT_EQ(ids.size(), 25u) << "a job was dropped or duplicated";
  EXPECT_GT(ww.stats().deferred_jobs, 0)
      << "blackout windows produced no explicit deferrals";
  // Note: degraded_windows stays 0 here by design — the outage starts at
  // t=0, so the state machine never observes healthy capacity to compare
  // against (max_capacity_seen is 0 throughout the blackout).  Transition
  // coverage lives in DegradedMode.StateMachineDegradesThenRecovers.
  EXPECT_EQ(ww.stats().degraded_windows, 0);
}

TEST(ChunkFailFast, ExceptionInPooledSolveSurfacesWithChunkContext) {
  // A throwing chunk solve must abort the window with the failing chunk's
  // index and the window time in the message — identically at every thread
  // count (no hang, no silent partial commit).
  for (const int threads : {1, 2, 4}) {
    const DirectRig rig(12);
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 4;  // 12 jobs -> 3 chunks
    cfg.solver_threads = threads;
    cfg.chunk_solve_hook = [](int index) {
      if (index == 1) throw std::runtime_error("injected hook failure");
    };
    WaterWiseScheduler ww(cfg);
    try {
      (void)rig.run(ww, {5, 5, 10, 5, 5});
      FAIL() << "chunk exception swallowed at threads=" << threads;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("chunk 1"), std::string::npos) << msg;
      EXPECT_NE(msg.find("injected hook failure"), std::string::npos) << msg;
      EXPECT_NE(msg.find("t="), std::string::npos) << msg;
    }
  }
}

TEST(DegradedMode, StateMachineDegradesThenRecoversWithCapRails) {
  // Drive the per-region state machine directly with 60-second windows:
  // two blackout windows degrade every region, the first clean windows keep
  // the 25% degraded rail on, recovery ramps at 50%, and a fully recovered
  // scheduler places an entire burst again.
  const DirectRig rig(40);
  WaterWiseScheduler ww;
  const std::vector<dc::PendingJob> empty;
  const std::vector<int> up(5, 10);
  const std::vector<int> down(5, 0);

  auto observe = [&](const std::vector<int>& caps, double now) {
    const FixedCapacity view(caps);
    dc::ScheduleContext ctx;
    ctx.now = now;
    ctx.tol = 0.5;
    ctx.env = &rig.env;
    ctx.footprint = &rig.fp;
    ctx.capacity = &view;
    return ww.schedule(empty, ctx);
  };

  (void)observe(up, 0.0);  // learn max capacity; all Normal
  EXPECT_EQ(ww.stats().fault_events, 0);
  (void)observe(down, 60.0);  // outage everywhere -> Degraded
  EXPECT_EQ(ww.stats().fault_events, 5);
  EXPECT_EQ(ww.stats().degraded_windows, 5);
  (void)observe(down, 120.0);
  EXPECT_EQ(ww.stats().fault_events, 10);

  // First clean window: still Degraded, so the 25% rail caps each region at
  // floor(0.25 * 10) = 2 -> at most 10 of the 40 burst jobs place, and the
  // remaining 30+ are explicit deferrals.
  const long deferred_before = ww.stats().deferred_jobs;
  const auto degraded_placements = rig.run(ww, up, 180.0);
  EXPECT_LE(degraded_placements.size(), 10u);
  EXPECT_GE(ww.stats().deferred_jobs - deferred_before, 30L);

  (void)observe(up, 240.0);
  const long degraded_windows_peak = ww.stats().degraded_windows;
  (void)observe(up, 300.0);  // third clean window -> Recovery
  (void)observe(up, 360.0);
  (void)observe(up, 420.0);
  (void)observe(up, 480.0);  // recovery_windows elapsed -> Normal
  EXPECT_EQ(ww.stats().degraded_windows, degraded_windows_peak)
      << "degraded-window counter kept growing after recovery began";

  // Fully recovered: the same burst now places in full under the same caps.
  const auto recovered = rig.run(ww, up, 540.0);
  EXPECT_EQ(recovered.size(), 40u);
  EXPECT_EQ(ww.stats().fault_events, 10)
      << "recovery windows raised spurious fault events";
}

}  // namespace
}  // namespace ww::core
