#include <gtest/gtest.h>

#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"

namespace ww::sched {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 5;
  return cfg;
}

/// Hand-built capacity view for direct scheduler unit tests.
class FakeCapacity final : public dc::CapacityView {
 public:
  explicit FakeCapacity(std::vector<int> free) : free_(std::move(free)) {}
  [[nodiscard]] int num_regions() const override {
    return static_cast<int>(free_.size());
  }
  [[nodiscard]] int capacity(int r) const override {
    return free_[static_cast<std::size_t>(r)] + 100;
  }
  [[nodiscard]] int free_at(int r, double) const override {
    return free_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int max_occupancy(int r, double, double) const override {
    return capacity(r) - free_[static_cast<std::size_t>(r)];
  }

 private:
  std::vector<int> free_;
};

struct Fixture {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  std::vector<trace::Job> jobs;
  std::vector<dc::PendingJob> batch;

  explicit Fixture(int njobs, int home = 2) {
    for (int i = 0; i < njobs; ++i) {
      trace::Job j;
      j.id = static_cast<std::uint64_t>(i);
      j.home_region = home;
      j.exec_seconds = 100.0;
      j.avg_power_watts = 300.0;
      j.package_bytes = 2e8;
      jobs.push_back(j);
    }
    for (const auto& j : jobs)
      batch.push_back(dc::PendingJob{&j, 0.0, 100.0, j.energy_kwh()});
  }

  dc::ScheduleContext ctx(const dc::CapacityView* cap, double tol = 0.25) {
    dc::ScheduleContext c;
    c.now = 0.0;
    c.tol = tol;
    c.env = &env;
    c.footprint = &fp;
    c.capacity = cap;
    return c;
  }
};

TEST(Baseline, SchedulesHomeImmediately) {
  Fixture f(3, /*home=*/1);
  const FakeCapacity cap({5, 5, 5, 5, 5});
  BaselineScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  ASSERT_EQ(decisions.size(), 3u);
  for (const auto& d : decisions) {
    EXPECT_EQ(d.region, 1);
    EXPECT_DOUBLE_EQ(d.start_time, 0.0);
    EXPECT_DOUBLE_EQ(d.power_scale, 1.0);
  }
}

TEST(Baseline, DefersWhenHomeFull) {
  Fixture f(4, /*home=*/0);
  const FakeCapacity cap({2, 5, 5, 5, 5});
  BaselineScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  EXPECT_EQ(decisions.size(), 2u);  // only two home slots free
}

TEST(RoundRobin, CyclesRegions) {
  Fixture f(5);
  const FakeCapacity cap({5, 5, 5, 5, 5});
  RoundRobinScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  ASSERT_EQ(decisions.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(decisions[i].region, static_cast<int>(i));
}

TEST(RoundRobin, SkipsFullRegions) {
  Fixture f(3);
  const FakeCapacity cap({0, 5, 0, 5, 5});
  RoundRobinScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions[0].region, 1);
  EXPECT_EQ(decisions[1].region, 3);
  EXPECT_EQ(decisions[2].region, 4);
}

TEST(RoundRobin, CursorPersistsAcrossBatches) {
  Fixture f(2);
  const FakeCapacity cap({5, 5, 5, 5, 5});
  RoundRobinScheduler s;
  auto ctx = f.ctx(&cap);
  const auto first = s.schedule(f.batch, ctx);
  ASSERT_EQ(first.size(), 2u);
  const auto second = s.schedule(f.batch, ctx);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].region, 2);  // continues after regions 0,1
}

TEST(RoundRobin, RemotePlacementAccountsTransfer) {
  Fixture f(1, /*home=*/0);
  const FakeCapacity cap({0, 5, 5, 5, 5});
  RoundRobinScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_GT(decisions[0].start_time, 0.0);  // transfer latency pushed start
}

TEST(LeastLoad, PicksEmptiestRegion) {
  Fixture f(1);
  const FakeCapacity cap({1, 7, 3, 2, 0});
  LeastLoadScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].region, 1);
}

TEST(LeastLoad, SpreadsAcrossBatch) {
  Fixture f(4);
  const FakeCapacity cap({2, 2, 1, 1, 1});
  LeastLoadScheduler s;
  const auto decisions = s.schedule(f.batch, f.ctx(&cap));
  ASSERT_EQ(decisions.size(), 4u);
  // First two go to the two size-2 regions, then the remaining spread.
  std::vector<int> counts(5, 0);
  for (const auto& d : decisions) ++counts[static_cast<std::size_t>(d.region)];
  EXPECT_LE(*std::max_element(counts.begin(), counts.end()), 2);
}

TEST(LeastLoad, DefersWhenEverythingFull) {
  Fixture f(2);
  const FakeCapacity cap({0, 0, 0, 0, 0});
  LeastLoadScheduler s;
  EXPECT_TRUE(s.schedule(f.batch, f.ctx(&cap)).empty());
}

TEST(LoadBalancers, EndToEndBeatNothingButComplete) {
  // Integration sanity: RR and LL complete a real campaign.
  const auto jobs = trace::generate_trace(trace::borg_config(3, 0.1));
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp(env);
  dc::Simulator sim(env, fp, dc::SimConfig{});
  RoundRobinScheduler rr;
  LeastLoadScheduler ll;
  const auto r1 = sim.run(jobs, rr);
  const auto r2 = sim.run(jobs, ll);
  EXPECT_EQ(r1.num_jobs, static_cast<long>(jobs.size()));
  EXPECT_EQ(r2.num_jobs, static_cast<long>(jobs.size()));
  // Both spread work across all five regions.
  for (const long c : r1.jobs_per_region) EXPECT_GT(c, 0);
  for (const long c : r2.jobs_per_region) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace ww::sched
