// Decision-Controller correctness: on small batches, the placement chosen by
// WaterWise's MILP must minimize the Eq. 8 objective among all feasible
// assignments, where the reference objective is computed independently by
// exhaustive enumeration using the same public formulas (footprint model,
// transfer model, history refs).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "trace/benchmark_profile.hpp"
#include "trace/generator.hpp"

namespace ww::core {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 2;
  return cfg;
}

class FixedCapacity final : public dc::CapacityView {
 public:
  explicit FixedCapacity(std::vector<int> free) : free_(std::move(free)) {}
  [[nodiscard]] int num_regions() const override {
    return static_cast<int>(free_.size());
  }
  [[nodiscard]] int capacity(int r) const override {
    return free_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int free_at(int r, double) const override {
    return free_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int max_occupancy(int, double, double) const override {
    return 0;
  }

 private:
  std::vector<int> free_;
};

struct Enumerator {
  const env::Environment& env;
  const footprint::FootprintModel& fp;
  const dc::ScheduleContext& ctx;
  const std::vector<dc::PendingJob>& batch;
  const std::vector<int>& caps;
  WaterWiseConfig cfg;

  /// Eq. 8 objective of a full assignment (job -> region), hard-feasibility
  /// check included; returns +inf when infeasible.  History refs are zero
  /// for a first-batch schedule *observation*: the scheduler observes once
  /// before solving, so refs reflect exactly one observation.
  double objective(const std::vector<int>& assign,
                   const HistoryLearner& hist) const {
    const int n = ctx.capacity->num_regions();
    std::vector<int> used(static_cast<std::size_t>(n), 0);
    double total = 0.0;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      const int r = assign[j];
      if (++used[static_cast<std::size_t>(r)] > caps[static_cast<std::size_t>(r)])
        return std::numeric_limits<double>::infinity();
      const dc::PendingJob& p = batch[j];
      const double latency = env.transfer_latency_seconds(
          p.job->home_region, r, p.job->package_bytes);
      const double allowance =
          std::max(0.0, ctx.tol * cfg.delay_estimate_margin * p.est_exec_s -
                            (ctx.now - p.first_seen));
      if (latency > allowance + 1e-9)
        return std::numeric_limits<double>::infinity();  // Eq. 11
      std::vector<double> co2(static_cast<std::size_t>(n));
      std::vector<double> h2o(static_cast<std::size_t>(n));
      for (int q = 0; q < n; ++q) {
        const footprint::Breakdown fb =
            fp.job_at(q, ctx.now, p.est_energy_kwh, p.est_exec_s);
        const footprint::Breakdown tb =
            fp.transfer(p.job->home_region, q, p.job->package_bytes, ctx.now);
        co2[static_cast<std::size_t>(q)] = fb.carbon_g() + tb.carbon_g();
        h2o[static_cast<std::size_t>(q)] = fb.water_l() + tb.water_l();
      }
      const double co2_max = *std::max_element(co2.begin(), co2.end());
      const double h2o_max = *std::max_element(h2o.begin(), h2o.end());
      total += cfg.lambda_co2 * co2[static_cast<std::size_t>(r)] / co2_max +
               cfg.lambda_h2o * h2o[static_cast<std::size_t>(r)] / h2o_max;
      total += cfg.lambda_ref * (cfg.lambda_co2 * hist.carbon_ref(r) +
                                 cfg.lambda_h2o * hist.water_ref(r));
    }
    return total;
  }
};

class ObjectiveEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(ObjectiveEnumeration, MilpMatchesBruteForce) {
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 17);

  const int jobs_n = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<trace::Job> jobs;
  jobs.reserve(static_cast<std::size_t>(jobs_n));
  for (int i = 0; i < jobs_n; ++i) {
    trace::Job j;
    j.id = static_cast<std::uint64_t>(i);
    j.home_region = static_cast<int>(rng.uniform_int(0, 4));
    trace::sample_instance(static_cast<int>(rng.uniform_int(0, 9)), rng, j);
    jobs.push_back(j);
  }
  const double now = rng.uniform(0.0, 86400.0);
  std::vector<dc::PendingJob> batch;
  for (const auto& j : jobs) {
    dc::PendingJob p;
    p.job = &j;
    p.first_seen = now;  // just arrived: no waiting debited yet
    p.est_exec_s = trace::profile(j.benchmark).mean_exec_s;
    p.est_energy_kwh = trace::profile(j.benchmark).mean_power_w *
                       trace::profile(j.benchmark).mean_exec_s / 3.6e6;
    batch.push_back(p);
  }

  std::vector<int> caps(5);
  for (auto& c : caps) c = static_cast<int>(rng.uniform_int(1, 3));

  const FixedCapacity cap(caps);
  dc::ScheduleContext ctx;
  ctx.now = now;
  ctx.tol = 1.0;  // wide enough that several regions stay feasible
  ctx.env = &env;
  ctx.footprint = &fp;
  ctx.capacity = &cap;

  WaterWiseConfig cfg;
  // This test asserts the MILP reaches the brute-force optimum; an injected
  // solve failure (WW_FAULT_SOLVES fault-mode sweep) would legitimately
  // route the chunk to the greedy fallback, which only approximates it.
  cfg.solve_failure_rate = 0.0;
  WaterWiseScheduler ww(cfg);
  const auto decisions = ww.schedule(batch, ctx);

  // Rebuild the history state the solver saw: exactly one observation.
  HistoryLearner hist(5, cfg.history_window);
  {
    std::vector<double> ci(5);
    std::vector<double> wi(5);
    for (int r = 0; r < 5; ++r) {
      ci[static_cast<std::size_t>(r)] = env.carbon_intensity(r, ctx.now);
      wi[static_cast<std::size_t>(r)] = env.water_intensity(r, ctx.now);
    }
    hist.observe(ci, wi);
  }

  const Enumerator en{env, fp, ctx, batch, caps, ww.config()};

  // Brute-force optimum over 5^jobs assignments.
  double best = std::numeric_limits<double>::infinity();
  const long combos = static_cast<long>(std::pow(5.0, jobs_n));
  for (long code = 0; code < combos; ++code) {
    long c = code;
    std::vector<int> assign(static_cast<std::size_t>(jobs_n));
    for (int j = 0; j < jobs_n; ++j) {
      assign[static_cast<std::size_t>(j)] = static_cast<int>(c % 5);
      c /= 5;
    }
    best = std::min(best, en.objective(assign, hist));
  }
  ASSERT_TRUE(std::isfinite(best));  // capacity was sized to keep it feasible

  // The scheduler's assignment must reach the same objective value (modulo
  // the 1e-9 symmetry-breaking epsilon).
  ASSERT_EQ(decisions.size(), batch.size());
  std::vector<int> chosen(static_cast<std::size_t>(jobs_n), -1);
  for (const auto& d : decisions)
    chosen[static_cast<std::size_t>(d.job_id)] = d.region;
  const double achieved = en.objective(chosen, hist);
  EXPECT_NEAR(achieved, best, 1e-5) << "param " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ObjectiveEnumeration, ::testing::Range(0, 25));

}  // namespace
}  // namespace ww::core
