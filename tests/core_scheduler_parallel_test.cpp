// Plan/solve/commit pipeline coverage: the chunk-parallel scheduler must
// produce byte-identical decision streams and campaign aggregates at every
// `solver_threads` setting, in combination with the solver ablation knobs
// (presolve on/off, Forrest-Tomlin vs refactorize-every-pivot), and the
// quota partition must make region double-booking impossible by
// construction even under adversarial tiny-capacity windows.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/waterwise.hpp"
#include "dc/campaign_runner.hpp"
#include "dc/simulator.hpp"
#include "env/faults.hpp"
#include "obs/trace.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace ww::core {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 3;
  return cfg;
}

std::vector<trace::Job> burst_trace(int count, double at, int home = 2) {
  std::vector<trace::Job> jobs;
  util::Rng rng(99);
  for (int i = 0; i < count; ++i) {
    trace::Job j;
    j.id = static_cast<std::uint64_t>(i);
    j.submit_time = at;
    j.home_region = home;
    trace::sample_instance(i % trace::num_benchmarks(), rng, j);
    jobs.push_back(j);
  }
  return jobs;
}

/// Fixed free-capacity view for driving schedule() without a simulator.
class FixedCapacity final : public dc::CapacityView {
 public:
  explicit FixedCapacity(std::vector<int> caps) : caps_(std::move(caps)) {}
  [[nodiscard]] int num_regions() const override {
    return static_cast<int>(caps_.size());
  }
  [[nodiscard]] int capacity(int region) const override {
    return caps_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] int free_at(int region, double) const override {
    return caps_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] int max_occupancy(int, double, double) const override {
    return 0;
  }

 private:
  std::vector<int> caps_;
};

struct DirectRig {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  std::vector<trace::Job> jobs;
  std::vector<dc::PendingJob> batch;

  explicit DirectRig(int count, int home = 2)
      : jobs(burst_trace(count, 0.0, home)) {
    batch.reserve(jobs.size());
    for (const trace::Job& j : jobs) {
      dc::PendingJob p;
      p.job = &j;
      p.first_seen = 0.0;
      p.est_exec_s = j.exec_seconds > 0.0 ? j.exec_seconds : 100.0;
      p.est_energy_kwh = 1.0;
      batch.push_back(p);
    }
  }

  [[nodiscard]] std::vector<dc::Decision> run(WaterWiseScheduler& ww,
                                              const std::vector<int>& caps,
                                              double tol = 0.5) const {
    const FixedCapacity view(caps);
    dc::ScheduleContext ctx;
    ctx.now = 0.0;
    ctx.tol = tol;
    ctx.env = &env;
    ctx.footprint = &fp;
    ctx.capacity = &view;
    return ww.schedule(batch, ctx);
  }
};

std::vector<const dc::PendingJob*> as_pointers(
    const std::vector<dc::PendingJob>& batch, std::size_t count) {
  std::vector<const dc::PendingJob*> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count && i < batch.size(); ++i)
    out.push_back(&batch[i]);
  return out;
}

TEST(ChunkPlanning, SingleChunkOwnsTheWholeWindow) {
  const DirectRig rig(40);
  WaterWiseScheduler ww;  // max_jobs_per_solve = 400 => one chunk
  const std::vector<int> caps = {9, 0, 17, 3, 11};
  const auto plans = ww.plan_chunks(as_pointers(rig.batch, 40), caps);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].index, 0);
  EXPECT_EQ(plans[0].quota, caps);
  EXPECT_EQ(plans[0].jobs.size(), 40u);
}

TEST(ChunkPlanning, QuotaPartitionStressNeverOverbooksARegion) {
  // Adversarial tiny-capacity windows: many cap-0/cap-1 regions, chunk
  // counts that stress the largest-remainder rounding, and job totals right
  // at the capacity edge.  The partition must (a) hand out exactly the
  // window's capacity — no region can ever be over-committed because the
  // quotas are the only capacity any chunk sees — and (b) cover every
  // chunk's job count after the repair pass.
  const DirectRig rig(97);
  util::Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 14));
    std::vector<int> caps(static_cast<std::size_t>(n));
    int total_cap = 0;
    for (int r = 0; r < n; ++r) {
      // Mostly 0/1-capacity regions with occasional larger pockets.
      const double roll = rng.uniform();
      caps[static_cast<std::size_t>(r)] =
          roll < 0.35 ? 0
                      : (roll < 0.8 ? 1
                                    : static_cast<int>(rng.uniform_int(2, 9)));
      total_cap += caps[static_cast<std::size_t>(r)];
    }
    if (total_cap == 0) continue;
    const auto num_jobs = static_cast<std::size_t>(
        rng.uniform_int(1, std::min<std::int64_t>(total_cap, 97)));

    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = static_cast<int>(rng.uniform_int(1, 9));
    const WaterWiseScheduler ww(cfg);
    const auto plans = ww.plan_chunks(as_pointers(rig.batch, num_jobs), caps);

    std::vector<int> handed(static_cast<std::size_t>(n), 0);
    std::size_t jobs_covered = 0;
    for (const ChunkPlan& p : plans) {
      ASSERT_EQ(p.quota.size(), caps.size());
      long quota_total = 0;
      for (int r = 0; r < n; ++r) {
        EXPECT_GE(p.quota[static_cast<std::size_t>(r)], 0);
        handed[static_cast<std::size_t>(r)] +=
            p.quota[static_cast<std::size_t>(r)];
        quota_total += p.quota[static_cast<std::size_t>(r)];
      }
      EXPECT_GE(quota_total, static_cast<long>(p.jobs.size()))
          << "trial " << trial << " chunk " << p.index
          << ": quota cannot cover its jobs";
      jobs_covered += p.jobs.size();
    }
    EXPECT_EQ(jobs_covered, num_jobs);
    // Disjoint-by-construction: the quotas partition the window's capacity
    // exactly, so the sum of all chunk placements can never exceed caps.
    EXPECT_EQ(handed, caps) << "trial " << trial;
  }
}

TEST(ChunkParallel, DecisionStreamByteIdenticalAcrossThreadCounts) {
  // The acceptance bar: the full decision stream — not just aggregates —
  // must match exactly for solver_threads in {1, 2, 4} on a window that
  // actually fans out (tiny chunks, mixed capacity).
  const DirectRig rig(60);
  const std::vector<int> caps = {14, 0, 23, 9, 31};
  std::vector<std::vector<dc::Decision>> streams;
  for (const int threads : {1, 2, 4}) {
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 7;
    cfg.solver_threads = threads;
    WaterWiseScheduler ww(cfg);
    streams.push_back(rig.run(ww, caps));
    if (threads > 1) {
      EXPECT_GT(ww.stats().chunks_planned, 1);
    }
  }
  ASSERT_EQ(streams[0].size(), streams[1].size());
  ASSERT_EQ(streams[0].size(), streams[2].size());
  for (std::size_t i = 0; i < streams[0].size(); ++i) {
    for (std::size_t s = 1; s < streams.size(); ++s) {
      EXPECT_EQ(streams[0][i].job_id, streams[s][i].job_id) << "decision " << i;
      EXPECT_EQ(streams[0][i].region, streams[s][i].region) << "decision " << i;
      EXPECT_EQ(streams[0][i].start_time, streams[s][i].start_time)
          << "decision " << i;
      EXPECT_EQ(streams[0][i].power_scale, streams[s][i].power_scale)
          << "decision " << i;
    }
  }
}

TEST(ChunkParallel, NoRegionOvercommittedUnderAdversarialWindows) {
  // End-to-end double-booking check: whatever the chunk count and thread
  // count, per-region placements never exceed the window's capacity.
  const DirectRig rig(45);
  const std::vector<std::vector<int>> windows = {
      {1, 1, 1, 1, 1}, {0, 0, 45, 0, 0}, {2, 1, 40, 1, 2},
      {7, 7, 7, 7, 7}, {1, 0, 30, 0, 1},
  };
  for (const auto& caps : windows) {
    for (const int threads : {1, 4}) {
      WaterWiseConfig cfg;
      cfg.max_jobs_per_solve = 6;
      cfg.solver_threads = threads;
      WaterWiseScheduler ww(cfg);
      const auto decisions = rig.run(ww, caps, /*tol=*/1.0);
      std::vector<long> placed(caps.size(), 0);
      for (const dc::Decision& d : decisions)
        ++placed[static_cast<std::size_t>(d.region)];
      for (std::size_t r = 0; r < caps.size(); ++r)
        EXPECT_LE(placed[r], caps[r])
            << "region " << r << " overbooked at threads=" << threads;
      const long total = std::accumulate(placed.begin(), placed.end(), 0L);
      EXPECT_LE(total, static_cast<long>(rig.batch.size()));
    }
  }
}

TEST(ChunkParallel, SpillResolveRecoversUnusedQuotaDeterministically) {
  // Soft-disabled ablation with tol = 0: every remote region is forbidden,
  // so each chunk can only use its share of the home region and the rest of
  // its jobs become spill-eligible.  The serial spill re-solve must run,
  // results must stay within capacity, and the outcome must not depend on
  // the thread count.
  const DirectRig rig(12, /*home=*/2);
  const std::vector<int> caps = {5, 5, 10, 5, 5};
  std::vector<std::vector<dc::Decision>> streams;
  for (const int threads : {1, 2, 4}) {
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 4;
    cfg.solver_threads = threads;
    cfg.enable_soft_constraints = false;
    WaterWiseScheduler ww(cfg);
    streams.push_back(rig.run(ww, caps, /*tol=*/0.0));
    // 3 chunks of 4 jobs share the 10 home slots, so at least one chunk
    // cannot place all its jobs and the commit stage must spill.
    EXPECT_GE(ww.stats().spill_resolves, 1) << "threads=" << threads;
    EXPECT_GE(ww.stats().spill_jobs, 1) << "threads=" << threads;
    EXPECT_EQ(ww.stats().chunks_planned, 3) << "threads=" << threads;
  }
  for (const auto& stream : streams) {
    // tol = 0 forbids every remote move; exactly the home capacity fills.
    EXPECT_EQ(stream.size(), 10u);
    for (const dc::Decision& d : stream) EXPECT_EQ(d.region, 2);
  }
  for (std::size_t s = 1; s < streams.size(); ++s) {
    ASSERT_EQ(streams[0].size(), streams[s].size());
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      EXPECT_EQ(streams[0][i].job_id, streams[s][i].job_id);
      EXPECT_EQ(streams[0][i].region, streams[s][i].region);
      EXPECT_EQ(streams[0][i].start_time, streams[s][i].start_time);
    }
  }
}

TEST(ChunkParallel, CampaignAggregatesByteIdenticalAcrossThreadsAndAblations) {
  // The fig8/11/12 invariant at test scale: a full simulator campaign over
  // a bursty trace (chunking forced) must produce byte-identical per-job
  // streams and aggregates for every solver_threads x presolve x
  // factor-update combination.  The env-switch spellings of the same knobs
  // (WW_PRESOLVE, WW_REFACTOR_EVERY_PIVOT, WW_SCHED_THREADS) are exercised
  // by the CI ablation reruns of this whole suite.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(50, 0.0);
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  sim_cfg.record_jobs = true;

  auto run = [&](int threads, bool presolve, int update_budget) {
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 7;
    cfg.solver_threads = threads;
    cfg.solver.presolve = presolve;
    cfg.solver.update_budget = update_budget;
    WaterWiseScheduler ww(cfg);
    dc::Simulator sim(env, fp, sim_cfg);
    return sim.run(jobs, ww);
  };

  const dc::CampaignResult ref = run(1, true, 64);
  ASSERT_EQ(ref.num_jobs, 50);
  for (const int threads : {1, 2, 4}) {
    for (const bool presolve : {true, false}) {
      for (const int update_budget : {64, 0}) {
        const dc::CampaignResult res = run(threads, presolve, update_budget);
        const std::string tag = "threads=" + std::to_string(threads) +
                                (presolve ? " presolve" : " raw") +
                                (update_budget ? " ft" : " every-pivot");
        EXPECT_EQ(res.num_jobs, ref.num_jobs) << tag;
        EXPECT_EQ(res.total_carbon_g, ref.total_carbon_g) << tag;
        EXPECT_EQ(res.total_water_l, ref.total_water_l) << tag;
        EXPECT_EQ(res.violations, ref.violations) << tag;
        EXPECT_EQ(res.jobs_per_region, ref.jobs_per_region) << tag;
        EXPECT_EQ(res.makespan_seconds, ref.makespan_seconds) << tag;
        ASSERT_EQ(res.jobs.size(), ref.jobs.size()) << tag;
        for (std::size_t i = 0; i < ref.jobs.size(); ++i) {
          EXPECT_EQ(res.jobs[i].job_id, ref.jobs[i].job_id) << tag;
          EXPECT_EQ(res.jobs[i].exec_region, ref.jobs[i].exec_region)
              << tag << " job " << i;
          EXPECT_EQ(res.jobs[i].start_time, ref.jobs[i].start_time)
              << tag << " job " << i;
        }
      }
    }
  }
}

TEST(ChunkParallel, EffectiveThreadsResolvesConfigAndZero) {
  WaterWiseConfig one;
  one.solver_threads = 1;
  WaterWiseConfig four;
  four.solver_threads = 4;
  WaterWiseConfig all;
  all.solver_threads = 0;
  // Under a WW_SCHED_THREADS override (CI ablation rerun) the environment
  // wins for every scheduler, so only relative checks hold unconditionally.
  const bool overridden = std::getenv("WW_SCHED_THREADS") != nullptr;
  if (!overridden) {
    EXPECT_EQ(WaterWiseScheduler(one).effective_solver_threads(), 1u);
    EXPECT_EQ(WaterWiseScheduler(four).effective_solver_threads(), 4u);
  }
  EXPECT_GE(WaterWiseScheduler(all).effective_solver_threads(), 1u);
}

TEST(ChunkParallel, StatsMergeIsFieldwiseAddition) {
  SchedulerStats a;
  a.milp_solves = 3;
  a.soft_fallbacks = 1;
  a.nodes_explored = 10;
  a.simplex_iterations = 100;
  a.solve_seconds = 0.5;
  a.chunks_planned = 2;
  a.fault_events = 2;
  a.solve_retries = 1;
  SchedulerStats b;
  b.milp_solves = 2;
  b.nodes_explored = 4;
  b.spill_resolves = 1;
  b.spill_jobs = 3;
  b.presolve_rows_removed = 7;
  b.fault_events = 3;
  b.degraded_windows = 4;
  b.solve_retries = 2;
  b.fallback_placements = 5;
  b.deferred_jobs = 6;
  a += b;
  EXPECT_EQ(a.milp_solves, 5);
  EXPECT_EQ(a.soft_fallbacks, 1);
  EXPECT_EQ(a.nodes_explored, 14);
  EXPECT_EQ(a.simplex_iterations, 100);
  EXPECT_EQ(a.spill_resolves, 1);
  EXPECT_EQ(a.spill_jobs, 3);
  EXPECT_EQ(a.presolve_rows_removed, 7);
  EXPECT_EQ(a.chunks_planned, 2);
  EXPECT_DOUBLE_EQ(a.solve_seconds, 0.5);
  EXPECT_EQ(a.fault_events, 5);
  EXPECT_EQ(a.degraded_windows, 4);
  EXPECT_EQ(a.solve_retries, 3);
  EXPECT_EQ(a.fallback_placements, 5);
  EXPECT_EQ(a.deferred_jobs, 6);
}

TEST(ChunkParallel, TracingIsObservationalAcrossThreadsAndPresolve) {
  // The observability acceptance bar: span tracing on vs. off must leave
  // per-job streams, campaign aggregates, AND the deterministic registry
  // metrics byte-identical for solver_threads {1, 2, 4} x presolve on/off.
  // Wall-clock-derived metrics (decision latency, solve/presolve seconds)
  // are observational by design and are excluded from the comparison.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(50, 0.0);
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  sim_cfg.record_jobs = true;

  struct Run {
    dc::CampaignResult result;
    std::uint64_t counters[4] = {0, 0, 0, 0};
    std::string queue_depth_json;
    std::string admission_json;
  };
  auto run = [&](int threads, bool presolve, bool tracing) {
    obs::Trace::instance().set_enabled(tracing);
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 7;
    cfg.solver_threads = threads;
    cfg.solver.presolve = presolve;
    WaterWiseScheduler ww(cfg);
    dc::Simulator sim(env, fp, sim_cfg);
    Run out;
    out.result = sim.run(jobs, ww);
    const obs::Registry& reg = ww.registry();
    const char* names[4] = {"sched.milp_solves", "sched.windows",
                            "sched.chunks_planned",
                            "sched.simplex_iterations"};
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t* c = reg.find_counter(names[i]);
      out.counters[static_cast<std::size_t>(i)] = c != nullptr ? *c : 0;
    }
    const auto hist_bins = [&reg](const char* name) {
      const util::Histogram* h = reg.find_hist(name);
      std::string bins;
      if (h == nullptr) return bins;
      for (std::size_t i = 0; i < h->bins(); ++i)
        bins += std::to_string(h->bin_count(i)) + ",";
      return bins;
    };
    out.queue_depth_json = hist_bins("service.queue_depth");
    out.admission_json = hist_bins("service.time_to_admission_s");
    obs::Trace::instance().set_enabled(false);
    obs::Trace::instance().clear();
    return out;
  };

  const Run ref = run(1, true, false);
  ASSERT_EQ(ref.result.num_jobs, 50);
  EXPECT_GT(ref.counters[0], 0u);  // milp_solves registered and counted
  EXPECT_FALSE(ref.queue_depth_json.empty());
  for (const int threads : {1, 2, 4}) {
    for (const bool presolve : {true, false}) {
      // Solver-internal counters (simplex iterations) legitimately differ
      // across the presolve ablation; tracing must not move them, so the
      // traced run is compared against its own untraced baseline, while
      // decision streams and service metrics match the global reference.
      const Run base = run(threads, presolve, false);
      const Run traced = run(threads, presolve, true);
      const std::string tag = "threads=" + std::to_string(threads) +
                              (presolve ? " presolve" : " raw");
      for (int c = 0; c < 4; ++c)
        EXPECT_EQ(traced.counters[static_cast<std::size_t>(c)],
                  base.counters[static_cast<std::size_t>(c)])
            << tag << " counter " << c;
      for (const Run* res : {&base, &traced}) {
        EXPECT_EQ(res->result.num_jobs, ref.result.num_jobs) << tag;
        EXPECT_EQ(res->result.total_carbon_g, ref.result.total_carbon_g)
            << tag;
        EXPECT_EQ(res->result.total_water_l, ref.result.total_water_l)
            << tag;
        EXPECT_EQ(res->result.violations, ref.result.violations) << tag;
        EXPECT_EQ(res->result.jobs_per_region, ref.result.jobs_per_region)
            << tag;
        EXPECT_EQ(res->result.makespan_seconds, ref.result.makespan_seconds)
            << tag;
        ASSERT_EQ(res->result.jobs.size(), ref.result.jobs.size()) << tag;
        for (std::size_t i = 0; i < ref.result.jobs.size(); ++i) {
          EXPECT_EQ(res->result.jobs[i].job_id, ref.result.jobs[i].job_id)
              << tag;
          EXPECT_EQ(res->result.jobs[i].exec_region,
                    ref.result.jobs[i].exec_region)
              << tag << " job " << i;
          EXPECT_EQ(res->result.jobs[i].start_time,
                    ref.result.jobs[i].start_time)
              << tag << " job " << i;
        }
        EXPECT_EQ(res->queue_depth_json, ref.queue_depth_json) << tag;
        EXPECT_EQ(res->admission_json, ref.admission_json) << tag;
      }
    }
  }
}

TEST(ChunkParallel, StatsViewMatchesRegistry) {
  // SchedulerStats is now a compat view over the registry: the two read
  // paths must agree after a real windowed run.
  const DirectRig rig(30);
  WaterWiseConfig cfg;
  cfg.max_jobs_per_solve = 7;
  WaterWiseScheduler ww(cfg);
  (void)rig.run(ww, {9, 3, 17, 5, 11});
  const SchedulerStats& stats = ww.stats();
  const obs::Registry& reg = ww.registry();
  ASSERT_NE(reg.find_counter("sched.milp_solves"), nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(stats.milp_solves),
            *reg.find_counter("sched.milp_solves"));
  EXPECT_EQ(static_cast<std::uint64_t>(stats.chunks_planned),
            *reg.find_counter("sched.chunks_planned"));
  EXPECT_EQ(static_cast<std::uint64_t>(stats.simplex_iterations),
            *reg.find_counter("sched.simplex_iterations"));
  EXPECT_GT(stats.milp_solves, 0);
}

TEST(ChunkParallel, FaultCampaignByteIdenticalAcrossThreadsAndPresolve) {
  // The fault-determinism acceptance bar: with a generated FaultSchedule
  // attached (outages + forecast bias) AND injected solve failures layered
  // on top, a full simulator campaign must still produce byte-identical
  // per-job streams and aggregates for solver_threads {1, 2, 4} x presolve
  // on/off.
  env::FaultScheduleConfig fault_cfg;
  fault_cfg.seed = 31337;
  fault_cfg.horizon_seconds = 6.0 * 3600.0;
  fault_cfg.outages_per_region_day = 8.0;
  fault_cfg.bias_windows_per_region_day = 6.0;
  const env::FaultSchedule faults(fault_cfg);

  env::Environment world = env::Environment::builtin(small_env());
  world.attach_faults(&faults, env::FaultView::World);
  env::Environment observed = env::Environment::builtin(small_env());
  observed.attach_faults(&faults, env::FaultView::Controller);
  const footprint::FootprintModel world_fp(world);
  const footprint::FootprintModel observed_fp(observed);

  const auto jobs = burst_trace(50, 0.0);
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  sim_cfg.record_jobs = true;

  auto run = [&](int threads, bool presolve) {
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 7;
    cfg.solver_threads = threads;
    cfg.solver.presolve = presolve;
    cfg.solve_failure_rate = 0.35;
    cfg.fault_seed = fault_cfg.seed;
    WaterWiseScheduler ww(cfg);
    dc::Simulator sim(world, world_fp, sim_cfg);
    sim.set_fault_injection(&faults, &observed, &observed_fp);
    return sim.run(jobs, ww);
  };

  const dc::CampaignResult ref = run(1, true);
  EXPECT_EQ(ref.num_jobs, 50);
  for (const int threads : {1, 2, 4}) {
    for (const bool presolve : {true, false}) {
      const dc::CampaignResult res = run(threads, presolve);
      const std::string tag = "threads=" + std::to_string(threads) +
                              (presolve ? " presolve" : " raw");
      EXPECT_EQ(res.num_jobs, ref.num_jobs) << tag;
      EXPECT_EQ(res.total_carbon_g, ref.total_carbon_g) << tag;
      EXPECT_EQ(res.total_water_l, ref.total_water_l) << tag;
      EXPECT_EQ(res.violations, ref.violations) << tag;
      EXPECT_EQ(res.jobs_per_region, ref.jobs_per_region) << tag;
      EXPECT_EQ(res.makespan_seconds, ref.makespan_seconds) << tag;
      ASSERT_EQ(res.jobs.size(), ref.jobs.size()) << tag;
      for (std::size_t i = 0; i < ref.jobs.size(); ++i) {
        EXPECT_EQ(res.jobs[i].job_id, ref.jobs[i].job_id) << tag;
        EXPECT_EQ(res.jobs[i].exec_region, ref.jobs[i].exec_region)
            << tag << " job " << i;
        EXPECT_EQ(res.jobs[i].start_time, ref.jobs[i].start_time)
            << tag << " job " << i;
      }
    }
  }
}

TEST(ChunkParallel, CampaignMatrixByteIdenticalAcrossThreadsPresolveFaults) {
  // The unified-pool acceptance sweep: scenario fan-out (CampaignRunner
  // jobs > 1) and chunk fan-out (solver_threads > 1) share the one global
  // work-stealing pool, swept over threads {1, 2, 4, 8} x presolve on/off
  // x injected solve-fault rate {0, 0.35}.  Per fault rate, every
  // combination must byte-match the serial presolve-on reference — per-job
  // streams included — because stealing may reorder execution but results
  // commit in scenario-index / chunk-index order.
  const auto jobs = burst_trace(24, 0.0);
  const double tols[3] = {0.25, 0.5, 1.0};

  auto run_campaign = [&](int threads, bool presolve, double fault_rate) {
    dc::CampaignConfig ccfg;
    ccfg.jobs = static_cast<std::size_t>(threads);
    ccfg.seed = 17;
    dc::CampaignRunner runner(ccfg);
    for (int s = 0; s < 3; ++s) {
      const double tol = tols[s];
      runner.add("tol" + std::to_string(s), [&, tol](dc::ScenarioContext&) {
        const env::Environment env = env::Environment::builtin(small_env());
        const footprint::FootprintModel fp(env);
        WaterWiseConfig cfg;
        cfg.max_jobs_per_solve = 6;  // 24 jobs -> 4 chunks per window
        cfg.solver_threads = threads;
        cfg.solver.presolve = presolve;
        cfg.solve_failure_rate = fault_rate;
        cfg.fault_seed = 909;
        WaterWiseScheduler ww(cfg);
        dc::SimConfig sim_cfg;
        sim_cfg.tol = tol;
        sim_cfg.record_jobs = true;
        dc::Simulator sim(env, fp, sim_cfg);
        return sim.run(jobs, ww);
      });
    }
    return runner.run_all();
  };

  for (const double fault_rate : {0.0, 0.35}) {
    const auto ref = run_campaign(1, true, fault_rate);
    ASSERT_EQ(ref.size(), 3u);
    ASSERT_EQ(ref[0].result.num_jobs, 24);
    for (const int threads : {1, 2, 4, 8}) {
      for (const bool presolve : {true, false}) {
        if (threads == 1 && presolve) continue;  // the reference itself
        const auto got = run_campaign(threads, presolve, fault_rate);
        const std::string tag = "threads=" + std::to_string(threads) +
                                (presolve ? " presolve" : " raw") +
                                " faults=" + std::to_string(fault_rate);
        ASSERT_EQ(got.size(), ref.size()) << tag;
        for (std::size_t s = 0; s < ref.size(); ++s) {
          const dc::CampaignResult& a = ref[s].result;
          const dc::CampaignResult& b = got[s].result;
          const std::string stag = tag + " " + ref[s].label;
          EXPECT_EQ(got[s].label, ref[s].label) << tag;
          EXPECT_EQ(b.num_jobs, a.num_jobs) << stag;
          EXPECT_EQ(b.total_carbon_g, a.total_carbon_g) << stag;
          EXPECT_EQ(b.total_water_l, a.total_water_l) << stag;
          EXPECT_EQ(b.violations, a.violations) << stag;
          EXPECT_EQ(b.jobs_per_region, a.jobs_per_region) << stag;
          EXPECT_EQ(b.makespan_seconds, a.makespan_seconds) << stag;
          ASSERT_EQ(b.jobs.size(), a.jobs.size()) << stag;
          for (std::size_t i = 0; i < a.jobs.size(); ++i) {
            EXPECT_EQ(b.jobs[i].job_id, a.jobs[i].job_id) << stag;
            EXPECT_EQ(b.jobs[i].exec_region, a.jobs[i].exec_region)
                << stag << " job " << i;
            EXPECT_EQ(b.jobs[i].start_time, a.jobs[i].start_time)
                << stag << " job " << i;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ww::core
