#include <gtest/gtest.h>

#include "footprint/footprint.hpp"

namespace ww::footprint {
namespace {

env::EnvironmentConfig small_config() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 30;
  return cfg;
}

class FootprintTest : public ::testing::Test {
 protected:
  env::Environment env_ = env::Environment::builtin(small_config());
  FootprintModel model_{env_};
};

TEST_F(FootprintTest, OperationalCarbonMatchesEq1) {
  const int r = 2;
  const double t = 40000.0;
  const double e = 0.02;  // kWh
  const Breakdown b = model_.job_at(r, t, e, 120.0);
  EXPECT_NEAR(b.operational_carbon_g, e * env_.carbon_intensity(r, t), 1e-9);
}

TEST_F(FootprintTest, EmbodiedCarbonMatchesEq1) {
  const double exec = 120.0;
  const Breakdown b = model_.job_at(0, 0.0, 0.01, exec);
  const double expected =
      exec / model_.server().lifetime_seconds * model_.server().embodied_carbon_g;
  EXPECT_NEAR(b.embodied_carbon_g, expected, 1e-9);
}

TEST_F(FootprintTest, OffsiteWaterMatchesEq2) {
  const int r = 1;
  const double t = 50000.0;
  const double e = 0.05;
  const Breakdown b = model_.job_at(r, t, e, 60.0);
  const double expected =
      env_.pue(r) * e * env_.ewif(r, t) * (1.0 + env_.wsf(r));
  EXPECT_NEAR(b.offsite_water_l, expected, 1e-12);
}

TEST_F(FootprintTest, OnsiteWaterMatchesEq3) {
  const int r = 4;
  const double t = 90000.0;
  const double e = 0.03;
  const Breakdown b = model_.job_at(r, t, e, 60.0);
  EXPECT_NEAR(b.onsite_water_l, e * env_.wue(r, t) * (1.0 + env_.wsf(r)),
              1e-12);
}

TEST_F(FootprintTest, EmbodiedWaterMatchesEq4) {
  const ServerSpec& s = model_.server();
  const double expected_total = s.embodied_carbon_g / s.manufacturing_ci_g_per_kwh *
                                s.manufacturing_ewif_l_per_kwh *
                                (1.0 + s.manufacturing_wsf);
  EXPECT_NEAR(s.embodied_water_l(), expected_total, 1e-9);
  const double exec = 200.0;
  const Breakdown b = model_.job_at(0, 0.0, 0.01, exec);
  EXPECT_NEAR(b.embodied_water_l, exec / s.lifetime_seconds * expected_total,
              1e-12);
}

TEST_F(FootprintTest, LinearInEnergy) {
  const Breakdown one = model_.job_at(3, 1000.0, 0.01, 0.0);
  const Breakdown two = model_.job_at(3, 1000.0, 0.02, 0.0);
  EXPECT_NEAR(two.operational_carbon_g, 2.0 * one.operational_carbon_g, 1e-9);
  EXPECT_NEAR(two.offsite_water_l, 2.0 * one.offsite_water_l, 1e-12);
  EXPECT_NEAR(two.onsite_water_l, 2.0 * one.onsite_water_l, 1e-12);
}

TEST_F(FootprintTest, ScarcityScalingMonotone) {
  // Same operational profile, higher WSF region => strictly more effective
  // water per unit of raw water use.  Compare via Eq. 2/3 structure directly:
  // divide out the (1+WSF) factor and both regions see identical scaling law.
  const double t = 3600.0;
  const double e = 0.01;
  for (int r = 0; r < env_.num_regions(); ++r) {
    const Breakdown b = model_.job_at(r, t, e, 0.0);
    const double raw_offsite = env_.pue(r) * e * env_.ewif(r, t);
    EXPECT_NEAR(b.offsite_water_l / raw_offsite, 1.0 + env_.wsf(r), 1e-9);
  }
}

TEST_F(FootprintTest, EmbodiedScaleKnob) {
  const FootprintModel scaled(env_, ServerSpec{}, 1.10);
  const Breakdown base = model_.job_at(0, 0.0, 0.01, 100.0);
  const Breakdown pert = scaled.job_at(0, 0.0, 0.01, 100.0);
  EXPECT_NEAR(pert.embodied_carbon_g, 1.10 * base.embodied_carbon_g, 1e-9);
  EXPECT_NEAR(pert.embodied_water_l, 1.10 * base.embodied_water_l, 1e-9);
  EXPECT_DOUBLE_EQ(pert.operational_carbon_g, base.operational_carbon_g);
}

TEST_F(FootprintTest, IntegratedMatchesPointForShortJobs) {
  // A 10-second job inside one hour slice: integrated == point sample.
  const Breakdown a = model_.job_at(2, 1800.0, 0.001, 10.0);
  const Breakdown b = model_.job_integrated(2, 1795.0, 10.0, 0.001);
  EXPECT_NEAR(a.carbon_g(), b.carbon_g(), a.carbon_g() * 0.02);
}

TEST_F(FootprintTest, IntegratedConservesEnergyAcrossSlices) {
  // Integration over N hours bills exactly the job's energy: the carbon must
  // lie between e*min(CI) and e*max(CI) over the window.
  const int r = 3;
  const double start = 1000.0;
  const double dur = 6.0 * 3600.0;
  const double e = 0.5;
  const Breakdown b = model_.job_integrated(r, start, dur, e);
  double lo = 1e18;
  double hi = 0.0;
  for (double t = start; t <= start + dur; t += 600.0) {
    lo = std::min(lo, env_.carbon_intensity(r, t));
    hi = std::max(hi, env_.carbon_intensity(r, t));
  }
  EXPECT_GE(b.operational_carbon_g, e * lo * 0.999);
  EXPECT_LE(b.operational_carbon_g, e * hi * 1.001);
}

TEST_F(FootprintTest, ZeroDurationIntegrationIsZero) {
  const Breakdown b = model_.job_integrated(0, 100.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(b.carbon_g(), 0.0);
  EXPECT_DOUBLE_EQ(b.water_l(), 0.0);
}

TEST_F(FootprintTest, TransferZeroWhenLocal) {
  const Breakdown b = model_.transfer(2, 2, 1e9, 0.0);
  EXPECT_DOUBLE_EQ(b.carbon_g(), 0.0);
  EXPECT_DOUBLE_EQ(b.water_l(), 0.0);
}

TEST_F(FootprintTest, TransferSmallRelativeToExecution) {
  // Table 3: communication overhead is a fraction of a percent of the
  // execution footprint for typical jobs.
  const double e = 300.0 * 100.0 / 3.6e6;  // 300 W for 100 s
  const Breakdown run = model_.job_at(2, 3600.0, e, 100.0);
  const Breakdown move = model_.transfer(2, 0, 2.0e8, 3600.0);  // 200 MB
  EXPECT_LT(move.carbon_g(), 0.02 * run.carbon_g());
  EXPECT_GT(move.carbon_g(), 0.0);
}

TEST_F(FootprintTest, BreakdownAccumulate) {
  Breakdown a = model_.job_at(0, 0.0, 0.01, 50.0);
  const Breakdown b = model_.job_at(1, 0.0, 0.02, 70.0);
  const double carbon_sum = a.carbon_g() + b.carbon_g();
  a += b;
  EXPECT_NEAR(a.carbon_g(), carbon_sum, 1e-9);
}

TEST_F(FootprintTest, TotalsAreComponentSums) {
  const Breakdown b = model_.job_at(4, 7200.0, 0.05, 300.0);
  EXPECT_NEAR(b.carbon_g(), b.operational_carbon_g + b.embodied_carbon_g, 1e-12);
  EXPECT_NEAR(b.water_l(),
              b.offsite_water_l + b.onsite_water_l + b.embodied_water_l, 1e-12);
}

}  // namespace
}  // namespace ww::footprint
