// Unit tests for the legacy isolated ThreadPool.  Production fan-out goes
// through util::WorkStealingPool (see util_work_stealing_test.cpp); this
// pool remains for tests that need a private, fully isolated worker set,
// which is why every construction below carries an owner-thread-pool
// det-ok waiver.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace ww::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);  // det-ok: legacy pool unit test
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);  // det-ok: legacy pool unit test
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);  // det-ok: legacy pool unit test
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);  // det-ok: legacy pool unit test
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForDrainsQueueOnException) {
  // Regression: queued tasks reference the caller's `fn`; parallel_for must
  // drain every future before rethrowing, or workers invoke a dangling
  // reference once the caller's frame unwinds (stack-use-after-scope, caught
  // under ASan).
  ThreadPool pool(2);  // det-ok: legacy pool unit test
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(256,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("x");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForSkipsQueuedTasksAfterException) {
  // Fail fast: with a single worker tasks run in submit order, so nothing
  // queued behind the throwing task may execute.
  ThreadPool pool(1);  // det-ok: legacy pool unit test
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("x");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, ResolveThreadsMatchesConstructedPool) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  ThreadPool pool(0);  // det-ok: legacy pool unit test
  EXPECT_EQ(pool.size(), ThreadPool::resolve_threads(0));
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);  // det-ok: legacy pool unit test
  std::atomic<long> total{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i)
    futures.push_back(pool.submit([&total, i] { total += i; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;  // det-ok: legacy pool unit test
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace ww::util
