#include <gtest/gtest.h>

#include "env/energy_mix.hpp"
#include "env/energy_source.hpp"

namespace ww::env {
namespace {

TEST(EnergySource, PaperAnchors) {
  // Fig. 1 anchors quoted in the text: coal 1050 gCO2/kWh is ~62x hydro's 17;
  // hydro EWIF 17 L/kWh is ~11x coal's.
  EXPECT_DOUBLE_EQ(carbon_intensity(EnergySource::Coal), 1050.0);
  EXPECT_DOUBLE_EQ(carbon_intensity(EnergySource::Hydro), 17.0);
  EXPECT_NEAR(carbon_intensity(EnergySource::Coal) /
                  carbon_intensity(EnergySource::Hydro),
              62.0, 1.0);
  EXPECT_DOUBLE_EQ(ewif(EnergySource::Hydro), 17.0);
  EXPECT_NEAR(ewif(EnergySource::Hydro) / ewif(EnergySource::Coal), 11.0, 0.5);
}

TEST(EnergySource, RenewablesAreCarbonFriendly) {
  // Every renewable has lower carbon intensity than every fossil source.
  double max_renewable_ci = 0.0;
  double min_fossil_ci = 1e18;
  for (const EnergySource s : all_sources()) {
    if (is_renewable(s))
      max_renewable_ci = std::max(max_renewable_ci, carbon_intensity(s));
    else
      min_fossil_ci = std::min(min_fossil_ci, carbon_intensity(s));
  }
  EXPECT_LT(max_renewable_ci, min_fossil_ci);
}

TEST(EnergySource, CarbonWaterTension) {
  // Observation 1: some carbon-friendly sources are water-thirsty — hydro
  // and biomass must exceed every fossil source's EWIF.
  for (const EnergySource f :
       {EnergySource::Gas, EnergySource::Oil, EnergySource::Coal}) {
    EXPECT_GT(ewif(EnergySource::Hydro), ewif(f));
    EXPECT_GT(ewif(EnergySource::Biomass), ewif(f));
  }
}

TEST(EnergySource, WriDatasetDiffersButStaysPositive) {
  for (const EnergySource s : all_sources()) {
    EXPECT_GT(ewif(s, WaterDataset::WorldResourcesInstitute), 0.0);
    EXPECT_GT(ewif(s, WaterDataset::ElectricityMaps), 0.0);
  }
  // The datasets genuinely disagree (otherwise Fig. 6 would be Fig. 5).
  int differing = 0;
  for (const EnergySource s : all_sources())
    if (ewif(s, WaterDataset::ElectricityMaps) !=
        ewif(s, WaterDataset::WorldResourcesInstitute))
      ++differing;
  EXPECT_GE(differing, 5);
}

TEST(EnergySource, Names) {
  EXPECT_EQ(to_string(EnergySource::Nuclear), "Nuclear");
  EXPECT_EQ(to_string(EnergySource::Coal), "Coal");
  EXPECT_EQ(to_string(WaterDataset::ElectricityMaps), "ElectricityMaps");
}

MixConfig test_mix() {
  MixConfig mix;
  mix.base_share = {0.1, 0.1, 0.2, 0.0, 0.1, 0.1, 0.3, 0.05, 0.05};
  return mix;
}

TEST(EnergyMix, SharesSumToOne) {
  const EnergyMixModel model(test_mix(), util::Rng(1), 24 * 30);
  for (const double t : {0.0, 3600.0, 86400.0, 86400.0 * 15 + 7200.0}) {
    double total = 0.0;
    for (const EnergySource s : all_sources()) total += model.share(s, t);
    EXPECT_NEAR(total, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(EnergyMix, SharesNonNegative) {
  const EnergyMixModel model(test_mix(), util::Rng(2), 24 * 30);
  for (int h = 0; h < 24 * 30; ++h)
    for (const EnergySource s : all_sources())
      EXPECT_GE(model.share(s, h * 3600.0), 0.0);
}

TEST(EnergyMix, SolarFollowsDaylight) {
  const EnergyMixModel model(test_mix(), util::Rng(3), 24 * 10);
  // Solar at 3am must be zero; at noon positive.
  EXPECT_NEAR(model.share(EnergySource::Solar, 3.0 * 3600.0), 0.0, 1e-9);
  EXPECT_GT(model.share(EnergySource::Solar, 12.0 * 3600.0), 0.0);
}

TEST(EnergyMix, CarbonIntensityWithinSourceRange) {
  const EnergyMixModel model(test_mix(), util::Rng(4), 24 * 60);
  for (int h = 0; h < 24 * 60; h += 7) {
    const double ci = model.carbon_intensity(h * 3600.0);
    EXPECT_GT(ci, carbon_intensity(EnergySource::Wind));
    EXPECT_LT(ci, carbon_intensity(EnergySource::Coal));
  }
}

TEST(EnergyMix, CarbonIntensityVariesOverTime) {
  const EnergyMixModel model(test_mix(), util::Rng(5), 24 * 30);
  double lo = 1e18;
  double hi = 0.0;
  for (int h = 0; h < 24 * 30; ++h) {
    const double ci = model.carbon_intensity(h * 3600.0);
    lo = std::min(lo, ci);
    hi = std::max(hi, ci);
  }
  EXPECT_GT(hi / lo, 1.1);  // meaningful temporal variation to exploit
}

TEST(EnergyMix, DeterministicForSameSeed) {
  const EnergyMixModel a(test_mix(), util::Rng(6), 24 * 10);
  const EnergyMixModel b(test_mix(), util::Rng(6), 24 * 10);
  for (int h = 0; h < 24 * 10; ++h)
    EXPECT_DOUBLE_EQ(a.carbon_intensity(h * 3600.0),
                     b.carbon_intensity(h * 3600.0));
}

TEST(EnergyMix, EwifDatasetsDiffer) {
  const EnergyMixModel model(test_mix(), util::Rng(7), 24 * 10);
  const double em = model.ewif(7200.0, WaterDataset::ElectricityMaps);
  const double wri = model.ewif(7200.0, WaterDataset::WorldResourcesInstitute);
  EXPECT_GT(em, 0.0);
  EXPECT_GT(wri, 0.0);
  EXPECT_NE(em, wri);
}

TEST(EnergyMix, RejectsBadConfig) {
  MixConfig zero;  // all-zero shares
  EXPECT_THROW(EnergyMixModel(zero, util::Rng(1), 24), std::invalid_argument);
  EXPECT_THROW(EnergyMixModel(test_mix(), util::Rng(1), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ww::env
