#include "milp/model.hpp"

#include <gtest/gtest.h>

namespace ww::milp {
namespace {

TEST(Model, AddVariableBasics) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0, 2.0);
  const int y = m.add_binary("y", -1.0);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.variable(x).objective, 2.0);
  EXPECT_EQ(m.variable(y).lower, 0.0);
  EXPECT_EQ(m.variable(y).upper, 1.0);
  EXPECT_EQ(m.variable(y).type, VarType::Binary);
}

TEST(Model, BinaryForcesBounds) {
  Model m;
  const int b = m.add_variable("b", -5.0, 5.0, VarType::Binary);
  EXPECT_EQ(m.variable(b).lower, 0.0);
  EXPECT_EQ(m.variable(b).upper, 1.0);
}

TEST(Model, RejectsInvertedBounds) {
  Model m;
  EXPECT_THROW(m.add_continuous("bad", 2.0, 1.0), std::invalid_argument);
}

TEST(Model, ObjectiveManipulation) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 1.0);
  m.set_objective_coefficient(x, 3.0);
  m.add_objective_coefficient(x, 1.5);
  EXPECT_DOUBLE_EQ(m.variable(x).objective, 4.5);
}

TEST(Model, ConstraintMergesDuplicateTerms) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 1.0);
  const int y = m.add_continuous("y", 0.0, 1.0);
  const int c =
      m.add_constraint("c", {{x, 1.0}, {x, 2.0}, {y, -1.0}, {y, 1.0}},
                       Sense::LessEqual, 4.0);
  const auto& row = m.constraint(c);
  ASSERT_EQ(row.terms.size(), 1u);  // y cancelled out, x merged
  EXPECT_EQ(row.terms[0].var, x);
  EXPECT_DOUBLE_EQ(row.terms[0].coeff, 3.0);
}

TEST(Model, ConstraintRejectsUnknownVariable) {
  Model m;
  (void)m.add_continuous("x", 0.0, 1.0);
  EXPECT_THROW(m.add_constraint("c", {{5, 1.0}}, Sense::Equal, 0.0),
               std::out_of_range);
}

TEST(Model, HasIntegerVariables) {
  Model lp;
  (void)lp.add_continuous("x", 0.0, 1.0);
  EXPECT_FALSE(lp.has_integer_variables());
  Model mip;
  (void)mip.add_binary("b");
  EXPECT_TRUE(mip.has_integer_variables());
}

TEST(Model, ObjectiveValue) {
  Model m;
  (void)m.add_continuous("x", 0.0, 10.0, 2.0);
  (void)m.add_continuous("y", 0.0, 10.0, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 4.0}), 2.0);
}

TEST(Model, MaxViolationFeasiblePoint) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0);
  (void)m.add_constraint("c", {{x, 1.0}}, Sense::LessEqual, 5.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({7.0}), 2.0);   // row violated
  EXPECT_DOUBLE_EQ(m.max_violation({-2.0}), 2.0);  // bound violated
}

TEST(Model, MaxViolationSenses) {
  Model m;
  const int x = m.add_continuous("x", -10.0, 10.0);
  (void)m.add_constraint("ge", {{x, 1.0}}, Sense::GreaterEqual, 2.0);
  (void)m.add_constraint("eq", {{x, 1.0}}, Sense::Equal, 3.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({1.0}), 2.0);  // eq off by 2, ge off by 1
}

TEST(Model, UnnamedEntitiesSynthesizeNames) {
  // The unnamed overloads store no string (the model-build fast path);
  // names come back synthesized on demand, while stored names round-trip.
  Model m;
  const int a = m.add_binary();
  const int b = m.add_continuous(0.0, 1.0);
  const int c = m.add_variable("named", 0.0, 2.0, VarType::Integer, 1.0);
  const int r0 = m.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::LessEqual, 1.5);
  const int r1 = m.add_constraint("row", {{c, 1.0}}, Sense::Equal, 1.0);
  EXPECT_TRUE(m.variable(a).name.empty());
  EXPECT_EQ(m.variable_name(a), "x0");
  EXPECT_EQ(m.variable_name(b), "x1");
  EXPECT_EQ(m.variable_name(c), "named");
  EXPECT_EQ(m.constraint_name(r0), "c0");
  EXPECT_EQ(m.constraint_name(r1), "row");
  // Unnamed entities behave identically to named ones in the solver path.
  EXPECT_EQ(m.num_variables(), 3);
  EXPECT_EQ(m.num_constraints(), 2);
}

TEST(Model, ReservePreservesContents) {
  Model m;
  m.reserve(100, 50);
  const int x = m.add_binary(2.0);
  (void)m.add_constraint({{x, 1.0}}, Sense::LessEqual, 1.0);
  EXPECT_EQ(m.num_variables(), 1);
  EXPECT_EQ(m.num_constraints(), 1);
  EXPECT_DOUBLE_EQ(m.variable(x).objective, 2.0);
}

}  // namespace
}  // namespace ww::milp
