// Campaign runner: parallel fan-out of independent Simulator runs must be
// deterministic — same seeds produce byte-identical aggregated results at
// any thread count — and aggregation must merge outcomes faithfully.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <stdexcept>

#include "core/waterwise.hpp"
#include "dc/campaign_runner.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"

namespace ww {
namespace {

/// A tiny but real campaign: Baseline + WaterWise + a capacity-scaled
/// Baseline over a short Borg trace, all built inside the scenario bodies
/// (shared-nothing).
dc::CampaignRunner small_campaign(std::size_t jobs) {
  dc::CampaignConfig cfg;
  cfg.jobs = jobs;
  cfg.seed = 42;
  dc::CampaignRunner runner(cfg);

  const auto run_policy = [](double capacity_scale, bool waterwise) {
    env::EnvironmentConfig env_cfg;
    env_cfg.horizon_days = 3;
    const env::Environment env = env::Environment::builtin(env_cfg);
    const footprint::FootprintModel fp(env);
    const auto trace_jobs =
        trace::generate_trace(trace::borg_config(42, 0.05));
    dc::SimConfig sim_cfg;
    sim_cfg.tol = 0.5;
    sim_cfg.capacity_scale = capacity_scale;
    dc::Simulator sim(env, fp, sim_cfg);
    if (waterwise) {
      core::WaterWiseScheduler ww;
      return sim.run(trace_jobs, ww);
    }
    sched::BaselineScheduler baseline;
    return sim.run(trace_jobs, baseline);
  };

  runner.add_baseline("", "Baseline", [=](dc::ScenarioContext&) {
    return run_policy(1.0, false);
  });
  runner.add("WaterWise", [=](dc::ScenarioContext&) {
    return run_policy(1.0, true);
  });
  runner.add("Baseline 2x capacity", [=](dc::ScenarioContext&) {
    return run_policy(2.0, false);
  });
  return runner;
}

std::string aggregate_text(const std::vector<dc::ScenarioOutcome>& outcomes) {
  std::ostringstream os;
  dc::CampaignRunner::aggregate(outcomes).print(os);
  return os.str();
}

/// Fields that must match bitwise between equivalent runs (wall_seconds is
/// explicitly excluded — it is the only nondeterministic outcome field).
void expect_identical(const std::vector<dc::ScenarioOutcome>& a,
                      const std::vector<dc::ScenarioOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("scenario " + a[i].label);
    EXPECT_EQ(a[i].group, b[i].group);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].baseline, b[i].baseline);
    const dc::CampaignResult& ra = a[i].result;
    const dc::CampaignResult& rb = b[i].result;
    EXPECT_EQ(ra.num_jobs, rb.num_jobs);
    EXPECT_EQ(ra.total_carbon_g, rb.total_carbon_g);
    EXPECT_EQ(ra.total_water_l, rb.total_water_l);
    EXPECT_EQ(ra.total_cost_usd, rb.total_cost_usd);
    EXPECT_EQ(ra.violations, rb.violations);
    EXPECT_EQ(ra.mean_service_norm(), rb.mean_service_norm());
  }
}

TEST(CampaignRunner, OutcomesFollowAddOrder) {
  auto runner = small_campaign(2);
  const auto outcomes = runner.run_all();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].label, "Baseline");
  EXPECT_TRUE(outcomes[0].baseline);
  EXPECT_EQ(outcomes[1].label, "WaterWise");
  EXPECT_EQ(outcomes[2].label, "Baseline 2x capacity");
  for (const auto& o : outcomes) EXPECT_GT(o.result.num_jobs, 0);
}

TEST(CampaignRunner, OneThreadVsManyThreadsEquivalent) {
  auto serial = small_campaign(1);
  auto parallel = small_campaign(8);
  const auto a = serial.run_all();
  const auto b = parallel.run_all();
  expect_identical(a, b);
  EXPECT_EQ(aggregate_text(a), aggregate_text(b));
}

TEST(CampaignRunner, RepeatedRunsAreDeterministic) {
  auto r1 = small_campaign(4);
  auto r2 = small_campaign(4);
  expect_identical(r1.run_all(), r2.run_all());
}

TEST(CampaignRunner, ScenarioRngIndependentOfThreadCount) {
  // The per-scenario stream depends only on (seed, index, label); record the
  // first draw per scenario and compare across thread counts.
  const auto build = [](std::size_t jobs) {
    dc::CampaignConfig cfg;
    cfg.jobs = jobs;
    cfg.seed = 123;
    dc::CampaignRunner runner(cfg);
    for (int i = 0; i < 6; ++i) {
      runner.add("s" + std::to_string(i), [](dc::ScenarioContext& ctx) {
        dc::CampaignResult r;
        r.num_jobs = 1;
        // Stash the draw in a deterministic result field for comparison.
        r.total_carbon_g = ctx.rng.uniform();
        r.total_water_l = static_cast<double>(ctx.index);
        return r;
      });
    }
    return runner;
  };
  auto serial = build(1).run_all();
  auto parallel = build(8).run_all();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.total_carbon_g,
              parallel[i].result.total_carbon_g);
    EXPECT_EQ(serial[i].result.total_water_l, static_cast<double>(i));
  }
  // Distinct scenarios get distinct streams.
  EXPECT_NE(serial[0].result.total_carbon_g, serial[1].result.total_carbon_g);
}

TEST(CampaignRunner, AggregateComputesSavingsVsGroupBaseline) {
  // Synthetic outcomes: two groups, each with its own baseline.
  const auto mk = [](std::string group, std::string label, bool baseline,
                     double carbon, double water) {
    dc::ScenarioOutcome o;
    o.group = std::move(group);
    o.label = std::move(label);
    o.baseline = baseline;
    o.result.num_jobs = 10;
    o.result.total_carbon_g = carbon;
    o.result.total_water_l = water;
    return o;
  };
  const std::vector<dc::ScenarioOutcome> outcomes = {
      mk("g1", "base", true, 1000.0, 2000.0),
      mk("g1", "opt", false, 800.0, 1500.0),
      mk("g2", "base", true, 500.0, 500.0),
      mk("g2", "opt", false, 250.0, 400.0),
  };
  std::ostringstream os;
  dc::CampaignRunner::aggregate(outcomes).print(os);
  const std::string text = os.str();
  // 800/1000 => 20% carbon saving; 1500/2000 => 25% water saving.
  EXPECT_NE(text.find("20.00"), std::string::npos) << text;
  EXPECT_NE(text.find("25.00"), std::string::npos) << text;
  // 250/500 => 50% saving in group g2.
  EXPECT_NE(text.find("50.00"), std::string::npos) << text;
  EXPECT_NE(text.find("(baseline)"), std::string::npos) << text;
}

TEST(CampaignRunner, MergedTotalsSumHeadlineMetrics) {
  const auto mk = [](double carbon, double water, long jobs) {
    dc::ScenarioOutcome o;
    o.result.num_jobs = jobs;
    o.result.total_carbon_g = carbon;
    o.result.total_water_l = water;
    o.result.violations = 1;
    return o;
  };
  const auto total = dc::CampaignRunner::merged_totals(
      {mk(100.0, 10.0, 5), mk(200.0, 30.0, 7)});
  EXPECT_DOUBLE_EQ(total.total_carbon_g, 300.0);
  EXPECT_DOUBLE_EQ(total.total_water_l, 40.0);
  EXPECT_EQ(total.num_jobs, 12);
  EXPECT_EQ(total.violations, 2);
}

TEST(CampaignRunner, ScenariosOverlapAcrossWorkers) {
  // Two scenarios that each wait for the other to start: completes only when
  // the pool really runs them concurrently (independent of core count).
  dc::CampaignConfig cfg;
  cfg.jobs = 2;
  dc::CampaignRunner runner(cfg);
  std::promise<void> a_started, b_started;
  auto a_future = a_started.get_future();
  auto b_future = b_started.get_future();
  const auto wait_status =
      std::chrono::seconds(10);  // det-ok: liveness timeout, not a measurement
  runner.add("a", [&](dc::ScenarioContext&) {
    a_started.set_value();
    EXPECT_EQ(b_future.wait_for(wait_status), std::future_status::ready);
    return dc::CampaignResult{};
  });
  runner.add("b", [&](dc::ScenarioContext&) {
    b_started.set_value();
    EXPECT_EQ(a_future.wait_for(wait_status), std::future_status::ready);
    return dc::CampaignResult{};
  });
  const auto outcomes = runner.run_all();
  EXPECT_EQ(outcomes.size(), 2u);
}

TEST(CampaignRunner, PropagatesScenarioExceptions) {
  dc::CampaignConfig cfg;
  cfg.jobs = 4;
  dc::CampaignRunner runner(cfg);
  runner.add("ok", [](dc::ScenarioContext&) { return dc::CampaignResult{}; });
  runner.add("boom", [](dc::ScenarioContext&) -> dc::CampaignResult {
    throw std::runtime_error("scenario failure");
  });
  EXPECT_THROW((void)runner.run_all(), std::runtime_error);
}

TEST(CampaignRunner, RejectsEmptyScenarioBody) {
  dc::CampaignRunner runner;
  EXPECT_THROW(runner.add({"", "empty", false, nullptr}),
               std::invalid_argument);
}

TEST(CampaignRunner, ParallelSweepMatchesDirectSimulatorRuns) {
  // The runner must not perturb results: compare against plain serial
  // Simulator invocations of the same scenarios.
  env::EnvironmentConfig env_cfg;
  env_cfg.horizon_days = 3;
  const env::Environment env = env::Environment::builtin(env_cfg);
  const footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(7, 0.04));

  const std::vector<double> tols = {0.25, 0.5, 1.0};
  std::vector<dc::CampaignResult> direct;
  for (const double tol : tols) {
    dc::SimConfig sim_cfg;
    sim_cfg.tol = tol;
    dc::Simulator sim(env, fp, sim_cfg);
    sched::BaselineScheduler baseline;
    direct.push_back(sim.run(jobs, baseline));
  }

  dc::CampaignConfig cfg;
  cfg.jobs = 3;
  dc::CampaignRunner runner(cfg);
  for (const double tol : tols) {
    runner.add("tol=" + std::to_string(tol), [&, tol](dc::ScenarioContext&) {
      dc::SimConfig sim_cfg;
      sim_cfg.tol = tol;
      dc::Simulator sim(env, fp, sim_cfg);
      sched::BaselineScheduler baseline;
      return sim.run(jobs, baseline);
    });
  }
  const auto outcomes = runner.run_all();
  ASSERT_EQ(outcomes.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(outcomes[i].result.total_carbon_g, direct[i].total_carbon_g);
    EXPECT_EQ(outcomes[i].result.total_water_l, direct[i].total_water_l);
    EXPECT_EQ(outcomes[i].result.num_jobs, direct[i].num_jobs);
  }
}

}  // namespace
}  // namespace ww
