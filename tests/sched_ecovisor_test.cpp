#include <gtest/gtest.h>

#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/ecovisor.hpp"
#include "trace/generator.hpp"

namespace ww::sched {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 5;
  return cfg;
}

TEST(Ecovisor, StaysInHomeRegion) {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(3, 0.1));
  dc::SimConfig cfg;
  cfg.record_jobs = true;
  dc::Simulator sim(env, fp, cfg);
  EcovisorScheduler eco;
  const auto res = sim.run(jobs, eco);
  ASSERT_EQ(res.num_jobs, static_cast<long>(jobs.size()));
  for (const auto& o : res.jobs) EXPECT_EQ(o.exec_region, o.home_region);
  EXPECT_DOUBLE_EQ(res.transfer_carbon_g, 0.0);  // never migrates
}

TEST(Ecovisor, PowerScaleStretchesExecution) {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(5, 0.1));
  dc::SimConfig cfg;
  cfg.record_jobs = true;
  dc::Simulator sim(env, fp, cfg);
  EcovisorScheduler eco;
  const auto res = sim.run(jobs, eco);
  // At least some jobs ran during dirtier-than-anchor hours and stretched.
  long stretched = 0;
  for (std::size_t i = 0; i < res.jobs.size(); ++i) {
    const auto& o = res.jobs[i];
    // JobOutcome.exec_seconds is the actual (possibly stretched) duration.
    for (const auto& j : jobs)
      if (j.id == o.job_id && o.exec_seconds > j.exec_seconds * 1.01)
        ++stretched;
  }
  EXPECT_GT(stretched, 0);
}

TEST(Ecovisor, ModestCarbonSavingButWaterBlind) {
  // Fig. 7: Ecovisor saves some carbon vs. Baseline but far less than a
  // migration-capable scheduler; its water story is incidental.
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(7, 0.15));
  dc::Simulator sim(env, fp, dc::SimConfig{});
  BaselineScheduler baseline;
  EcovisorScheduler eco;
  const auto base = sim.run(jobs, baseline);
  const auto res = sim.run(jobs, eco);
  // Same home placement, power scaling only: carbon within (-5%, +20%) of
  // baseline, i.e. never a dramatic saving.
  const double saving = res.carbon_saving_pct_vs(base);
  EXPECT_GT(saving, -5.0);
  EXPECT_LT(saving, 20.0);
}

TEST(Ecovisor, ScaleBoundsRespected) {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp(env);
  trace::Job j;
  j.id = 1;
  j.home_region = 4;  // Mumbai: large CI swings
  j.exec_seconds = 100.0;
  j.avg_power_watts = 300.0;
  j.package_bytes = 1e8;

  class OneSlot final : public dc::CapacityView {
   public:
    [[nodiscard]] int num_regions() const override { return 5; }
    [[nodiscard]] int capacity(int) const override { return 1; }
    [[nodiscard]] int free_at(int, double) const override { return 1; }
    [[nodiscard]] int max_occupancy(int, double, double) const override {
      return 0;
    }
  };
  const OneSlot cap;
  dc::ScheduleContext ctx;
  ctx.env = &env;
  ctx.footprint = &fp;
  ctx.capacity = &cap;
  ctx.tol = 0.25;

  EcovisorConfig cfg;
  cfg.min_power_scale = 0.6;
  EcovisorScheduler eco(cfg);
  const std::vector<dc::PendingJob> batch = {{&j, 0.0, 100.0, j.energy_kwh()}};
  // Scan a few days of decision instants: scale must stay in [0.6, 1].
  for (double t = 0.0; t < 3.0 * 86400.0; t += 3571.0) {
    ctx.now = t;
    const auto decisions = eco.schedule(batch, ctx);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_GE(decisions[0].power_scale, 0.6);
    EXPECT_LE(decisions[0].power_scale, 1.0);
  }
}

}  // namespace
}  // namespace ww::sched
