#include <gtest/gtest.h>

#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"

namespace ww::sched {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 5;
  return cfg;
}

struct Rig {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  std::vector<trace::Job> jobs = trace::generate_trace(trace::borg_config(3, 0.1));

  dc::CampaignResult run(dc::Scheduler& s, double tol = 0.5) {
    dc::SimConfig cfg;
    cfg.tol = tol;
    dc::Simulator sim(env, fp, cfg);
    return sim.run(jobs, s);
  }
};

TEST(GreedyOpt, Names) {
  GreedyOptScheduler carbon(GreedyMetric::Carbon);
  GreedyOptScheduler water(GreedyMetric::Water);
  EXPECT_EQ(carbon.name(), "Carbon-Greedy-Opt");
  EXPECT_EQ(water.name(), "Water-Greedy-Opt");
}

TEST(GreedyOpt, CarbonOracleBeatsBaselineOnCarbon) {
  Rig rig;
  BaselineScheduler baseline;
  GreedyOptScheduler carbon(GreedyMetric::Carbon);
  const auto base = rig.run(baseline);
  const auto opt = rig.run(carbon);
  EXPECT_EQ(opt.num_jobs, base.num_jobs);
  EXPECT_GT(opt.carbon_saving_pct_vs(base), 5.0);
}

TEST(GreedyOpt, WaterOracleBeatsBaselineOnWater) {
  Rig rig;
  BaselineScheduler baseline;
  GreedyOptScheduler water(GreedyMetric::Water);
  const auto base = rig.run(baseline);
  const auto opt = rig.run(water);
  EXPECT_GT(opt.water_saving_pct_vs(base), 5.0);
}

TEST(GreedyOpt, EachOracleWinsItsOwnMetric) {
  // Fig. 3a structure: Carbon-Greedy-Opt is the best carbon point,
  // Water-Greedy-Opt the best water point, and they are different policies.
  Rig rig;
  GreedyOptScheduler carbon(GreedyMetric::Carbon);
  GreedyOptScheduler water(GreedyMetric::Water);
  const auto c = rig.run(carbon);
  const auto w = rig.run(water);
  EXPECT_LT(c.total_carbon_g, w.total_carbon_g);
  EXPECT_LT(w.total_water_l, c.total_water_l);
}

TEST(GreedyOpt, HigherToleranceNeverHurtsMuch) {
  // Fig. 3a: savings improve (or at worst saturate) with delay tolerance.
  Rig rig;
  GreedyOptScheduler carbon1(GreedyMetric::Carbon);
  GreedyOptScheduler carbon2(GreedyMetric::Carbon);
  BaselineScheduler baseline;
  const auto base = rig.run(baseline, 0.1);
  const auto low = rig.run(carbon1, 0.1);
  const auto high = rig.run(carbon2, 2.0);
  EXPECT_GT(high.carbon_saving_pct_vs(base),
            low.carbon_saving_pct_vs(base) - 2.0);
}

TEST(GreedyOpt, DistributesAcrossRegions) {
  // Fig. 3b: no single region takes everything.
  Rig rig;
  GreedyOptScheduler carbon(GreedyMetric::Carbon);
  const auto res = rig.run(carbon);
  const auto shares = res.region_share_pct();
  for (const double s : shares) EXPECT_LT(s, 95.0);
  int populated = 0;
  for (const double s : shares)
    if (s > 1.0) ++populated;
  EXPECT_GE(populated, 2);
}

TEST(GreedyOpt, RespectsDelayToleranceMostly) {
  // Violations exist under pressure but stay rare (Table 2: <= ~2%).
  Rig rig;
  GreedyOptScheduler carbon(GreedyMetric::Carbon);
  const auto res = rig.run(carbon, 0.25);
  EXPECT_LT(res.violation_pct(), 5.0);
}

TEST(GreedyOpt, AllJobsEventuallyPlaced) {
  Rig rig;
  GreedyOptScheduler water(GreedyMetric::Water);
  const auto res = rig.run(water);
  EXPECT_EQ(res.num_jobs, static_cast<long>(rig.jobs.size()));
}

TEST(GreedyOpt, DeterministicAcrossRuns) {
  Rig rig;
  GreedyOptScheduler a(GreedyMetric::Carbon);
  GreedyOptScheduler b(GreedyMetric::Carbon);
  const auto r1 = rig.run(a);
  const auto r2 = rig.run(b);
  EXPECT_DOUBLE_EQ(r1.total_carbon_g, r2.total_carbon_g);
  EXPECT_EQ(r1.jobs_per_region, r2.jobs_per_region);
}

}  // namespace
}  // namespace ww::sched
