// Pricing-rule equivalence: Devex (candidate list) and Dantzig must land on
// identical optimal objectives across the instance corpus, under forced
// Bland fallback (Beale's cycling LP), and across forced refactorization
// cadences (deprecated eta_limit alias sweep) — the knobs must change
// speed, never answers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

/// Assignment/capacity/delay-shaped model (the WaterWise chunk shape).
Model scheduler_shaped(int jobs, int regions, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary(rng.uniform(0.1, 2.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(std::move(t), Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(
        std::move(t), Sense::LessEqual,
        std::ceil(jobs / static_cast<double>(regions)) + 1.0);
  }
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 1; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)],
                   rng.uniform(1.0, 20.0)});
    (void)m.add_constraint(std::move(t), Sense::LessEqual, 25.0);
  }
  return m;
}

Model beale_cycling() {
  Model m;
  const int x1 = m.add_continuous(0.0, kInfinity, -0.75);
  const int x2 = m.add_continuous(0.0, kInfinity, 150.0);
  const int x3 = m.add_continuous(0.0, kInfinity, -0.02);
  const int x4 = m.add_continuous(0.0, kInfinity, 6.0);
  (void)m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                         Sense::LessEqual, 0.0);
  (void)m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                         Sense::LessEqual, 0.0);
  (void)m.add_constraint({{x3, 1.0}}, Sense::LessEqual, 1.0);
  return m;
}

std::vector<Model> corpus() {
  std::vector<Model> out;
  out.push_back(scheduler_shaped(12, 4, 21));
  out.push_back(scheduler_shaped(30, 5, 22));
  out.push_back(weak_relaxation_model(10, 3, 4.0));
  out.push_back(weak_relaxation_model(16, 3, 6.0, /*seed=*/7));
  {
    // Degenerate transportation (all supplies/demands equal).
    util::Rng rng(99);
    const int k = 6;
    Model m;
    std::vector<std::vector<int>> v(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      for (int j = 0; j < k; ++j)
        v[static_cast<std::size_t>(i)].push_back(
            m.add_continuous(0.0, kInfinity, rng.uniform(1.0, 9.0)));
    for (int i = 0; i < k; ++i) {
      std::vector<Term> t;
      for (int j = 0; j < k; ++j)
        t.push_back(
            {v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
      (void)m.add_constraint(std::move(t), Sense::Equal, 2.0);
    }
    for (int j = 0; j < k; ++j) {
      std::vector<Term> t;
      for (int i = 0; i < k; ++i)
        t.push_back(
            {v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
      (void)m.add_constraint(std::move(t), Sense::Equal, 2.0);
    }
    out.push_back(std::move(m));
  }
  out.push_back(beale_cycling());
  return out;
}

TEST(Pricing, DevexAndDantzigAgreeAcrossCorpus) {
  const std::vector<Model> models = corpus();
  for (std::size_t idx = 0; idx < models.size(); ++idx) {
    const Model& m = models[idx];
    SolverOptions devex;
    devex.pricing = Pricing::Devex;
    SolverOptions dantzig;
    dantzig.pricing = Pricing::Dantzig;
    const Solution a = solve(m, devex);
    const Solution b = solve(m, dantzig);
    ASSERT_EQ(a.status, Status::Optimal) << "model " << idx;
    ASSERT_EQ(b.status, Status::Optimal) << "model " << idx;
    EXPECT_NEAR(a.objective, b.objective, 1e-7) << "model " << idx;
    EXPECT_LE(m.max_violation(a.values), 1e-6) << "model " << idx;
    EXPECT_LE(m.max_violation(b.values), 1e-6) << "model " << idx;
  }
}

TEST(Pricing, BealeTerminatesUnderForcedBlandWithEitherRule) {
  const Model m = beale_cycling();
  for (const Pricing rule : {Pricing::Devex, Pricing::Dantzig}) {
    SolverOptions opts;
    opts.pricing = rule;
    opts.bland_iterations = 1;  // Bland's rule from the very first pivot
    SimplexSolver s(m, opts);
    const Solution sol = s.solve();
    ASSERT_EQ(sol.status, Status::Optimal);
    EXPECT_NEAR(sol.objective, -0.05, 1e-9);
    EXPECT_LE(m.max_violation(sol.values), 1e-7);
  }
}

TEST(Pricing, EtaLimitSweepPreservesObjectives) {
  // The deprecated eta_limit alias maps onto the Forrest-Tomlin update
  // budget: 1 refactorizes after every pivot, 4 exercises short update
  // chains, 64 matches the default.  All must agree — the update cadence
  // is a pure representation change.
  const std::vector<Model> models = corpus();
  for (std::size_t idx = 0; idx < models.size(); ++idx) {
    const Model& m = models[idx];
    double ref = 0.0;
    bool have_ref = false;
    for (const int limit : {1, 4, 64}) {
      SolverOptions opts;
      opts.eta_limit = limit;
      const Solution sol = solve(m, opts);
      ASSERT_EQ(sol.status, Status::Optimal)
          << "model " << idx << " eta_limit " << limit;
      if (!have_ref) {
        ref = sol.objective;
        have_ref = true;
      } else {
        EXPECT_NEAR(sol.objective, ref, 1e-7)
            << "model " << idx << " eta_limit " << limit;
      }
    }
  }
}

TEST(Pricing, RefactorIntervalSweepPreservesObjectives) {
  const Model m = weak_relaxation_model(12, 3, 5.0);
  SolverOptions base;
  const Solution ref = solve(m, base);
  ASSERT_EQ(ref.status, Status::Optimal);
  for (const int interval : {1, 7, 1000}) {
    SolverOptions opts;
    opts.refactor_interval = interval;
    const Solution sol = solve(m, opts);
    ASSERT_EQ(sol.status, Status::Optimal) << "interval " << interval;
    EXPECT_NEAR(sol.objective, ref.objective, 1e-7) << "interval " << interval;
  }
}

TEST(Pricing, WarmStartAgreesUnderDevexAndDantzig) {
  // The dual-simplex replay path must also be pricing-agnostic.
  const Model m = weak_relaxation_model(10, 3, 4.0);
  for (const Pricing rule : {Pricing::Devex, Pricing::Dantzig}) {
    SolverOptions warm_opts;
    warm_opts.pricing = rule;
    SolverOptions cold_opts = warm_opts;
    cold_opts.warm_start = false;
    const Solution warm = solve(m, warm_opts);
    const Solution cold = solve(m, cold_opts);
    ASSERT_EQ(warm.status, Status::Optimal);
    ASSERT_EQ(cold.status, Status::Optimal);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
    ASSERT_GT(warm.nodes_explored, 1);
    const long non_root = warm.nodes_explored - 1;
    const auto bar =
        static_cast<long>(std::ceil(0.9 * static_cast<double>(non_root)));
    EXPECT_GE(warm.warm_started_nodes, bar);
  }
}

TEST(Seed, HeuristicIncumbentPrunesWithoutChangingAnswer) {
  const Model m = weak_relaxation_model(10, 3, 4.0);
  const Solution plain = solve(m);
  ASSERT_EQ(plain.status, Status::Optimal);

  // Seed with the solver's own optimum: the tree collapses (pruned from
  // node 0 by the absolute gap) and the answer is unchanged.
  const Solution seed = Solution::incumbent_from_heuristic(m, plain.values);
  const Solution seeded = solve(m, {}, &seed);
  ASSERT_EQ(seeded.status, Status::Optimal);
  EXPECT_NEAR(seeded.objective, plain.objective, 1e-9);
  EXPECT_LE(seeded.nodes_explored, plain.nodes_explored);

  // An infeasible "seed" (violates capacity) must be ignored, not adopted.
  std::vector<double> bogus(plain.values.size(), 1.0);
  const Solution bad_seed = Solution::incumbent_from_heuristic(m, bogus);
  const Solution unseeded = solve(m, {}, &bad_seed);
  ASSERT_EQ(unseeded.status, Status::Optimal);
  EXPECT_NEAR(unseeded.objective, plain.objective, 1e-9);
}

TEST(Seed, FractionalSeedIsIgnored) {
  // LP-relaxation values satisfy every row and bound (max_violation == 0)
  // but are fractional; adopting them as the incumbent would prune the
  // subtree holding the true integral optimum.  The seed path must reject
  // non-integral points.
  const Model m = weak_relaxation_model(10, 3, 4.0);
  SimplexSolver lp(m);
  const Solution relax = lp.solve();
  ASSERT_EQ(relax.status, Status::Optimal);
  const Solution plain = solve(m);
  ASSERT_EQ(plain.status, Status::Optimal);
  ASSERT_LT(relax.objective, plain.objective - 1e-6);  // gap exists
  const Solution seed = Solution::incumbent_from_heuristic(m, relax.values);
  const Solution seeded = solve(m, {}, &seed);
  ASSERT_EQ(seeded.status, Status::Optimal);
  EXPECT_NEAR(seeded.objective, plain.objective, 1e-7);
  for (int j = 0; j < m.num_variables(); ++j) {
    if (m.variable(j).type == VarType::Continuous) continue;
    const double v = seeded.values[static_cast<std::size_t>(j)];
    EXPECT_NEAR(v, std::round(v), 1e-6) << "var " << j;
  }
}

TEST(Seed, WeakSeedStillFindsTrueOptimum) {
  // A deliberately poor (but feasible) seed must not cost optimality: the
  // seed only prunes within the absolute gap, so strictly better tree
  // incumbents always replace it.
  const Model m = weak_relaxation_model(8, 3, 4.0);
  const Solution plain = solve(m);
  ASSERT_EQ(plain.status, Status::Optimal);
  // Round-robin placement respects the capacity rows; lifting every
  // penalty variable far above any exceedance satisfies the soft rows
  // while making the seed objective terrible.
  std::vector<double> vals(static_cast<std::size_t>(m.num_variables()), 0.0);
  for (int j = 0; j < 8; ++j)
    vals[static_cast<std::size_t>(j * 3 + j % 3)] = 1.0;
  for (int j = 0; j < m.num_variables(); ++j) {
    const Variable& v = m.variable(j);
    if (v.type == VarType::Continuous && v.upper == kInfinity)
      vals[static_cast<std::size_t>(j)] = 500.0;
  }
  ASSERT_LE(m.max_violation(vals), 1e-6);
  const Solution seed = Solution::incumbent_from_heuristic(m, vals);
  ASSERT_GT(seed.objective, plain.objective + 1.0);  // genuinely bad seed
  const Solution seeded = solve(m, {}, &seed);
  ASSERT_EQ(seeded.status, Status::Optimal);
  EXPECT_NEAR(seeded.objective, plain.objective, 1e-7);
}

}  // namespace
}  // namespace ww::milp
