// End-to-end campaigns across every scheduler on a shared trace: the
// cross-scheduler structure the paper's evaluation depends on.
#include <gtest/gtest.h>

#include <memory>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/ecovisor.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"

namespace ww {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 5;
  return cfg;
}

class CampaignTest : public ::testing::Test {
 protected:
  env::Environment env_ = env::Environment::builtin(small_env());
  footprint::FootprintModel fp_{env_};
  std::vector<trace::Job> jobs_ =
      trace::generate_trace(trace::borg_config(42, 0.12));

  dc::CampaignResult run(dc::Scheduler& s, double tol = 0.5) {
    dc::SimConfig cfg;
    cfg.tol = tol;
    dc::Simulator sim(env_, fp_, cfg);
    return sim.run(jobs_, s);
  }
};

TEST_F(CampaignTest, FullComparisonMatrix) {
  sched::BaselineScheduler baseline;
  sched::RoundRobinScheduler rr;
  sched::LeastLoadScheduler ll;
  sched::EcovisorScheduler eco;
  sched::GreedyOptScheduler carbon(sched::GreedyMetric::Carbon);
  sched::GreedyOptScheduler water(sched::GreedyMetric::Water);
  core::WaterWiseScheduler ww;

  const auto r_base = run(baseline);
  const auto r_rr = run(rr);
  const auto r_ll = run(ll);
  const auto r_eco = run(eco);
  const auto r_c = run(carbon);
  const auto r_w = run(water);
  const auto r_ww = run(ww);

  // Everyone finishes the whole trace.
  for (const auto* r : {&r_base, &r_rr, &r_ll, &r_eco, &r_c, &r_w, &r_ww})
    EXPECT_EQ(r->num_jobs, static_cast<long>(jobs_.size()));

  // Headline ordering (Figs. 5, 7, 10): WaterWise beats Baseline, Ecovisor,
  // and both load balancers on BOTH metrics.
  EXPECT_GT(r_ww.carbon_saving_pct_vs(r_base), 0.0);
  EXPECT_GT(r_ww.water_saving_pct_vs(r_base), 0.0);
  EXPECT_LT(r_ww.total_carbon_g, r_eco.total_carbon_g);
  EXPECT_LT(r_ww.total_water_l, r_eco.total_water_l);
  EXPECT_LT(r_ww.total_carbon_g, r_rr.total_carbon_g);
  EXPECT_LT(r_ww.total_water_l, r_rr.total_water_l);
  EXPECT_LT(r_ww.total_carbon_g, r_ll.total_carbon_g);
  EXPECT_LT(r_ww.total_water_l, r_ll.total_water_l);

  // Oracle sandwich (Fig. 5): each oracle is the extreme point on its own
  // metric among sustainability-aware schedulers.
  EXPECT_LE(r_c.total_carbon_g, r_ww.total_carbon_g * 1.02);
  EXPECT_LE(r_w.total_water_l, r_ww.total_water_l * 1.02);

  // Co-optimization (Fig. 3a): each oracle is suboptimal on the other metric
  // relative to WaterWise.
  EXPECT_LT(r_ww.total_water_l, r_c.total_water_l * 1.01);
  EXPECT_LT(r_ww.total_carbon_g, r_w.total_carbon_g * 1.01);
}

TEST_F(CampaignTest, ToleranceSweepImprovesWaterWise) {
  sched::BaselineScheduler baseline;
  const auto base = run(baseline, 0.25);
  double prev_carbon_saving = -100.0;
  for (const double tol : {0.25, 1.0}) {
    core::WaterWiseScheduler ww;
    const auto res = run(ww, tol);
    const double saving = res.carbon_saving_pct_vs(base);
    EXPECT_GT(saving, prev_carbon_saving - 3.0)
        << "tolerance " << tol << " regressed savings";
    prev_carbon_saving = saving;
  }
}

TEST_F(CampaignTest, RegionSubsetsStillWork) {
  // Fig. 12: drop regions and re-run; savings persist with fewer choices.
  for (const std::vector<int>& subset :
       {std::vector<int>{0, 2}, std::vector<int>{0, 3, 4}}) {
    env::Environment env = env::Environment::builtin_subset(subset, small_env());
    footprint::FootprintModel fp(env);
    auto cfg = trace::borg_config(7, 0.08);
    cfg.num_regions = static_cast<int>(subset.size());
    cfg.region_weights.clear();
    const auto jobs = trace::generate_trace(cfg);
    dc::SimConfig sim_cfg;
    sim_cfg.tol = 0.5;
    dc::Simulator sim(env, fp, sim_cfg);
    sched::BaselineScheduler baseline;
    core::WaterWiseScheduler ww;
    const auto base = sim.run(jobs, baseline);
    const auto res = sim.run(jobs, ww);
    EXPECT_EQ(res.num_jobs, static_cast<long>(jobs.size()));
    // With few regions the carbon/water tension can force a sacrifice on
    // one metric (e.g. Zurich<->Oregon trades carbon for water); the
    // invariant is that the *joint* weighted objective improves.
    const double joint = 0.5 * res.carbon_saving_pct_vs(base) +
                         0.5 * res.water_saving_pct_vs(base);
    EXPECT_GT(joint, 0.0);
  }
}

TEST_F(CampaignTest, WriDatasetCampaign) {
  // Fig. 6: the savings structure survives the water-dataset swap.
  env::EnvironmentConfig cfg = small_env();
  cfg.dataset = env::WaterDataset::WorldResourcesInstitute;
  env::Environment env = env::Environment::builtin(cfg);
  footprint::FootprintModel fp(env);
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  dc::Simulator sim(env, fp, sim_cfg);
  sched::BaselineScheduler baseline;
  core::WaterWiseScheduler ww;
  const auto base = sim.run(jobs_, baseline);
  const auto res = sim.run(jobs_, ww);
  EXPECT_GT(res.carbon_saving_pct_vs(base), 0.0);
  EXPECT_GT(res.water_saving_pct_vs(base), 0.0);
}

TEST_F(CampaignTest, AlibabaTraceCampaign) {
  // Fig. 9: WaterWise remains effective under the 8.5x-rate trace.
  const auto jobs = trace::generate_trace(trace::alibaba_config(11, 0.03));
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  dc::Simulator sim(env_, fp_, sim_cfg);
  sched::BaselineScheduler baseline;
  core::WaterWiseScheduler ww;
  const auto base = sim.run(jobs, baseline);
  const auto res = sim.run(jobs, ww);
  EXPECT_EQ(res.num_jobs, static_cast<long>(jobs.size()));
  EXPECT_GT(res.carbon_saving_pct_vs(base), 0.0);
}

}  // namespace
}  // namespace ww
