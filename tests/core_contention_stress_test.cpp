// Contention stress for the work-stealing pool and the chunk-parallel
// scheduler, written to give ThreadSanitizer real interleavings to chew
// on: worker counts oversubscribe the cores on purpose, tasks are tiny so
// the deque locks are hot, nested TaskGroups reproduce the scenario x
// chunk fan-out on one shared pool, and every result is still checked
// byte-identical against a serial run.  The TSan CI job runs this suite
// (default plus WW_SCHED_THREADS=2 and =4 reruns); under ASan/Release it
// doubles as a functional oversubscription test.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "core/waterwise.hpp"
#include "dc/campaign_runner.hpp"
#include "dc/simulator.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"
#include "util/work_steal.hpp"

namespace ww::core {
namespace {

std::size_t oversubscribed() {
  // 4x the cores, at least 8: enough that workers genuinely preempt each
  // other even on a 1-core CI runner.
  return std::max<std::size_t>(
      8, 4 * util::WorkStealingPool::resolve_threads(0));
}

TEST(WorkStealContention, TinyTasksUnderOversubscription) {
  // Many tasks, each a few nanoseconds of work: the deque lock and the
  // notify/park handoff are the program.  Disjoint slots catch lost or
  // duplicated tasks; the atomic total catches torn accumulation.
  util::WorkStealingPool pool(oversubscribed());
  constexpr std::size_t kTasks = 4000;
  std::vector<int> slot(kTasks, 0);
  std::atomic<long> total{0};
  pool.parallel_for(kTasks, [&](std::size_t i) {
    slot[i] += 1;  // disjoint per-index writes, no lock needed
    total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(slot[i], 1);
  EXPECT_EQ(total.load(),
            static_cast<long>(kTasks) * (static_cast<long>(kTasks) - 1) / 2);
}

TEST(WorkStealContention, NestedFanOutScenarioTimesChunkShape) {
  // The unified-pool replacement for the old nested-pool case: one pool,
  // an outer TaskGroup fanning "scenarios", each scenario task spawning
  // its "chunk" subtasks into the *same* pool through a nested TaskGroup
  // and helping while it waits.  With only 4 workers for 6 x 32 tasks,
  // every join must help or this deadlocks — stealing and helping are
  // exercised hard, and the per-slot commits stay index-ordered.
  util::WorkStealingPool pool(4);
  constexpr std::size_t kScenarios = 6;
  constexpr std::size_t kChunks = 32;
  std::vector<long> scenario_sum(kScenarios, 0);
  {
    util::TaskGroup outer(pool);
    for (std::size_t s = 0; s < kScenarios; ++s) {
      outer.spawn([&pool, &scenario_sum, s] {
        std::vector<long> chunk(kChunks, 0);
        {
          util::TaskGroup inner(pool);
          for (std::size_t c = 0; c < kChunks; ++c)
            inner.spawn([&chunk, s, c] {
              chunk[c] = static_cast<long>(s * 1000 + c);
            });
          inner.wait();
        }
        long sum = 0;
        for (const long v : chunk) sum += v;
        scenario_sum[s] = sum;  // disjoint per-scenario slot
      });
    }
    outer.wait();
  }
  for (std::size_t s = 0; s < kScenarios; ++s) {
    const long base = static_cast<long>(s) * 1000 * kChunks;
    const long tail = kChunks * (kChunks - 1) / 2;
    EXPECT_EQ(scenario_sum[s], base + tail) << "scenario " << s;
  }
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealContention, ReusedPoolAcrossManyWaves) {
  // The process keeps one global pool alive across batch windows; hammer
  // that pattern: many short parallel_for waves on one pool, with the
  // wave count high enough that workers go idle and get re-woken
  // constantly (the notify/wait edge is where lost-wakeup bugs live).
  util::WorkStealingPool pool(oversubscribed());
  std::atomic<long> hits{0};
  for (int wave = 0; wave < 200; ++wave) {
    pool.parallel_for(17, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(hits.load(), 200L * 17);
}

// --- Scheduler contention: many small windows, oversubscribed solvers. ----

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 3;
  return cfg;
}

std::vector<trace::Job> burst_trace(int count, double at, int home = 2) {
  std::vector<trace::Job> jobs;
  util::Rng rng(7);
  for (int i = 0; i < count; ++i) {
    trace::Job j;
    j.id = static_cast<std::uint64_t>(i);
    j.submit_time = at;
    j.home_region = home;
    trace::sample_instance(i % trace::num_benchmarks(), rng, j);
    jobs.push_back(j);
  }
  return jobs;
}

/// Fixed free-capacity view for driving schedule() without a simulator.
class FixedCapacity final : public dc::CapacityView {
 public:
  explicit FixedCapacity(std::vector<int> caps) : caps_(std::move(caps)) {}
  [[nodiscard]] int num_regions() const override {
    return static_cast<int>(caps_.size());
  }
  [[nodiscard]] int capacity(int region) const override {
    return caps_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] int free_at(int region, double) const override {
    return caps_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] int max_occupancy(int, double, double) const override {
    return 0;
  }

 private:
  std::vector<int> caps_;
};

TEST(SchedulerContention, ManySmallWindowsOversubscribedMatchesSerial) {
  // Many consecutive batch windows, each split into many tiny chunks
  // (max_jobs_per_solve = 3), solved with far more solver threads than
  // cores.  The scheduler is stateful across windows (history learner,
  // lifetime stats), so the whole window *sequence* must match the serial
  // scheduler's, not just each window in isolation.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(24, 0.0);
  std::vector<dc::PendingJob> batch;
  batch.reserve(jobs.size());
  for (const trace::Job& j : jobs) {
    dc::PendingJob p;
    p.job = &j;
    p.first_seen = 0.0;
    p.est_exec_s = j.exec_seconds > 0.0 ? j.exec_seconds : 100.0;
    p.est_energy_kwh = 1.0;
    batch.push_back(p);
  }
  const FixedCapacity view({9, 4, 14, 6, 2});

  const auto run_windows = [&](int threads) {
    WaterWiseConfig cfg;
    cfg.max_jobs_per_solve = 3;
    cfg.solver_threads = threads;
    WaterWiseScheduler ww(cfg);
    std::vector<dc::Decision> stream;
    for (int window = 0; window < 12; ++window) {
      dc::ScheduleContext ctx;
      ctx.now = 60.0 * window;
      ctx.tol = 0.5;
      ctx.env = &env;
      ctx.footprint = &fp;
      ctx.capacity = &view;
      const auto decisions = ww.schedule(batch, ctx);
      stream.insert(stream.end(), decisions.begin(), decisions.end());
    }
    EXPECT_GT(ww.stats().chunks_planned, 12L) << "threads=" << threads;
    return stream;
  };

  const auto serial = run_windows(1);
  const auto parallel =
      run_windows(static_cast<int>(oversubscribed()));
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].job_id, parallel[i].job_id) << "decision " << i;
    EXPECT_EQ(serial[i].region, parallel[i].region) << "decision " << i;
    EXPECT_EQ(serial[i].start_time, parallel[i].start_time)
        << "decision " << i;
    EXPECT_EQ(serial[i].power_scale, parallel[i].power_scale)
        << "decision " << i;
  }
}

TEST(SchedulerContention, CampaignOverOversubscribedSchedulersMatchesSerial) {
  // Scenario fan-out x chunk fan-out at once: a CampaignRunner drives
  // parallel scenarios, each running a Simulator whose WaterWise scheduler
  // itself fans chunks — all onto the one global work-stealing pool, with
  // the worker floor pushed far past the core count.  This is the K*C
  // shape that motivated the unified pool, and the reason the TSan job
  // exists: index-ordered commits are the only thing standing between
  // steal/completion order and the output stream.
  const auto jobs = burst_trace(30, 0.0);
  const auto run_campaign = [&](std::size_t campaign_jobs,
                                int solver_threads) {
    dc::CampaignConfig cfg;
    cfg.jobs = campaign_jobs;
    cfg.seed = 11;
    dc::CampaignRunner runner(cfg);
    for (int s = 0; s < 4; ++s) {
      const double tol = 0.25 * (s + 1);
      runner.add("tol" + std::to_string(s), [&, tol](dc::ScenarioContext&) {
        const env::Environment env = env::Environment::builtin(small_env());
        const footprint::FootprintModel fp(env);
        WaterWiseConfig wcfg;
        wcfg.max_jobs_per_solve = 4;
        wcfg.solver_threads = solver_threads;
        WaterWiseScheduler ww(wcfg);
        dc::SimConfig sim_cfg;
        sim_cfg.tol = tol;
        dc::Simulator sim(env, fp, sim_cfg);
        return sim.run(jobs, ww);
      });
    }
    return runner.run_all();
  };

  const auto serial = run_campaign(1, 1);
  const auto nested =
      run_campaign(4, static_cast<int>(oversubscribed()) / 2);
  ASSERT_EQ(serial.size(), nested.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const dc::CampaignResult& a = serial[i].result;
    const dc::CampaignResult& b = nested[i].result;
    EXPECT_EQ(a.num_jobs, b.num_jobs) << serial[i].label;
    EXPECT_EQ(a.total_carbon_g, b.total_carbon_g) << serial[i].label;
    EXPECT_EQ(a.total_water_l, b.total_water_l) << serial[i].label;
    EXPECT_EQ(a.violations, b.violations) << serial[i].label;
    EXPECT_EQ(a.jobs_per_region, b.jobs_per_region) << serial[i].label;
    EXPECT_EQ(a.makespan_seconds, b.makespan_seconds) << serial[i].label;
  }
}

}  // namespace
}  // namespace ww::core
