// Fault-injection subsystem coverage (env/faults.hpp): generated schedules
// are a pure function of the seed, window magnitudes stay inside the
// configured ranges, manual windows combine per the documented query rules
// (min capacity factor, product bias, sum shock), the solve-failure
// predicate is a pure deterministic hash with sane rate behaviour, and the
// Environment overlay applies forecast bias only to the Controller view
// while scarcity shocks hit both views.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "env/environment.hpp"
#include "env/faults.hpp"

namespace ww::env {
namespace {

FaultScheduleConfig stormy_config() {
  FaultScheduleConfig cfg;
  cfg.seed = 4242;
  cfg.horizon_seconds = 5.0 * 86400.0;
  cfg.num_regions = 4;
  cfg.outages_per_region_day = 2.0;
  cfg.flaps_per_region_day = 3.0;
  cfg.bias_windows_per_region_day = 2.0;
  cfg.shocks_per_region_day = 1.0;
  return cfg;
}

TEST(FaultSchedule, GenerationIsAPureFunctionOfTheSeed) {
  const FaultSchedule a(stormy_config());
  const FaultSchedule b(stormy_config());
  ASSERT_EQ(a.num_regions(), b.num_regions());
  ASSERT_GT(a.total_windows(), 0u);
  EXPECT_EQ(a.total_windows(), b.total_windows());
  for (int r = 0; r < a.num_regions(); ++r) {
    const auto& wa = a.windows(r);
    const auto& wb = b.windows(r);
    ASSERT_EQ(wa.size(), wb.size()) << "region " << r;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].start, wb[i].start);
      EXPECT_EQ(wa[i].end, wb[i].end);
      EXPECT_EQ(wa[i].capacity_factor, wb[i].capacity_factor);
      EXPECT_EQ(wa[i].carbon_bias, wb[i].carbon_bias);
      EXPECT_EQ(wa[i].water_bias, wb[i].water_bias);
      EXPECT_EQ(wa[i].wsf_shock, wb[i].wsf_shock);
    }
  }

  auto other = stormy_config();
  other.seed = 4243;
  const FaultSchedule c(other);
  bool any_difference = c.total_windows() != a.total_windows();
  for (int r = 0; !any_difference && r < a.num_regions(); ++r) {
    const auto& wa = a.windows(r);
    const auto& wc = c.windows(r);
    if (wa.size() != wc.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < wa.size(); ++i)
      if (wa[i].start != wc[i].start) {
        any_difference = true;
        break;
      }
  }
  EXPECT_TRUE(any_difference) << "different seeds drew identical storms";
}

TEST(FaultSchedule, GeneratedWindowsRespectConfiguredRanges) {
  const auto cfg = stormy_config();
  const FaultSchedule sched(cfg);
  std::size_t outages = 0, flaps = 0, biases = 0, shocks = 0;
  for (int r = 0; r < sched.num_regions(); ++r) {
    double prev_start = 0.0;
    for (const FaultWindow& w : sched.windows(r)) {
      EXPECT_GE(w.start, 0.0);
      EXPECT_LT(w.start, cfg.horizon_seconds);
      EXPECT_GT(w.end, w.start);
      EXPECT_GE(w.start, prev_start) << "windows not sorted by start";
      prev_start = w.start;
      if (w.capacity_factor == 0.0) {
        ++outages;
      } else if (w.capacity_factor < 1.0) {
        ++flaps;
        EXPECT_GE(w.capacity_factor, cfg.flap_capacity_min);
        EXPECT_LE(w.capacity_factor, cfg.flap_capacity_max);
      }
      if (w.carbon_bias != 1.0 || w.water_bias != 1.0) {
        ++biases;
        EXPECT_GE(w.carbon_bias, cfg.carbon_bias_min);
        EXPECT_LE(w.carbon_bias, cfg.carbon_bias_max);
        EXPECT_GE(w.water_bias, cfg.water_bias_min);
        EXPECT_LE(w.water_bias, cfg.water_bias_max);
      }
      if (w.wsf_shock != 0.0) {
        ++shocks;
        EXPECT_GE(w.wsf_shock, cfg.shock_wsf_min);
        EXPECT_LE(w.wsf_shock, cfg.shock_wsf_max);
      }
    }
  }
  // Five simulated days at the configured per-day rates must draw at least
  // one window of every kind across four regions.
  EXPECT_GT(outages, 0u);
  EXPECT_GT(flaps, 0u);
  EXPECT_GT(biases, 0u);
  EXPECT_GT(shocks, 0u);
  EXPECT_EQ(outages + flaps + biases + shocks, sched.total_windows());
}

TEST(FaultSchedule, ManualWindowsCombinePerQueryRules) {
  FaultSchedule sched(3);
  sched.add_outage(0, 100.0, 200.0);
  sched.add_capacity_flap(0, 150.0, 400.0, 0.5);
  sched.add_forecast_bias(1, 0.0, 1000.0, 2.0, 1.5);
  sched.add_forecast_bias(1, 500.0, 1000.0, 3.0, 2.0);
  sched.add_water_shock(2, 0.0, 300.0, 1.0);
  sched.add_water_shock(2, 200.0, 300.0, 0.5);

  // Capacity: min over active windows — the outage dominates the overlapping
  // flap, the flap alone applies after the outage ends, 1 when idle.
  EXPECT_EQ(sched.capacity_factor(0, 50.0), 1.0);
  EXPECT_EQ(sched.capacity_factor(0, 160.0), 0.0);
  EXPECT_EQ(sched.capacity_factor(0, 250.0), 0.5);
  EXPECT_EQ(sched.capacity_factor(0, 500.0), 1.0);
  EXPECT_EQ(sched.min_capacity_factor(0, 0.0, 90.0), 1.0);
  EXPECT_EQ(sched.min_capacity_factor(0, 120.0, 180.0), 0.0);
  EXPECT_EQ(sched.min_capacity_factor(0, 250.0, 600.0), 0.5);

  // Bias: product over active windows.
  EXPECT_DOUBLE_EQ(sched.carbon_bias(1, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(sched.carbon_bias(1, 700.0), 6.0);
  EXPECT_DOUBLE_EQ(sched.water_bias(1, 700.0), 3.0);
  EXPECT_DOUBLE_EQ(sched.carbon_bias(1, 1500.0), 1.0);
  // Bias never leaks onto other regions or axes.
  EXPECT_DOUBLE_EQ(sched.carbon_bias(0, 160.0), 1.0);
  EXPECT_EQ(sched.capacity_factor(1, 700.0), 1.0);

  // Shock: sum over active windows.
  EXPECT_DOUBLE_EQ(sched.wsf_shock(2, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(sched.wsf_shock(2, 250.0), 1.5);
  EXPECT_DOUBLE_EQ(sched.wsf_shock(2, 400.0), 0.0);
  EXPECT_DOUBLE_EQ(sched.wsf_shock(0, 100.0), 0.0);
}

TEST(InjectedSolveFailure, DeterministicWithRateEdges) {
  // Pure hash: identical arguments always agree, at any call order.
  for (int chunk = 0; chunk < 8; ++chunk)
    for (int attempt = 0; attempt < 3; ++attempt) {
      const bool first =
          injected_solve_failure(901, 1234.5, chunk, attempt, 0.4);
      const bool second =
          injected_solve_failure(901, 1234.5, chunk, attempt, 0.4);
      EXPECT_EQ(first, second);
    }
  // Rate edges: 0 (and below) never fails, 1 (and above) always fails.
  EXPECT_FALSE(injected_solve_failure(901, 60.0, 0, 0, 0.0));
  EXPECT_FALSE(injected_solve_failure(901, 60.0, 0, 0, -1.0));
  EXPECT_TRUE(injected_solve_failure(901, 60.0, 0, 0, 1.0));
  EXPECT_TRUE(injected_solve_failure(901, 60.0, 0, 0, 2.0));
}

TEST(InjectedSolveFailure, FailureFrequencyTracksTheRate) {
  int failures = 0;
  const int samples = 1000;
  for (int i = 0; i < samples; ++i)
    if (injected_solve_failure(777, 60.0 * i, i % 13, 0, 0.3)) ++failures;
  // Loose band around 300/1000: the hash must behave like a fair 30% draw.
  EXPECT_GT(failures, 200);
  EXPECT_LT(failures, 400);

  // Distinct attempts of the same chunk must not be perfectly correlated,
  // or the retry ladder's second try would be pointless under injection.
  int divergent = 0;
  for (int i = 0; i < samples; ++i) {
    const bool a0 = injected_solve_failure(777, 60.0 * i, 0, 0, 0.5);
    const bool a1 = injected_solve_failure(777, 60.0 * i, 0, 1, 0.5);
    if (a0 != a1) ++divergent;
  }
  EXPECT_GT(divergent, 200);
}

TEST(EnvironmentFaults, BiasIsControllerOnlyAndShocksHitBothViews) {
  FaultSchedule sched(5);
  sched.add_forecast_bias(0, 0.0, 3600.0, 2.0, 1.5);
  sched.add_water_shock(1, 0.0, 3600.0, 1.25);
  sched.add_outage(2, 0.0, 3600.0);

  const Environment clean = Environment::builtin({});
  Environment world = Environment::builtin({});
  world.attach_faults(&sched, FaultView::World);
  Environment controller = Environment::builtin({});
  controller.attach_faults(&sched, FaultView::Controller);

  const double t = 1800.0;
  // Forecast bias perturbs only the controller's observed intensities.
  EXPECT_DOUBLE_EQ(world.carbon_intensity(0, t), clean.carbon_intensity(0, t));
  EXPECT_DOUBLE_EQ(controller.carbon_intensity(0, t),
                   2.0 * clean.carbon_intensity(0, t));
  EXPECT_DOUBLE_EQ(world.ewif(0, t), clean.ewif(0, t));
  EXPECT_DOUBLE_EQ(controller.ewif(0, t), 1.5 * clean.ewif(0, t));
  EXPECT_DOUBLE_EQ(controller.wue(0, t), 1.5 * clean.wue(0, t));
  // Unbiased regions read through untouched in both views.
  EXPECT_DOUBLE_EQ(controller.carbon_intensity(1, t),
                   clean.carbon_intensity(1, t));

  // A scarcity shock is real: both views see the raised WSF.
  EXPECT_DOUBLE_EQ(world.wsf(1, t), clean.wsf(1) + 1.25);
  EXPECT_DOUBLE_EQ(controller.wsf(1, t), clean.wsf(1) + 1.25);
  EXPECT_DOUBLE_EQ(world.wsf(1, 7200.0), clean.wsf(1));
  // An outage window carries no intensity effect in either view.
  EXPECT_DOUBLE_EQ(world.carbon_intensity(2, t), clean.carbon_intensity(2, t));
  EXPECT_DOUBLE_EQ(controller.carbon_intensity(2, t),
                   clean.carbon_intensity(2, t));
}

}  // namespace
}  // namespace ww::env
