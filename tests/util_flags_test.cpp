#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace ww::util {
namespace {

Flags make_flags() {
  Flags f;
  f.define("name", "a string flag", "default")
      .define("count", "a numeric flag", "3")
      .define("rate", "a double flag", "0.5")
      .define_bool("verbose", "a switch");
  return f;
}

void parse(Flags& f, std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  f.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, DefaultsApply) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_EQ(f.get("name"), "default");
  EXPECT_EQ(f.get_long("count", -1), 3);
  EXPECT_DOUBLE_EQ(f.get_double("rate", -1.0), 0.5);
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(Flags, SpaceSeparatedValues) {
  Flags f = make_flags();
  parse(f, {"--name", "waterwise", "--count", "42"});
  EXPECT_EQ(f.get("name"), "waterwise");
  EXPECT_EQ(f.get_long("count", -1), 42);
  EXPECT_TRUE(f.has("name"));
  EXPECT_FALSE(f.has("rate"));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make_flags();
  parse(f, {"--rate=0.75", "--verbose"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.75);
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, BoolWithExplicitValue) {
  Flags f = make_flags();
  parse(f, {"--verbose=false"});
  EXPECT_FALSE(f.get_bool("verbose"));
  Flags g = make_flags();
  parse(g, {"--verbose=yes"});
  EXPECT_TRUE(g.get_bool("verbose"));
}

TEST(Flags, PositionalArguments) {
  Flags f = make_flags();
  parse(f, {"input.csv", "--name", "x", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, UnknownFlagThrows) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--bogus", "1"}), std::invalid_argument);
}

TEST(Flags, MissingValueThrows) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--name"}), std::invalid_argument);
}

TEST(Flags, UndefinedGetThrows) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_THROW((void)f.get("nonexistent"), std::out_of_range);
  EXPECT_EQ(f.get_or("nonexistent", "fb"), "fb");
}

TEST(Flags, HelpListsAllFlags) {
  const Flags f = make_flags();
  const std::string h = f.help();
  EXPECT_NE(h.find("--name"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("a numeric flag"), std::string::npos);
}

}  // namespace
}  // namespace ww::util
