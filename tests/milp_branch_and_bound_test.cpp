#include "milp/branch_and_bound.hpp"

#include <gtest/gtest.h>

namespace ww::milp {
namespace {

TEST(BranchAndBound, KnapsackForcesBranching) {
  // max 8a + 11b + 6c, weights 5,7,4, capacity 9.  LP relaxation is
  // fractional (a = 1, b = 4/7, value ~14.29); integer optimum is
  // {a, c} with value 14.
  Model m;
  const int a = m.add_binary("a", -8.0);
  const int b = m.add_binary("b", -11.0);
  const int c = m.add_binary("c", -6.0);
  (void)m.add_constraint("w", {{a, 5.0}, {b, 7.0}, {c, 4.0}},
                         Sense::LessEqual, 9.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -14.0, 1e-8);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(a)], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(b)], 0.0, 1e-6);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(c)], 1.0, 1e-6);
  EXPECT_GE(sol.nodes_explored, 2);  // relaxation is fractional here
}

TEST(BranchAndBound, PureLpPassthrough) {
  Model m;
  (void)m.add_continuous("x", 0.0, 4.0, -1.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
}

TEST(BranchAndBound, GeneralIntegerVariable) {
  // min -x, x integer in [0, 10], 2x <= 9  =>  x = 4 (LP gives 4.5).
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, VarType::Integer, -1.0);
  (void)m.add_constraint("c", {{x, 2.0}}, Sense::LessEqual, 9.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x binary: LP feasible, no integer point.
  Model m;
  const int x = m.add_binary("x", 1.0);
  (void)m.add_constraint("lo", {{x, 1.0}}, Sense::GreaterEqual, 0.4);
  (void)m.add_constraint("hi", {{x, 1.0}}, Sense::LessEqual, 0.6);
  const Solution sol = solve(m);
  EXPECT_EQ(sol.status, Status::Infeasible);
  EXPECT_FALSE(sol.has_incumbent);
}

TEST(BranchAndBound, AssignmentProblemOptimal) {
  // 3x3 assignment, cost matrix with known optimum 1+2+3 = 6 on diagonal
  // after permutation.
  const double cost[3][3] = {{1, 9, 9}, {9, 2, 9}, {9, 9, 3}};
  Model m;
  int v[3][3];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) v[i][j] = m.add_binary("x", cost[i][j]);
  for (int i = 0; i < 3; ++i)
    (void)m.add_constraint("row",
                           {{v[i][0], 1.0}, {v[i][1], 1.0}, {v[i][2], 1.0}},
                           Sense::Equal, 1.0);
  for (int j = 0; j < 3; ++j)
    (void)m.add_constraint("col",
                           {{v[0][j], 1.0}, {v[1][j], 1.0}, {v[2][j], 1.0}},
                           Sense::Equal, 1.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, 6.0, 1e-7);
}

TEST(BranchAndBound, CapacitatedAssignmentLikeWaterWise) {
  // 4 jobs, 2 regions, region capacity 2 each; region 0 cheaper for all:
  // optimum places 2 jobs in each region picking the cheapest split.
  Model m;
  const double cost[4][2] = {{1, 2}, {1, 3}, {1, 1.5}, {1, 5}};
  int x[4][2];
  for (int j = 0; j < 4; ++j)
    for (int r = 0; r < 2; ++r) x[j][r] = m.add_binary("x", cost[j][r]);
  for (int j = 0; j < 4; ++j)
    (void)m.add_constraint("assign", {{x[j][0], 1.0}, {x[j][1], 1.0}},
                           Sense::Equal, 1.0);
  for (int r = 0; r < 2; ++r)
    (void)m.add_constraint(
        "cap", {{x[0][r], 1.0}, {x[1][r], 1.0}, {x[2][r], 1.0}, {x[3][r], 1.0}},
        Sense::LessEqual, 2.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  // Cheapest: jobs with the largest regret (1 vs 5, 1 vs 3) go to region 0;
  // jobs (1 vs 2), (1 vs 1.5) to region 1 => 1 + 1 + 2 + 1.5 = 5.5.
  EXPECT_NEAR(sol.objective, 5.5, 1e-7);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // min -y - 0.5 x with y binary, x continuous <= 3.7, x <= 10 y
  // => y = 1, x = 3.7, obj -2.85.
  Model m;
  const int y = m.add_binary("y", -1.0);
  const int x = m.add_continuous("x", 0.0, 3.7, -0.5);
  (void)m.add_constraint("link", {{x, 1.0}, {y, -10.0}}, Sense::LessEqual, 0.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -2.85, 1e-8);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 3.7, 1e-7);
}

TEST(BranchAndBound, NodeLimitReturnsIncumbentWhenFound) {
  // A loose knapsack where diving finds an incumbent immediately.
  Model m;
  std::vector<int> vars;
  std::vector<Term> row;
  for (int i = 0; i < 12; ++i) {
    const int v = m.add_binary("v", -(1.0 + 0.1 * i));
    vars.push_back(v);
    row.push_back({v, 1.0 + 0.07 * (i % 5)});
  }
  (void)m.add_constraint("w", row, Sense::LessEqual, 6.0);
  SolverOptions opts;
  opts.max_nodes = 3;  // force an early stop
  const Solution sol = solve(m, opts);
  if (sol.status == Status::NodeLimit) {
    EXPECT_LE(sol.best_bound, sol.objective + 1e-9);
  } else {
    EXPECT_EQ(sol.status, Status::Optimal);
  }
}

TEST(BranchAndBound, LargerKnapsackMatchesDp) {
  // 0/1 knapsack solved independently with dynamic programming.
  const std::vector<double> value = {12, 7, 9, 15, 5, 11, 3, 8, 14, 6};
  const std::vector<int> weight = {4, 2, 3, 5, 1, 4, 1, 3, 5, 2};
  const int cap = 12;
  // DP over integer weights.
  std::vector<double> dp(static_cast<std::size_t>(cap) + 1, 0.0);
  for (std::size_t i = 0; i < value.size(); ++i)
    for (int w = cap; w >= weight[i]; --w)
      dp[static_cast<std::size_t>(w)] =
          std::max(dp[static_cast<std::size_t>(w)],
                   dp[static_cast<std::size_t>(w - weight[i])] + value[i]);
  const double best = dp[static_cast<std::size_t>(cap)];

  Model m;
  std::vector<Term> row;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const int v = m.add_binary("v", -value[i]);
    row.push_back({v, static_cast<double>(weight[i])});
  }
  (void)m.add_constraint("w", row, Sense::LessEqual, static_cast<double>(cap));
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(-sol.objective, best, 1e-7);
}

TEST(StatusToString, AllCovered) {
  EXPECT_EQ(to_string(Status::Optimal), "optimal");
  EXPECT_EQ(to_string(Status::Infeasible), "infeasible");
  EXPECT_EQ(to_string(Status::Unbounded), "unbounded");
  EXPECT_EQ(to_string(Status::IterationLimit), "iteration-limit");
  EXPECT_EQ(to_string(Status::NodeLimit), "node-limit");
}

}  // namespace
}  // namespace ww::milp
