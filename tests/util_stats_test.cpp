#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace ww::util {
namespace {

TEST(RunningStats, Empty) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, Median) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, Rejects) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> yn = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, yn), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(x, c), 0.0);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, NonFiniteSamplesGoToDropBucket) {
  // Regression: (NaN - lo) / span * bins cast to an integer is undefined
  // behaviour, as is the cast of any scaled value outside the integer
  // range (e.g. 1e300).  The sanitize CI job builds with
  // -fsanitize=float-cast-overflow, so this test aborts there if either
  // guard regresses.
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.dropped(), 3u);
  std::size_t binned = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.bin_count(i);
  EXPECT_EQ(binned, 1u);  // non-finite samples never reach a bin

  // Huge but finite samples are still mass-conserving edge-bin clamps.
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.dropped(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, QuantileSingleBinMidpoint) {
  // All mass in one bin: every quantile interpolates inside that bin by
  // the midpoint convention ((k - 0.5) / c of the bin width).
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 3.5);  // 1 sample: bin midpoint
  h.add(3.5);
  h.add(3.5);
  h.add(3.5);
  // 4 samples in bin [3, 4): ranks 2 and 4 sit at 1.5/4 and 3.5/4.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 3.0 + 1.5 / 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 3.0 + 3.5 / 4.0);
}

TEST(Histogram, QuantileAcrossBins) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);  // one sample per bin
  // Rank r lands in bin r-1, whose single sample sits at its midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 49.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 94.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 98.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);  // rank clamps to 1
}

TEST(Histogram, QuantileEmptyAndRejects) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty: defined as 0
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, QuantileIgnoresDropped) {
  // Non-finite samples sit in the drop bucket, not the rank order.
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(7.5);
  EXPECT_EQ(h.dropped(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.5);
}

TEST(Histogram, MergeMatchesSequential) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  Histogram all(0.0, 10.0, 10);
  for (int i = 0; i < 40; ++i) {
    const double x = (i * 7) % 11;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  b.add(std::numeric_limits<double>::quiet_NaN());
  all.add(std::numeric_limits<double>::quiet_NaN());
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.dropped(), all.dropped());
  for (std::size_t i = 0; i < all.bins(); ++i)
    EXPECT_EQ(a.bin_count(i), all.bin_count(i));
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(0.0, 10.0, 10);
  Histogram bins(0.0, 10.0, 20);
  Histogram range(0.0, 20.0, 10);
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

}  // namespace
}  // namespace ww::util
