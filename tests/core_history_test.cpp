#include <gtest/gtest.h>

#include "core/history.hpp"

namespace ww::core {
namespace {

TEST(HistoryLearner, ZeroBeforeObservations) {
  const HistoryLearner h(3, 10);
  EXPECT_DOUBLE_EQ(h.carbon_ref(0), 0.0);
  EXPECT_DOUBLE_EQ(h.water_ref(2), 0.0);
  EXPECT_EQ(h.observations(), 0);
}

TEST(HistoryLearner, NormalizesByBatchMax) {
  HistoryLearner h(3, 10);
  h.observe({100.0, 50.0, 25.0}, {2.0, 4.0, 1.0});
  EXPECT_DOUBLE_EQ(h.carbon_ref(0), 1.0);
  EXPECT_DOUBLE_EQ(h.carbon_ref(1), 0.5);
  EXPECT_DOUBLE_EQ(h.carbon_ref(2), 0.25);
  EXPECT_DOUBLE_EQ(h.water_ref(1), 1.0);
  EXPECT_DOUBLE_EQ(h.water_ref(0), 0.5);
}

TEST(HistoryLearner, WindowMean) {
  HistoryLearner h(2, 10);
  h.observe({1.0, 0.0}, {1.0, 1.0});
  h.observe({0.0, 1.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(h.carbon_ref(0), 0.5);
  EXPECT_DOUBLE_EQ(h.carbon_ref(1), 0.5);
}

TEST(HistoryLearner, WindowEvictsOldest) {
  HistoryLearner h(1, 3);
  h.observe({1.0}, {1.0});
  h.observe({1.0}, {1.0});
  h.observe({1.0}, {1.0});
  EXPECT_EQ(h.observations(), 3);
  // A fourth observation evicts the first; window stays at 3.
  h.observe({1.0}, {1.0});
  EXPECT_EQ(h.observations(), 3);
}

TEST(HistoryLearner, SlidingWindowTracksRegimeChange) {
  HistoryLearner h(2, 4);
  for (int i = 0; i < 4; ++i) h.observe({1.0, 0.2}, {1.0, 1.0});
  EXPECT_GT(h.carbon_ref(0), h.carbon_ref(1));
  // Regime flips; after a full window the ordering follows.
  for (int i = 0; i < 4; ++i) h.observe({0.2, 1.0}, {1.0, 1.0});
  EXPECT_LT(h.carbon_ref(0), h.carbon_ref(1));
}

TEST(HistoryLearner, AllZeroObservationIsSafe) {
  HistoryLearner h(2, 4);
  h.observe({0.0, 0.0}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(h.carbon_ref(0), 0.0);
  EXPECT_DOUBLE_EQ(h.water_ref(1), 0.0);
}

TEST(HistoryLearner, Validation) {
  EXPECT_THROW(HistoryLearner(0, 5), std::invalid_argument);
  EXPECT_THROW(HistoryLearner(3, 0), std::invalid_argument);
  HistoryLearner h(2, 4);
  EXPECT_THROW(h.observe({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ww::core
