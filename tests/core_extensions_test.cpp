// Sec. 7 extension objectives: cost and performance weights.
#include <gtest/gtest.h>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"

namespace ww::core {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 5;
  return cfg;
}

struct Rig {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  std::vector<trace::Job> jobs =
      trace::generate_trace(trace::borg_config(13, 0.1));

  dc::CampaignResult run(dc::Scheduler& s) {
    dc::SimConfig cfg;
    cfg.tol = 0.5;
    dc::Simulator sim(env, fp, cfg);
    return sim.run(jobs, s);
  }
};

TEST(Extensions, ElectricityPriceModel) {
  const env::Environment env = env::Environment::builtin(small_env());
  for (int r = 0; r < env.num_regions(); ++r) {
    double lo = 1e18;
    double hi = 0.0;
    for (int h = 0; h < 48; ++h) {
      const double p = env.electricity_price(r, h * 3600.0);
      EXPECT_GT(p, 0.0);
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    // Time-of-use swing ~ +-25% around the base tariff.
    EXPECT_NEAR(hi / lo, 1.25 / 0.75, 0.05);
    EXPECT_NEAR(0.5 * (hi + lo), env.region(r).price_usd_per_kwh, 0.01);
  }
}

TEST(Extensions, LedgerTracksCost) {
  Rig rig;
  sched::BaselineScheduler baseline;
  const auto res = rig.run(baseline);
  EXPECT_GT(res.total_cost_usd, 0.0);
  // Sanity scale: jobs * mean energy * PUE * ~0.1 USD/kWh.
  const double per_job = res.total_cost_usd / static_cast<double>(res.num_jobs);
  EXPECT_GT(per_job, 1e-4);
  EXPECT_LT(per_job, 0.1);
}

TEST(Extensions, CostWeightReducesCost) {
  Rig rig;
  WaterWiseConfig plain;
  WaterWiseConfig costy;
  costy.lambda_cost = 2.0;
  WaterWiseScheduler ww_plain(plain);
  WaterWiseScheduler ww_cost(costy);
  const auto r_plain = rig.run(ww_plain);
  const auto r_cost = rig.run(ww_cost);
  EXPECT_LT(r_cost.total_cost_usd, r_plain.total_cost_usd * 1.001);
}

TEST(Extensions, PerfWeightReducesServiceTime) {
  Rig rig;
  WaterWiseConfig plain;
  WaterWiseConfig perfy;
  perfy.lambda_perf = 2.0;
  WaterWiseScheduler ww_plain(plain);
  WaterWiseScheduler ww_perf(perfy);
  const auto r_plain = rig.run(ww_plain);
  const auto r_perf = rig.run(ww_perf);
  EXPECT_LE(r_perf.mean_service_norm(), r_plain.mean_service_norm() + 1e-9);
}

TEST(Extensions, DefaultsPreservePaperObjective) {
  // lambda_cost = lambda_perf = 0 must reproduce the unextended scheduler
  // bit-for-bit.
  Rig rig;
  WaterWiseConfig a;
  WaterWiseConfig b;
  b.lambda_cost = 0.0;
  b.lambda_perf = 0.0;
  WaterWiseScheduler ww_a(a);
  WaterWiseScheduler ww_b(b);
  const auto r_a = rig.run(ww_a);
  const auto r_b = rig.run(ww_b);
  EXPECT_DOUBLE_EQ(r_a.total_carbon_g, r_b.total_carbon_g);
  EXPECT_EQ(r_a.jobs_per_region, r_b.jobs_per_region);
}

TEST(Extensions, CostSavingMetric) {
  dc::CampaignResult base;
  base.total_cost_usd = 100.0;
  dc::CampaignResult cheap;
  cheap.total_cost_usd = 80.0;
  EXPECT_NEAR(cheap.cost_saving_pct_vs(base), 20.0, 1e-12);
}

}  // namespace
}  // namespace ww::core
