#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <latch>
#include <string>

#include "util/work_steal.hpp"

namespace ww::obs {
namespace {

/// The Trace singleton is process-global; every test restores the
/// disabled/empty state so ordering cannot leak between tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::instance().set_enabled(false);
    Trace::instance().clear();
  }
  void TearDown() override {
    Trace::instance().set_enabled(false);
    Trace::instance().clear();
    unsetenv("WW_TRACE");
  }
};

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST_F(TraceTest, DisabledSpanBuffersNothing) {
  const std::size_t before = Trace::instance().event_count();
  {
    Span span("test.disabled");
    span.arg("k", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Trace::instance().event_count(), before);
}

TEST_F(TraceTest, SpansEmitMatchedPairsInNestingOrder) {
  Trace::instance().set_enabled(true);
  {
    Span outer("test.outer");
    outer.arg("jobs", 3);
    {
      Span inner("test.inner");
      inner.arg("x", 1.5);
    }
  }
  Trace::instance().set_enabled(false);
  EXPECT_EQ(Trace::instance().event_count(), 4u);
  const std::string json = Trace::instance().to_chrome_json();
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\": \"E\""), 2u);
  // B at construction, E at destruction: outer-B, inner-B, inner-E,
  // outer-E — the order Chrome's viewer needs for duration nesting.
  const std::size_t outer_b = json.find("test.outer");
  const std::size_t inner_b = json.find("test.inner");
  const std::size_t inner_e = json.find("test.inner", inner_b + 1);
  const std::size_t outer_e = json.find("test.outer", outer_b + 1);
  EXPECT_LT(outer_b, inner_b);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
  // Annotations ride the end events.
  EXPECT_NE(json.find("\"jobs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"x\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, EnablementIsCheckedAtConstruction) {
  // A span that began while tracing was on must still emit its end event
  // after tracing turns off, or the B/E pairing would break mid-stream.
  Trace::instance().set_enabled(true);
  {
    Span span("test.straddle");
    Trace::instance().set_enabled(false);
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(Trace::instance().event_count(), 2u);
  // And one that began while off stays silent even if tracing turns on.
  {
    Span span("test.late");
    Trace::instance().set_enabled(true);
    EXPECT_FALSE(span.active());
  }
  Trace::instance().set_enabled(false);
  EXPECT_EQ(Trace::instance().event_count(), 2u);
}

TEST_F(TraceTest, ClearKeepsBuffersRegistered) {
  Trace::instance().set_enabled(true);
  { Span span("test.seed"); }
  const std::size_t threads = Trace::instance().thread_count();
  EXPECT_GE(threads, 1u);
  Trace::instance().clear();
  EXPECT_EQ(Trace::instance().event_count(), 0u);
  // tids are stable: the cleared buffer is reused, not re-registered.
  EXPECT_EQ(Trace::instance().thread_count(), threads);
  { Span span("test.reuse"); }
  Trace::instance().set_enabled(false);
  EXPECT_EQ(Trace::instance().event_count(), 2u);
  EXPECT_EQ(Trace::instance().thread_count(), threads);
}

TEST_F(TraceTest, WorkerThreadsGetOwnBuffers) {
  Trace::instance().set_enabled(true);
  util::WorkStealingPool pool(2);
  // On a single-core host one worker can drain every task before the
  // other wakes; the latch forces both workers to hold a task at once so
  // each must register its own per-thread buffer.
  std::latch both_started(2);
  pool.parallel_for(2, [&both_started](std::size_t i) {
    both_started.arrive_and_wait();
    Span span("test.worker");
    span.arg("i", i);
  });
  Trace::instance().set_enabled(false);
  EXPECT_EQ(Trace::instance().event_count(), 4u);
  EXPECT_GE(Trace::instance().thread_count(), 2u);
  const std::string json = Trace::instance().to_chrome_json();
  EXPECT_EQ(count_of(json, "test.worker"), 4u);
}

TEST_F(TraceTest, ConfigureFromEnvSemantics) {
  Trace& trace = Trace::instance();
  for (const char* off : {"", "0", "off", "OFF", "false"}) {
    setenv("WW_TRACE", off, 1);
    trace.configure_from_env();
    EXPECT_FALSE(Trace::enabled()) << "WW_TRACE='" << off << "'";
  }
  unsetenv("WW_TRACE");
  trace.configure_from_env();
  EXPECT_FALSE(Trace::enabled());

  setenv("WW_TRACE", "1", 1);
  trace.configure_from_env();
  EXPECT_TRUE(Trace::enabled());
  EXPECT_EQ(trace.output_path(), "ww_trace.json");
  EXPECT_EQ(trace.metrics_path(), "ww_trace.metrics.json");

  setenv("WW_TRACE", "/tmp/run7.json", 1);
  trace.configure_from_env();
  EXPECT_TRUE(Trace::enabled());
  EXPECT_EQ(trace.output_path(), "/tmp/run7.json");
  EXPECT_EQ(trace.metrics_path(), "/tmp/run7.metrics.json");

  trace.set_output_path("bare_name");  // no .json suffix to strip
  EXPECT_EQ(trace.metrics_path(), "bare_name.metrics.json");
}

}  // namespace
}  // namespace ww::obs
