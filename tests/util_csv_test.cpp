#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ww::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRoundTrip, QuotedFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"x,y", "q\"q", "plain", ""});
  w.write_row({"second", "row", "here", "4"});
  std::istringstream in(out.str());
  const CsvReader r(in);
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[0][0], "x,y");
  EXPECT_EQ(r.rows()[0][1], "q\"q");
  EXPECT_EQ(r.rows()[0][3], "");
  EXPECT_EQ(r.rows()[1][3], "4");
}

TEST(CsvReader, ParseLine) {
  const auto fields = CsvReader::parse_line("a,\"b,c\",d");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
}

TEST(CsvReader, ToleratesCrlf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  const CsvReader r(in);
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[1][1], "d");
}

TEST(FormatDouble, RoundTrips) {
  for (const double v : {0.1, 1e-17, 123456.789, -3.25, 2.2662037037037037e-01}) {
    EXPECT_DOUBLE_EQ(std::stod(format_double(v)), v);
  }
}

}  // namespace
}  // namespace ww::util
