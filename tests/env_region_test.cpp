#include <gtest/gtest.h>

#include "env/latency.hpp"
#include "env/region.hpp"

namespace ww::env {
namespace {

TEST(Region, FiveBuiltinsInPaperOrder) {
  const auto specs = builtin_region_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "Zurich");
  EXPECT_EQ(specs[1].name, "Madrid");
  EXPECT_EQ(specs[2].name, "Oregon");
  EXPECT_EQ(specs[3].name, "Milan");
  EXPECT_EQ(specs[4].name, "Mumbai");
  EXPECT_EQ(specs[0].aws_zone, "eu-central-2");
  EXPECT_EQ(specs[4].aws_zone, "ap-south-1");
}

TEST(Region, PaperClusterSize) {
  // 175 nodes equally distributed across five regions (Sec. 5).
  const auto specs = builtin_region_specs();
  int total = 0;
  for (const auto& s : specs) {
    EXPECT_EQ(s.servers, 35);
    total += s.servers;
  }
  EXPECT_EQ(total, 175);
}

TEST(Region, WsfLandscape) {
  // Fig. 2d: Madrid and Mumbai highly water-stressed, Zurich least.
  const auto specs = builtin_region_specs();
  const auto wsf = [&](const char* name) {
    for (const auto& s : specs)
      if (s.name == name) return s.wsf;
    ADD_FAILURE();
    return 0.0;
  };
  EXPECT_LT(wsf("Zurich"), wsf("Milan"));
  EXPECT_LT(wsf("Milan"), wsf("Oregon"));
  EXPECT_GT(wsf("Madrid"), 0.6);
  EXPECT_GT(wsf("Mumbai"), 0.6);
  for (const auto& s : specs) {
    EXPECT_GE(s.wsf, 0.0);
    EXPECT_LT(s.wsf, 1.0);
  }
}

TEST(Region, DefaultPueMatchesPaper) {
  for (const auto& s : builtin_region_specs()) EXPECT_DOUBLE_EQ(s.pue, 1.2);
}

TEST(Haversine, KnownDistances) {
  // Zurich -> Milan is ~215 km; Zurich -> Mumbai ~6750 km.
  const double zm = haversine_km(47.38, 8.54, 45.46, 9.19);
  EXPECT_NEAR(zm, 218.0, 25.0);
  const double z_mum = haversine_km(47.38, 8.54, 19.08, 72.88);
  EXPECT_NEAR(z_mum, 6750.0, 300.0);
  EXPECT_DOUBLE_EQ(haversine_km(10.0, 20.0, 10.0, 20.0), 0.0);
}

TEST(Transfer, ZeroForLocal) {
  const TransferModel model({{47.38, 8.54}, {45.46, 9.19}});
  EXPECT_DOUBLE_EQ(model.latency_seconds(0, 0, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(model.energy_kwh(0, 0, 1e9), 0.0);
}

TEST(Transfer, SymmetricAndMonotoneInDistance) {
  // Zurich, Milan, Mumbai.
  const TransferModel model(
      {{47.38, 8.54}, {45.46, 9.19}, {19.08, 72.88}});
  const double near = model.latency_seconds(0, 1, 2e8);
  const double far = model.latency_seconds(0, 2, 2e8);
  EXPECT_GT(far, near);
  EXPECT_NEAR(model.latency_seconds(0, 2, 2e8), model.latency_seconds(2, 0, 2e8),
              1e-12);
}

TEST(Transfer, SerializationDominatesForLargePackages) {
  const TransferModel model({{47.38, 8.54}, {45.46, 9.19}});
  const double small = model.latency_seconds(0, 1, 1e6);
  const double large = model.latency_seconds(0, 1, 1e9);
  // 1 GB at 100 MB/s ~ 10 s of serialization.
  EXPECT_GT(large - small, 9.0);
}

TEST(Transfer, EnergyGrowsWithBytesAndDistance) {
  const TransferModel model(
      {{47.38, 8.54}, {45.46, 9.19}, {19.08, 72.88}});
  EXPECT_GT(model.energy_kwh(0, 1, 2e9), model.energy_kwh(0, 1, 1e9));
  EXPECT_GT(model.energy_kwh(0, 2, 1e9), model.energy_kwh(0, 1, 1e9));
}

TEST(Transfer, RejectsEmpty) {
  EXPECT_THROW(TransferModel({}), std::invalid_argument);
}

}  // namespace
}  // namespace ww::env
