// Warm-start / dual-simplex coverage: basis replay after bound tightening,
// branch-and-bound warm counters, warm-vs-cold equivalence over the stress
// corpus, forced Bland's rule on degenerate programs, and the regression
// guards for the iteration-limit bound fold and ratio-test tie-break.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

// min -2x - 3y  s.t.  x + y <= 4,  x + 3y <= 6,  0 <= x, y <= 10.
// Optimum x = 3, y = 1, objective -9.
Model two_row_lp() {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0, -2.0);
  const int y = m.add_continuous("y", 0.0, 10.0, -3.0);
  (void)m.add_constraint("r1", {{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 4.0);
  (void)m.add_constraint("r2", {{x, 1.0}, {y, 3.0}}, Sense::LessEqual, 6.0);
  return m;
}

TEST(WarmStart, DualSimplexReoptimizesAfterBoundTightening) {
  const Model m = two_row_lp();
  SimplexSolver solver(m);
  const std::vector<double> lower{0.0, 0.0};
  const std::vector<double> upper{10.0, 10.0};
  const Solution base = solver.solve_with_bounds(lower, upper);
  ASSERT_EQ(base.status, Status::Optimal);
  EXPECT_NEAR(base.objective, -9.0, 1e-9);

  const SimplexSolver::WarmStartBasis basis = solver.capture_basis();
  ASSERT_TRUE(basis.valid());

  // Tighten y <= 0.5: the captured basis (y basic at 1) turns primal
  // infeasible and the dual simplex must pivot it out.
  const std::vector<double> tight_upper{10.0, 0.5};
  const Solution warm = solver.solve_with_bounds(lower, tight_upper, &basis);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_EQ(warm.warm_started_nodes, 1);
  EXPECT_EQ(warm.phase1_nodes, 0);

  SimplexSolver cold_solver(m);
  const Solution cold = cold_solver.solve_with_bounds(lower, tight_upper);
  ASSERT_EQ(cold.status, Status::Optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  ASSERT_EQ(warm.values.size(), cold.values.size());
  for (std::size_t j = 0; j < warm.values.size(); ++j)
    EXPECT_NEAR(warm.values[j], cold.values[j], 1e-8);
}

TEST(WarmStart, DualSimplexProvesChildInfeasibility) {
  const Model m = two_row_lp();
  SimplexSolver solver(m);
  const std::vector<double> lower{0.0, 0.0};
  const std::vector<double> upper{10.0, 10.0};
  ASSERT_EQ(solver.solve_with_bounds(lower, upper).status, Status::Optimal);
  const SimplexSolver::WarmStartBasis basis = solver.capture_basis();
  ASSERT_TRUE(basis.valid());

  // x >= 5 contradicts x + y <= 4 with y >= 0.
  const std::vector<double> tight_lower{5.0, 0.0};
  const Solution warm = solver.solve_with_bounds(tight_lower, upper, &basis);
  EXPECT_EQ(warm.status, Status::Infeasible);
}

TEST(WarmStart, CaptureInvalidAfterInfeasibleSolve) {
  const Model m = two_row_lp();
  SimplexSolver solver(m);
  const Solution sol =
      solver.solve_with_bounds({5.0, 0.0}, {10.0, 10.0});
  EXPECT_EQ(sol.status, Status::Infeasible);
  EXPECT_FALSE(solver.capture_basis().valid());
}

TEST(WarmStart, WarmStartKnobDisablesBasisReplay) {
  const Model m = two_row_lp();
  SolverOptions opts;
  opts.warm_start = false;
  SimplexSolver solver(m, opts);
  const std::vector<double> lower{0.0, 0.0};
  const std::vector<double> upper{10.0, 10.0};
  ASSERT_EQ(solver.solve_with_bounds(lower, upper).status, Status::Optimal);
  const SimplexSolver::WarmStartBasis basis = solver.capture_basis();
  ASSERT_TRUE(basis.valid());
  const Solution again = solver.solve_with_bounds(lower, {10.0, 0.5}, &basis);
  ASSERT_EQ(again.status, Status::Optimal);
  EXPECT_EQ(again.warm_started_nodes, 0);
}

// The DP-checked knapsack from the branch-and-bound suite: fractional
// relaxation, so the tree genuinely branches.
Model dp_knapsack(double* out_best) {
  const std::vector<double> value = {12, 7, 9, 15, 5, 11, 3, 8, 14, 6};
  const std::vector<int> weight = {4, 2, 3, 5, 1, 4, 1, 3, 5, 2};
  const int cap = 12;
  std::vector<double> dp(static_cast<std::size_t>(cap) + 1, 0.0);
  for (std::size_t i = 0; i < value.size(); ++i)
    for (int w = cap; w >= weight[i]; --w)
      dp[static_cast<std::size_t>(w)] =
          std::max(dp[static_cast<std::size_t>(w)],
                   dp[static_cast<std::size_t>(w - weight[i])] + value[i]);
  *out_best = dp[static_cast<std::size_t>(cap)];

  Model m;
  std::vector<Term> row;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const int v = m.add_binary("v", -value[i]);
    row.push_back({v, static_cast<double>(weight[i])});
  }
  (void)m.add_constraint("w", row, Sense::LessEqual, static_cast<double>(cap));
  return m;
}

TEST(WarmStart, BranchAndBoundWarmStartsNearlyEveryNode) {
  const Model m = weak_relaxation_model(10, 3, 4.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  ASSERT_GT(sol.nodes_explored, 1);
  // The acceptance bar: >= 90% of non-root nodes re-solved from the parent
  // basis with no phase-1 run.
  const long non_root = sol.nodes_explored - 1;
  EXPECT_GE(sol.warm_started_nodes,
            static_cast<long>(std::ceil(0.9 * static_cast<double>(non_root))));
  EXPECT_LE(sol.phase1_nodes, sol.nodes_explored - sol.warm_started_nodes);

  // And the warm tree must agree with the cold tree on the answer, while
  // doing a fraction of the simplex work.
  SolverOptions cold_opts;
  cold_opts.warm_start = false;
  const Solution cold = solve(m, cold_opts);
  ASSERT_EQ(cold.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, cold.objective, 1e-9);
  EXPECT_LT(sol.simplex_iterations, cold.simplex_iterations);
}

/// Builds the corpus the equivalence sweep runs over (mirrors the stress
/// and branch-and-bound suites: assignment, capacitated assignment,
/// symmetric subset-pick, weak-relaxation soft rows, general integers).
std::vector<Model> equivalence_corpus() {
  std::vector<Model> corpus;
  {
    double ignored = 0.0;
    corpus.push_back(dp_knapsack(&ignored));
  }
  {
    // 3x3 assignment with a unique diagonal optimum.
    const double cost[3][3] = {{1, 9, 9}, {9, 2, 9}, {9, 9, 3}};
    Model m;
    int v[3][3];
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) v[i][j] = m.add_binary("x", cost[i][j]);
    for (int i = 0; i < 3; ++i)
      (void)m.add_constraint("row",
                             {{v[i][0], 1.0}, {v[i][1], 1.0}, {v[i][2], 1.0}},
                             Sense::Equal, 1.0);
    for (int j = 0; j < 3; ++j)
      (void)m.add_constraint("col",
                             {{v[0][j], 1.0}, {v[1][j], 1.0}, {v[2][j], 1.0}},
                             Sense::Equal, 1.0);
    corpus.push_back(std::move(m));
  }
  {
    // Symmetric pick-7 with epsilon symmetry breaking.
    Model m;
    std::vector<Term> row;
    for (int i = 0; i < 18; ++i) {
      const int v = m.add_binary("v", 1.0 + 1e-9 * i);
      row.push_back({v, 1.0});
    }
    (void)m.add_constraint("pick", std::move(row), Sense::Equal, 7.0);
    corpus.push_back(std::move(m));
  }
  corpus.push_back(weak_relaxation_model(10, 3, 4.0));
  {
    // General integer + continuous mix.
    Model m;
    const int xi = m.add_variable("xi", 0.0, 10.0, VarType::Integer, -1.0);
    const int y = m.add_binary("y", -1.0);
    const int xc = m.add_continuous("xc", 0.0, 3.7, -0.5);
    (void)m.add_constraint("c1", {{xi, 2.0}}, Sense::LessEqual, 9.0);
    (void)m.add_constraint("c2", {{xc, 1.0}, {y, -10.0}}, Sense::LessEqual,
                           0.0);
    corpus.push_back(std::move(m));
  }
  return corpus;
}

TEST(WarmStart, WarmAndColdAgreeAcrossCorpus) {
  const std::vector<Model> corpus = equivalence_corpus();
  for (std::size_t idx = 0; idx < corpus.size(); ++idx) {
    const Model& m = corpus[idx];
    Solution sols[4];
    int k = 0;
    for (const bool warm : {false, true}) {
      for (const bool bf : {false, true}) {
        SolverOptions opts;
        opts.warm_start = warm;
        opts.best_first = bf;
        sols[k++] = solve(m, opts);
      }
    }
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(sols[i].status, sols[0].status) << "model " << idx;
      ASSERT_TRUE(sols[i].usable()) << "model " << idx;
      EXPECT_NEAR(sols[i].objective, sols[0].objective, 1e-7)
          << "model " << idx << " config " << i;
      EXPECT_LE(m.max_violation(sols[i].values), 1e-6) << "model " << idx;
    }
  }
}

TEST(WarmStart, BestBoundNeverOverstatesUnderIterationLimit) {
  // Regression: a node LP hitting its iteration limit used to vanish from
  // the open-bound fold, letting best_bound overstate the true optimum (at
  // the root, the reported bound was +inf).
  double dp_best = 0.0;
  const Model m = dp_knapsack(&dp_best);
  const double true_opt = -dp_best;  // minimization objective
  for (const long limit : {1L, 2L, 4L, 8L, 16L, 64L, 200000L}) {
    SolverOptions opts;
    opts.max_iterations = limit;
    const Solution sol = solve(m, opts);
    EXPECT_LE(sol.best_bound, true_opt + 1e-6) << "limit " << limit;
    if (sol.status == Status::Optimal) {
      EXPECT_NEAR(sol.objective, true_opt, 1e-7) << "limit " << limit;
    }
    if (sol.has_incumbent) {
      EXPECT_LE(m.max_violation(sol.values), 1e-6) << "limit " << limit;
    }
  }
}

TEST(WarmStart, RootIterationLimitReportsIterationLimitStatus) {
  double dp_best = 0.0;
  const Model m = dp_knapsack(&dp_best);
  SolverOptions opts;
  opts.max_iterations = 1;  // every LP (including the root) hits the limit
  const Solution sol = solve(m, opts);
  EXPECT_EQ(sol.status, Status::IterationLimit);
  EXPECT_FALSE(sol.has_incumbent);
  // Nothing was resolved, so any finite claimed bound would overstate.
  EXPECT_TRUE(std::isinf(sol.best_bound) && sol.best_bound < 0.0)
      << "claimed bound " << sol.best_bound;
}

TEST(Degenerate, BealeCycleTerminatesUnderForcedBland) {
  // Beale's classic cycling example.  With bland_iterations = 1 the whole
  // solve runs under Bland's rule, which must terminate at the known
  // optimum x = (1/25, 0, 1, 0), objective -1/20.
  Model m;
  const int x1 = m.add_continuous("x1", 0.0, kInfinity, -0.75);
  const int x2 = m.add_continuous("x2", 0.0, kInfinity, 150.0);
  const int x3 = m.add_continuous("x3", 0.0, kInfinity, -0.02);
  const int x4 = m.add_continuous("x4", 0.0, kInfinity, 6.0);
  (void)m.add_constraint(
      "r1", {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
      Sense::LessEqual, 0.0);
  (void)m.add_constraint(
      "r2", {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
      Sense::LessEqual, 0.0);
  (void)m.add_constraint("r3", {{x3, 1.0}}, Sense::LessEqual, 1.0);
  SolverOptions opts;
  opts.bland_iterations = 1;
  SimplexSolver s(m, opts);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
  EXPECT_LE(m.max_violation(sol.values), 1e-7);
}

TEST(Degenerate, ForcedBlandMatchesDantzigOnDegenerateTransportation) {
  // Highly degenerate (all supplies/demands equal) transportation problem:
  // Bland-forced and default pricing must land on the same objective.
  util::Rng rng(99);
  const int k = 6;
  Model m;
  std::vector<std::vector<int>> v(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j)
      v[static_cast<std::size_t>(i)].push_back(
          m.add_continuous("t", 0.0, kInfinity, rng.uniform(1.0, 9.0)));
  for (int i = 0; i < k; ++i) {
    std::vector<Term> t;
    for (int j = 0; j < k; ++j)
      t.push_back({v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                   1.0});
    (void)m.add_constraint("s", std::move(t), Sense::Equal, 2.0);
  }
  for (int j = 0; j < k; ++j) {
    std::vector<Term> t;
    for (int i = 0; i < k; ++i)
      t.push_back({v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                   1.0});
    (void)m.add_constraint("d", std::move(t), Sense::Equal, 2.0);
  }
  SimplexSolver dantzig(m);
  const Solution a = dantzig.solve();
  SolverOptions opts;
  opts.bland_iterations = 1;
  SimplexSolver bland(m, opts);
  const Solution b = bland.solve();
  ASSERT_EQ(a.status, Status::Optimal);
  ASSERT_EQ(b.status, Status::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
}

TEST(RatioTest, TieBreakNeverLeavesBounds) {
  // Regression for the tie-break step-growth bug: many exactly-tied ratio
  // rows; the accepted replacement must not stretch the step by up to tol
  // and push the outgoing basic variable past its bound.
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0, -1.0);
  const int y = m.add_continuous("y", 0.0, 10.0, -1.0 - 1e-12);
  for (int r = 0; r < 8; ++r)
    (void)m.add_constraint("tie", {{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 5.0);
  SimplexSolver s(m);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)] +
                  sol.values[static_cast<std::size_t>(y)],
              5.0, 1e-9);
  EXPECT_LE(m.max_violation(sol.values), 1e-9);
}

}  // namespace
}  // namespace ww::milp
