// Solver stress coverage: status paths, degenerate systems, larger
// structured programs, and randomized equality systems checked against a
// dense Gaussian-elimination reference.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

TEST(SimplexStress, IterationLimitStatus) {
  // A ring LP with a 1-iteration budget must report IterationLimit, not
  // crash or return a bogus optimum.
  Model m;
  const int n = 10;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i)
    vars.push_back(m.add_continuous("x", 0.0, 1.0, 1.0));
  for (int i = 0; i < n; ++i)
    (void)m.add_constraint(
        "r", {{vars[static_cast<std::size_t>(i)], 1.0},
              {vars[static_cast<std::size_t>((i + 1) % n)], 1.0}},
        Sense::GreaterEqual, 1.0);
  SolverOptions opts;
  opts.max_iterations = 1;
  SimplexSolver s(m, opts);
  EXPECT_EQ(s.solve().status, Status::IterationLimit);
}

TEST(SimplexStress, HighlyDegenerateEqualitySystem) {
  // Many redundant equalities through the same point.
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, 1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 1.0);
  const int z = m.add_continuous("z", 0.0, kInfinity, 1.0);
  (void)m.add_constraint("e1", {{x, 1.0}, {y, 1.0}, {z, 1.0}}, Sense::Equal, 3.0);
  (void)m.add_constraint("e2", {{x, 2.0}, {y, 2.0}, {z, 2.0}}, Sense::Equal, 6.0);
  (void)m.add_constraint("e3", {{x, 1.0}, {y, -1.0}}, Sense::Equal, 0.0);
  (void)m.add_constraint("e4", {{y, 1.0}, {z, -1.0}}, Sense::Equal, 0.0);
  SimplexSolver s(m);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-7);
  EXPECT_NEAR(sol.values[2], 1.0, 1e-7);
}

TEST(SimplexStress, LargeTransportationStaysExact) {
  // 12 x 12 transportation problem; verify feasibility + integrality of the
  // vertex solution and agreement with a greedy lower-bound sanity check.
  util::Rng rng(2024);
  const int k = 12;
  Model m;
  std::vector<std::vector<int>> v(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j)
      v[static_cast<std::size_t>(i)].push_back(
          m.add_continuous("t", 0.0, kInfinity, rng.uniform(1.0, 9.0)));
  for (int i = 0; i < k; ++i) {
    std::vector<Term> t;
    for (int j = 0; j < k; ++j) t.push_back({v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    (void)m.add_constraint("s", std::move(t), Sense::Equal, 5.0);
  }
  for (int j = 0; j < k; ++j) {
    std::vector<Term> t;
    for (int i = 0; i < k; ++i) t.push_back({v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    (void)m.add_constraint("d", std::move(t), Sense::Equal, 5.0);
  }
  SimplexSolver s(m);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_LE(m.max_violation(sol.values), 1e-6);
  for (const double val : sol.values)
    EXPECT_NEAR(val, std::round(val), 1e-6);  // transportation integrality
}

class EqualitySystemProperty : public ::testing::TestWithParam<int> {};

TEST_P(EqualitySystemProperty, UniqueSolutionRecovered) {
  // Square nonsingular A x = b with bounds wide enough: the LP has a unique
  // feasible point; any objective must return exactly it.  Reference
  // solution by Gaussian elimination.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7741 + 3);
  const int n = static_cast<int>(rng.uniform_int(2, 6));
  std::vector<std::vector<double>> a(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n)));
  std::vector<double> xref(static_cast<std::size_t>(n));
  for (auto& row : a)
    for (auto& c : row) c = rng.uniform(-3.0, 3.0);
  for (int i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] += 4.0;  // diag dominance
  for (auto& x : xref) x = rng.uniform(-2.0, 2.0);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      b[static_cast<std::size_t>(i)] +=
          a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
          xref[static_cast<std::size_t>(j)];

  Model m;
  for (int j = 0; j < n; ++j)
    (void)m.add_continuous("x", -10.0, 10.0, rng.uniform(-1.0, 1.0));
  for (int i = 0; i < n; ++i) {
    std::vector<Term> t;
    for (int j = 0; j < n; ++j)
      t.push_back({j, a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]});
    (void)m.add_constraint("e", std::move(t), Sense::Equal,
                           b[static_cast<std::size_t>(i)]);
  }
  SimplexSolver s(m);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal) << "param " << GetParam();
  for (int j = 0; j < n; ++j)
    EXPECT_NEAR(sol.values[static_cast<std::size_t>(j)],
                xref[static_cast<std::size_t>(j)], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqualitySystemProperty, ::testing::Range(0, 25));

TEST(BranchAndBoundStress, MipGapPruningTerminatesSymmetricModel) {
  // 30 identical binaries, pick exactly 7: hugely symmetric; the relative
  // gap must let B&B terminate quickly instead of enumerating subsets.
  Model m;
  std::vector<Term> row;
  for (int i = 0; i < 30; ++i) {
    const int v = m.add_binary("v", 1.0 + 1e-9 * i);
    row.push_back({v, 1.0});
  }
  (void)m.add_constraint("pick", std::move(row), Sense::Equal, 7.0);
  SolverOptions opts;
  opts.mip_gap_rel = 1e-6;
  opts.max_nodes = 5000;
  const Solution sol = solve(m, opts);
  ASSERT_TRUE(sol.usable());
  EXPECT_NEAR(sol.objective, 7.0, 1e-5);
}

TEST(BranchAndBoundStress, TimeLimitReturnsIncumbent) {
  // A weak-relaxation model (per-job free allowance, the WaterWise
  // pathology); with a tiny time budget the solver must still return a
  // usable incumbent rather than nothing.
  const Model m = weak_relaxation_model(20, 4, 7.0);
  SolverOptions opts;
  opts.time_limit_seconds = 0.3;
  const Solution sol = solve(m, opts);
  ASSERT_TRUE(sol.usable());
  EXPECT_LE(m.max_violation(sol.values), 1e-6);
  EXPECT_LE(sol.best_bound, sol.objective + 1e-9);
}

}  // namespace
}  // namespace ww::milp
