#include <gtest/gtest.h>

#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "trace/generator.hpp"

namespace ww::dc {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 10;
  return cfg;
}

std::vector<trace::Job> small_trace(std::uint64_t seed = 3,
                                    double days = 0.15) {
  return trace::generate_trace(trace::borg_config(seed, days));
}

class SimulatorTest : public ::testing::Test {
 protected:
  env::Environment env_ = env::Environment::builtin(small_env());
  footprint::FootprintModel fp_{env_};
};

TEST_F(SimulatorTest, AllJobsRunExactlyOnce) {
  const auto jobs = small_trace();
  Simulator sim(env_, fp_, SimConfig{});
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  EXPECT_EQ(res.num_jobs, static_cast<long>(jobs.size()));
  long placed = 0;
  for (const long c : res.jobs_per_region) placed += c;
  EXPECT_EQ(placed, res.num_jobs);
}

TEST_F(SimulatorTest, BaselineStaysHome) {
  const auto jobs = small_trace();
  SimConfig cfg;
  cfg.record_jobs = true;
  Simulator sim(env_, fp_, cfg);
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  ASSERT_EQ(res.jobs.size(), jobs.size());
  for (const JobOutcome& o : res.jobs) EXPECT_EQ(o.exec_region, o.home_region);
  EXPECT_DOUBLE_EQ(res.transfer_carbon_g, 0.0);
}

TEST_F(SimulatorTest, BaselineHasNoViolationsAtPaperUtilization) {
  // Table 2 row 1: the Baseline never violates delay tolerance at ~15% util.
  const auto jobs = small_trace();
  Simulator sim(env_, fp_, SimConfig{});
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  EXPECT_EQ(res.violations, 0);
  EXPECT_NEAR(res.mean_service_norm(), 1.0, 0.05);
}

TEST_F(SimulatorTest, ServiceTimeNeverBelowExecution) {
  const auto jobs = small_trace(5);
  SimConfig cfg;
  cfg.record_jobs = true;
  Simulator sim(env_, fp_, cfg);
  sched::RoundRobinScheduler rr;
  const CampaignResult res = sim.run(jobs, rr);
  for (const JobOutcome& o : res.jobs) {
    EXPECT_GE(o.finish_time - o.submit_time, o.exec_seconds * 0.999);
    EXPECT_GE(o.start_time, o.submit_time);
  }
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  const auto jobs = small_trace(7);
  Simulator sim(env_, fp_, SimConfig{});
  sched::LeastLoadScheduler a;
  sched::LeastLoadScheduler b;
  const CampaignResult r1 = sim.run(jobs, a);
  const CampaignResult r2 = sim.run(jobs, b);
  EXPECT_DOUBLE_EQ(r1.total_carbon_g, r2.total_carbon_g);
  EXPECT_DOUBLE_EQ(r1.total_water_l, r2.total_water_l);
  EXPECT_EQ(r1.jobs_per_region, r2.jobs_per_region);
  EXPECT_EQ(r1.violations, r2.violations);
}

TEST_F(SimulatorTest, CapacityNeverExceeded) {
  // Tiny capacity forces queueing; verify occupancy via recorded intervals.
  const auto jobs = small_trace(9, 0.05);
  SimConfig cfg;
  cfg.capacity_scale = 0.06;  // ~2 servers per region
  cfg.record_jobs = true;
  Simulator sim(env_, fp_, cfg);
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  ASSERT_EQ(res.num_jobs, static_cast<long>(jobs.size()));
  const std::vector<int> caps = sim.region_capacities();
  // Event-sweep max concurrency per region.
  for (int r = 0; r < 5; ++r) {
    std::vector<std::pair<double, int>> events;
    for (const JobOutcome& o : res.jobs) {
      if (o.exec_region != r) continue;
      events.emplace_back(o.start_time, +1);
      events.emplace_back(o.finish_time, -1);
    }
    std::sort(events.begin(), events.end());  // -1 sorts before +1 at ties
    int running = 0;
    int peak = 0;
    for (const auto& [t, d] : events) {
      running += d;
      peak = std::max(peak, running);
    }
    EXPECT_LE(peak, caps[static_cast<std::size_t>(r)]) << "region " << r;
  }
}

TEST_F(SimulatorTest, QueueingCausesViolationsUnderPressure) {
  const auto jobs = small_trace(11, 0.05);
  SimConfig cfg;
  cfg.capacity_scale = 0.03;  // ~1 server per region: heavy pressure
  Simulator sim(env_, fp_, cfg);
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  EXPECT_GT(res.mean_service_norm(), 1.0);
}

TEST_F(SimulatorTest, FootprintsArePositiveAndDecomposed) {
  const auto jobs = small_trace(13);
  Simulator sim(env_, fp_, SimConfig{});
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  EXPECT_GT(res.total_carbon_g, 0.0);
  EXPECT_GT(res.total_water_l, 0.0);
  EXPECT_GT(res.embodied_carbon_g, 0.0);
  EXPECT_LT(res.embodied_carbon_g, res.total_carbon_g);
  EXPECT_GT(res.makespan_seconds, 0.0);
}

TEST_F(SimulatorTest, OverheadSeriesRecorded) {
  const auto jobs = small_trace(15, 0.05);
  Simulator sim(env_, fp_, SimConfig{});
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run(jobs, baseline);
  EXPECT_FALSE(res.overhead_series.empty());
  EXPECT_GE(res.decision_seconds_total, 0.0);
}

TEST_F(SimulatorTest, RejectsUnsortedTrace) {
  auto jobs = small_trace(17, 0.02);
  ASSERT_GE(jobs.size(), 2u);
  std::swap(jobs.front().submit_time, jobs.back().submit_time);
  Simulator sim(env_, fp_, SimConfig{});
  sched::BaselineScheduler baseline;
  EXPECT_THROW((void)sim.run(jobs, baseline), std::invalid_argument);
}

TEST_F(SimulatorTest, EmptyTrace) {
  Simulator sim(env_, fp_, SimConfig{});
  sched::BaselineScheduler baseline;
  const CampaignResult res = sim.run({}, baseline);
  EXPECT_EQ(res.num_jobs, 0);
  EXPECT_DOUBLE_EQ(res.total_carbon_g, 0.0);
}

TEST_F(SimulatorTest, ConfigValidation) {
  SimConfig bad;
  bad.batch_window_s = 0.0;
  EXPECT_THROW(Simulator(env_, fp_, bad), std::invalid_argument);
  SimConfig neg;
  neg.tol = -0.5;
  EXPECT_THROW(Simulator(env_, fp_, neg), std::invalid_argument);
}

TEST_F(SimulatorTest, CapacityScaleChangesServerCounts) {
  SimConfig cfg;
  cfg.capacity_scale = 3.0;
  const Simulator sim(env_, fp_, cfg);
  for (const int c : sim.region_capacities()) EXPECT_EQ(c, 105);
  SimConfig tiny;
  tiny.capacity_scale = 0.001;
  const Simulator sim2(env_, fp_, tiny);
  for (const int c : sim2.region_capacities()) EXPECT_EQ(c, 1);  // floor of 1
}

TEST(CampaignResult, SavingsMath) {
  CampaignResult base;
  base.total_carbon_g = 200.0;
  base.total_water_l = 100.0;
  CampaignResult better;
  better.total_carbon_g = 150.0;
  better.total_water_l = 90.0;
  EXPECT_NEAR(better.carbon_saving_pct_vs(base), 25.0, 1e-12);
  EXPECT_NEAR(better.water_saving_pct_vs(base), 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(base.carbon_saving_pct_vs(base), 0.0);
}

TEST(CampaignResult, RegionSharePct) {
  CampaignResult r;
  r.num_jobs = 10;
  r.jobs_per_region = {5, 3, 2};
  const auto shares = r.region_share_pct();
  EXPECT_DOUBLE_EQ(shares[0], 50.0);
  EXPECT_DOUBLE_EQ(shares[2], 20.0);
}

}  // namespace
}  // namespace ww::dc
