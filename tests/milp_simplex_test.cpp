#include "milp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.hpp"

namespace ww::milp {
namespace {

Solution lp_solve(const Model& m) {
  SimplexSolver s(m);
  return s.solve();
}

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), obj 36.
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, -3.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, -5.0);
  (void)m.add_constraint("c1", {{x, 1.0}}, Sense::LessEqual, 4.0);
  (void)m.add_constraint("c2", {{y, 2.0}}, Sense::LessEqual, 12.0);
  (void)m.add_constraint("c3", {{x, 3.0}, {y, 2.0}}, Sense::LessEqual, 18.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-8);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-8);
  EXPECT_NEAR(sol.values[1], 6.0, 1e-8);
}

TEST(Simplex, EqualityConstraintNeedsPhase1) {
  // min x + 2y s.t. x + y = 10, x <= 6  => x=6, y=4, obj 14.
  Model m;
  const int x = m.add_continuous("x", 0.0, 6.0, 1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 2.0);
  (void)m.add_constraint("sum", {{x, 1.0}, {y, 1.0}}, Sense::Equal, 10.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, 14.0, 1e-8);
  EXPECT_NEAR(sol.values[0], 6.0, 1e-8);
  EXPECT_NEAR(sol.values[1], 4.0, 1e-8);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6  => (3, 1), obj 9.
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, 2.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 3.0);
  (void)m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 4.0);
  (void)m.add_constraint("c2", {{x, 1.0}, {y, 3.0}}, Sense::GreaterEqual, 6.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-8);
  EXPECT_NEAR(sol.values[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 1.0, 1.0);
  (void)m.add_constraint("c", {{x, 1.0}}, Sense::GreaterEqual, 2.0);
  EXPECT_EQ(lp_solve(m).status, Status::Infeasible);
}

TEST(Simplex, DetectsContradictoryRows) {
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, 0.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 0.0);
  (void)m.add_constraint("a", {{x, 1.0}, {y, 1.0}}, Sense::Equal, 1.0);
  (void)m.add_constraint("b", {{x, 1.0}, {y, 1.0}}, Sense::Equal, 3.0);
  EXPECT_EQ(lp_solve(m).status, Status::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, -1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 0.0);
  (void)m.add_constraint("c", {{x, 1.0}, {y, -1.0}}, Sense::LessEqual, 1.0);
  EXPECT_EQ(lp_solve(m).status, Status::Unbounded);
}

TEST(Simplex, BoundedVariablesOnly) {
  // No rows: min -x - 2y with x in [1,3], y in [0,5] => (3,5), obj -13.
  Model m;
  (void)m.add_continuous("x", 1.0, 3.0, -1.0);
  (void)m.add_continuous("y", 0.0, 5.0, -2.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -13.0, 1e-9);
}

TEST(Simplex, NoRowsUnboundedDetected) {
  Model m;
  (void)m.add_continuous("x", 0.0, kInfinity, -1.0);
  EXPECT_EQ(lp_solve(m).status, Status::Unbounded);
}

TEST(Simplex, UpperBoundedVariableBindsFirst) {
  // min -x s.t. x <= 10 row, but x's own bound is 3 => x = 3.
  Model m;
  const int x = m.add_continuous("x", 0.0, 3.0, -1.0);
  (void)m.add_constraint("c", {{x, 1.0}}, Sense::LessEqual, 10.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 3.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x in [-5, 5], y in [-2, 2], x + y >= -4  => obj -4... the
  // optimum sits on the row: x = -2 to -5 range; minimum of x+y subject to
  // x+y >= -4 is exactly -4.
  Model m;
  const int x = m.add_continuous("x", -5.0, 5.0, 1.0);
  const int y = m.add_continuous("y", -2.0, 2.0, 1.0);
  (void)m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, -4.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
}

TEST(Simplex, FreeVariable) {
  // min x with x free, x >= -7 via row  => x = -7.
  Model m;
  const int x = m.add_continuous("x", -kInfinity, kInfinity, 1.0);
  (void)m.add_constraint("c", {{x, 1.0}}, Sense::GreaterEqual, -7.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], -7.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple redundant constraints through one vertex (classic cycling bait).
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, -1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, -1.0);
  (void)m.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 1.0);
  (void)m.add_constraint("c2", {{x, 2.0}, {y, 2.0}}, Sense::LessEqual, 2.0);
  (void)m.add_constraint("c3", {{x, 1.0}}, Sense::LessEqual, 1.0);
  (void)m.add_constraint("c4", {{y, 1.0}}, Sense::LessEqual, 1.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-8);
}

TEST(Simplex, TransportationProblemIsIntegral) {
  // 2 supplies x 3 demands; LP relaxation of a transportation problem has
  // integral vertices, so the simplex answer should be integer-valued.
  Model m;
  const double cost[2][3] = {{4, 6, 9}, {5, 3, 8}};
  int v[2][3];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      v[i][j] = m.add_continuous("t", 0.0, kInfinity, cost[i][j]);
  const double supply[2] = {10, 15};
  const double demand[3] = {7, 9, 9};
  for (int i = 0; i < 2; ++i)
    (void)m.add_constraint("s", {{v[i][0], 1.0}, {v[i][1], 1.0}, {v[i][2], 1.0}},
                           Sense::LessEqual, supply[i]);
  for (int j = 0; j < 3; ++j)
    (void)m.add_constraint("d", {{v[0][j], 1.0}, {v[1][j], 1.0}},
                           Sense::GreaterEqual, demand[j]);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  for (const double val : sol.values)
    EXPECT_NEAR(val, std::round(val), 1e-7);
  // Optimum: s1->d1 7@4, s2->d2 9@3, d3 split 3@9 (s1) + 6@8 (s2) = 130.
  EXPECT_NEAR(sol.objective, 130.0, 1e-6);
}

TEST(Simplex, SolveWithBoundsOverride) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 10.0, -1.0);
  (void)m.add_constraint("c", {{x, 1.0}}, Sense::LessEqual, 8.0);
  SimplexSolver s(m);
  const Solution base = s.solve();
  ASSERT_EQ(base.status, Status::Optimal);
  EXPECT_NEAR(base.values[0], 8.0, 1e-9);
  const Solution tight = s.solve_with_bounds({0.0}, {3.0});
  ASSERT_EQ(tight.status, Status::Optimal);
  EXPECT_NEAR(tight.values[0], 3.0, 1e-9);
  const Solution conflict = s.solve_with_bounds({5.0}, {4.0});
  EXPECT_EQ(conflict.status, Status::Infeasible);
}

TEST(Simplex, RepeatedSolvesAreIndependent) {
  Model m;
  const int x = m.add_continuous("x", 0.0, 5.0, -2.0);
  const int y = m.add_continuous("y", 0.0, 5.0, -1.0);
  (void)m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 6.0);
  SimplexSolver s(m);
  const Solution first = s.solve();
  const Solution second = s.solve();
  ASSERT_EQ(first.status, Status::Optimal);
  ASSERT_EQ(second.status, Status::Optimal);
  EXPECT_DOUBLE_EQ(first.objective, second.objective);
  EXPECT_EQ(first.values, second.values);
}

TEST(Simplex, FixedVariableViaEqualBounds) {
  Model m;
  const int x = m.add_continuous("x", 2.0, 2.0, 1.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, 1.0);
  (void)m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 5.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 3.0, 1e-9);
}

TEST(Simplex, LargerDenseProblem) {
  // min sum x_i s.t. for each of 40 rows: x_i + x_{i+1} >= 1 (ring).
  Model m;
  const int n = 40;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i)
    vars.push_back(m.add_continuous("x", 0.0, 1.0, 1.0));
  for (int i = 0; i < n; ++i)
    (void)m.add_constraint(
        "r", {{vars[static_cast<std::size_t>(i)], 1.0},
              {vars[static_cast<std::size_t>((i + 1) % n)], 1.0}},
        Sense::GreaterEqual, 1.0);
  const Solution sol = lp_solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, n / 2.0, 1e-7);  // all at 0.5
}

}  // namespace
}  // namespace ww::milp
