// Statistical structure of the synthetic traces: burstiness (index of
// dispersion), diurnal modulation depth, and benchmark composition — the
// trace features that stress batch scheduling and that DESIGN.md claims the
// generators reproduce.
#include <gtest/gtest.h>

#include <cmath>

#include "trace/arrival.hpp"
#include "trace/generator.hpp"
#include "util/stats.hpp"

namespace ww::trace {
namespace {

std::vector<double> counts_per_bucket(const std::vector<double>& times,
                                      double horizon, double bucket) {
  std::vector<double> counts(static_cast<std::size_t>(horizon / bucket) + 1, 0.0);
  for (const double t : times)
    ++counts[static_cast<std::size_t>(t / bucket)];
  counts.pop_back();  // partial trailing bucket
  return counts;
}

TEST(ArrivalStats, MmppIsOverdispersedVsPoisson) {
  // A Poisson process has index of dispersion (var/mean of bucket counts)
  // ~1; the MMPP + diurnal envelope must be clearly over-dispersed.
  ArrivalConfig bursty;
  bursty.base_rate_per_s = 0.25;
  const double horizon = 4.0 * 86400.0;
  const auto times = generate_arrivals(bursty, horizon, util::Rng(3));
  const auto counts = counts_per_bucket(times, horizon, 600.0);
  const double mean = util::mean(counts);
  const double var = util::stddev(counts) * util::stddev(counts);
  EXPECT_GT(var / mean, 1.5);
}

TEST(ArrivalStats, FlatPoissonBaselineIsNot) {
  ArrivalConfig calm;
  calm.base_rate_per_s = 0.25;
  calm.shape = DiurnalShape::Flat;
  calm.diurnal_swing = 0.0;
  calm.burst_rate_multiplier = 1.0;
  calm.calm_rate_multiplier = 1.0;
  const double horizon = 4.0 * 86400.0;
  const auto times = generate_arrivals(calm, horizon, util::Rng(5));
  const auto counts = counts_per_bucket(times, horizon, 600.0);
  const double mean = util::mean(counts);
  const double var = util::stddev(counts) * util::stddev(counts);
  EXPECT_NEAR(var / mean, 1.0, 0.25);
}

TEST(ArrivalStats, DiurnalPeakToTroughRatio) {
  // Borg-like config: afternoon rate must exceed pre-dawn rate.
  const auto cfg = borg_config(11, 6.0);
  const auto jobs = generate_trace(cfg);
  double peak = 0.0;
  double trough = 0.0;
  for (const Job& j : jobs) {
    const double hour = std::fmod(j.submit_time / 3600.0, 24.0);
    if (hour >= 12.0 && hour < 16.0) peak += 1.0;
    if (hour >= 2.0 && hour < 6.0) trough += 1.0;
  }
  EXPECT_GT(peak / trough, 1.5);
}

TEST(ArrivalStats, AlibabaDoublePeakShape) {
  // The double-peak envelope has local maxima near peak_hour and
  // peak_hour - 10.
  const double swing = 0.6;
  const double f_peak1 =
      diurnal_factor(DiurnalShape::DoublePeak, swing, 20.0, 20.0 * 3600.0);
  const double f_peak2 =
      diurnal_factor(DiurnalShape::DoublePeak, swing, 20.0, 10.0 * 3600.0);
  const double f_valley =
      diurnal_factor(DiurnalShape::DoublePeak, swing, 20.0, 3.0 * 3600.0);
  EXPECT_GT(f_peak1, f_valley);
  EXPECT_GT(f_peak2, f_valley);
}

TEST(ArrivalStats, BenchmarkCompositionUniform) {
  const auto jobs = generate_trace(borg_config(13, 2.0));
  std::vector<double> counts(static_cast<std::size_t>(num_benchmarks()), 0.0);
  for (const Job& j : jobs)
    counts[static_cast<std::size_t>(j.benchmark)] += 1.0;
  const double expected =
      static_cast<double>(jobs.size()) / static_cast<double>(num_benchmarks());
  for (const double c : counts) EXPECT_NEAR(c / expected, 1.0, 0.1);
}

TEST(ArrivalStats, EnergyScalesWithExecTime) {
  // Per-job energy = power x time; both sampled, so energy correlates
  // strongly with execution time within a benchmark.
  const auto jobs = generate_trace(borg_config(17, 0.5));
  std::vector<double> exec;
  std::vector<double> energy;
  for (const Job& j : jobs) {
    if (j.benchmark != 2) continue;  // Canneal only
    exec.push_back(j.exec_seconds);
    energy.push_back(j.energy_kwh());
  }
  ASSERT_GT(exec.size(), 50u);
  EXPECT_GT(util::correlation(exec, energy), 0.8);
}

TEST(ArrivalStats, MeanJobDurationMatchesProfiles) {
  const auto jobs = generate_trace(borg_config(19, 2.0));
  util::RunningStats exec;
  for (const Job& j : jobs) exec.add(j.exec_seconds);
  EXPECT_NEAR(exec.mean(), mean_exec_seconds_overall(),
              mean_exec_seconds_overall() * 0.05);
}

}  // namespace
}  // namespace ww::trace
