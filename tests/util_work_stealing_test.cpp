// Unit tests for the process-global work-stealing pool: deque ordering
// (owner LIFO / thief FIFO), randomized nested fork-join trees checked
// against a serial reference with an order-sensitive fold, the
// help-while-waiting join, steal-counter sanity, and exception
// propagation from stolen tasks.  All shapes are derived from util::Rng
// named streams, so every run exercises bit-identical trees.
#include "util/work_steal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ww::util {
namespace {

TEST(StealDeque, OwnerPopsLifoThiefStealsFifo) {
  StealDeque dq;
  std::vector<int> order;
  for (int v : {1, 2, 3})
    dq.push_bottom([&order, v] { order.push_back(v); });
  EXPECT_EQ(dq.size(), 3u);

  std::function<void()> task;
  // Owner side is a stack: the most recently pushed task comes back first.
  ASSERT_TRUE(dq.try_pop_bottom(task));
  task();
  ASSERT_EQ(order.back(), 3);
  // Thief side is a queue: steals take the *oldest* task.
  ASSERT_TRUE(dq.try_steal_top(task));
  task();
  ASSERT_EQ(order.back(), 1);
  ASSERT_TRUE(dq.try_pop_bottom(task));
  task();
  ASSERT_EQ(order.back(), 2);

  EXPECT_EQ(dq.size(), 0u);
  EXPECT_FALSE(dq.try_pop_bottom(task));
  EXPECT_FALSE(dq.try_steal_top(task));
}

TEST(WorkStealingPool, ResolveThreadsAndGrowth) {
  EXPECT_EQ(WorkStealingPool::resolve_threads(3), 3u);
  EXPECT_GE(WorkStealingPool::resolve_threads(0), 1u);
  EXPECT_EQ(WorkStealingPool::resolve_threads(100000),
            WorkStealingPool::kMaxWorkers);

  WorkStealingPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  pool.ensure_workers(4);
  EXPECT_EQ(pool.size(), 4u);
  pool.ensure_workers(1);  // never shrinks
  EXPECT_EQ(pool.size(), 4u);
}

TEST(WorkStealingPool, ParallelForCoversAllIndicesExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealingPool, GlobalParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(128);
  global_parallel_for(2, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(WorkStealingPool::global().size(), 2u);
}

// --- Randomized nested fork-join trees vs a serial reference --------------

struct Node {
  long value = 0;
  std::vector<Node> kids;
};

/// Deterministic tree: every shape decision comes from a named child
/// stream of the seed, so the same seed always yields the same tree.
Node build_tree(const Rng& stream, int depth) {
  Rng rng = stream;
  Node n;
  n.value = rng.uniform_int(-1000, 1000);
  if (depth == 0) return n;
  const auto fanout = rng.uniform_int(2, 8);
  n.kids.reserve(static_cast<std::size_t>(fanout));
  for (std::int64_t k = 0; k < fanout; ++k)
    n.kids.push_back(
        build_tree(rng.child(static_cast<std::uint64_t>(k)), depth - 1));
  return n;
}

/// Order-sensitive fold (h = h * 31 + child), so a commit in anything but
/// child-index order changes the fingerprint — unlike a plain sum, which
/// would hide reorderings.
long serial_fold(const Node& n) {
  long h = n.value;
  for (const Node& kid : n.kids) h = h * 31 + serial_fold(kid);
  return h;
}

long parallel_fold(WorkStealingPool& pool, const Node& n) {
  if (n.kids.empty()) return n.value;
  std::vector<long> kid(n.kids.size(), 0);
  {
    TaskGroup group(pool);
    for (std::size_t i = 0; i < n.kids.size(); ++i)
      group.spawn([&pool, &n, &kid, i] {
        kid[i] = parallel_fold(pool, n.kids[i]);  // disjoint slot per child
      });
    group.wait();
  }
  long h = n.value;
  for (const long v : kid) h = h * 31 + v;  // commit in child-index order
  return h;
}

TEST(WorkStealingPool, RandomizedNestedForkJoinMatchesSerial) {
  // Depth-3 and depth-4 trees with fanout 2..8: thousands of tasks whose
  // spawning tasks themselves block in helping joins.  Nested TaskGroups
  // on one pool is exactly the scenario x chunk shape the scheduler runs.
  WorkStealingPool pool(4);
  const Rng root(20260808);
  for (const int depth : {3, 4}) {
    for (std::uint64_t seed_idx = 0; seed_idx < 4; ++seed_idx) {
      const Node tree =
          build_tree(root.child("tree").child(seed_idx), depth);
      const long want = serial_fold(tree);
      const long got = parallel_fold(pool, tree);
      EXPECT_EQ(got, want) << "depth=" << depth << " seed=" << seed_idx;
    }
  }
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealingPool, WaitHelpsWhileSoleWorkerIsBlocked) {
  // One worker, pinned by a task that spins until released: every task the
  // main thread then spawns can only finish if TaskGroup::wait() runs it
  // on the *waiting* thread (help-while-waiting).  A parking join would
  // deadlock here; a helping join finishes all eight before the release.
  WorkStealingPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  TaskGroup blocker(pool);
  blocker.spawn([&started, &release] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();

  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i)
      group.spawn(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    group.wait();
  }
  // The sole worker is still spinning in the blocker, so the helping
  // waiter must have executed all eight itself.
  EXPECT_EQ(ran.load(), 8);
  EXPECT_FALSE(release.load());
  release.store(true, std::memory_order_release);
  blocker.wait();
}

TEST(WorkStealingPool, GroupDestroyedImmediatelyAfterWaitIsSafe) {
  // Regression for a completion-path lifetime race: the last task's wrapper
  // used to decrement pending_ *before* locking mutex_ to notify, so a
  // waiter could observe pending_ == 0, return from wait(), and destroy the
  // stack-allocated group while the wrapper was still about to lock the now
  // dead mutex.  Thousands of short-lived groups whose tasks finish right
  // as wait() returns keep that window hot; the suite's TSan job flags the
  // use-after-free if the decrement ever moves back outside the lock.
  WorkStealingPool pool(4);
  std::atomic<long> ran{0};
  for (int wave = 0; wave < 1500; ++wave) {
    TaskGroup group(pool);
    for (int i = 0; i < 4; ++i)
      group.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    group.wait();
  }  // group destroyed immediately after wait() on every iteration
  EXPECT_EQ(ran.load(), 1500L * 4);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealingPool, ParkedWaiterWakesOnGroupCompletion) {
  // The waiter parks on the pool's wake channel once every deque is empty
  // (the only remaining task is *running* on a worker); the last task's
  // wrapper must notify that channel or wait() would hang forever.  The
  // release comes from a separate thread so the waiting main thread really
  // has nothing to help with.
  WorkStealingPool pool(2);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  TaskGroup group(pool);
  group.spawn([&started, &release] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  // det-ok: test-only releaser thread, off the pool by design
  std::thread releaser([&started, &release] {
    while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 1000; ++i) std::this_thread::yield();
    release.store(true, std::memory_order_release);
  });
  group.wait();  // must wake on the completion notification, not a timeout
  releaser.join();
  EXPECT_TRUE(release.load());
}

TEST(WorkStealingPool, StealCountersAreSane) {
  // Counters are observational; what must hold under any interleaving:
  // every executed task is counted once, every successful steal implies an
  // attempt, and the queue drains to zero after a join.
  WorkStealingPool pool(4);
  const std::uint64_t run_before = pool.tasks_run();
  const Rng root(4242);
  const Node tree = build_tree(root.child("counters"), 3);
  (void)parallel_fold(pool, tree);

  std::size_t spawned = 0;
  const std::function<void(const Node&)> count = [&](const Node& n) {
    spawned += n.kids.size();  // one task per child of an inner node
    for (const Node& kid : n.kids) count(kid);
  };
  count(tree);

  EXPECT_EQ(pool.tasks_run() - run_before, spawned);
  EXPECT_LE(pool.tasks_stolen(), pool.steal_attempts());
  EXPECT_LE(pool.tasks_stolen(), pool.tasks_run());
  EXPECT_EQ(pool.queue_depth(), 0u);
}

// --- Exception propagation ------------------------------------------------

TEST(WorkStealingPool, TaskGroupWaitRethrowsTaskException) {
  WorkStealingPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ok_ran{0};
  group.spawn([] { throw std::runtime_error("spawned failure"); });
  for (int i = 0; i < 4; ++i)
    group.spawn([&ok_ran] { ok_ran.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // TaskGroup does not fail fast: the healthy siblings all still ran.
  EXPECT_EQ(ok_ran.load(), 4);
}

TEST(WorkStealingPool, ParallelForRethrowsLowestFailingIndex) {
  // Every index that executes throws an error naming itself; the legacy
  // contract requires the rethrown exception to be the lowest index that
  // actually failed, regardless of which workers stole what.
  WorkStealingPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> threw(kTasks);
  try {
    pool.parallel_for(kTasks, [&threw](std::size_t i) {
      threw[i].store(1, std::memory_order_relaxed);
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "parallel_for did not rethrow";
  } catch (const std::runtime_error& e) {
    std::size_t lowest = kTasks;
    for (std::size_t i = 0; i < kTasks; ++i)
      if (threw[i].load(std::memory_order_relaxed) != 0) {
        lowest = i;
        break;
      }
    ASSERT_LT(lowest, kTasks);
    EXPECT_EQ(e.what(), std::to_string(lowest));
  }
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealingPool, NestedGroupPropagatesThroughOuterTask) {
  // An inner group's failure rethrows from the inner wait() inside the
  // outer task, which the outer group captures and rethrows from its own
  // wait(): errors surface through nested fork-join scopes, not into
  // std::terminate on a worker thread.
  WorkStealingPool pool(2);
  TaskGroup outer(pool);
  outer.spawn([&pool] {
    TaskGroup inner(pool);
    inner.spawn([] { throw std::logic_error("inner failure"); });
    inner.wait();
  });
  EXPECT_THROW(outer.wait(), std::logic_error);
}

TEST(WorkStealingPool, GroupDestructorSwallowsUnobservedError) {
  WorkStealingPool pool(2);
  {
    TaskGroup group(pool);
    group.spawn([] { throw std::runtime_error("never observed"); });
    // No wait(): the destructor must join and swallow, not terminate.
  }
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkStealingPool, ManyWavesOnOneExternalThread) {
  // The campaign pattern: one long-lived pool, many short fan-out waves
  // injected from a non-worker thread.  The notify/park edge is where
  // lost-wakeup bugs live, so wave count is high and tasks are tiny.
  WorkStealingPool pool(3);
  std::atomic<long> hits{0};
  for (int wave = 0; wave < 200; ++wave) {
    pool.parallel_for(17, [&hits](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(hits.load(), 200L * 17);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

}  // namespace
}  // namespace ww::util
