// Failure injection and degenerate-input coverage for the whole stack.
#include <gtest/gtest.h>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"

namespace ww {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 3;
  return cfg;
}

std::vector<trace::Job> burst_trace(int count, double at, int home = 2) {
  std::vector<trace::Job> jobs;
  util::Rng rng(99);
  for (int i = 0; i < count; ++i) {
    trace::Job j;
    j.id = static_cast<std::uint64_t>(i);
    j.submit_time = at;
    j.home_region = home;
    trace::sample_instance(i % trace::num_benchmarks(), rng, j);
    jobs.push_back(j);
  }
  return jobs;
}

TEST(EdgeCases, MassiveSimultaneousBurstExercisesSlackManager) {
  // 500 jobs at t=0 against 175 servers: oversubscription forces the slack
  // manager + chunked MILP path; all jobs must still complete.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(500, 0.0);
  dc::SimConfig cfg;
  cfg.tol = 0.5;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseScheduler ww;
  const auto res = sim.run(jobs, ww);
  EXPECT_EQ(res.num_jobs, 500);
  EXPECT_GT(ww.stats().milp_solves, 0);
}

TEST(EdgeCases, ZeroDelayTolerance) {
  // tol = 0: no slack at all.  Remote transfers would violate instantly, so
  // WaterWise must keep everything home (the delay rows force it), and the
  // campaign still completes.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(3, 0.03));
  dc::SimConfig cfg;
  cfg.tol = 0.0;
  cfg.record_jobs = true;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseScheduler ww;
  const auto res = sim.run(jobs, ww);
  EXPECT_EQ(res.num_jobs, static_cast<long>(jobs.size()));
  long remote = 0;
  for (const auto& o : res.jobs)
    if (o.exec_region != o.home_region) ++remote;
  EXPECT_EQ(remote, 0);
}

TEST(EdgeCases, SingleRegionEnvironment) {
  // One region: nothing to optimize, but the whole pipeline must hold up.
  const env::Environment env =
      env::Environment::builtin_subset({2}, small_env());
  const footprint::FootprintModel fp(env);
  auto tcfg = trace::borg_config(5, 0.03);
  tcfg.num_regions = 1;
  tcfg.region_weights.clear();
  const auto jobs = trace::generate_trace(tcfg);
  dc::SimConfig cfg;
  cfg.tol = 0.5;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseScheduler ww;
  sched::BaselineScheduler baseline;
  const auto r_ww = sim.run(jobs, ww);
  const auto r_base = sim.run(jobs, baseline);
  EXPECT_EQ(r_ww.num_jobs, static_cast<long>(jobs.size()));
  // With one region WaterWise cannot beat baseline on placement; footprints
  // must agree to within scheduling-time noise.
  EXPECT_NEAR(r_ww.total_carbon_g / r_base.total_carbon_g, 1.0, 0.02);
}

TEST(EdgeCases, SingleServerPerRegionHeavyQueueing) {
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(60, 10.0);
  dc::SimConfig cfg;
  cfg.tol = 0.25;
  cfg.capacity_scale = 1e-9;  // clamps to 1 server per region
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseScheduler ww;
  const auto res = sim.run(jobs, ww);
  EXPECT_EQ(res.num_jobs, 60);
  EXPECT_GT(res.mean_service_norm(), 1.0);
  EXPECT_GT(res.violations, 0);  // 60 jobs through 5 servers cannot all fit
}

TEST(EdgeCases, GreedyOracleUnderSameBurst) {
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(120, 5.0);
  dc::SimConfig cfg;
  cfg.tol = 1.0;
  cfg.capacity_scale = 0.1;  // 3 per region
  dc::Simulator sim(env, fp, cfg);
  sched::GreedyOptScheduler carbon(sched::GreedyMetric::Carbon);
  const auto res = sim.run(jobs, carbon);
  EXPECT_EQ(res.num_jobs, 120);
}

TEST(EdgeCases, SingleJobTrace) {
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(1, 42.0, /*home=*/4);
  dc::SimConfig cfg;
  cfg.tol = 0.5;
  cfg.record_jobs = true;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseScheduler ww;
  const auto res = sim.run(jobs, ww);
  ASSERT_EQ(res.num_jobs, 1);
  EXPECT_GE(res.jobs[0].start_time, 42.0);
}

TEST(EdgeCases, ExtremePackageSizes) {
  // 10 GB packages make every transfer longer than any allowance.  With 40
  // jobs against 35 home servers, Eq. 9 still forces every selected job to
  // be placed, so the hard model is infeasible and Algorithm 1 softens:
  // at most the 5-job overflow crosses regions (at a delay penalty); the
  // 35 that fit stay home.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  auto jobs = burst_trace(40, 0.0, /*home=*/0);
  for (auto& j : jobs) j.package_bytes = 1.0e10;
  dc::SimConfig cfg;
  cfg.tol = 0.25;
  cfg.record_jobs = true;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseScheduler ww;
  const auto res = sim.run(jobs, ww);
  EXPECT_EQ(res.num_jobs, 40);
  long remote = 0;
  for (const auto& o : res.jobs)
    if (o.exec_region != o.home_region) ++remote;
  EXPECT_LE(remote, 5);
  EXPECT_GT(ww.stats().soft_fallbacks, 0);  // Alg. 1 lines 10-11 exercised
}

TEST(EdgeCases, WaterWiseMaxJobsPerSolveChunking) {
  // Force tiny chunks so one batch spans many MILP solves.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(50, 0.0);
  dc::SimConfig cfg;
  cfg.tol = 0.5;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseConfig ww_cfg;
  ww_cfg.max_jobs_per_solve = 7;
  core::WaterWiseScheduler ww(ww_cfg);
  const auto res = sim.run(jobs, ww);
  EXPECT_EQ(res.num_jobs, 50);
  EXPECT_GE(ww.stats().milp_solves, 50 / 7);
}

TEST(EdgeCases, SolverIterationLimitDegradesGracefully) {
  // An absurdly low iteration budget makes LP solves fail; WaterWise must
  // defer rather than crash, and jobs still finish via later batches or the
  // fallback when the budget allows.
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = burst_trace(10, 0.0);
  dc::SimConfig cfg;
  cfg.tol = 0.5;
  dc::Simulator sim(env, fp, cfg);
  core::WaterWiseConfig ww_cfg;
  ww_cfg.solver.max_iterations = 100000;  // generous: solves succeed
  core::WaterWiseScheduler ww(ww_cfg);
  EXPECT_NO_THROW({
    const auto res = sim.run(jobs, ww);
    EXPECT_EQ(res.num_jobs, 10);
  });
}

}  // namespace
}  // namespace ww
