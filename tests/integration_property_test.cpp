// Parameterized cross-scheduler invariants: for every (scheduler, tolerance)
// combination, the simulator must conserve jobs, respect capacity, keep
// service >= execution, and reproduce results bit-for-bit.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/ecovisor.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"

namespace ww {
namespace {

using SchedulerFactory = std::function<std::unique_ptr<dc::Scheduler>()>;

struct Combo {
  std::string label;
  SchedulerFactory make;
  double tol;
};

std::vector<Combo> combos() {
  std::vector<Combo> out;
  const std::vector<std::pair<std::string, SchedulerFactory>> factories = {
      {"baseline", [] { return std::make_unique<sched::BaselineScheduler>(); }},
      {"round-robin",
       [] { return std::make_unique<sched::RoundRobinScheduler>(); }},
      {"least-load",
       [] { return std::make_unique<sched::LeastLoadScheduler>(); }},
      {"ecovisor", [] { return std::make_unique<sched::EcovisorScheduler>(); }},
      {"carbon-greedy",
       [] {
         return std::make_unique<sched::GreedyOptScheduler>(
             sched::GreedyMetric::Carbon);
       }},
      {"water-greedy",
       [] {
         return std::make_unique<sched::GreedyOptScheduler>(
             sched::GreedyMetric::Water);
       }},
      {"waterwise", [] { return std::make_unique<core::WaterWiseScheduler>(); }},
  };
  for (const auto& [name, make] : factories)
    for (const double tol : {0.25, 1.0})
      out.push_back(Combo{name + "/tol" + std::to_string(static_cast<int>(tol * 100)),
                          make, tol});
  return out;
}

class SchedulerInvariants : public ::testing::TestWithParam<Combo> {
 protected:
  static env::EnvironmentConfig small_env() {
    env::EnvironmentConfig cfg;
    cfg.horizon_days = 4;
    return cfg;
  }
};

TEST_P(SchedulerInvariants, ConservationCapacityServiceDeterminism) {
  const Combo& combo = GetParam();
  const env::Environment env = env::Environment::builtin(small_env());
  const footprint::FootprintModel fp(env);
  const auto jobs = trace::generate_trace(trace::borg_config(99, 0.06));

  dc::SimConfig cfg;
  cfg.tol = combo.tol;
  cfg.record_jobs = true;
  cfg.capacity_scale = 0.2;  // some pressure so capacity logic is exercised
  dc::Simulator sim(env, fp, cfg);

  auto s1 = combo.make();
  const auto r1 = sim.run(jobs, *s1);

  // (1) Conservation: every job executed exactly once.
  ASSERT_EQ(r1.num_jobs, static_cast<long>(jobs.size()));
  ASSERT_EQ(r1.jobs.size(), jobs.size());
  std::vector<bool> seen(jobs.size(), false);
  for (const auto& o : r1.jobs) {
    ASSERT_LT(o.job_id, jobs.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(o.job_id)]);
    seen[static_cast<std::size_t>(o.job_id)] = true;
  }

  // (2) Capacity: event-sweep max concurrency per region bounded by the
  // server count.
  const auto caps = sim.region_capacities();
  for (int r = 0; r < env.num_regions(); ++r) {
    std::vector<std::pair<double, int>> events;
    for (const auto& o : r1.jobs) {
      if (o.exec_region != r) continue;
      events.emplace_back(o.start_time, +1);
      events.emplace_back(o.finish_time, -1);
    }
    std::sort(events.begin(), events.end());  // -1 sorts before +1 at ties
    int running = 0;
    int peak = 0;
    for (const auto& [t, d] : events) {
      running += d;
      peak = std::max(peak, running);
    }
    EXPECT_LE(peak, caps[static_cast<std::size_t>(r)])
        << combo.label << " region " << r;
  }

  // (3) Service sanity: start after submit, finish after start, duration at
  // least the true execution time (power scaling only stretches).
  for (const auto& o : r1.jobs) {
    EXPECT_GE(o.start_time, o.submit_time - 1e-9);
    const auto& j = jobs[static_cast<std::size_t>(o.job_id)];
    EXPECT_GE(o.exec_seconds, j.exec_seconds * 0.999);
    EXPECT_NEAR(o.finish_time, o.start_time + o.exec_seconds, 1e-6);
    EXPECT_GT(o.carbon_g, 0.0);
    EXPECT_GT(o.water_l, 0.0);
  }

  // (4) Determinism: a fresh scheduler instance reproduces everything.
  auto s2 = combo.make();
  const auto r2 = sim.run(jobs, *s2);
  EXPECT_DOUBLE_EQ(r1.total_carbon_g, r2.total_carbon_g) << combo.label;
  EXPECT_DOUBLE_EQ(r1.total_water_l, r2.total_water_l) << combo.label;
  EXPECT_EQ(r1.violations, r2.violations) << combo.label;
  EXPECT_EQ(r1.jobs_per_region, r2.jobs_per_region) << combo.label;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerInvariants,
                         ::testing::ValuesIn(combos()),
                         [](const ::testing::TestParamInfo<Combo>& param) {
                           std::string name = param.param.label;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

}  // namespace
}  // namespace ww
