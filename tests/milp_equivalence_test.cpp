// Cross-mode equivalence harness: every instance family in
// milp/instances.hpp swept across the full cartesian product of solver
// modes — {presolve on/off} x {warm/cold} x {Devex/Dantzig} x
// {Forrest-Tomlin/refactorize-every-pivot} — asserting identical
// objectives and feasible, integral answers.  Subsystem interactions are
// covered combinatorially here, so a change to any one of presolve, the
// LU kernel, pricing, or warm start that only misbehaves in combination
// with another still trips a failure.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "milp/model.hpp"
#include "obs/trace.hpp"
#include "util/work_steal.hpp"

namespace ww::milp {
namespace {

struct Instance {
  const char* name;
  Model model;
};

std::vector<Instance> corpus() {
  std::vector<Instance> out;
  out.push_back({"shaped-24x4", waterwise_shaped_model(24, 4)});
  out.push_back({"hard-chunk-60x4", hard_chunk_model(60, 4, 0.4)});
  out.push_back({"soft-chunk-30x4", soft_chunk_model(30, 4)});
  out.push_back({"weak-relax-10x3", weak_relaxation_model(10, 3, 5.0)});
  return out;
}

std::string mode_name(int mask) {
  std::string s;
  s += (mask & 1) ? "presolve" : "raw";
  s += (mask & 2) ? "+warm" : "+cold";
  s += (mask & 4) ? "+devex" : "+dantzig";
  s += (mask & 8) ? "+ft" : "+refactor-every-pivot";
  return s;
}

SolverOptions mode_options(int mask) {
  SolverOptions o;
  o.presolve = (mask & 1) != 0;
  o.warm_start = (mask & 2) != 0;
  o.pricing = (mask & 4) != 0 ? Pricing::Devex : Pricing::Dantzig;
  o.update_budget = (mask & 8) != 0 ? 64 : 0;
  return o;
}

TEST(MilpEquivalence, AllModeCombinationsAgree) {
  for (Instance& inst : corpus()) {
    // Reference: all subsystems on, exactly the production defaults.
    const Solution ref = solve(inst.model, mode_options(0xF));
    ASSERT_EQ(ref.status, Status::Optimal) << inst.name;
    ASSERT_LE(inst.model.max_violation(ref.values), 1e-6) << inst.name;

    for (int mask = 0; mask < 16; ++mask) {
      const SolverOptions opts = mode_options(mask);
      const Solution sol = solve(inst.model, opts);
      const std::string tag =
          std::string(inst.name) + " [" + mode_name(mask) + "]";
      ASSERT_EQ(sol.status, Status::Optimal) << tag;
      EXPECT_NEAR(sol.objective, ref.objective, 1e-7) << tag;
      EXPECT_LE(inst.model.max_violation(sol.values), 1e-6) << tag;
      for (int j = 0; j < inst.model.num_variables(); ++j) {
        if (inst.model.variable(j).type == VarType::Continuous) continue;
        const double v = sol.values[static_cast<std::size_t>(j)];
        EXPECT_NEAR(v, std::round(v), 1e-6) << tag << " var " << j;
      }
    }
  }
}

/// Continuous relaxation of `m`: same bounds, objective, and rows, every
/// variable continuous.
Model relax(const Model& m) {
  Model out;
  out.reserve(m.num_variables(), m.num_constraints());
  for (int j = 0; j < m.num_variables(); ++j) {
    const Variable& v = m.variable(j);
    (void)out.add_variable(v.lower, v.upper, VarType::Continuous, v.objective);
  }
  for (int i = 0; i < m.num_constraints(); ++i) {
    const Constraint& c = m.constraint(i);
    (void)out.add_constraint(c.terms, c.sense, c.rhs);
  }
  return out;
}

TEST(MilpEquivalence, PureLpModesAgree) {
  // The same sweep for the LP path (no integer variables): relaxing the
  // corpus exercises the plain simplex + duals extraction under every
  // kernel/pricing/presolve combination, where warm start is irrelevant
  // but must at least not break anything.
  for (Instance& inst : corpus()) {
    const Model relaxed = relax(inst.model);

    const Solution ref = solve(relaxed, mode_options(0xF));
    ASSERT_EQ(ref.status, Status::Optimal) << inst.name << " (LP)";
    for (int mask = 0; mask < 16; ++mask) {
      const Solution sol = solve(relaxed, mode_options(mask));
      const std::string tag =
          std::string(inst.name) + " LP [" + mode_name(mask) + "]";
      ASSERT_EQ(sol.status, Status::Optimal) << tag;
      EXPECT_NEAR(sol.objective, ref.objective, 1e-7) << tag;
      EXPECT_LE(relaxed.max_violation(sol.values), 1e-6) << tag;
    }
  }
}

TEST(MilpEquivalence, ConcurrentSolvesMatchSerialBitwise) {
  // The scheduler's plan/solve/commit pipeline fans independent chunk MILPs
  // across the work-stealing pool, which is only sound if milp::solve keeps
  // no shared mutable state: eight simultaneous solves of each corpus family
  // must return bitwise the answer of a serial solve.  (The solver is
  // deterministic, so "equal" here means ==, not within a tolerance.)
  util::WorkStealingPool pool(4);
  for (Instance& inst : corpus()) {
    const Solution ref = solve(inst.model, mode_options(0xF));
    ASSERT_EQ(ref.status, Status::Optimal) << inst.name;

    constexpr std::size_t kConcurrent = 8;
    std::vector<Solution> sols(kConcurrent);
    pool.parallel_for(kConcurrent, [&](std::size_t i) {
      sols[i] = solve(inst.model, mode_options(0xF));
    });
    for (std::size_t i = 0; i < kConcurrent; ++i) {
      const std::string tag =
          std::string(inst.name) + " concurrent #" + std::to_string(i);
      EXPECT_EQ(sols[i].status, ref.status) << tag;
      EXPECT_EQ(sols[i].objective, ref.objective) << tag;
      EXPECT_EQ(sols[i].values, ref.values) << tag;
      EXPECT_EQ(sols[i].nodes_explored, ref.nodes_explored) << tag;
      EXPECT_EQ(sols[i].simplex_iterations, ref.simplex_iterations) << tag;
    }
  }
}

TEST(MilpEquivalence, InfeasibleAgreesAcrossModes) {
  // Infeasibility must also be mode-independent: an over-capacitated
  // assignment (12 jobs but only 4 x 2 = 8 slots) has no feasible point,
  // and every combination must prove it rather than return something.
  const int jobs = 12, regions = 4;
  Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary(0.5 + 0.1 * r);
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(std::move(t), Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint(std::move(t), Sense::LessEqual, 2.0);
  }
  for (int mask = 0; mask < 16; ++mask) {
    const Solution sol = solve(m, mode_options(mask));
    EXPECT_EQ(sol.status, Status::Infeasible) << mode_name(mask);
  }
}

TEST(MilpEquivalence, TracingOnOffBitwiseIdentical) {
  // Span tracing wraps milp::solve, the presolver, and the simplex; it is
  // observational, so traced and untraced solves must return bitwise the
  // same Solution (values, counters, node counts) across every mode mask.
  for (Instance& inst : corpus()) {
    for (const int mask : {0x0, 0xF}) {
      obs::Trace::instance().set_enabled(false);
      const Solution off = solve(inst.model, mode_options(mask));
      obs::Trace::instance().set_enabled(true);
      const Solution on = solve(inst.model, mode_options(mask));
      obs::Trace::instance().set_enabled(false);
      obs::Trace::instance().clear();
      const std::string tag =
          std::string(inst.name) + " [" + mode_name(mask) + "]";
      EXPECT_EQ(on.status, off.status) << tag;
      EXPECT_EQ(on.objective, off.objective) << tag;
      EXPECT_EQ(on.values, off.values) << tag;
      EXPECT_EQ(on.nodes_explored, off.nodes_explored) << tag;
      EXPECT_EQ(on.simplex_iterations, off.simplex_iterations) << tag;
      EXPECT_EQ(on.warm_started_nodes, off.warm_started_nodes) << tag;
      EXPECT_EQ(on.ft_updates, off.ft_updates) << tag;
      EXPECT_EQ(on.presolve_rows_removed, off.presolve_rows_removed) << tag;
    }
  }
}

}  // namespace
}  // namespace ww::milp
