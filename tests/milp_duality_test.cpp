// Dual values and reduced costs: textbook checks plus the LP identity
//   c^T x = y^T b + sum_j d_j x_j + sum_i d_slack_i slack_i
// (d_slack_i = -y_i since slack columns are unit columns with zero cost),
// and optimality sign conditions on randomized feasible programs.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

TEST(Duality, TextbookDuals) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
  // Optimal (2, 6); binding rows 2 and 3 with duals (0, -3/2, -1).
  Model m;
  const int x = m.add_continuous("x", 0.0, kInfinity, -3.0);
  const int y = m.add_continuous("y", 0.0, kInfinity, -5.0);
  (void)m.add_constraint("c1", {{x, 1.0}}, Sense::LessEqual, 4.0);
  (void)m.add_constraint("c2", {{y, 2.0}}, Sense::LessEqual, 12.0);
  (void)m.add_constraint("c3", {{x, 3.0}, {y, 2.0}}, Sense::LessEqual, 18.0);
  SimplexSolver s(m);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  ASSERT_EQ(sol.duals.size(), 3u);
  EXPECT_NEAR(sol.duals[0], 0.0, 1e-8);
  EXPECT_NEAR(sol.duals[1], -1.5, 1e-8);
  EXPECT_NEAR(sol.duals[2], -1.0, 1e-8);
  // Basic structural variables have zero reduced cost.
  EXPECT_NEAR(sol.reduced_costs[0], 0.0, 1e-8);
  EXPECT_NEAR(sol.reduced_costs[1], 0.0, 1e-8);
  // Strong duality for this (lb = 0) program: obj = y^T b.
  EXPECT_NEAR(sol.objective, -1.5 * 12.0 - 1.0 * 18.0, 1e-8);
}

TEST(Duality, ReducedCostSignsAtBounds) {
  // min x1 + 2 x2 - x3, all in [0, 2], x1 + x2 + x3 >= 1.
  Model m;
  (void)m.add_continuous("x1", 0.0, 2.0, 1.0);
  (void)m.add_continuous("x2", 0.0, 2.0, 2.0);
  (void)m.add_continuous("x3", 0.0, 2.0, -1.0);
  (void)m.add_constraint("c", {{0, 1.0}, {1, 1.0}, {2, 1.0}},
                         Sense::GreaterEqual, 1.0);
  SimplexSolver s(m);
  const Solution sol = s.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  // x3 = 2 (at upper) with negative reduced cost; x1, x2 at lower with
  // non-negative reduced costs.
  EXPECT_NEAR(sol.values[2], 2.0, 1e-9);
  EXPECT_LE(sol.reduced_costs[2], 1e-9);
  EXPECT_GE(sol.reduced_costs[0], -1e-9);
  EXPECT_GE(sol.reduced_costs[1], -1e-9);
}

class DualityProperty : public ::testing::TestWithParam<int> {};

TEST_P(DualityProperty, LagrangianIdentityAndSigns) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 11);
  const int n = static_cast<int>(rng.uniform_int(2, 7));
  const int rows = static_cast<int>(rng.uniform_int(1, 5));

  Model m;
  std::vector<double> witness;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 4.0);
    (void)m.add_continuous("x", lo, hi, rng.uniform(-2.0, 2.0));
    witness.push_back(lo + 0.5 * (hi - lo));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.25)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({j, c});
      lhs += c * witness[static_cast<std::size_t>(j)];
    }
    if (terms.empty()) terms.push_back({0, 1.0}), lhs = witness[0];
    (void)m.add_constraint("r", std::move(terms), Sense::LessEqual,
                           lhs + rng.uniform(0.05, 2.0));
  }

  SimplexSolver solver(m);
  const Solution sol = solver.solve();
  ASSERT_EQ(sol.status, Status::Optimal);
  ASSERT_EQ(sol.duals.size(), static_cast<std::size_t>(m.num_constraints()));
  ASSERT_EQ(sol.reduced_costs.size(), static_cast<std::size_t>(n));

  // Lagrangian identity: c.x = y.b + sum_j d_j x_j + sum_i (-y_i) slack_i.
  double rhs_total = 0.0;
  for (int i = 0; i < m.num_constraints(); ++i) {
    const Constraint& c = m.constraint(i);
    double activity = 0.0;
    for (const Term& t : c.terms)
      activity += t.coeff * sol.values[static_cast<std::size_t>(t.var)];
    const double slack = c.rhs - activity;  // row + slack = rhs
    rhs_total += sol.duals[static_cast<std::size_t>(i)] * c.rhs;
    rhs_total += -sol.duals[static_cast<std::size_t>(i)] * slack;
  }
  for (int j = 0; j < n; ++j)
    rhs_total +=
        sol.reduced_costs[static_cast<std::size_t>(j)] * sol.values[static_cast<std::size_t>(j)];
  EXPECT_NEAR(sol.objective, rhs_total, 1e-6);

  // Sign conditions: d_j >= 0 when x_j at lower bound, <= 0 at upper, ~0 in
  // the interior.  LE rows require y_i <= 0 in min form (slack at lower
  // bound 0 must not price in).
  for (int j = 0; j < n; ++j) {
    const auto& v = m.variable(j);
    const double x = sol.values[static_cast<std::size_t>(j)];
    const double d = sol.reduced_costs[static_cast<std::size_t>(j)];
    if (x > v.lower + 1e-7 && x < v.upper - 1e-7) {
      EXPECT_NEAR(d, 0.0, 1e-6);
    }
    if (std::abs(x - v.lower) <= 1e-9 && std::abs(x - v.upper) > 1e-9) {
      EXPECT_GE(d, -1e-6);
    }
    if (std::abs(x - v.upper) <= 1e-9 && std::abs(x - v.lower) > 1e-9) {
      EXPECT_LE(d, 1e-6);
    }
  }
  for (const double y : sol.duals) EXPECT_LE(y, 1e-6);  // all rows are LE
}

INSTANTIATE_TEST_SUITE_P(Sweep, DualityProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace ww::milp
