// Property sweeps for the footprint model: hourly integration must agree
// with a fine-grained numeric reference, scale linearly, and decompose
// consistently across random (region, time, duration, energy) draws.
#include <gtest/gtest.h>

#include <cmath>

#include "footprint/footprint.hpp"
#include "util/rng.hpp"

namespace ww::footprint {
namespace {

env::EnvironmentConfig small_config() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 40;
  return cfg;
}

const env::Environment& shared_env() {
  static const env::Environment env = env::Environment::builtin(small_config());
  return env;
}

/// Fine-step (1-minute) numeric reference for the operational terms.
Breakdown reference_integrated(const env::Environment& env,
                               const FootprintModel& model, int r,
                               double start, double dur, double energy) {
  Breakdown total;
  const int steps = std::max(1, static_cast<int>(dur / 60.0));
  const double dt = dur / steps;
  for (int i = 0; i < steps; ++i) {
    const double mid = start + (i + 0.5) * dt;
    const double e = energy * dt / dur;
    const double scarcity = 1.0 + env.wsf(r);
    total.operational_carbon_g += e * env.carbon_intensity(r, mid);
    total.offsite_water_l += env.pue(r) * e * env.ewif(r, mid) * scarcity;
    total.onsite_water_l += e * env.wue(r, mid) * scarcity;
  }
  const double amortization = dur / model.server().lifetime_seconds;
  total.embodied_carbon_g = amortization * model.server().embodied_carbon_g;
  total.embodied_water_l = amortization * model.server().embodied_water_l();
  return total;
}

class FootprintProperty : public ::testing::TestWithParam<int> {};

TEST_P(FootprintProperty, IntegrationMatchesFineReference) {
  const env::Environment& env = shared_env();
  const FootprintModel model(env);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 127 + 1);

  const int r = static_cast<int>(rng.uniform_int(0, env.num_regions() - 1));
  const double start = rng.uniform(0.0, 30.0 * 86400.0);
  const double dur = rng.uniform(30.0, 12.0 * 3600.0);
  const double energy = rng.uniform(1e-3, 2.0);

  const Breakdown fast = model.job_integrated(r, start, dur, energy);
  const Breakdown ref = reference_integrated(env, model, r, start, dur, energy);

  // Hourly vs. minute integration: Riemann sums on different grids.  CI and
  // EWIF are piecewise-linear (tight agreement); WUE additionally has the
  // cooling-tower floor clamp, whose kinks inside an hour slice bias the
  // hourly midpoint rule, so onsite water gets a wider band.
  EXPECT_NEAR(fast.operational_carbon_g, ref.operational_carbon_g,
              0.02 * ref.operational_carbon_g + 1e-9);
  EXPECT_NEAR(fast.offsite_water_l, ref.offsite_water_l,
              0.02 * ref.offsite_water_l + 1e-9);
  EXPECT_NEAR(fast.onsite_water_l, ref.onsite_water_l,
              0.12 * ref.onsite_water_l + 0.01);
  EXPECT_NEAR(fast.embodied_carbon_g, ref.embodied_carbon_g, 1e-9);
  EXPECT_NEAR(fast.embodied_water_l, ref.embodied_water_l, 1e-9);
}

TEST_P(FootprintProperty, EnergyLinearity) {
  const env::Environment& env = shared_env();
  const FootprintModel model(env);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 7);
  const int r = static_cast<int>(rng.uniform_int(0, env.num_regions() - 1));
  const double start = rng.uniform(0.0, 30.0 * 86400.0);
  const double dur = rng.uniform(30.0, 4.0 * 3600.0);
  const double e = rng.uniform(1e-3, 1.0);
  const double k = rng.uniform(1.5, 4.0);

  const Breakdown one = model.job_integrated(r, start, dur, e);
  const Breakdown scaled = model.job_integrated(r, start, dur, k * e);
  EXPECT_NEAR(scaled.operational_carbon_g, k * one.operational_carbon_g,
              1e-6 * scaled.operational_carbon_g + 1e-12);
  EXPECT_NEAR(scaled.offsite_water_l + scaled.onsite_water_l,
              k * (one.offsite_water_l + one.onsite_water_l),
              1e-6 * scaled.water_l() + 1e-12);
  // Embodied terms depend on duration, not energy.
  EXPECT_DOUBLE_EQ(scaled.embodied_carbon_g, one.embodied_carbon_g);
}

TEST_P(FootprintProperty, SplitIntervalAdditivity) {
  // Integrating [t, t+d) equals integrating [t, t+a) + [t+a, t+d) with
  // energy split proportionally.
  const env::Environment& env = shared_env();
  const FootprintModel model(env);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 499 + 3);
  const int r = static_cast<int>(rng.uniform_int(0, env.num_regions() - 1));
  const double start = rng.uniform(0.0, 30.0 * 86400.0);
  const double dur = rng.uniform(600.0, 8.0 * 3600.0);
  const double e = rng.uniform(0.01, 1.0);
  const double frac = rng.uniform(0.2, 0.8);

  const Breakdown whole = model.job_integrated(r, start, dur, e);
  const Breakdown a = model.job_integrated(r, start, frac * dur, frac * e);
  const Breakdown b = model.job_integrated(r, start + frac * dur,
                                           (1.0 - frac) * dur, (1.0 - frac) * e);
  // Splitting inside an hour slice moves that slice's midpoint sample, so
  // additivity holds to quadrature accuracy, not exactly.
  EXPECT_NEAR(whole.operational_carbon_g,
              a.operational_carbon_g + b.operational_carbon_g,
              5e-3 * whole.operational_carbon_g + 1e-9);
  EXPECT_NEAR(whole.water_l() - whole.embodied_water_l,
              (a.water_l() - a.embodied_water_l) +
                  (b.water_l() - b.embodied_water_l),
              5e-3 * whole.water_l() + 1e-9);
  EXPECT_NEAR(whole.embodied_carbon_g,
              a.embodied_carbon_g + b.embodied_carbon_g, 1e-9);
}

TEST_P(FootprintProperty, WaterIntensityBoundsOperationalWater) {
  // Per Eq. 2/3/6: operational water == E * water-intensity when intensities
  // are frozen, so integrated operational water per kWh must lie within the
  // min/max water intensity over the window.
  const env::Environment& env = shared_env();
  const FootprintModel model(env);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 881 + 9);
  const int r = static_cast<int>(rng.uniform_int(0, env.num_regions() - 1));
  const double start = rng.uniform(0.0, 30.0 * 86400.0);
  const double dur = rng.uniform(600.0, 6.0 * 3600.0);
  const double e = rng.uniform(0.01, 1.0);

  const Breakdown b = model.job_integrated(r, start, dur, e);
  const double per_kwh = (b.offsite_water_l + b.onsite_water_l) / e;
  double lo = 1e18;
  double hi = 0.0;
  for (double t = start; t <= start + dur; t += 300.0) {
    const double wi = env.water_intensity(r, t);
    lo = std::min(lo, wi);
    hi = std::max(hi, wi);
  }
  EXPECT_GE(per_kwh, lo * 0.99);
  EXPECT_LE(per_kwh, hi * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FootprintProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace ww::footprint
