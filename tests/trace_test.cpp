#include <gtest/gtest.h>

#include <sstream>

#include "trace/arrival.hpp"
#include "trace/benchmark_profile.hpp"
#include "trace/generator.hpp"
#include "util/stats.hpp"

namespace ww::trace {
namespace {

TEST(BenchmarkProfiles, TableOneContents) {
  ASSERT_EQ(num_benchmarks(), 10);
  int parsec = 0;
  int cloudsuite = 0;
  for (const auto& p : benchmark_profiles()) {
    if (p.suite == "PARSEC") ++parsec;
    if (p.suite == "CloudSuite") ++cloudsuite;
    EXPECT_GT(p.mean_exec_s, 0.0);
    EXPECT_GT(p.mean_power_w, 0.0);
    EXPECT_GT(p.package_mb, 0.0);
  }
  EXPECT_EQ(parsec, 5);
  EXPECT_EQ(cloudsuite, 5);
  EXPECT_EQ(profile(0).name, "Dedup");
  EXPECT_THROW((void)profile(99), std::out_of_range);
}

TEST(BenchmarkProfiles, UtilizationCalibration) {
  // Borg rate (~0.266/s) x mean exec / 175 servers ~ 15% utilization.
  const double rate = 230000.0 / (10.0 * 86400.0);
  const double util = rate * mean_exec_seconds_overall() / 175.0;
  EXPECT_GT(util, 0.10);
  EXPECT_LT(util, 0.22);
}

TEST(BenchmarkProfiles, SampledInstanceMeansConverge) {
  util::Rng rng(5);
  util::RunningStats exec;
  util::RunningStats power;
  Job j;
  for (int i = 0; i < 20000; ++i) {
    sample_instance(2, rng, j);  // Canneal
    exec.add(j.exec_seconds);
    power.add(j.avg_power_watts);
    ASSERT_GT(j.exec_seconds, 0.0);
  }
  EXPECT_NEAR(exec.mean(), profile(2).mean_exec_s, profile(2).mean_exec_s * 0.03);
  EXPECT_NEAR(power.mean(), profile(2).mean_power_w,
              profile(2).mean_power_w * 0.02);
  // Dispersion close to the configured CV.
  EXPECT_NEAR(exec.stddev() / exec.mean(), profile(2).exec_cv, 0.05);
}

TEST(Arrivals, RateMatchesConfiguration) {
  ArrivalConfig cfg;
  cfg.base_rate_per_s = 0.25;
  const double horizon = 4.0 * 86400.0;
  const auto times = generate_arrivals(cfg, horizon, util::Rng(7));
  // Burst multipliers average out near 1 given the sojourn split.
  const double rate = static_cast<double>(times.size()) / horizon;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(Arrivals, SortedAndInHorizon) {
  ArrivalConfig cfg;
  const auto times = generate_arrivals(cfg, 86400.0, util::Rng(9));
  ASSERT_FALSE(times.empty());
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GE(times[i], times[i - 1]);
  EXPECT_GE(times.front(), 0.0);
  EXPECT_LT(times.back(), 86400.0);
}

TEST(Arrivals, DiurnalFactorMeansOne) {
  for (const DiurnalShape shape :
       {DiurnalShape::Flat, DiurnalShape::SinglePeak, DiurnalShape::DoublePeak}) {
    double total = 0.0;
    const int steps = 24 * 60;
    for (int i = 0; i < steps; ++i)
      total += diurnal_factor(shape, 0.5, 14.0, i * 60.0);
    EXPECT_NEAR(total / steps, 1.0, 0.01);
  }
}

TEST(Arrivals, DiurnalPeakAtConfiguredHour) {
  const double peak =
      diurnal_factor(DiurnalShape::SinglePeak, 0.5, 14.0, 14.0 * 3600.0);
  const double trough =
      diurnal_factor(DiurnalShape::SinglePeak, 0.5, 14.0, 2.0 * 3600.0);
  EXPECT_GT(peak, trough);
  EXPECT_NEAR(peak, 1.5, 1e-9);
}

TEST(BorgTrace, JobCountMatchesPaperScale) {
  // Full 10-day trace: ~230k jobs (within burst-noise tolerance).
  const auto jobs = generate_trace(borg_config(/*seed=*/3, /*days=*/10.0));
  EXPECT_GT(jobs.size(), 180000u);
  EXPECT_LT(jobs.size(), 280000u);
}

TEST(BorgTrace, DeterministicPerSeed) {
  const auto a = generate_trace(borg_config(11, 0.5));
  const auto b = generate_trace(borg_config(11, 0.5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].home_region, b[i].home_region);
    EXPECT_DOUBLE_EQ(a[i].exec_seconds, b[i].exec_seconds);
  }
  const auto c = generate_trace(borg_config(12, 0.5));
  EXPECT_NE(a.size(), c.size());
}

TEST(BorgTrace, FieldsWellFormed) {
  const auto jobs = generate_trace(borg_config(5, 1.0));
  ASSERT_FALSE(jobs.empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    EXPECT_EQ(j.id, i);
    EXPECT_GE(j.home_region, 0);
    EXPECT_LT(j.home_region, 5);
    EXPECT_GE(j.benchmark, 0);
    EXPECT_LT(j.benchmark, num_benchmarks());
    EXPECT_GT(j.exec_seconds, 0.0);
    EXPECT_GT(j.energy_kwh(), 0.0);
    if (i > 0) {
      EXPECT_GE(j.submit_time, jobs[i - 1].submit_time);
    }
  }
}

TEST(BorgTrace, RegionWeightsRespected) {
  const auto cfg = borg_config(17, 2.0);
  const auto jobs = generate_trace(cfg);
  std::vector<double> counts(5, 0.0);
  for (const Job& j : jobs)
    counts[static_cast<std::size_t>(j.home_region)] += 1.0;
  for (int r = 0; r < 5; ++r)
    EXPECT_NEAR(counts[static_cast<std::size_t>(r)] /
                    static_cast<double>(jobs.size()),
                cfg.region_weights[static_cast<std::size_t>(r)], 0.02);
}

TEST(AlibabaTrace, RateIs8p5xBorg) {
  const auto borg = generate_trace(borg_config(21, 1.0));
  const auto ali = generate_trace(alibaba_config(21, 1.0));
  const double ratio =
      static_cast<double>(ali.size()) / static_cast<double>(borg.size());
  EXPECT_NEAR(ratio, 8.5, 1.5);
}

TEST(AlibabaTrace, ShorterJobsKeepUtilizationComparable) {
  const auto borg = generate_trace(borg_config(23, 0.5));
  const auto ali = generate_trace(alibaba_config(23, 0.5));
  double borg_work = 0.0;
  double ali_work = 0.0;
  for (const Job& j : borg) borg_work += j.exec_seconds;
  for (const Job& j : ali) ali_work += j.exec_seconds;
  EXPECT_NEAR(ali_work / borg_work, 1.0, 0.35);
}

TEST(TraceConfig, RateMultiplier) {
  auto cfg = borg_config(29, 1.0);
  const auto base = generate_trace(cfg);
  cfg.rate_multiplier = 2.0;
  const auto doubled = generate_trace(cfg);
  EXPECT_NEAR(static_cast<double>(doubled.size()) /
                  static_cast<double>(base.size()),
              2.0, 0.3);
}

TEST(TraceCsv, RoundTrips) {
  const auto jobs = generate_trace(borg_config(31, 0.05));
  ASSERT_FALSE(jobs.empty());
  std::ostringstream out;
  write_trace_csv(out, jobs);
  std::istringstream in(out.str());
  const auto back = read_trace_csv(in);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i].id, jobs[i].id);
    EXPECT_DOUBLE_EQ(back[i].submit_time, jobs[i].submit_time);
    EXPECT_EQ(back[i].home_region, jobs[i].home_region);
    EXPECT_EQ(back[i].benchmark, jobs[i].benchmark);
    EXPECT_DOUBLE_EQ(back[i].exec_seconds, jobs[i].exec_seconds);
    EXPECT_DOUBLE_EQ(back[i].avg_power_watts, jobs[i].avg_power_watts);
    EXPECT_DOUBLE_EQ(back[i].package_bytes, jobs[i].package_bytes);
  }
}

TEST(TraceCsv, EmptyStream) {
  std::istringstream in("");
  EXPECT_TRUE(read_trace_csv(in).empty());
}

TEST(TraceConfig, Validation) {
  auto cfg = borg_config(1, 0.1);
  cfg.num_regions = 0;
  EXPECT_THROW((void)generate_trace(cfg), std::invalid_argument);
  cfg = borg_config(1, 0.1);
  cfg.region_weights = {1.0, 1.0};  // wrong size
  EXPECT_THROW((void)generate_trace(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ww::trace
