#include <gtest/gtest.h>

#include "core/waterwise.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"

namespace ww::core {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 5;
  return cfg;
}

struct Rig {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  std::vector<trace::Job> jobs = trace::generate_trace(trace::borg_config(3, 0.1));

  dc::CampaignResult run(dc::Scheduler& s, double tol = 0.5,
                         double capacity_scale = 1.0) {
    dc::SimConfig cfg;
    cfg.tol = tol;
    cfg.capacity_scale = capacity_scale;
    dc::Simulator sim(env, fp, cfg);
    return sim.run(jobs, s);
  }
};

TEST(WaterWise, CompletesAllJobs) {
  Rig rig;
  WaterWiseScheduler ww;
  const auto res = rig.run(ww);
  EXPECT_EQ(res.num_jobs, static_cast<long>(rig.jobs.size()));
  EXPECT_EQ(res.scheduler_name, "WaterWise");
}

TEST(WaterWise, BeatsBaselineOnBothMetrics) {
  // The headline claim: simultaneous carbon AND water savings vs. the
  // carbon/water-unaware baseline.
  Rig rig;
  sched::BaselineScheduler baseline;
  WaterWiseScheduler ww;
  const auto base = rig.run(baseline);
  const auto res = rig.run(ww);
  EXPECT_GT(res.carbon_saving_pct_vs(base), 5.0);
  EXPECT_GT(res.water_saving_pct_vs(base), 5.0);
}

TEST(WaterWise, SitsBetweenTheGreedyOracles) {
  // Fig. 5 structure: WaterWise is within striking distance of each
  // single-metric oracle without matching either exactly.
  Rig rig;
  WaterWiseScheduler ww;
  sched::GreedyOptScheduler carbon(sched::GreedyMetric::Carbon);
  sched::GreedyOptScheduler water(sched::GreedyMetric::Water);
  const auto res = rig.run(ww);
  const auto c = rig.run(carbon);
  const auto w = rig.run(water);
  // The oracles have future knowledge, so WaterWise cannot beat them by a
  // large margin on their own metric; allow small wins from capacity noise.
  EXPECT_GT(res.total_carbon_g, c.total_carbon_g * 0.92);
  EXPECT_GT(res.total_water_l, w.total_water_l * 0.92);
}

TEST(WaterWise, FewViolations) {
  // Table 2: WaterWise violations stay well under 5%.
  Rig rig;
  WaterWiseScheduler ww;
  const auto res = rig.run(ww, 0.25);
  EXPECT_LT(res.violation_pct(), 5.0);
}

TEST(WaterWise, ServiceTimeWellUnderTolerance) {
  // Table 2: mean normalized service time (1.03-1.13x) far below 1+TOL.
  Rig rig;
  WaterWiseScheduler ww;
  const auto res = rig.run(ww, 0.5);
  EXPECT_LT(res.mean_service_norm(), 1.3);
  EXPECT_GE(res.mean_service_norm(), 1.0);
}

TEST(WaterWise, LambdaSweepShiftsTheTradeoff) {
  // Fig. 8: more carbon weight => at least as much carbon saving, and the
  // water/carbon balance moves in the expected direction.
  Rig rig;
  sched::BaselineScheduler baseline;
  const auto base = rig.run(baseline);

  WaterWiseConfig lo;
  lo.lambda_co2 = 0.3;
  lo.lambda_h2o = 0.7;
  WaterWiseConfig hi;
  hi.lambda_co2 = 0.7;
  hi.lambda_h2o = 0.3;
  WaterWiseScheduler ww_lo(lo);
  WaterWiseScheduler ww_hi(hi);
  const auto r_lo = rig.run(ww_lo);
  const auto r_hi = rig.run(ww_hi);

  EXPECT_GT(r_hi.carbon_saving_pct_vs(base),
            r_lo.carbon_saving_pct_vs(base) - 1.0);
  EXPECT_GT(r_lo.water_saving_pct_vs(base),
            r_hi.water_saving_pct_vs(base) - 1.0);
  // Both stay better than baseline on both metrics.
  EXPECT_GT(r_lo.carbon_saving_pct_vs(base), 0.0);
  EXPECT_GT(r_hi.water_saving_pct_vs(base), 0.0);
}

TEST(WaterWise, DeterministicAcrossRuns) {
  Rig rig;
  WaterWiseScheduler a;
  WaterWiseScheduler b;
  const auto r1 = rig.run(a);
  const auto r2 = rig.run(b);
  EXPECT_DOUBLE_EQ(r1.total_carbon_g, r2.total_carbon_g);
  EXPECT_DOUBLE_EQ(r1.total_water_l, r2.total_water_l);
  EXPECT_EQ(r1.jobs_per_region, r2.jobs_per_region);
}

TEST(WaterWise, SurvivesSevereCapacityPressure) {
  // Slack manager + soft constraints path: more jobs than total capacity.
  Rig rig;
  WaterWiseScheduler ww;
  const auto res = rig.run(ww, 0.25, /*capacity_scale=*/0.05);
  EXPECT_EQ(res.num_jobs, static_cast<long>(rig.jobs.size()));
  EXPECT_GT(res.mean_service_norm(), 1.0);  // queueing happened
}

TEST(WaterWise, HistoryAblationChangesNothingStructural) {
  Rig rig;
  WaterWiseConfig no_hist;
  no_hist.enable_history = false;
  WaterWiseScheduler ww(no_hist);
  sched::BaselineScheduler baseline;
  const auto base = rig.run(baseline);
  const auto res = rig.run(ww);
  EXPECT_EQ(res.num_jobs, static_cast<long>(rig.jobs.size()));
  EXPECT_GT(res.carbon_saving_pct_vs(base), 0.0);
}

TEST(WaterWise, ConfigValidation) {
  WaterWiseConfig bad;
  bad.lambda_co2 = -0.5;
  EXPECT_THROW(WaterWiseScheduler{bad}, std::invalid_argument);
  WaterWiseConfig zero;
  zero.lambda_co2 = 0.0;
  zero.lambda_h2o = 0.0;
  EXPECT_THROW(WaterWiseScheduler{zero}, std::invalid_argument);
}

TEST(WaterWise, WeightsNormalizedToSumOne) {
  WaterWiseConfig cfg;
  cfg.lambda_co2 = 2.0;
  cfg.lambda_h2o = 2.0;
  const WaterWiseScheduler ww(cfg);
  EXPECT_DOUBLE_EQ(ww.config().lambda_co2, 0.5);
  EXPECT_DOUBLE_EQ(ww.config().lambda_h2o, 0.5);
}

TEST(WaterWise, UsesMilpSolver) {
  Rig rig;
  WaterWiseScheduler ww;
  (void)rig.run(ww);
  EXPECT_GT(ww.stats().milp_solves, 0);
}

TEST(WaterWise, SchedulerStatsAccumulateSolverCounters) {
  Rig rig;
  WaterWiseScheduler ww;
  (void)rig.run(ww);
  const SchedulerStats& st = ww.stats();
  EXPECT_GT(st.milp_solves, 0);
  // Presolve can decide a chunk model outright (empty reduced problem or
  // infeasibility proof), so some solves legitimately explore zero
  // branch-and-bound nodes; the tree can never exceed one root per solve
  // plus its branched children though, and most solves still reach it.
  EXPECT_GT(st.nodes_explored, 0);
  EXPECT_GT(st.simplex_iterations, 0);
  EXPECT_GT(st.solve_seconds, 0.0);
  // Warm-started + cold nodes can never exceed the tree.
  EXPECT_LE(st.warm_started_nodes + st.phase1_nodes, st.nodes_explored);
  const double frac = st.warm_start_fraction();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(WaterWise, WarmAndColdSolverProduceIdenticalCampaigns) {
  // The warm-start path is a pure optimization: disabling it must not
  // change a single placement, so every campaign aggregate matches exactly.
  Rig rig;
  WaterWiseConfig warm_cfg;
  warm_cfg.solver.warm_start = true;
  WaterWiseConfig cold_cfg;
  cold_cfg.solver.warm_start = false;
  WaterWiseScheduler warm(warm_cfg);
  WaterWiseScheduler cold(cold_cfg);
  const auto a = rig.run(warm);
  const auto b = rig.run(cold);
  EXPECT_EQ(a.num_jobs, b.num_jobs);
  EXPECT_EQ(a.total_carbon_g, b.total_carbon_g);
  EXPECT_EQ(a.total_water_l, b.total_water_l);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.jobs_per_region, b.jobs_per_region);
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
}

}  // namespace
}  // namespace ww::core
