#include <gtest/gtest.h>

#include "core/slack.hpp"

namespace ww::core {
namespace {

env::EnvironmentConfig small_env() {
  env::EnvironmentConfig cfg;
  cfg.horizon_days = 2;
  return cfg;
}

class AllFree final : public dc::CapacityView {
 public:
  [[nodiscard]] int num_regions() const override { return 5; }
  [[nodiscard]] int capacity(int) const override { return 35; }
  [[nodiscard]] int free_at(int, double) const override { return 35; }
  [[nodiscard]] int max_occupancy(int, double, double) const override {
    return 0;
  }
};

struct Rig {
  env::Environment env = env::Environment::builtin(small_env());
  footprint::FootprintModel fp{env};
  AllFree cap;
  std::vector<trace::Job> jobs;

  dc::ScheduleContext ctx(double now, double tol = 0.25) {
    dc::ScheduleContext c;
    c.now = now;
    c.tol = tol;
    c.env = &env;
    c.footprint = &fp;
    c.capacity = &cap;
    return c;
  }

  trace::Job& make_job(std::uint64_t id, double exec) {
    trace::Job j;
    j.id = id;
    j.home_region = 2;
    j.exec_seconds = exec;
    j.avg_power_watts = 300.0;
    j.package_bytes = 2e8;
    jobs.push_back(j);
    return jobs.back();
  }
};

TEST(Urgency, LongerWaitIsMoreUrgent) {
  Rig rig;
  rig.jobs.reserve(4);
  const auto& j = rig.make_job(1, 100.0);
  const dc::PendingJob waited_long{&j, /*first_seen=*/0.0, 100.0, 0.01};
  const dc::PendingJob waited_short{&j, /*first_seen=*/500.0, 100.0, 0.01};
  const auto ctx = rig.ctx(/*now=*/600.0);
  EXPECT_LT(urgency_score(waited_long, ctx), urgency_score(waited_short, ctx));
}

TEST(Urgency, LargerToleranceBudgetIsLessUrgent) {
  Rig rig;
  rig.jobs.reserve(4);
  const auto& small = rig.make_job(1, 50.0);
  const auto& large = rig.make_job(2, 500.0);
  const dc::PendingJob a{&small, 0.0, 50.0, 0.01};
  const dc::PendingJob b{&large, 0.0, 500.0, 0.05};
  const auto ctx = rig.ctx(0.0);
  // Larger exec time => larger TOL*t allowance => less urgent.
  EXPECT_LT(urgency_score(a, ctx), urgency_score(b, ctx));
}

TEST(Urgency, MatchesEq14Algebra) {
  Rig rig;
  rig.jobs.reserve(2);
  const auto& j = rig.make_job(1, 200.0);
  const dc::PendingJob p{&j, 100.0, 200.0, 0.02};
  const auto ctx = rig.ctx(/*now=*/400.0, /*tol=*/0.5);
  double lat_total = 0.0;
  for (int r = 0; r < 5; ++r)
    lat_total +=
        rig.env.transfer_latency_seconds(j.home_region, r, j.package_bytes);
  const double expected = 0.5 * 200.0 - lat_total / 5.0 - (400.0 - 100.0);
  EXPECT_NEAR(urgency_score(p, ctx), expected, 1e-9);
}

TEST(SelectMostUrgent, OrdersAndLimits) {
  Rig rig;
  rig.jobs.reserve(8);
  std::vector<dc::PendingJob> batch;
  // Jobs that have waited longer are more urgent.
  for (int i = 0; i < 6; ++i) {
    const auto& j = rig.make_job(static_cast<std::uint64_t>(i), 100.0);
    batch.push_back(dc::PendingJob{&j, /*first_seen=*/i * 100.0, 100.0, 0.01});
  }
  const auto ctx = rig.ctx(/*now=*/1000.0);
  const auto picked = select_most_urgent(batch, ctx, 3);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0], 0u);  // waited the longest
  EXPECT_EQ(picked[1], 1u);
  EXPECT_EQ(picked[2], 2u);
}

TEST(SelectMostUrgent, LimitLargerThanBatch) {
  Rig rig;
  rig.jobs.reserve(4);
  std::vector<dc::PendingJob> batch;
  for (int i = 0; i < 2; ++i) {
    const auto& j = rig.make_job(static_cast<std::uint64_t>(i), 100.0);
    batch.push_back(dc::PendingJob{&j, 0.0, 100.0, 0.01});
  }
  const auto picked = select_most_urgent(batch, rig.ctx(0.0), 10);
  EXPECT_EQ(picked.size(), 2u);
}

TEST(SelectMostUrgent, StableForTies) {
  Rig rig;
  rig.jobs.reserve(6);
  std::vector<dc::PendingJob> batch;
  for (int i = 0; i < 4; ++i) {
    const auto& j = rig.make_job(static_cast<std::uint64_t>(i), 100.0);
    batch.push_back(dc::PendingJob{&j, 0.0, 100.0, 0.01});
  }
  const auto picked = select_most_urgent(batch, rig.ctx(0.0), 4);
  ASSERT_EQ(picked.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(picked[i], i);
}

}  // namespace
}  // namespace ww::core
