#include <gtest/gtest.h>

#include "env/weather.hpp"

namespace ww::env {
namespace {

TEST(Wue, MonotoneInWetBulb) {
  double prev = 0.0;
  for (double t = -5.0; t <= 35.0; t += 0.5) {
    const double w = wue_from_wet_bulb(t);
    EXPECT_GE(w, prev - 1e-12) << "t=" << t;
    prev = w;
  }
}

TEST(Wue, FlooredAtDriftMinimum) {
  EXPECT_DOUBLE_EQ(wue_from_wet_bulb(-20.0), 0.05);
  EXPECT_GT(wue_from_wet_bulb(25.0), 5.0);
  EXPECT_LT(wue_from_wet_bulb(30.0), 10.0);  // stays in Fig. 2c's range
}

TEST(Weather, MeanNearConfigured) {
  WeatherConfig cfg;
  cfg.mean_c = 12.0;
  const WeatherModel model(cfg, util::Rng(1), 24 * 365);
  double total = 0.0;
  const int samples = 24 * 365;
  for (int h = 0; h < samples; ++h) total += model.wet_bulb_c(h * 3600.0);
  EXPECT_NEAR(total / samples, 12.0, 1.0);
}

TEST(Weather, AnnualSeasonality) {
  WeatherConfig cfg;
  cfg.mean_c = 10.0;
  cfg.annual_amplitude_c = 8.0;
  cfg.peak_day_of_year = 200;
  cfg.noise_stddev_c = 0.1;
  const WeatherModel model(cfg, util::Rng(2), 24 * 365);
  // Mid-July (day ~200) should be much warmer than mid-January (day ~15).
  double summer = 0.0;
  double winter = 0.0;
  for (int h = 0; h < 24; ++h) {
    summer += model.wet_bulb_c((200.0 * 24 + h) * 3600.0);
    winter += model.wet_bulb_c((15.0 * 24 + h) * 3600.0);
  }
  EXPECT_GT(summer / 24 - winter / 24, 10.0);
}

TEST(Weather, DiurnalCycle) {
  WeatherConfig cfg;
  cfg.diurnal_amplitude_c = 4.0;
  cfg.noise_stddev_c = 0.05;
  cfg.peak_hour_utc = 14.0;
  const WeatherModel model(cfg, util::Rng(3), 24 * 30);
  // Average 2pm sample should be warmer than average 2am sample.
  double day = 0.0;
  double night = 0.0;
  for (int d = 0; d < 30; ++d) {
    day += model.wet_bulb_c((d * 24 + 14) * 3600.0);
    night += model.wet_bulb_c((d * 24 + 2) * 3600.0);
  }
  EXPECT_GT(day - night, 30.0 * 4.0);  // ~2*amplitude per day
}

TEST(Weather, DeterministicAndInterpolated) {
  const WeatherConfig cfg;
  const WeatherModel a(cfg, util::Rng(4), 24 * 10);
  const WeatherModel b(cfg, util::Rng(4), 24 * 10);
  EXPECT_DOUBLE_EQ(a.wet_bulb_c(12345.0), b.wet_bulb_c(12345.0));
  // Interpolation: value at half-hour lies between the hourly samples.
  const double h0 = a.wet_bulb_c(0.0);
  const double h1 = a.wet_bulb_c(3600.0);
  const double mid = a.wet_bulb_c(1800.0);
  EXPECT_GE(mid, std::min(h0, h1) - 1e-12);
  EXPECT_LE(mid, std::max(h0, h1) + 1e-12);
}

TEST(Weather, ClampsOutsideHorizon) {
  const WeatherModel model(WeatherConfig{}, util::Rng(5), 24);
  EXPECT_NO_THROW((void)model.wet_bulb_c(-100.0));
  EXPECT_NO_THROW((void)model.wet_bulb_c(1e9));
}

TEST(Weather, RejectsBadHorizon) {
  EXPECT_THROW(WeatherModel(WeatherConfig{}, util::Rng(1), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ww::env
