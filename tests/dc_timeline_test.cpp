#include <gtest/gtest.h>

#include "dc/capacity_timeline.hpp"

namespace ww::dc {
namespace {

TEST(CapacityTimeline, EmptyHasZeroOccupancy) {
  const CapacityTimeline tl(4);
  EXPECT_EQ(tl.capacity(), 4);
  EXPECT_EQ(tl.occupancy_at(0.0), 0);
  EXPECT_EQ(tl.max_occupancy(0.0, 1e9), 0);
  EXPECT_TRUE(tl.fits(0.0, 100.0));
}

TEST(CapacityTimeline, SingleReservation) {
  CapacityTimeline tl(2);
  tl.reserve(10.0, 20.0);
  EXPECT_EQ(tl.occupancy_at(5.0), 0);
  EXPECT_EQ(tl.occupancy_at(10.0), 1);
  EXPECT_EQ(tl.occupancy_at(15.0), 1);
  EXPECT_EQ(tl.occupancy_at(20.0), 0);  // half-open interval
  EXPECT_EQ(tl.max_occupancy(0.0, 30.0), 1);
}

TEST(CapacityTimeline, CapacityEnforcement) {
  CapacityTimeline tl(2);
  tl.reserve(0.0, 100.0);
  tl.reserve(0.0, 100.0);
  EXPECT_FALSE(tl.fits(50.0, 60.0));
  EXPECT_TRUE(tl.fits(100.0, 110.0));  // after both end
  EXPECT_TRUE(tl.fits(150.0, 250.0));
}

TEST(CapacityTimeline, OverlappingPattern) {
  CapacityTimeline tl(10);
  tl.reserve(0.0, 10.0);
  tl.reserve(5.0, 15.0);
  tl.reserve(8.0, 9.0);
  EXPECT_EQ(tl.max_occupancy(0.0, 20.0), 3);
  EXPECT_EQ(tl.max_occupancy(0.0, 5.0), 1);
  EXPECT_EQ(tl.max_occupancy(12.0, 20.0), 1);
  EXPECT_EQ(tl.occupancy_at(8.5), 3);
}

TEST(CapacityTimeline, AdjacentIntervalsDoNotStack) {
  CapacityTimeline tl(1);
  tl.reserve(0.0, 10.0);
  EXPECT_TRUE(tl.fits(10.0, 20.0));
  tl.reserve(10.0, 20.0);
  EXPECT_EQ(tl.max_occupancy(0.0, 20.0), 1);
}

TEST(CapacityTimeline, PrunePreservesActiveReservations) {
  CapacityTimeline tl(3);
  tl.reserve(0.0, 100.0);   // still active at prune point
  tl.reserve(10.0, 20.0);   // fully past
  tl.reserve(60.0, 80.0);   // future
  tl.prune(50.0);
  EXPECT_EQ(tl.occupancy_at(55.0), 1);
  EXPECT_EQ(tl.occupancy_at(70.0), 2);
  EXPECT_EQ(tl.occupancy_at(99.0), 1);
  EXPECT_EQ(tl.occupancy_at(150.0), 0);
  EXPECT_LE(tl.event_count(), 3u);  // past events folded away
}

TEST(CapacityTimeline, PruneThenReserve) {
  CapacityTimeline tl(2);
  tl.reserve(0.0, 30.0);
  tl.prune(10.0);
  tl.reserve(15.0, 25.0);
  EXPECT_EQ(tl.max_occupancy(15.0, 25.0), 2);
  EXPECT_FALSE(tl.fits(16.0, 24.0));
}

TEST(CapacityTimeline, Validation) {
  EXPECT_THROW(CapacityTimeline(0), std::invalid_argument);
  CapacityTimeline tl(1);
  EXPECT_THROW(tl.reserve(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(tl.reserve(5.0, 4.0), std::invalid_argument);
}

TEST(CapacityTimeline, ManyReservationsStressOccupancy) {
  CapacityTimeline tl(1000);
  // Staircase: 100 overlapping unit jobs shifted by 0.5.
  for (int i = 0; i < 100; ++i) tl.reserve(i * 0.5, i * 0.5 + 10.0);
  // At t=9.9, jobs with start in (−0.1, 9.9] are active: i*0.5 <= 9.9 and
  // i*0.5 + 10 > 9.9 → i in [0, 19] → 20 active.
  EXPECT_EQ(tl.occupancy_at(9.9), 20);
}

}  // namespace
}  // namespace ww::dc
