// Forrest-Tomlin update coverage: randomized basis-change chains hundreds
// of pivots long (no refactorization) checked against fresh factorizations
// to <= 1e-9, singularity/instability forcing cases that must trigger a
// refactorization instead of committing garbage, solver-level long-run
// agreement with the refactorize-every-pivot path, and the deprecated
// SolverOptions::eta_limit -> update_budget alias mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/basis_lu.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

/// Dense column-major copy of the basis matrix: B[row][pos].
std::vector<std::vector<double>> dense_basis(
    int m, const std::vector<SparseVec>& cols, const std::vector<int>& basis) {
  std::vector<std::vector<double>> b(
      static_cast<std::size_t>(m),
      std::vector<double>(static_cast<std::size_t>(m), 0.0));
  for (int pos = 0; pos < m; ++pos) {
    const SparseVec& c = cols[static_cast<std::size_t>(
        basis[static_cast<std::size_t>(pos)])];
    for (std::size_t k = 0; k < c.rows.size(); ++k)
      b[static_cast<std::size_t>(c.rows[k])][static_cast<std::size_t>(pos)] +=
          c.values[k];
  }
  return b;
}

/// Max |B x - a| over rows for a position-indexed solution x.
double ftran_residual(const std::vector<std::vector<double>>& b,
                      const std::vector<double>& x,
                      const std::vector<double>& a) {
  const std::size_t m = b.size();
  double worst = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    double acc = 0.0;
    for (std::size_t p = 0; p < m; ++p) acc += b[r][p] * x[p];
    worst = std::max(worst, std::abs(acc - a[r]));
  }
  return worst;
}

/// Max |B^T y - c| over positions for a row-indexed solution y.
double btran_residual(const std::vector<std::vector<double>>& b,
                      const std::vector<double>& y,
                      const std::vector<double>& c) {
  const std::size_t m = b.size();
  double worst = 0.0;
  for (std::size_t p = 0; p < m; ++p) {
    double acc = 0.0;
    for (std::size_t r = 0; r < m; ++r) acc += b[r][p] * y[r];
    worst = std::max(worst, std::abs(acc - c[p]));
  }
  return worst;
}

/// Random sparse nonsingular pool, diagonally dominant up to a row
/// permutation (returned via `dom_row`) so replacement chains can keep the
/// evolving basis well conditioned.
std::vector<SparseVec> random_sparse_columns(int m, util::Rng& rng,
                                             std::vector<int>* dom_row) {
  std::vector<int> perm(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = m - 1; i > 0; --i)
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.uniform_int(0, i))]);
  if (dom_row != nullptr) *dom_row = perm;
  std::vector<SparseVec> cols(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    SparseVec& c = cols[static_cast<std::size_t>(j)];
    const int extras = static_cast<int>(rng.uniform_int(0, 3));
    c.rows.push_back(perm[static_cast<std::size_t>(j)]);
    c.values.push_back((rng.uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0) *
                       rng.uniform(4.0, 8.0));
    for (int e = 0; e < extras; ++e) {
      const int r = static_cast<int>(rng.uniform_int(0, m - 1));
      if (r == perm[static_cast<std::size_t>(j)]) continue;
      c.rows.push_back(r);
      c.values.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  return cols;
}

std::vector<int> identity_basis(int m) {
  std::vector<int> b(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) b[static_cast<std::size_t>(i)] = i;
  return b;
}

/// Ftran of `col` through `lu` with the spike saved for an update.
std::vector<double> ftran_for_update(const BasisLU& lu, int m,
                                     const SparseVec& col) {
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  for (std::size_t k = 0; k < col.rows.size(); ++k)
    w[static_cast<std::size_t>(col.rows[k])] += col.values[k];
  lu.ftran(w, /*save_spike=*/true);
  return w;
}

class FactorUpdateChain : public ::testing::TestWithParam<int> {};

TEST_P(FactorUpdateChain, LongChainsTrackFreshFactorization) {
  // 200+ Forrest-Tomlin updates on one factorization — no refactorization
  // anywhere — must keep ftran/btran within 1e-9 of a from-scratch
  // factorization of the evolved basis.  The product-form eta file this
  // kernel replaced would have accumulated 200+ eta columns here; FT keeps
  // the factor storage flat, which is exactly what the final update-count
  // and fill assertions pin.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int m = 36 + 4 * GetParam();
  std::vector<int> dom_row;
  std::vector<SparseVec> cols = random_sparse_columns(m, rng, &dom_row);
  std::vector<int> basis = identity_basis(m);

  BasisLU lu;
  ASSERT_TRUE(lu.factorize(m, cols, basis));

  int applied = 0;
  for (int step = 0; step < 600 && applied < 220; ++step) {
    const int pos = static_cast<int>(rng.uniform_int(0, m - 1));
    SparseVec cand;
    cand.rows.push_back(dom_row[static_cast<std::size_t>(pos)]);
    cand.values.push_back(rng.uniform(3.0, 6.0));
    const int extra = static_cast<int>(rng.uniform_int(0, m - 1));
    if (extra != dom_row[static_cast<std::size_t>(pos)]) {
      cand.rows.push_back(extra);
      cand.values.push_back(rng.uniform(-1.0, 1.0));
    }

    const std::vector<double> w = ftran_for_update(lu, m, cand);
    if (std::abs(w[static_cast<std::size_t>(pos)]) < 1e-6) continue;

    cols.push_back(cand);
    basis[static_cast<std::size_t>(pos)] = static_cast<int>(cols.size()) - 1;
    ASSERT_TRUE(lu.update(pos)) << "update " << applied;
    ++applied;
    ASSERT_EQ(lu.update_count(), applied);

    // Full verification every step would make the test quadratic in the
    // chain length; every 9th update (plus the tail) keeps it fast while
    // still covering early, middle, and deep-chain states.
    if (applied % 9 != 0 && applied < 200) continue;
    const auto b = dense_basis(m, cols, basis);
    BasisLU fresh;
    ASSERT_TRUE(fresh.factorize(m, cols, basis));
    EXPECT_EQ(fresh.update_count(), 0);

    std::vector<double> rhs(static_cast<std::size_t>(m));
    for (auto& v : rhs) v = rng.uniform(-2.0, 2.0);

    std::vector<double> via_upd(rhs), via_fresh(rhs);
    lu.ftran(via_upd);
    fresh.ftran(via_fresh);
    EXPECT_LT(ftran_residual(b, via_upd, rhs), 1e-9) << "update " << applied;
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(via_upd[static_cast<std::size_t>(i)],
                  via_fresh[static_cast<std::size_t>(i)], 1e-9)
          << "update " << applied;

    std::vector<double> bt_upd(rhs), bt_fresh(rhs);
    lu.btran(bt_upd);
    fresh.btran(bt_fresh);
    EXPECT_LT(btran_residual(b, bt_upd, rhs), 1e-9) << "update " << applied;
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(bt_upd[static_cast<std::size_t>(i)],
                  bt_fresh[static_cast<std::size_t>(i)], 1e-9)
          << "update " << applied;
  }
  EXPECT_GE(applied, 220);  // the chain really ran 200+ pivots
  EXPECT_EQ(lu.update_count(), applied);
  // The fill monitor must see the accumulated update fill (row etas plus
  // spikes) — it is what the solver's refactorization trigger reads, and a
  // ratio stuck at 1.0 would mean the monitor is blind.
  EXPECT_GT(lu.fill_ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FactorUpdateChain, ::testing::Range(0, 4));

TEST(FactorUpdate, SingularReplacementRefusesAndStateSurvives) {
  // Replacing a column by a copy of another basis column makes the basis
  // singular: the Forrest-Tomlin diagonal vanishes, update() must refuse,
  // and — because the refusal happens before any mutation — the kernel
  // must keep answering for the *old* basis and accept a refactorization
  // continuing the chain.
  util::Rng rng(4242);
  const int m = 20;
  std::vector<int> dom_row;
  std::vector<SparseVec> cols = random_sparse_columns(m, rng, &dom_row);
  std::vector<int> basis = identity_basis(m);
  BasisLU lu;
  ASSERT_TRUE(lu.factorize(m, cols, basis));

  // A few healthy updates first so the refusal hits an updated factor.
  int applied = 0;
  for (int step = 0; step < 40 && applied < 5; ++step) {
    const int pos = static_cast<int>(rng.uniform_int(0, m - 1));
    SparseVec cand;
    cand.rows.push_back(dom_row[static_cast<std::size_t>(pos)]);
    cand.values.push_back(rng.uniform(3.0, 6.0));
    const std::vector<double> w = ftran_for_update(lu, m, cand);
    if (std::abs(w[static_cast<std::size_t>(pos)]) < 1e-6) continue;
    cols.push_back(cand);
    basis[static_cast<std::size_t>(pos)] = static_cast<int>(cols.size()) - 1;
    ASSERT_TRUE(lu.update(pos));
    ++applied;
  }
  ASSERT_GT(applied, 0);

  const int victim = 3;
  const int donor = basis[7];
  (void)ftran_for_update(lu, m, cols[static_cast<std::size_t>(donor)]);
  EXPECT_FALSE(lu.update(victim));  // singular: w[victim] = 0 exactly
  EXPECT_EQ(lu.update_count(), applied);

  // Near-singular: donor column plus a vanishing multiple of the replaced
  // column.  The update pivot is ~1e-13, far below the stability floor.
  SparseVec nearly = cols[static_cast<std::size_t>(donor)];
  const SparseVec& own = cols[static_cast<std::size_t>(
      basis[static_cast<std::size_t>(victim)])];
  for (std::size_t k = 0; k < own.rows.size(); ++k) {
    nearly.rows.push_back(own.rows[k]);
    nearly.values.push_back(1e-13 * own.values[k]);
  }
  (void)ftran_for_update(lu, m, nearly);
  EXPECT_FALSE(lu.update(victim));
  EXPECT_EQ(lu.update_count(), applied);

  // The refused updates left the factors intact...
  const auto b = dense_basis(m, cols, basis);
  std::vector<double> rhs(static_cast<std::size_t>(m));
  for (auto& v : rhs) v = rng.uniform(-2.0, 2.0);
  std::vector<double> x(rhs);
  lu.ftran(x);
  EXPECT_LT(ftran_residual(b, x, rhs), 1e-9);
  std::vector<double> y(rhs);
  lu.btran(y);
  EXPECT_LT(btran_residual(b, y, rhs), 1e-9);

  // ... and the caller's escape hatch — refactorize — works and resets the
  // update ledger.
  ASSERT_TRUE(lu.factorize(m, cols, basis));
  EXPECT_EQ(lu.update_count(), 0);
  std::vector<double> x2(rhs);
  lu.ftran(x2);
  EXPECT_LT(ftran_residual(b, x2, rhs), 1e-9);
}

TEST(FactorUpdate, SolverLongRunMatchesRefactorizeEveryPivot) {
  // Solver-level flatness witness: a 405-row LP relaxation pushed through
  // one factorization (update budget and refactor interval out of the way)
  // must match the refactorize-every-pivot answer, and the counters must
  // prove both paths did what they claim.
  const Model model = waterwise_shaped_model(100, 5);

  SolverOptions ft;
  ft.presolve = false;
  ft.update_budget = 1 << 20;
  ft.refactor_interval = 1 << 20;
  ft.fill_growth_limit = 1e9;
  const Solution a = solve(model, ft);

  SolverOptions every;
  every.presolve = false;
  every.update_budget = 0;
  const Solution b = solve(model, every);

  ASSERT_EQ(a.status, Status::Optimal);
  ASSERT_EQ(b.status, Status::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
  EXPECT_EQ(b.ft_updates, 0);  // every pivot refactorized instead
  // Not every iteration pivots (bound flips, the terminal pricing pass),
  // but the bulk must have refactorized.
  EXPECT_GT(b.refactorizations, b.simplex_iterations / 2);
  if (!refactor_every_pivot_forced()) {
    // One long pivot run: 200+ updates absorbed without a refactorization
    // in between (phase transitions refactorize a handful of times).
    EXPECT_GE(a.ft_updates, 200);
    EXPECT_LE(a.refactorizations, 5);
  }
}

TEST(FactorUpdate, EtaLimitAliasMapsOntoUpdateBudget) {
  // Deprecation shim pin: a nonzero eta_limit must behave exactly like
  // setting update_budget to the same value — identical objectives *and*
  // identical kernel counters — while eta_limit = 0 defers to
  // update_budget.
  const Model model = waterwise_shaped_model(48, 4);

  SolverOptions via_alias;
  via_alias.presolve = false;
  via_alias.eta_limit = 5;
  via_alias.update_budget = 9999;  // must be overridden by the alias
  const Solution a = solve(model, via_alias);

  SolverOptions via_budget;
  via_budget.presolve = false;
  via_budget.update_budget = 5;
  const Solution b = solve(model, via_budget);

  ASSERT_EQ(a.status, Status::Optimal);
  ASSERT_EQ(b.status, Status::Optimal);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.simplex_iterations, b.simplex_iterations);
  EXPECT_EQ(a.refactorizations, b.refactorizations);
  EXPECT_EQ(a.ft_updates, b.ft_updates);

  if (!refactor_every_pivot_forced()) {
    // Control: the knob actually does something — a roomier budget
    // refactorizes less.  (Skipped under WW_REFACTOR_EVERY_PIVOT, which
    // deliberately flattens every cadence to zero.)
    SolverOptions roomy;
    roomy.presolve = false;
    roomy.update_budget = 64;
    const Solution c = solve(model, roomy);
    EXPECT_LT(c.refactorizations, b.refactorizations);
  }
}

}  // namespace
}  // namespace ww::milp
