#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>
#include <vector>

namespace ww::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ChildStreamsAreIndependentAndStable) {
  const Rng root(7);
  Rng c1 = root.child("trace");
  Rng c2 = root.child("trace");
  Rng c3 = root.child("weather");
  EXPECT_EQ(c1(), c2());
  Rng c1b = root.child("trace");
  c1b();  // advance one
  EXPECT_NE(c1(), c3());
}

TEST(Rng, ChildOrderMatters) {
  const Rng root(9);
  Rng ab = root.child("a").child("b");
  Rng ba = root.child("b").child("a");
  EXPECT_NE(ab(), ba());
}

TEST(Rng, IndexedChildren) {
  const Rng root(11);
  Rng c0 = root.child(std::uint64_t{0});
  Rng c1 = root.child(std::uint64_t{1});
  EXPECT_NE(c0(), c1());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(7, 7), 7);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // lo >= hi returns lo
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMean) {
  Rng rng(23);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = 1.0;
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + 0.5 * sigma * sigma), 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  const double lambda = 0.25;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.1);
}

TEST(Rng, GammaMeanAndVariance) {
  Rng rng(31);
  const double shape = 3.0;
  const double scale = 2.0;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.08);
  EXPECT_NEAR(sq / n - mean * mean, shape * scale * scale, 0.4);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(37);
  const double shape = 0.5;
  const double scale = 1.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(43);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(47);
  EXPECT_THROW((void)rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(HashLabel, DistinctLabels) {
  EXPECT_NE(hash_label("carbon"), hash_label("water"));
  EXPECT_EQ(hash_label("x"), hash_label("x"));
}

}  // namespace
}  // namespace ww::util
