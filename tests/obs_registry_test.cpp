#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace ww::obs {
namespace {

TEST(Registry, RegisterOrLookupReturnsStableHandles) {
  Registry r;
  const Counter a = r.counter("a");
  const Counter b = r.counter("b");
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(r.counter("a").id, a.id);  // same name, same handle
  const Hist h = r.histogram("h", 0.0, 1.0, 4);
  EXPECT_EQ(r.histogram("h", 0.0, 1.0, 4).id, h.id);
}

TEST(Registry, HistogramRelayoutThrows) {
  Registry r;
  (void)r.histogram("h", 0.0, 1.0, 4);
  EXPECT_THROW((void)r.histogram("h", 0.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW((void)r.histogram("h", 0.0, 2.0, 4), std::invalid_argument);
}

TEST(Registry, InvalidHandlesAreIgnored) {
  // Default-constructed handles let optional instrumentation stay unwired:
  // mutators must be silent no-ops, never UB.
  Registry r;
  const Counter c = r.counter("c");
  r.add(Counter{});
  r.add(Gauge{}, 1.0);
  r.set(Gauge{}, 1.0);
  r.observe(Hist{}, 1.0);
  Shard shard = r.make_shard();
  shard.add(Counter{});
  shard.observe(Hist{}, 1.0);
  r.merge_shard(shard);
  EXPECT_EQ(r.counter_value(c), 0u);
}

TEST(Registry, ShardFoldOrderIndependent) {
  // Counter adds and histogram observes are commutative and associative,
  // so folding shards in any fixed order yields identical bytes — the
  // property the scheduler's chunk-index-ordered commit relies on.
  const auto run = [](const std::vector<int>& order) {
    Registry r;
    const Counter c = r.counter("solves");
    const Hist h = r.histogram("depth", 0.0, 100.0, 10);
    std::vector<Shard> shards;
    for (int k = 0; k < 4; ++k) {
      Shard s = r.make_shard();
      for (int i = 0; i <= k; ++i) {
        s.add(c);
        s.observe(h, 10.0 * k + i);
      }
      shards.push_back(std::move(s));
    }
    for (const int i : order) r.merge_shard(shards[i]);
    return r.to_json();
  };
  const std::string forward = run({0, 1, 2, 3});
  EXPECT_EQ(forward, run({3, 2, 1, 0}));
  EXPECT_EQ(forward, run({2, 0, 3, 1}));
}

TEST(Registry, ShardMintedEarlyMergesSafely) {
  // A shard minted before later registrations is shorter than the
  // registry; merging it must not touch the newer slots.
  Registry r;
  const Counter c0 = r.counter("early");
  Shard shard = r.make_shard();
  shard.add(c0, 5);
  const Counter c1 = r.counter("late");
  r.merge_shard(shard);
  EXPECT_EQ(r.counter_value(c0), 5u);
  EXPECT_EQ(r.counter_value(c1), 0u);
}

TEST(Registry, JsonIsNameOrderedAndParseable) {
  Registry r;
  r.add(r.counter("z.last"), 2);
  r.add(r.counter("a.first"), 1);
  r.set(r.gauge("g"), 1.5);
  r.observe(r.histogram("h", 0.0, 10.0, 10), 3.5);
  const std::string json = r.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  // Same values => same bytes: the export is deterministic.
  EXPECT_EQ(json, r.to_json());
}

TEST(Registry, FindByNameAndReset) {
  Registry r;
  const Counter c = r.counter("c");
  const Hist h = r.histogram("h", 0.0, 1.0, 2);
  r.add(c, 7);
  r.observe(h, 0.25);
  ASSERT_NE(r.find_counter("c"), nullptr);
  EXPECT_EQ(*r.find_counter("c"), 7u);
  ASSERT_NE(r.find_hist("h"), nullptr);
  EXPECT_EQ(r.find_hist("h")->total(), 1u);
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_EQ(r.find_hist("missing"), nullptr);
  r.reset_values();
  EXPECT_EQ(r.counter_value(c), 0u);  // handles survive the reset
  EXPECT_EQ(r.hist(h).total(), 0u);
}

}  // namespace
}  // namespace ww::obs
