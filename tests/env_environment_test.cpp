#include <gtest/gtest.h>

#include "env/environment.hpp"

namespace ww::env {
namespace {

EnvironmentConfig small_config() {
  EnvironmentConfig cfg;
  cfg.horizon_days = 30;  // keep construction fast in unit tests
  return cfg;
}

class EnvironmentTest : public ::testing::Test {
 protected:
  Environment env_ = Environment::builtin(small_config());

  /// Annual-ish average of a per-region series.
  double average(double (Environment::*fn)(int, double) const, int r) const {
    double total = 0.0;
    const int samples = 24 * 28;
    for (int h = 0; h < samples; ++h) total += (env_.*fn)(r, h * 3600.0);
    return total / samples;
  }
};

TEST_F(EnvironmentTest, RegionLookup) {
  EXPECT_EQ(env_.num_regions(), 5);
  EXPECT_EQ(env_.region_index("Zurich"), 0);
  EXPECT_EQ(env_.region_index("Mumbai"), 4);
  EXPECT_THROW((void)env_.region_index("Atlantis"), std::out_of_range);
  EXPECT_EQ(env_.total_servers(), 175);
}

TEST_F(EnvironmentTest, CarbonIntensityOrderingMatchesFig2a) {
  // Fig. 2: labels sorted by carbon intensity:
  // Zurich < Madrid < Oregon < Milan < Mumbai.
  std::vector<double> avg;
  for (int r = 0; r < 5; ++r)
    avg.push_back(average(&Environment::carbon_intensity, r));
  for (int r = 0; r + 1 < 5; ++r)
    EXPECT_LT(avg[static_cast<std::size_t>(r)],
              avg[static_cast<std::size_t>(r + 1)])
        << env_.region(r).name << " vs " << env_.region(r + 1).name;
}

TEST_F(EnvironmentTest, ZurichHasHighestEwifDespiteLowestCarbon) {
  // Fig. 2b: Zurich's hydro/biomass grid is the most water-intensive.
  const double zurich = average(&Environment::ewif, 0);
  for (int r = 1; r < 5; ++r)
    EXPECT_GT(zurich, average(&Environment::ewif, r))
        << "vs " << env_.region(r).name;
}

TEST_F(EnvironmentTest, MumbaiEwifLowButWsfHigh) {
  const double mumbai_ewif = average(&Environment::ewif, 4);
  const double zurich_ewif = average(&Environment::ewif, 0);
  EXPECT_LT(mumbai_ewif, 0.6 * zurich_ewif);
  EXPECT_GT(env_.wsf(4), env_.wsf(0));
}

TEST_F(EnvironmentTest, MumbaiHasHighestWue) {
  // Fig. 2c: tropical wet-bulb makes Mumbai the most cooling-thirsty.
  const double mumbai = average(&Environment::wue, 4);
  for (int r = 0; r < 4; ++r)
    EXPECT_GT(mumbai, average(&Environment::wue, r));
}

TEST_F(EnvironmentTest, WaterIntensityMatchesEq6) {
  for (int r = 0; r < 5; ++r) {
    const double t = 13.0 * 3600.0;
    const double expected =
        (env_.wue(r, t) + env_.pue(r) * env_.ewif(r, t)) * (1.0 + env_.wsf(r));
    EXPECT_NEAR(env_.water_intensity(r, t), expected, 1e-12);
  }
}

TEST_F(EnvironmentTest, CarbonVsWaterIntensityNotPerfectlyAligned) {
  // The co-optimization only has teeth if the two intensity landscapes
  // disagree: the region ranking by carbon must differ from the ranking by
  // water intensity.
  std::vector<int> by_carbon = {0, 1, 2, 3, 4};
  std::vector<int> by_water = {0, 1, 2, 3, 4};
  std::vector<double> ci;
  std::vector<double> wi;
  for (int r = 0; r < 5; ++r) {
    ci.push_back(average(&Environment::carbon_intensity, r));
    wi.push_back(average(&Environment::water_intensity, r));
  }
  std::sort(by_carbon.begin(), by_carbon.end(), [&](int a, int b) {
    return ci[static_cast<std::size_t>(a)] < ci[static_cast<std::size_t>(b)];
  });
  std::sort(by_water.begin(), by_water.end(), [&](int a, int b) {
    return wi[static_cast<std::size_t>(a)] < wi[static_cast<std::size_t>(b)];
  });
  EXPECT_NE(by_carbon, by_water);
}

TEST_F(EnvironmentTest, SubsetSeesIdenticalSeries) {
  // Fig. 12 experiments remove regions; remaining series must not change.
  const Environment sub = Environment::builtin_subset({0, 3, 4}, small_config());
  ASSERT_EQ(sub.num_regions(), 3);
  EXPECT_EQ(sub.region(1).name, "Milan");
  for (const double t : {0.0, 7200.0, 86400.0 * 3 + 1800.0}) {
    EXPECT_DOUBLE_EQ(sub.carbon_intensity(0, t), env_.carbon_intensity(0, t));
    EXPECT_DOUBLE_EQ(sub.carbon_intensity(1, t), env_.carbon_intensity(3, t));
    EXPECT_DOUBLE_EQ(sub.wue(2, t), env_.wue(4, t));
  }
}

TEST_F(EnvironmentTest, PerturbationKnobs) {
  EnvironmentConfig cfg = small_config();
  cfg.carbon_intensity_scale = 1.1;
  cfg.water_intensity_scale = 0.9;
  const Environment scaled = Environment::builtin(cfg);
  const double t = 5000.0;
  EXPECT_NEAR(scaled.carbon_intensity(2, t), 1.1 * env_.carbon_intensity(2, t),
              1e-9);
  EXPECT_NEAR(scaled.ewif(2, t), 0.9 * env_.ewif(2, t), 1e-9);
  EXPECT_NEAR(scaled.wue(2, t), 0.9 * env_.wue(2, t), 1e-9);
}

TEST_F(EnvironmentTest, PueOverride) {
  EnvironmentConfig cfg = small_config();
  cfg.pue_override = 1.5;
  const Environment e = Environment::builtin(cfg);
  for (int r = 0; r < e.num_regions(); ++r) EXPECT_DOUBLE_EQ(e.pue(r), 1.5);
}

TEST_F(EnvironmentTest, DatasetSwitchChangesEwif) {
  EnvironmentConfig cfg = small_config();
  cfg.dataset = WaterDataset::WorldResourcesInstitute;
  const Environment wri = Environment::builtin(cfg);
  // Zurich's hydro-heavy EWIF must drop under the WRI table.
  EXPECT_LT(wri.ewif(0, 7200.0), env_.ewif(0, 7200.0));
}

TEST_F(EnvironmentTest, TransferLatencyConsistent) {
  EXPECT_DOUBLE_EQ(env_.transfer_latency_seconds(1, 1, 5e8), 0.0);
  EXPECT_GT(env_.transfer_latency_seconds(0, 4, 5e8),
            env_.transfer_latency_seconds(0, 3, 5e8));
}

TEST(Environment, RejectsEmptyRegionList) {
  EXPECT_THROW(Environment({}, EnvironmentConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace ww::env
