// Randomized property sweeps for the LP/MILP solver.
//
// For random feasible-by-construction programs: the solver must report
// Optimal, the returned point must satisfy all rows/bounds, and its objective
// must not exceed the objective of any sampled feasible point (optimality
// against Monte-Carlo witnesses).  Random assignment MILPs are checked
// against exhaustive enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "milp/branch_and_bound.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace ww::milp {
namespace {

class LpRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomProperty, FeasibleByConstructionSolvesOptimal) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  const int rows = static_cast<int>(rng.uniform_int(1, 6));

  // A random interior point guarantees feasibility of all LE rows.
  std::vector<double> witness;
  Model m;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-3.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 6.0);
    (void)m.add_continuous("x", lo, hi, rng.uniform(-2.0, 2.0));
    witness.push_back(lo + 0.5 * (hi - lo));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) continue;
      const double c = rng.uniform(-2.0, 2.0);
      terms.push_back({j, c});
      lhs += c * witness[static_cast<std::size_t>(j)];
    }
    if (terms.empty()) continue;
    (void)m.add_constraint("r", std::move(terms), Sense::LessEqual,
                           lhs + rng.uniform(0.1, 3.0));
  }

  SimplexSolver solver(m);
  const Solution sol = solver.solve();
  ASSERT_EQ(sol.status, Status::Optimal) << "seed param " << GetParam();
  EXPECT_LE(m.max_violation(sol.values), 1e-6);
  // The witness is feasible, so the optimum must be at least as good.
  EXPECT_LE(sol.objective, m.objective_value(witness) + 1e-7);

  // Monte-Carlo optimality witnesses.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p;
    for (int j = 0; j < n; ++j) {
      const auto& v = m.variable(j);
      p.push_back(rng.uniform(v.lower, v.upper));
    }
    if (m.max_violation(p) <= 1e-9) {
      EXPECT_LE(sol.objective, m.objective_value(p) + 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpRandomProperty, ::testing::Range(0, 40));

class AssignmentExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentExhaustive, MilpMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
  const int jobs = static_cast<int>(rng.uniform_int(2, 5));
  const int regions = static_cast<int>(rng.uniform_int(2, 3));
  std::vector<int> caps;
  int total_cap = 0;
  for (int r = 0; r < regions; ++r) {
    caps.push_back(static_cast<int>(rng.uniform_int(1, jobs)));
    total_cap += caps.back();
  }
  if (total_cap < jobs) caps[0] += jobs - total_cap;  // keep it feasible

  std::vector<std::vector<double>> cost(
      static_cast<std::size_t>(jobs),
      std::vector<double>(static_cast<std::size_t>(regions)));
  for (auto& row : cost)
    for (auto& c : row) c = rng.uniform(0.1, 5.0);

  // Brute force over region^jobs assignments.
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> assign(static_cast<std::size_t>(jobs), 0);
  const long combos = static_cast<long>(std::pow(regions, jobs));
  for (long code = 0; code < combos; ++code) {
    long c = code;
    std::vector<int> used(static_cast<std::size_t>(regions), 0);
    double total = 0.0;
    bool ok = true;
    for (int j = 0; j < jobs; ++j) {
      const int r = static_cast<int>(c % regions);
      c /= regions;
      if (++used[static_cast<std::size_t>(r)] >
          caps[static_cast<std::size_t>(r)]) {
        ok = false;
        break;
      }
      total += cost[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
    }
    if (ok) best = std::min(best, total);
  }

  Model m;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j)].push_back(m.add_binary(
          "x", cost[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)]));
  for (int j = 0; j < jobs; ++j) {
    std::vector<Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)], 1.0});
    (void)m.add_constraint("a", std::move(t), Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)], 1.0});
    (void)m.add_constraint("c", std::move(t), Sense::LessEqual,
                           static_cast<double>(caps[static_cast<std::size_t>(r)]));
  }
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.objective, best, 1e-6) << "param " << GetParam();
  EXPECT_LE(m.max_violation(sol.values), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AssignmentExhaustive, ::testing::Range(0, 30));

class KnapsackExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackExhaustive, MilpMatchesEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 337 + 99);
  const int n = static_cast<int>(rng.uniform_int(3, 10));
  std::vector<double> value(static_cast<std::size_t>(n));
  std::vector<double> weight(static_cast<std::size_t>(n));
  double wtotal = 0.0;
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(0.5, 10.0);
    weight[static_cast<std::size_t>(i)] = rng.uniform(0.5, 5.0);
    wtotal += weight[static_cast<std::size_t>(i)];
  }
  const double cap = wtotal * rng.uniform(0.3, 0.7);

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double v = 0.0;
    double w = 0.0;
    for (int i = 0; i < n; ++i)
      if (mask & (1 << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    if (w <= cap) best = std::max(best, v);
  }

  Model m;
  std::vector<Term> row;
  for (int i = 0; i < n; ++i) {
    const int x = m.add_binary("x", -value[static_cast<std::size_t>(i)]);
    row.push_back({x, weight[static_cast<std::size_t>(i)]});
  }
  (void)m.add_constraint("w", std::move(row), Sense::LessEqual, cap);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(-sol.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnapsackExhaustive, ::testing::Range(0, 30));

}  // namespace
}  // namespace ww::milp
