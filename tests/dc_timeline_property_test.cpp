// Randomized stress of CapacityTimeline against a naive reference that
// stores raw intervals, including interleaved pruning.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dc/capacity_timeline.hpp"
#include "util/rng.hpp"

namespace ww::dc {
namespace {

/// Naive reference: keeps every interval, answers queries by scanning.
class NaiveTimeline {
 public:
  void reserve(double s, double e) { intervals_.emplace_back(s, e); }

  [[nodiscard]] int occupancy_at(double t) const {
    int occ = 0;
    for (const auto& [s, e] : intervals_)
      if (s <= t && t < e) ++occ;
    return occ;
  }

  [[nodiscard]] int max_occupancy(double start, double end) const {
    // Peak over event points within [start, end) plus the entry occupancy.
    int peak = occupancy_at(start);
    for (const auto& [s, e] : intervals_) {
      if (s > start && s < end) peak = std::max(peak, occupancy_at(s));
      (void)e;
    }
    return peak;
  }

 private:
  std::vector<std::pair<double, double>> intervals_;
};

class TimelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(TimelineProperty, MatchesNaiveReferenceUnderPruning) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  CapacityTimeline tl(1000000);  // effectively uncapped: we compare counts
  NaiveTimeline ref;

  double now = 0.0;
  for (int step = 0; step < 400; ++step) {
    const double start = now + rng.uniform(0.0, 200.0);
    const double dur = rng.uniform(1.0, 300.0);
    tl.reserve(start, start + dur);
    ref.reserve(start, start + dur);

    if (rng.bernoulli(0.2)) {
      now += rng.uniform(0.0, 100.0);
      tl.prune(now);
      // The reference keeps everything; queries stay >= `now` so pruning
      // must be observationally invisible.
    }

    // Randomized point and window queries at or after the prune horizon.
    for (int q = 0; q < 3; ++q) {
      const double t = now + rng.uniform(0.0, 500.0);
      ASSERT_EQ(tl.occupancy_at(t), ref.occupancy_at(t))
          << "param " << GetParam() << " step " << step << " t " << t;
      const double w0 = now + rng.uniform(0.0, 400.0);
      const double w1 = w0 + rng.uniform(1.0, 300.0);
      ASSERT_EQ(tl.max_occupancy(w0, w1), ref.max_occupancy(w0, w1))
          << "param " << GetParam() << " step " << step;
    }
  }
}

TEST_P(TimelineProperty, FitsConsistentWithMaxOccupancy) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  const int cap = static_cast<int>(rng.uniform_int(1, 8));
  CapacityTimeline tl(cap);

  int placed = 0;
  for (int step = 0; step < 300; ++step) {
    const double start = rng.uniform(0.0, 1000.0);
    const double end = start + rng.uniform(1.0, 200.0);
    const bool fits = tl.fits(start, end);
    ASSERT_EQ(fits, tl.max_occupancy(start, end) < cap);
    if (fits) {
      tl.reserve(start, end);
      ++placed;
      // Invariant: never exceed capacity anywhere.
      ASSERT_LE(tl.max_occupancy(0.0, 2000.0), cap);
    }
  }
  EXPECT_GT(placed, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimelineProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace ww::dc
