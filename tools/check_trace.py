#!/usr/bin/env python3
"""Schema check for WaterWise observability exports (CI gate).

Validates a Chrome trace-event JSON produced by obs::Trace::write_chrome_json
(the file WW_TRACE / --trace-out writes) and, optionally, the metrics JSON
written next to it:

  trace:   top-level object with a "traceEvents" list; every event carries
           name/ph/ts/pid/tid; phases are B or E; within each tid the B/E
           events nest like balanced parentheses with matching names and
           timestamps are monotone non-decreasing (the writer emits B at
           span open and E at span close from per-thread buffers, so any
           violation means the exporter — not the run — is broken).
  metrics: every scheduler object in the dump carries the service-level
           histograms (decision latency, queue depth, time-to-admission)
           with p50/p99 and a counts list, per ROADMAP item 4.

Usage:
  check_trace.py TRACE_JSON [--metrics METRICS_JSON] [--min-events N]

Exits nonzero with a message on the first violation, so CI logs point at
the offending event.
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")
SERVICE_HISTS = (
    "service.decision_latency_s",
    "service.queue_depth",
    "service.time_to_admission_s",
)
HIST_KEYS = ("lo", "hi", "total", "dropped", "p50", "p95", "p99", "counts")


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, min_events: int) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")
    if len(events) < min_events:
        fail(f"{path}: {len(events)} event(s) < required {min_events}")

    # Per-tid span stack: events must nest, names must match, and within a
    # tid timestamps must be monotone (per-thread buffers are append-only).
    stacks: dict[int, list[dict]] = {}
    last_ts: dict[int, float] = {}
    for i, ev in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}': {ev}")
        if ev["ph"] not in ("B", "E"):
            fail(f"{path}: event {i} has phase '{ev['ph']}', expected B or E")
        tid = ev["tid"]
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {i} has invalid ts {ts!r}")
        if ts < last_ts.get(tid, 0.0):
            fail(f"{path}: event {i} ts {ts} < previous ts {last_ts[tid]} "
                 f"on tid {tid} (per-thread buffer not monotone)")
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        if ev["ph"] == "B":
            stack.append(ev)
        else:
            if not stack:
                fail(f"{path}: event {i} E '{ev['name']}' on tid {tid} "
                     "without a matching B")
            top = stack.pop()
            if top["name"] != ev["name"]:
                fail(f"{path}: event {i} E '{ev['name']}' closes B "
                     f"'{top['name']}' on tid {tid} (misnested spans)")
    for tid, stack in sorted(stacks.items()):
        if stack:
            fail(f"{path}: tid {tid} ends with {len(stack)} unclosed span(s),"
                 f" first '{stack[0]['name']}'")
    return len(events)


def check_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: metrics dump is not an object")
    # Either one registry dump or a {label: registry} map of them.
    registries = ({"": doc} if "histograms" in doc else doc)
    checked = 0
    for label, reg in registries.items():
        if not isinstance(reg, dict) or "histograms" not in reg:
            continue
        hists = reg["histograms"]
        for name in SERVICE_HISTS:
            if name not in hists:
                fail(f"{path}: '{label}' is missing histogram '{name}'")
            for key in HIST_KEYS:
                if key not in hists[name]:
                    fail(f"{path}: '{label}' histogram '{name}' is missing "
                         f"'{key}'")
            if not isinstance(hists[name]["counts"], list):
                fail(f"{path}: '{label}' histogram '{name}' counts is not "
                     "a list")
        checked += 1
    if checked == 0:
        fail(f"{path}: no registry dump with service histograms found")
    print(f"check_trace: metrics OK: {checked} registry dump(s) carry the "
          "service histograms")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics", help="metrics JSON written next to it")
    parser.add_argument(
        "--min-events", type=int, default=1,
        help="fail when the trace holds fewer events (default 1)")
    args = parser.parse_args(argv)

    n = check_trace(args.trace, args.min_events)
    print(f"check_trace: trace OK: {n} event(s), matched B/E pairs, "
          "monotone per-thread timestamps")
    if args.metrics:
        check_metrics(args.metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
