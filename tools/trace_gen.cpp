// trace_gen: generates Borg-/Alibaba-style trace CSVs for waterwise_sim.
//
//   trace_gen --trace borg --days 10 --seed 7 --out borg_10d.csv
#include <fstream>
#include <iostream>

#include "trace/generator.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ww;
  util::Flags flags;
  flags.define("trace", "borg | alibaba", "borg")
      .define("days", "simulated days", "1.0")
      .define("seed", "generator seed", "7")
      .define("rate-multiplier", "arrival-rate multiplier", "1.0")
      .define("out", "output CSV path (default: stdout)")
      .define_bool("help", "show this help");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (flags.get_bool("help")) {
    std::cout << "trace_gen — trace CSV generator\n" << flags.help();
    return 0;
  }

  try {
    auto cfg = flags.get("trace") == "alibaba"
                   ? trace::alibaba_config(
                         static_cast<std::uint64_t>(flags.get_long("seed", 7)),
                         flags.get_double("days", 1.0))
                   : trace::borg_config(
                         static_cast<std::uint64_t>(flags.get_long("seed", 7)),
                         flags.get_double("days", 1.0));
    cfg.rate_multiplier = flags.get_double("rate-multiplier", 1.0);
    const auto jobs = trace::generate_trace(cfg);
    if (flags.has("out")) {
      std::ofstream out(flags.get("out"));
      trace::write_trace_csv(out, jobs);
      std::cerr << "wrote " << jobs.size() << " jobs to " << flags.get("out")
                << "\n";
    } else {
      trace::write_trace_csv(std::cout, jobs);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
