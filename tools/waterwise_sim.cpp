// waterwise_sim: command-line campaign driver.
//
// Runs any scheduler over a generated or file-based trace and reports the
// figures of merit, optionally against a Baseline run of the same trace.
//
//   waterwise_sim --scheduler waterwise --trace borg --days 1 --tol 0.5
//   waterwise_sim --scheduler carbon-opt --trace alibaba --compare --jobs 2
//   waterwise_sim --lambda-sweep 0.3,0.5,0.7 --jobs 8
//   waterwise_sim --trace-file jobs.csv --scheduler waterwise
//       --lambda-co2 0.7 --dataset wri --out summary.csv --jobs-out jobs_out.csv
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/waterwise.hpp"
#include "dc/campaign_runner.hpp"
#include "obs/trace.hpp"
#include "dc/simulator.hpp"
#include "sched/basic.hpp"
#include "sched/ecovisor.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace ww;

std::unique_ptr<dc::Scheduler> make_scheduler(const std::string& name,
                                              const core::WaterWiseConfig& cfg) {
  if (name == "waterwise") return std::make_unique<core::WaterWiseScheduler>(cfg);
  if (name == "baseline") return std::make_unique<sched::BaselineScheduler>();
  if (name == "round-robin") return std::make_unique<sched::RoundRobinScheduler>();
  if (name == "least-load") return std::make_unique<sched::LeastLoadScheduler>();
  if (name == "ecovisor") return std::make_unique<sched::EcovisorScheduler>();
  if (name == "carbon-opt")
    return std::make_unique<sched::GreedyOptScheduler>(sched::GreedyMetric::Carbon);
  if (name == "water-opt")
    return std::make_unique<sched::GreedyOptScheduler>(sched::GreedyMetric::Water);
  throw std::invalid_argument("unknown scheduler '" + name + "'");
}

void write_summary_header(util::CsvWriter& w) {
  w.write_row({"scheduler", "tol", "jobs", "carbon_g", "water_l", "cost_usd",
               "mean_service_norm", "violation_pct", "carbon_saving_pct",
               "water_saving_pct", "decision_seconds"});
}

void write_summary_row(util::CsvWriter& w, const dc::CampaignResult& res,
                       const dc::CampaignResult* base) {
  w.write_row({res.scheduler_name, util::format_double(res.tol),
               std::to_string(res.num_jobs),
               util::format_double(res.total_carbon_g),
               util::format_double(res.total_water_l),
               util::format_double(res.total_cost_usd),
               util::format_double(res.mean_service_norm()),
               util::format_double(res.violation_pct()),
               base ? util::format_double(res.carbon_saving_pct_vs(*base)) : "",
               base ? util::format_double(res.water_saving_pct_vs(*base)) : "",
               util::format_double(res.decision_seconds_total)});
}

void write_summary_csv(const std::string& path, const dc::CampaignResult& res,
                       const dc::CampaignResult* base) {
  std::ofstream out(path);
  util::CsvWriter w(out);
  write_summary_header(w);
  write_summary_row(w, res, base);
}

std::vector<double> parse_double_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      std::size_t pos = 0;
      const double v = std::stod(item, &pos);
      if (pos != item.size()) throw std::invalid_argument(item);
      out.push_back(v);
    } catch (const std::exception&) {
      throw std::invalid_argument("--lambda-sweep: '" + item +
                                  "' is not a number");
    }
  }
  if (out.empty())
    throw std::invalid_argument("expected a comma-separated number list, got '" +
                                csv + "'");
  return out;
}

/// When span tracing is on (--trace-out or WW_TRACE), writes the buffered
/// Chrome trace JSON to obs::Trace::output_path() and `metrics_json` next to
/// it, and prints a one-line summary.
void export_trace(const std::string& metrics_json) {
  obs::Trace& trace = obs::Trace::instance();
  if (!obs::Trace::enabled()) return;
  {
    std::ofstream out(trace.output_path());
    trace.write_chrome_json(out);
  }
  {
    std::ofstream out(trace.metrics_path());
    out << metrics_json;
  }
  std::cout << "[trace] wrote " << trace.event_count() << " event(s) to "
            << trace.output_path() << " (metrics: " << trace.metrics_path()
            << ")\n";
}

void write_jobs_csv(const std::string& path, const dc::CampaignResult& res) {
  std::ofstream out(path);
  util::CsvWriter w(out);
  w.write_row({"job_id", "home_region", "exec_region", "submit", "start",
               "finish", "carbon_g", "water_l", "violated"});
  for (const auto& o : res.jobs) {
    w.write_row({std::to_string(o.job_id), std::to_string(o.home_region),
                 std::to_string(o.exec_region),
                 util::format_double(o.submit_time),
                 util::format_double(o.start_time),
                 util::format_double(o.finish_time),
                 util::format_double(o.carbon_g),
                 util::format_double(o.water_l), o.violated ? "1" : "0"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("scheduler", "waterwise | baseline | round-robin | least-load | "
               "ecovisor | carbon-opt | water-opt", "waterwise")
      .define("trace", "borg | alibaba (generated)", "borg")
      .define("trace-file", "read jobs from a CSV instead of generating")
      .define("days", "simulated days for generated traces", "1.0")
      .define("seed", "trace generator seed", "7")
      .define("rate-multiplier", "arrival-rate multiplier", "1.0")
      .define("tol", "delay tolerance fraction (0.5 = 50%)", "0.5")
      .define("capacity-scale", "server-count multiplier per region", "1.0")
      .define("batch-window", "max seconds between controller batches", "60")
      .define("lambda-co2", "carbon objective weight", "0.5")
      .define("lambda-ref", "history-learner weight", "0.1")
      .define("lambda-cost", "cost-objective extension weight", "0")
      .define("lambda-perf", "performance-objective extension weight", "0")
      .define("dataset", "em | wri water dataset", "em")
      .define("out", "write a one-row summary CSV here")
      .define("jobs-out", "write per-job outcomes CSV here")
      .define("jobs", "campaign worker threads (0 = all cores)", "1")
      .define("lambda-sweep", "comma-separated lambda_CO2 list; runs the "
              "sweep + Baseline as a parallel campaign")
      .define("trace-out", "write Chrome trace-event JSON here (enables "
              "span tracing; WW_TRACE=<path> is equivalent)")
      .define_bool("compare", "also run Baseline and report savings")
      .define_bool("help", "show this help");

  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (flags.get_bool("help")) {
    std::cout << "waterwise_sim — WaterWise campaign driver\n" << flags.help();
    return 0;
  }

  obs::Trace::instance().configure_from_env();
  if (flags.has("trace-out")) {
    obs::Trace::instance().set_output_path(flags.get("trace-out"));
    obs::Trace::instance().set_enabled(true);
  }

  try {
    // --- environment ------------------------------------------------------
    env::EnvironmentConfig env_cfg;
    if (flags.get("dataset") == "wri")
      env_cfg.dataset = env::WaterDataset::WorldResourcesInstitute;
    else if (flags.get("dataset") != "em")
      throw std::invalid_argument("--dataset must be em or wri");
    const env::Environment env = env::Environment::builtin(env_cfg);
    const footprint::FootprintModel footprint(env);

    // --- trace --------------------------------------------------------------
    std::vector<trace::Job> jobs;
    if (flags.has("trace-file")) {
      std::ifstream in(flags.get("trace-file"));
      if (!in) throw std::runtime_error("cannot open " + flags.get("trace-file"));
      jobs = trace::read_trace_csv(in);
    } else {
      auto tcfg = flags.get("trace") == "alibaba"
                      ? trace::alibaba_config(
                            static_cast<std::uint64_t>(flags.get_long("seed", 7)),
                            flags.get_double("days", 1.0))
                      : trace::borg_config(
                            static_cast<std::uint64_t>(flags.get_long("seed", 7)),
                            flags.get_double("days", 1.0));
      tcfg.rate_multiplier = flags.get_double("rate-multiplier", 1.0);
      jobs = trace::generate_trace(tcfg);
    }

    // --- simulator ----------------------------------------------------------
    dc::SimConfig sim_cfg;
    sim_cfg.tol = flags.get_double("tol", 0.5);
    sim_cfg.capacity_scale = flags.get_double("capacity-scale", 1.0);
    sim_cfg.batch_window_s = flags.get_double("batch-window", 60.0);
    sim_cfg.record_jobs = flags.has("jobs-out");
    dc::Simulator sim(env, footprint, sim_cfg);

    core::WaterWiseConfig ww_cfg;
    ww_cfg.lambda_co2 = flags.get_double("lambda-co2", 0.5);
    ww_cfg.lambda_h2o = 1.0 - ww_cfg.lambda_co2;
    ww_cfg.lambda_ref = flags.get_double("lambda-ref", 0.1);
    ww_cfg.lambda_cost = flags.get_double("lambda-cost", 0.0);
    ww_cfg.lambda_perf = flags.get_double("lambda-perf", 0.0);

    const long jobs_flag = flags.get_long("jobs", 1);
    if (jobs_flag < 0)
      throw std::invalid_argument("--jobs must be >= 0 (0 = all cores)");
    dc::CampaignConfig campaign_cfg;
    campaign_cfg.jobs = static_cast<std::size_t>(jobs_flag);
    campaign_cfg.seed = static_cast<std::uint64_t>(flags.get_long("seed", 7));

    // --- lambda-sweep campaign mode -----------------------------------------
    if (flags.has("lambda-sweep")) {
      if (flags.has("jobs-out"))
        throw std::invalid_argument(
            "--jobs-out is per-run output; not supported with --lambda-sweep");
      if (flags.has("scheduler"))
        throw std::invalid_argument(
            "--lambda-sweep always sweeps WaterWise vs Baseline; "
            "--scheduler is not supported");
      if (flags.get_bool("compare"))
        throw std::invalid_argument(
            "--lambda-sweep already compares against Baseline; "
            "--compare is not supported");
      sim_cfg.record_jobs = false;  // no per-job consumers in sweep mode
      const auto lambdas = parse_double_list(flags.get("lambda-sweep"));
      dc::CampaignRunner runner(campaign_cfg);
      runner.add_baseline("", "Baseline", [&](dc::ScenarioContext&) {
        sched::BaselineScheduler baseline;
        dc::Simulator s(env, footprint, sim_cfg);
        return s.run(jobs, baseline);
      });
      for (const double lambda : lambdas) {
        runner.add("waterwise lambda_CO2=" + util::Table::fixed(lambda, 2),
                   [&, lambda](dc::ScenarioContext&) {
                     core::WaterWiseConfig cfg = ww_cfg;
                     cfg.lambda_co2 = lambda;
                     cfg.lambda_h2o = 1.0 - lambda;
                     core::WaterWiseScheduler ww(cfg);
                     dc::Simulator s(env, footprint, sim_cfg);
                     return s.run(jobs, ww);
                   });
      }
      std::cout << "Running " << runner.size() << "-scenario lambda sweep on "
                << jobs.size() << " jobs (--jobs "
                << (campaign_cfg.jobs == 0 ? std::string("all cores")
                                           : std::to_string(campaign_cfg.jobs))
                << ")...\n";
      const auto outcomes = runner.run_all();
      dc::CampaignRunner::aggregate(outcomes).print(std::cout);
      if (flags.has("out")) {
        std::ofstream csv(flags.get("out"));
        util::CsvWriter w(csv);
        write_summary_header(w);
        for (const auto& o : outcomes) {
          dc::CampaignResult labelled = o.result;
          labelled.scheduler_name = o.label;  // distinguishes the lambdas
          write_summary_row(w, labelled,
                            o.baseline ? nullptr : &outcomes[0].result);
        }
      }
      // Sweep schedulers are scenario-local, so the metrics dump only
      // carries the span-derived trace; per-scheduler registries die with
      // their scenarios.
      export_trace("{}\n");
      return 0;
    }

    const auto scheduler = make_scheduler(flags.get("scheduler"), ww_cfg);
    std::cout << "Running " << scheduler->name() << " on " << jobs.size()
              << " jobs (tol " << sim_cfg.tol * 100 << "%)...\n";

    dc::CampaignResult res;
    std::unique_ptr<dc::CampaignResult> base;
    if (flags.get_bool("compare") && flags.get("scheduler") != "baseline") {
      // Main run and Baseline are independent scenarios; --jobs 2 overlaps
      // them on two cores.
      dc::CampaignRunner runner(campaign_cfg);
      runner.add(flags.get("scheduler"), [&](dc::ScenarioContext&) {
        dc::Simulator s(env, footprint, sim_cfg);
        return s.run(jobs, *scheduler);
      });
      runner.add_baseline("", "baseline", [&](dc::ScenarioContext&) {
        sched::BaselineScheduler baseline;
        dc::Simulator s(env, footprint, sim_cfg);
        return s.run(jobs, baseline);
      });
      auto outcomes = runner.run_all();
      res = std::move(outcomes[0].result);
      base = std::make_unique<dc::CampaignResult>(std::move(outcomes[1].result));
    } else {
      res = sim.run(jobs, *scheduler);
    }

    // --- report -------------------------------------------------------------
    util::Table table({"Metric", "Value"});
    table.add_row({"scheduler", res.scheduler_name});
    table.add_row({"jobs", std::to_string(res.num_jobs)});
    table.add_row({"carbon (kgCO2)", util::Table::fixed(res.total_carbon_g / 1e3, 2)});
    table.add_row({"water (kL)", util::Table::fixed(res.total_water_l / 1e3, 2)});
    table.add_row({"electricity cost (USD)", util::Table::fixed(res.total_cost_usd, 2)});
    table.add_row({"mean service norm", util::Table::fixed(res.mean_service_norm(), 3) + "x"});
    table.add_row({"violations", util::Table::pct(res.violation_pct())});
    table.add_row({"decision time (s)", util::Table::fixed(res.decision_seconds_total, 3)});
    if (base) {
      table.add_row({"carbon saving vs baseline", util::Table::pct(res.carbon_saving_pct_vs(*base))});
      table.add_row({"water saving vs baseline", util::Table::pct(res.water_saving_pct_vs(*base))});
      table.add_row({"cost saving vs baseline", util::Table::pct(res.cost_saving_pct_vs(*base))});
    }
    table.print(std::cout);

    if (flags.has("out")) write_summary_csv(flags.get("out"), res, base.get());
    if (flags.has("jobs-out")) write_jobs_csv(flags.get("jobs-out"), res);
    const auto* ww =
        dynamic_cast<const core::WaterWiseScheduler*>(scheduler.get());
    export_trace(ww != nullptr ? ww->registry().to_json() : "{}\n");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
