// PATH: src/sched/fixture.cpp
// EXPECT: 10:direct-output-in-lib-paths
// EXPECT: 11:direct-output-in-lib-paths
// EXPECT: 12:direct-output-in-lib-paths
// EXPECT: 13:direct-output-in-lib-paths
// Fixture: direct stream output in a library path — interleaves under the
// campaign thread pool and corrupts driver-owned stdout.  The annotated
// write at the end is waived; the string mentioning cout is not code.
#include <cstdio>
void report(long n) { std::cout << n << "\n"; }
void warn() { std::cerr << "degraded\n"; }
void legacy(long n) { printf("%ld\n", n); }
void legacy_err() { fprintf(stderr, "bad\n"); }
const char* doc = "use std::cout only in drivers";
// det-ok: fatal-path diagnostic, emitted at most once before abort
void last_words() { std::cerr << "giving up\n"; }
