// PATH: src/core/fixture.cpp
// EXPECT: 9:solver-path-time-limit
// EXPECT: 11:solver-path-time-limit
// Fixture: wall-clock solver budgets in a scheduler path — machine load
// would decide where branch-and-bound truncates.  Both the default member
// init and the clamp are findings; reading/comparing the limit is fine,
// and a justified neutralization is waived.
struct Opts {
  double time_limit_seconds = 0.0;
};
void clamp(Opts& o) { o.time_limit_seconds = 0.02; }
bool expired(const Opts& o, double t) { return t > o.time_limit_seconds; }
// det-ok: neutralizes the wall-clock limit; budgets are deterministic
void neutralize(Opts& o) { o.time_limit_seconds = 1e300; }
