// PATH: src/core/fixture.cpp
// Fixture: every banned pattern either justified with det-ok or outside
// the rule's scope — the lint must stay silent on all of it.
#include <map>
#include <unordered_map>

// Annotated: lookup-only use, iteration order never observed.
std::unordered_map<int, double> cache;  // det-ok: lookup-only, never iterated

// The 80-column escape hatch: a comment-only det-ok line immediately above
// the code line counts as the same annotation.
// det-ok: lookup-only, never iterated
std::unordered_map<long, double> wide_cache_with_a_longer_name_than_fits;

// Comment-only and string-literal mentions are not code:
// a std::thread here would be bad, and so would std::unordered_set.
const char* kHelp = "seed with std::random_device for true entropy";

// Value-keyed ordered containers are always fine.
std::map<int, double> cost_by_region;
