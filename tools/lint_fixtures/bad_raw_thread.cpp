// PATH: tests/fixture_test.cpp
// EXPECT: 9:raw-thread-or-async
// EXPECT: 10:raw-thread-or-async
// Fixture: raw threads and std::async outside util/thread_pool.
#include <future>
#include <thread>

void fan_out() {
  std::thread worker([] {});
  auto f = std::async([] { return 1; });
  worker.join();
  f.get();
}
