// PATH: src/dc/fixture.cpp
// EXPECT: 8:bare-det-ok
// EXPECT: 8:unordered-in-solver-path
// Fixture: det-ok without a justification is itself a finding, and it
// suppresses nothing — the annotation is a reviewed claim, not a mute
// button, so the underlying ban still fires alongside it.
#include <unordered_map>
std::unordered_map<int, int> index;  // det-ok
