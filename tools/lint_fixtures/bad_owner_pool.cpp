// PATH: src/dc/owner_pool.cpp
// EXPECT: 11:owner-thread-pool
// EXPECT: 12:owner-thread-pool
// EXPECT: 13:owner-thread-pool
// Fixture: per-owner ThreadPool construction outside src/util.  Fan-out
// must go through the process-global work-stealing pool so campaign
// scenario tasks and chunk subtasks share one scheduler.
#include "util/thread_pool.hpp"

void owner_pools() {
  ww::util::ThreadPool pool(4);
  auto* leaked = new ww::util::ThreadPool(2);
  auto owned = std::make_unique<ww::util::ThreadPool>(8);
  // det-ok: isolated legacy-pool test double, never shared with the solver
  ww::util::ThreadPool waived(1);
  (void)pool;
  (void)leaked;
  (void)owned;
  (void)waived;
}
