// PATH: src/milp/fixture.cpp
// EXPECT: 8:unordered-in-solver-path
// EXPECT: 12:unordered-in-solver-path
// Fixture: unordered containers in a solver path without justification.
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> build_costs();

void touch() {
  // The declaration is the finding; any later iteration rides on it.
  std::unordered_set<int> seen;
  seen.insert(3);
}
