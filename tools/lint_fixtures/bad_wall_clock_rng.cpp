// PATH: src/sched/fixture.cpp
// EXPECT: 9:wall-clock-or-adhoc-rng
// EXPECT: 10:wall-clock-or-adhoc-rng
// EXPECT: 11:wall-clock-or-adhoc-rng
// EXPECT: 12:wall-clock-or-adhoc-rng
// Fixture: ad-hoc randomness and wall-clock reads outside util/rng,timer.
#include <chrono>

int noisy_seed() { return rand(); }
long stamp() { return time(nullptr); }
unsigned hw_entropy_seed = std::random_device{}();
auto t0 = std::chrono::steady_clock::now();
