// PATH: src/util/rng.cpp
// Fixture: util/rng.* is the one place entropy and <random> machinery may
// live; nothing here may be reported.
#include <random>

unsigned mix_in_hardware_entropy() {
  std::random_device dev;
  return dev();
}
