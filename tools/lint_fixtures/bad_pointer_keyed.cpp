// PATH: src/env/fixture.cpp
// EXPECT: 8:pointer-keyed-container
// EXPECT: 9:pointer-keyed-container
// Fixture: ordered containers keyed on pointers (allocation-order
// iteration) — banned everywhere, not just in solver paths.
#include <map>
#include <set>
std::map<const int*, double> weight_by_node;
std::set<char*> live_buffers;
std::map<long, double> fine_by_id;  // value-keyed: not a finding
