#!/usr/bin/env python3
"""Repo-specific determinism lint for WaterWise.

The repo's standing invariant (ROADMAP.md) is that campaign aggregates are
byte-identical across thread counts and ablation switches.  clang-tidy and
the sanitizers catch races and UB, but not the *sources* of run-to-run
divergence this codebase has actually been bitten by.  This lint enforces
seven repo-specific bans, each escapable only by an explicit justification
comment on the offending line (or, when the 80-column limit forces it, a
comment-only line immediately above):

    // det-ok: <why this cannot reach outputs nondeterministically>

Rules
-----
unordered-in-solver-path
    `std::unordered_map` / `std::unordered_set` (and multi variants) may not
    appear in the solver/commit/aggregate paths (src/milp, src/core, src/dc)
    without a det-ok justification.  Hash-container iteration order is
    unspecified and changes across libstdc++ versions and ASLR; one range-for
    over one of these is enough to reorder decisions.  Lookup-only use is
    fine — say so in the annotation.

wall-clock-or-adhoc-rng
    `rand()` / `srand()` / `time(...)` / `clock()` / `gettimeofday` /
    `std::random_device` / `std::chrono` are banned outside util/rng.* and
    util/timer.*.  Every stochastic input must flow from util::Rng's named
    seed streams and every duration from util::Stopwatch, so experiments
    re-run bit-for-bit; a chrono-seeded RNG or wall-clock branch anywhere
    else silently breaks that.

pointer-keyed-container
    `std::map` / `std::set` (and multi variants) keyed on a pointer type are
    banned everywhere.  Pointer order is allocation order, so iterating one
    is as nondeterministic as a hash map while looking innocently sorted.

raw-thread-or-async
    `std::thread` / `std::jthread` / `std::async` are banned outside
    util/thread_pool.* and util/work_steal.*.  All fan-out goes through the
    work-stealing pool so the plan/solve/commit pipeline stays the single
    place where concurrency is reasoned about; ad-hoc threads are where
    completion-order commits sneak in.

owner-thread-pool
    Constructing `util::ThreadPool` outside src/util is banned.  Fan-out
    goes through the process-global work-stealing pool
    (`util::WorkStealingPool::global()` / `util::global_parallel_for` /
    `util::TaskGroup`), so campaign scenario tasks and the chunk subtasks
    their schedulers spawn share one set of workers; a per-owner pool
    reintroduces the nested-pool oversubscription the unified pool removed.
    Tests exercising the legacy pool in isolation may waive with det-ok.

solver-path-time-limit
    Assigning `time_limit_seconds` in the scheduler paths (src/core,
    src/dc) is banned without a det-ok justification.  A wall-clock solver
    budget lets machine load decide where branch-and-bound truncates, which
    changes decision streams run to run; scheduler-path solves must bound
    work with deterministic node/iteration budgets instead.  The milp
    library itself, tests, and benches may still set wall-clock limits.

direct-output-in-lib-paths
    `std::cout` / `std::cerr` / `printf` / `fprintf` are banned in the
    library paths (src/core, src/milp, src/dc, src/sched) without a det-ok
    justification.  Library code reports through return values, counters,
    and the obs registry/trace layer; a stray stream write interleaves
    nondeterministically under the campaign thread pool and corrupts the
    drivers' parseable stdout.  Drivers (bench/, tools/, tests/, examples/)
    own the terminal and may print freely.

A bare `// det-ok` with no justification text is itself an error: the
annotation is a reviewed claim, not a mute button.

The lint is regex/context based on purpose — no libclang dependency, so it
runs anywhere python3 exists (ctest registers it; CI runs it as a job).
`--self-test` checks the lint against the fixture corpus in
tools/lint_fixtures/, asserting every banned pattern is caught and every
annotated/allowlisted pattern is not, so the lint itself cannot rot.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned relative to the repo root.
SCAN_DIRS = ("src", "bench", "tools", "tests", "examples")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}
# The fixture corpus intentionally violates every rule.
EXCLUDED_PARTS = {"lint_fixtures", "build"}

# Rule 1 applies only to the solver/commit/aggregate paths.
SOLVER_PATHS = ("src/milp", "src/core", "src/dc")

# Per-rule allowlists: files whose *job* is the banned construct.
WALLCLOCK_ALLOWED = ("src/util/rng.", "src/util/timer.")
THREAD_ALLOWED = ("src/util/thread_pool.", "src/util/work_steal.")
# Rule 7: the legacy per-owner pool may only be constructed inside src/util
# (its own implementation and the work-stealing pool's migration shims).
OWNER_POOL_ALLOWED = ("src/util/",)

DET_OK_RE = re.compile(r"//\s*det-ok\b(?P<rest>[^\n]*)")

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
WALLCLOCK_RE = re.compile(
    r"(?:\b(?:rand|srand|time|clock|gettimeofday|clock_gettime)\s*\()"
    r"|(?:std::random_device)"
    r"|(?:std::chrono\b)"
)
# std::map</std::set< with a first template argument containing a '*' before
# the separating comma (or closing '>' for sets): pointer-keyed ordering.
PTR_KEYED_RE = re.compile(
    r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?"
    r"\s*\*"
)
RAW_THREAD_RE = re.compile(r"std::(?:jthread\b|thread\b(?!_)|async\b)")
# ThreadPool construction: declarations (`ThreadPool pool;`, `... pool(4);`,
# `... pool{...};`), `new ThreadPool`, and make_unique<ThreadPool>.
# Qualified references (`ThreadPool::resolve_threads`) and parameter
# bindings (`ThreadPool& pool`) do not construct and are not matched.
OWNER_POOL_RE = re.compile(
    r"\bThreadPool\s+\w+\s*[({;=]"
    r"|\bnew\s+(?:ww::)?(?:util::)?ThreadPool\b"
    r"|\bmake_unique<\s*(?:ww::)?(?:util::)?ThreadPool\b")
# Assignment only (`=`, not `==`): reading or comparing the limit is fine.
TIME_LIMIT_RE = re.compile(r"\btime_limit_seconds\s*=(?!=)")

# Rule 5 applies to the scheduler paths, where solves must be budgeted in
# nodes/iterations (src/milp itself implements the limit and is exempt).
TIME_LIMIT_PATHS = ("src/core", "src/dc")

# Rule 6 applies to the library paths, which report through counters and
# the obs layer; drivers own stdout/stderr.
LIB_OUTPUT_PATHS = ("src/core", "src/milp", "src/dc", "src/sched")
DIRECT_OUTPUT_RE = re.compile(
    r"\bstd::(?:cout|cerr)\b|\b(?:printf|fprintf)\s*\(")

# Lines that merely name a header or appear in comments/strings are not
# findings; this lint keys on code, so strip comments and string literals
# before matching (det-ok detection happens on the raw line first).
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]')

RULES = (
    "unordered-in-solver-path",
    "wall-clock-or-adhoc-rng",
    "pointer-keyed-container",
    "raw-thread-or-async",
    "solver-path-time-limit",
    "direct-output-in-lib-paths",
    "owner-thread-pool",
)


def strip_comments_and_strings(line: str, in_block_comment: bool):
    """Removes // and /* */ comment text and string-literal contents.

    Keeps the lint keyed on code: `// no std::thread here, see util` must
    not fire.  Tracks block-comment state across lines; returns the
    stripped line and the new block-comment state.
    """
    out = []
    i = 0
    n = len(line)
    quote = None
    while i < n:
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if ch == "*" and nxt == "/":
                in_block_comment = False
                i += 2
                continue
            i += 1
            continue
        if quote:
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                quote = None
            i += 1
            continue
        if ch == "/" and nxt == "/":
            break
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


class Finding:
    def __init__(self, path: str, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def in_any(rel: str, prefixes) -> bool:
    return any(rel.startswith(p) for p in prefixes)


def lint_file(rel: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    in_solver_path = in_any(rel, SOLVER_PATHS)
    in_time_limit_path = in_any(rel, TIME_LIMIT_PATHS)
    in_lib_output_path = in_any(rel, LIB_OUTPUT_PATHS)
    wallclock_allowed = in_any(rel, WALLCLOCK_ALLOWED)
    thread_allowed = in_any(rel, THREAD_ALLOWED)
    owner_pool_allowed = in_any(rel, OWNER_POOL_ALLOWED)

    in_block = False
    prev_comment_det_ok = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        m = DET_OK_RE.search(raw)
        justified = m is not None
        if m and not m.group("rest").lstrip(": ").strip():
            findings.append(Finding(
                rel, line_no, "bare-det-ok",
                "det-ok annotation without a justification; write "
                "'// det-ok: <why this cannot reach outputs "
                "nondeterministically>'"))
            justified = False

        code, in_block = strip_comments_and_strings(raw, in_block)
        if not code.strip() or INCLUDE_RE.match(raw):
            # A comment-only det-ok line covers the next code line (the
            # 80-column escape hatch).
            prev_comment_det_ok = justified
            continue
        det_ok = justified or prev_comment_det_ok
        prev_comment_det_ok = False

        def report(rule: str, message: str):
            if det_ok:
                return  # justified on this line
            findings.append(Finding(rel, line_no, rule, message))

        if in_solver_path and UNORDERED_RE.search(code):
            report(
                "unordered-in-solver-path",
                "unordered container in a solver/commit/aggregate path; "
                "iteration order is unspecified — use a sorted/indexed "
                "container, or justify with '// det-ok: ...' (e.g. "
                "lookup-only, or output re-sorted deterministically)")
        if not wallclock_allowed and WALLCLOCK_RE.search(code):
            report(
                "wall-clock-or-adhoc-rng",
                "wall-clock or ad-hoc randomness outside util/rng.* and "
                "util/timer.*; derive randomness from util::Rng seed "
                "streams and durations from util::Stopwatch, or justify "
                "with '// det-ok: ...'")
        if PTR_KEYED_RE.search(code):
            report(
                "pointer-keyed-container",
                "ordered container keyed on a pointer; iteration order is "
                "allocation order — key on a stable id/index instead, or "
                "justify with '// det-ok: ...'")
        if not thread_allowed and RAW_THREAD_RE.search(code):
            report(
                "raw-thread-or-async",
                "raw std::thread/std::async outside util/thread_pool.* and "
                "util/work_steal.*; fan out through the work-stealing pool "
                "so commit order stays deterministic, or justify with "
                "'// det-ok: ...'")
        if not owner_pool_allowed and OWNER_POOL_RE.search(code):
            report(
                "owner-thread-pool",
                "per-owner util::ThreadPool constructed outside src/util; "
                "fan out through util::WorkStealingPool::global() (or "
                "util::global_parallel_for / util::TaskGroup) so scenario "
                "and chunk tasks share one scheduler, or justify with "
                "'// det-ok: ...' (e.g. isolated legacy-pool test)")
        if in_time_limit_path and TIME_LIMIT_RE.search(code):
            report(
                "solver-path-time-limit",
                "wall-clock solver budget assigned in a scheduler path; "
                "machine load would decide where the tree truncates — bound "
                "the solve with deterministic node/iteration budgets, or "
                "justify with '// det-ok: ...'")
        if in_lib_output_path and DIRECT_OUTPUT_RE.search(code):
            report(
                "direct-output-in-lib-paths",
                "direct stream output in a library path; report through "
                "return values, SchedulerStats counters, or the obs "
                "registry/trace layer so driver stdout stays parseable and "
                "thread-pool runs do not interleave, or justify with "
                "'// det-ok: ...'")
    return findings


def iter_source_files(root: Path):
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            if EXCLUDED_PARTS.intersection(path.parts):
                continue
            yield path


def run_lint(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_source_files(root):
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(rel, path.read_text(encoding="utf-8")))
    findings.sort(key=lambda f: (f.path, f.line_no, f.rule))
    return findings


# --- self-test -------------------------------------------------------------

# Every fixture file declares its expected findings in leading "// EXPECT:"
# lines: `// EXPECT: <line>:<rule>` (line numbers count the whole file,
# EXPECT header included).  A fixture with no EXPECT lines must lint clean.
EXPECT_RE = re.compile(r"^//\s*EXPECT:\s*(\d+):([\w-]+)\s*$")


def self_test(root: Path) -> int:
    fixture_dir = root / "tools" / "lint_fixtures"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + sorted(
        fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"self-test: no fixtures found under {fixture_dir}",
              file=sys.stderr)
        return 1

    failures = 0
    rules_proven = set()
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        expected = set()
        for line in text.splitlines():
            m = EXPECT_RE.match(line)
            if m:
                expected.add((int(m.group(1)), m.group(2)))

        # Fixtures are linted as if they lived at the path their name
        # declares (first comment line `// PATH: <rel>`), so path-scoped
        # rules (solver dirs, allowlists) are exercised too.
        path_m = re.search(r"^//\s*PATH:\s*(\S+)\s*$", text, re.MULTILINE)
        rel = path_m.group(1) if path_m else f"src/core/{path.name}"

        actual = {(f.line_no, f.rule) for f in lint_file(rel, text)}
        rules_proven.update(rule for _, rule in actual)
        if actual != expected:
            failures += 1
            print(f"self-test FAIL: {path.name} (as {rel})", file=sys.stderr)
            for miss in sorted(expected - actual):
                print(f"  expected but not reported: line {miss[0]} "
                      f"[{miss[1]}]", file=sys.stderr)
            for extra in sorted(actual - expected):
                print(f"  reported but not expected: line {extra[0]} "
                      f"[{extra[1]}]", file=sys.stderr)

    missing_rules = set(RULES) - rules_proven
    if missing_rules:
        failures += 1
        print("self-test FAIL: no fixture triggers "
              f"{sorted(missing_rules)}", file=sys.stderr)

    if failures:
        return 1
    print(f"self-test OK: {len(fixtures)} fixtures, "
          f"{len(rules_proven)} rules proven")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: the repo this script is in)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="lint the fixture corpus and verify expected findings")
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test(Path(__file__).resolve().parent.parent)

    findings = run_lint(args.root.resolve())
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s). "
              "Fix, or annotate the line with '// det-ok: <justification>'.",
              file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
