// Extension bench (paper Sec. 7, Discussion): cost and performance as
// additional objectives.  The paper sketches treating financial cost and
// performance as extra weighted terms; this bench quantifies the resulting
// trade-off frontier on the Borg-rate trace.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Extension: cost & performance objectives (Sec. 7)",
                "Sec. 7 Discussion");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));

  struct Case {
    std::string label;
    core::WaterWiseConfig cfg;
  };
  std::vector<Case> cases;
  {
    Case paper{"Paper objective (carbon+water)", {}};
    cases.push_back(paper);

    Case cost = paper;
    cost.label = "+ cost (lambda_cost = 0.5)";
    cost.cfg.lambda_cost = 0.5;
    cases.push_back(cost);

    Case cost_hard = paper;
    cost_hard.label = "+ cost (lambda_cost = 2.0)";
    cost_hard.cfg.lambda_cost = 2.0;
    cases.push_back(cost_hard);

    Case perf = paper;
    perf.label = "+ perf (lambda_perf = 0.5)";
    perf.cfg.lambda_perf = 0.5;
    cases.push_back(perf);

    Case perf_hard = paper;
    perf_hard.label = "+ perf (lambda_perf = 2.0)";
    perf_hard.cfg.lambda_perf = 2.0;
    cases.push_back(perf_hard);

    Case all = paper;
    all.label = "+ cost 0.3 + perf 0.3";
    all.cfg.lambda_cost = 0.3;
    all.cfg.lambda_perf = 0.3;
    cases.push_back(all);
  }

  bench::CampaignSpec spec;
  spec.tol = 0.5;
  dc::CampaignResult base;
  std::vector<dc::CampaignResult> results(cases.size());
  util::global_parallel_for(0, cases.size() + 1, [&](std::size_t k) {
    if (k == cases.size()) {
      base = bench::run_policy(jobs, bench::Policy::Baseline, spec);
      return;
    }
    results[k] =
        bench::run_policy(jobs, bench::Policy::WaterWise, spec, cases[k].cfg);
  });

  util::Table table({"Objective", "Carbon saving %", "Water saving %",
                     "Cost saving %", "Service norm"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].label,
                   util::Table::fixed(results[i].carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(results[i].water_saving_pct_vs(base), 2),
                   util::Table::fixed(results[i].cost_saving_pct_vs(base), 2),
                   util::Table::fixed(results[i].mean_service_norm(), 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nReading guide: adding the cost term recovers electricity-cost\n"
               "savings at some carbon/water expense; adding the perf term pulls\n"
               "the mean service norm toward 1.0 by discouraging long transfers —\n"
               "the integration path the paper's Discussion proposes.\n";
  return 0;
}
