// Shared harness for the per-figure/table benchmark binaries.
//
// Every bench prints a paper-style table on stdout.  Campaign length is
// scaled by the WW_BENCH_SCALE environment variable (default 1.0 => 1
// simulated day, ~23k Borg jobs; WW_BENCH_SCALE=10 reproduces the paper's
// full 10-day window).  Independent configurations fan out across a thread
// pool; results are deterministic regardless of parallelism.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/waterwise.hpp"
#include "dc/campaign_runner.hpp"
#include "dc/simulator.hpp"
#include "env/faults.hpp"
#include "sched/basic.hpp"
#include "sched/ecovisor.hpp"
#include "sched/greedy_opt.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"
#include "util/work_steal.hpp"

namespace ww::bench {

/// WW_BENCH_SCALE environment knob (clamped to [0.02, 20]).
[[nodiscard]] double scale();

/// Simulated days for the default campaign: 1.0 * scale().
[[nodiscard]] double campaign_days();

/// WW_BENCH_JOBS environment knob: campaign fan-out threads
/// (unset or 0 => hardware concurrency, 1 => serial).
[[nodiscard]] std::size_t bench_jobs();

/// CampaignConfig preconfigured from the bench environment knobs.
[[nodiscard]] dc::CampaignConfig campaign_config();

/// Runs the campaign across the pool, prints the wall-clock time and thread
/// count, and returns outcomes in add() order.
[[nodiscard]] std::vector<dc::ScenarioOutcome> run_and_time(
    dc::CampaignRunner& runner);

/// Prints the standard bench banner (figure/table id + provenance).
void banner(const std::string& experiment, const std::string& paper_ref);

struct CampaignSpec {
  double tol = 0.5;
  double capacity_scale = 1.0;
  env::EnvironmentConfig env_config;
  double embodied_scale = 1.0;
  dc::SimConfig sim;  ///< tol/capacity_scale fields are overwritten.
  /// Fault-injection campaign (borrowed; must outlive the run).  When set,
  /// run_campaign attaches it to the simulator (effective capacities, true
  /// World-view ledger) and builds a second biased Controller-view
  /// environment/footprint pair for the scheduler to observe.
  const env::FaultSchedule* faults = nullptr;
};

/// Runs one scheduler over one trace under one spec.  Builds a private
/// Environment/FootprintModel so specs can perturb them independently
/// (thread-safe fan-out).
[[nodiscard]] dc::CampaignResult run_campaign(
    const std::vector<trace::Job>& jobs, dc::Scheduler& scheduler,
    const CampaignSpec& spec);

/// Named scheduler factory used by the comparison benches.
enum class Policy {
  Baseline,
  RoundRobin,
  LeastLoad,
  Ecovisor,
  CarbonGreedyOpt,
  WaterGreedyOpt,
  WaterWise,
};

[[nodiscard]] std::unique_ptr<dc::Scheduler> make_scheduler(
    Policy policy, const core::WaterWiseConfig& ww_config = {});

[[nodiscard]] std::string policy_name(Policy policy);

/// Convenience: run (policy, spec) on `jobs` — constructs the scheduler too.
[[nodiscard]] dc::CampaignResult run_policy(
    const std::vector<trace::Job>& jobs, Policy policy,
    const CampaignSpec& spec, const core::WaterWiseConfig& ww_config = {});

/// Chunk-parallel equivalence check shared by the campaign drivers: runs a
/// WaterWise campaign over `jobs` with chunking forced (max_jobs_per_solve
/// clamped to 25) at solver_threads in {1, 2, 4, 8} on the unified
/// work-stealing pool and verifies the per-job decision stream and every
/// aggregate are byte-identical.  Prints a one-line verdict; returns false
/// on divergence (bench_fig13's startup self-check exits nonzero on it).
/// Under a WW_SCHED_THREADS override the four runs collapse onto the forced
/// thread count, exactly like the WW_PRESOLVE sweep under its override.
[[nodiscard]] bool check_chunk_parallel_equivalence(
    const std::vector<trace::Job>& jobs, const CampaignSpec& spec,
    core::WaterWiseConfig ww_config = {});

/// Prints the one-line degradation/fault summary for a WaterWise run:
/// fault events, degraded windows, solve retries, fallback placements,
/// deferred jobs (see core::SchedulerStats).
void print_degradation_counters(const std::string& label,
                                const core::SchedulerStats& stats);

/// Prints the service-level metrics panel (ROADMAP item 4) from a WaterWise
/// scheduler's registry: per-window decision-latency p50/p95/p99, queue
/// depth, and time-to-admission.  Latency is wall-clock (observational);
/// queue depth and time-to-admission are deterministic.
void print_service_metrics(const std::string& label,
                           const obs::Registry& registry);

/// Prints the global work-stealing pool's lifetime counters (workers,
/// tasks run, tasks stolen, steal attempts).  Observational: steal counts
/// vary run to run and are never part of byte-identity comparisons.
void print_pool_counters(const std::string& label);

/// When WW_TRACE enabled tracing: writes the buffered Chrome trace JSON to
/// obs::Trace::output_path() and `metrics_json` to metrics_path(), prints a
/// one-line summary, and returns true.  No-op (false) when tracing is off.
bool export_trace_if_enabled(const std::string& metrics_json);

}  // namespace ww::bench
