// Fig. 11: WaterWise across cluster utilization levels (5%/15%/25%),
// obtained by changing the number of available servers per region.  Every
// (level, policy) cell is an independent campaign-runner scenario.
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 11: utilization sensitivity", "Sec. 6, Fig. 11");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  // 15% utilization is the paper's default (175 servers).  5% => 3x servers,
  // 25% => 0.6x servers.
  const std::vector<std::pair<std::string, double>> levels = {
      {"5%", 3.0}, {"15%", 1.0}, {"25%", 0.6}};
  const std::vector<bench::Policy> policies = {
      bench::Policy::Baseline, bench::Policy::CarbonGreedyOpt,
      bench::Policy::WaterGreedyOpt, bench::Policy::WaterWise};

  dc::CampaignRunner runner(bench::campaign_config());
  for (const auto& [level, capacity_scale] : levels) {
    for (const bench::Policy policy : policies) {
      const double scale = capacity_scale;
      const auto body = [&, scale, policy](dc::ScenarioContext&) {
        bench::CampaignSpec spec;
        spec.tol = 0.5;
        spec.capacity_scale = scale;
        return bench::run_policy(jobs, policy, spec);
      };
      if (policy == bench::Policy::Baseline)
        runner.add_baseline(level, bench::policy_name(policy), body);
      else
        runner.add({level, bench::policy_name(policy), false, body});
    }
  }
  const auto outcomes = bench::run_and_time(runner);

  util::Table table({"Utilization", "Scheme", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const dc::CampaignResult& base = outcomes[i * policies.size()].result;
    for (std::size_t p = 1; p < policies.size(); ++p) {
      const auto& o = outcomes[i * policies.size() + p];
      table.add_row({levels[i].first, o.label,
                     util::Table::fixed(o.result.carbon_saving_pct_vs(base), 2),
                     util::Table::fixed(o.result.water_saving_pct_vs(base), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: WaterWise stays close to the oracles at\n"
               "every utilization level (paper: within 13.31%/7.04% at 5%).\n";

  // Standing invariant at the tightest utilization level (25% => 0.6x
  // servers): chunk-parallel solves must not change a single placement.
  bench::CampaignSpec eq_spec;
  eq_spec.tol = 0.5;
  eq_spec.capacity_scale = 0.6;
  const auto eq_jobs = trace::generate_trace(
      trace::borg_config(7, std::min(0.05, bench::campaign_days())));
  if (!bench::check_chunk_parallel_equivalence(eq_jobs, eq_spec)) return 1;
  return 0;
}
