// Fig. 11: WaterWise across cluster utilization levels (5%/15%/25%),
// obtained by changing the number of available servers per region.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 11: utilization sensitivity", "Sec. 6, Fig. 11");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  // 15% utilization is the paper's default (175 servers).  5% => 3x servers,
  // 25% => 0.6x servers.
  const std::vector<std::pair<std::string, double>> levels = {
      {"5%", 3.0}, {"15%", 1.0}, {"25%", 0.6}};

  struct Row {
    dc::CampaignResult base, carbon, water, ww;
  };
  std::vector<Row> rows(levels.size());
  util::ThreadPool pool;
  pool.parallel_for(levels.size() * 4, [&](std::size_t k) {
    const std::size_t i = k / 4;
    bench::CampaignSpec spec;
    spec.tol = 0.5;
    spec.capacity_scale = levels[i].second;
    switch (k % 4) {
      case 0: rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, spec); break;
      case 1: rows[i].carbon = bench::run_policy(jobs, bench::Policy::CarbonGreedyOpt, spec); break;
      case 2: rows[i].water = bench::run_policy(jobs, bench::Policy::WaterGreedyOpt, spec); break;
      case 3: rows[i].ww = bench::run_policy(jobs, bench::Policy::WaterWise, spec); break;
    }
  });

  util::Table table({"Utilization", "Scheme", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& b = rows[i].base;
    auto add = [&](const char* label, const dc::CampaignResult& r) {
      table.add_row({levels[i].first, label,
                     util::Table::fixed(r.carbon_saving_pct_vs(b), 2),
                     util::Table::fixed(r.water_saving_pct_vs(b), 2)});
    };
    add("Carbon-Greedy-Opt", rows[i].carbon);
    add("Water-Greedy-Opt", rows[i].water);
    add("WaterWise", rows[i].ww);
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: WaterWise stays close to the oracles at\n"
               "every utilization level (paper: within 13.31%/7.04% at 5%).\n";
  return 0;
}
