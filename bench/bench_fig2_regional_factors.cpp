// Fig. 2: regional carbon intensity, EWIF, WUE, WSF averages (a-d) and the
// temporal carbon-vs-water-intensity series for Oregon (e).
#include "common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 2: regional sustainability factors",
                "Sec. 3, Observation 2");

  const env::Environment env = env::Environment::builtin();
  const int samples = 24 * 365;

  util::Table table({"Region", "Carbon intensity (gCO2/kWh)", "EWIF (L/kWh)",
                     "WUE (L/kWh)", "WSF", "Water intensity (L/kWh)"});
  for (int r = 0; r < env.num_regions(); ++r) {
    util::RunningStats ci;
    util::RunningStats ewif;
    util::RunningStats wue;
    util::RunningStats wi;
    for (int h = 0; h < samples; ++h) {
      const double t = h * 3600.0;
      ci.add(env.carbon_intensity(r, t));
      ewif.add(env.ewif(r, t));
      wue.add(env.wue(r, t));
      wi.add(env.water_intensity(r, t));
    }
    table.add_row({env.region(r).name, util::Table::fixed(ci.mean(), 0),
                   util::Table::fixed(ewif.mean(), 2),
                   util::Table::fixed(wue.mean(), 2),
                   util::Table::fixed(env.wsf(r), 2),
                   util::Table::fixed(wi.mean(), 2)});
  }
  table.print(std::cout);

  // Panel (e): Oregon's carbon vs. water intensity across the year, monthly.
  const int oregon = env.region_index("Oregon");
  std::cout << "\nFig. 2(e): Oregon temporal variation (monthly means)\n";
  util::Table series({"Month", "Carbon intensity (gCO2/kWh)",
                      "Water intensity (L/kWh)"});
  std::vector<double> ci_series;
  std::vector<double> wi_series;
  for (int month = 0; month < 12; ++month) {
    util::RunningStats ci;
    util::RunningStats wi;
    for (int h = month * 730; h < (month + 1) * 730; ++h) {
      ci.add(env.carbon_intensity(oregon, h * 3600.0));
      wi.add(env.water_intensity(oregon, h * 3600.0));
    }
    ci_series.push_back(ci.mean());
    wi_series.push_back(wi.mean());
    series.add_row({std::to_string(month + 1), util::Table::fixed(ci.mean(), 0),
                    util::Table::fixed(wi.mean(), 2)});
  }
  series.print(std::cout);
  std::cout << "\nCarbon/water intensity correlation (hourly, Oregon): ";
  std::vector<double> ci_h;
  std::vector<double> wi_h;
  for (int h = 0; h < samples; ++h) {
    ci_h.push_back(env.carbon_intensity(oregon, h * 3600.0));
    wi_h.push_back(env.water_intensity(oregon, h * 3600.0));
  }
  std::cout << util::Table::fixed(util::correlation(ci_h, wi_h), 3)
            << "  (imperfect alignment = co-optimization opportunity)\n"
            << "\nShape check vs. paper: CI ordering Zurich < Madrid < Oregon <\n"
               "Milan < Mumbai; Zurich highest EWIF; Mumbai low EWIF but high\n"
               "WUE and WSF; Madrid carbon-friendly yet water-stressed.\n";
  return 0;
}
