// Sensitivity/robustness experiments reported in the Sec. 6 text:
//  * +-10% embodied-carbon estimation error (paper: 18%/26% savings remain)
//  * +-10% water-intensity estimation error  (paper: 28%/18% savings remain)
//  * 2x request rate                          (paper: 21.7%/10.2% savings)
// Extended beyond the paper with injected forecast-bias fault campaigns
// (env/faults.hpp): the controller observes systematically biased carbon or
// water intensities while the ledger bills the truth — a strictly stronger
// perturbation than input scaling, because decisions and accounting disagree.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Sensitivity & robustness (Sec. 6 text + fault injection)",
                "Sec. 6 robustness paragraphs");

  const double days = bench::campaign_days();
  const auto jobs = trace::generate_trace(trace::borg_config(7, days));
  auto doubled_cfg = trace::borg_config(7, days);
  doubled_cfg.rate_multiplier = 2.0;
  const auto jobs2x = trace::generate_trace(doubled_cfg);

  // Injected forecast-bias storms, generated from fixed seeds so every run
  // (and every thread count) perturbs the same windows.
  env::FaultScheduleConfig carbon_cfg;
  carbon_cfg.seed = 1207;
  carbon_cfg.horizon_seconds = days * 86400.0;
  carbon_cfg.bias_windows_per_region_day = 3.0;
  const env::FaultSchedule carbon_bias(carbon_cfg);

  env::FaultScheduleConfig water_cfg = carbon_cfg;
  water_cfg.seed = 1208;
  water_cfg.carbon_bias_min = 1.0;
  water_cfg.carbon_bias_max = 1.0;
  water_cfg.water_bias_min = 1.4;
  water_cfg.water_bias_max = 2.2;
  const env::FaultSchedule water_bias(water_cfg);

  struct Case {
    std::string label;
    const std::vector<trace::Job>* trace;
    bench::CampaignSpec spec;
  };
  std::vector<Case> cases;
  {
    bench::CampaignSpec nominal;
    nominal.tol = 0.5;
    cases.push_back({"Nominal", &jobs, nominal});

    bench::CampaignSpec emb_hi = nominal;
    emb_hi.embodied_scale = 1.10;
    cases.push_back({"Embodied carbon +10%", &jobs, emb_hi});
    bench::CampaignSpec emb_lo = nominal;
    emb_lo.embodied_scale = 0.90;
    cases.push_back({"Embodied carbon -10%", &jobs, emb_lo});

    bench::CampaignSpec wi_hi = nominal;
    wi_hi.env_config.water_intensity_scale = 1.10;
    cases.push_back({"Water intensity +10%", &jobs, wi_hi});
    bench::CampaignSpec wi_lo = nominal;
    wi_lo.env_config.water_intensity_scale = 0.90;
    cases.push_back({"Water intensity -10%", &jobs, wi_lo});

    cases.push_back({"2x request rate", &jobs2x, nominal});

    bench::CampaignSpec cb = nominal;
    cb.faults = &carbon_bias;
    cases.push_back({"Carbon forecast bias (injected)", &jobs, cb});
    bench::CampaignSpec wb = nominal;
    wb.faults = &water_bias;
    cases.push_back({"Water forecast bias (injected)", &jobs, wb});
  }

  // Shared campaign plumbing: each (case, policy) pair is an independent
  // CampaignRunner scenario; WaterWise degradation counters are captured
  // per case so the fault campaigns can report what the ladder absorbed.
  std::vector<core::SchedulerStats> ww_stats(cases.size());
  dc::CampaignRunner runner(bench::campaign_config());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    runner.add_baseline(cases[i].label, "Baseline",
                        [&cases, i](dc::ScenarioContext&) {
                          return bench::run_policy(*cases[i].trace,
                                                   bench::Policy::Baseline,
                                                   cases[i].spec);
                        });
    runner.add({cases[i].label, "WaterWise", false,
                [&cases, &ww_stats, i](dc::ScenarioContext&) {
                  core::WaterWiseScheduler ww;
                  auto res = bench::run_campaign(*cases[i].trace, ww,
                                                 cases[i].spec);
                  ww_stats[i] = ww.stats();
                  return res;
                }});
  }
  const auto outcomes = bench::run_and_time(runner);

  util::Table table({"Perturbation", "Carbon saving %", "Water saving %",
                     "Violation %"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const dc::CampaignResult& base = outcomes[2 * i].result;
    const dc::CampaignResult& ww = outcomes[2 * i + 1].result;
    table.add_row({cases[i].label,
                   util::Table::fixed(ww.carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(ww.water_saving_pct_vs(base), 2),
                   util::Table::fixed(ww.violation_pct(), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
  for (std::size_t i = 0; i < cases.size(); ++i)
    bench::print_degradation_counters(cases[i].label, ww_stats[i]);
  std::cout << "\nShape check vs. paper: savings survive every +-10% estimation\n"
               "perturbation and the doubled request rate (paper: 21.7% carbon /\n"
               "10.2% water at 2x rate).  The injected forecast-bias campaigns\n"
               "perturb the controller's observations only; the ledger above\n"
               "bills true (unbiased) intensities.\n";
  return 0;
}
