// Sensitivity/robustness experiments reported in the Sec. 6 text:
//  * +-10% embodied-carbon estimation error (paper: 18%/26% savings remain)
//  * +-10% water-intensity estimation error  (paper: 28%/18% savings remain)
//  * 2x request rate                          (paper: 21.7%/10.2% savings)
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Sensitivity & robustness (Sec. 6 text)",
                "Sec. 6 robustness paragraphs");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  auto doubled_cfg = trace::borg_config(7, bench::campaign_days());
  doubled_cfg.rate_multiplier = 2.0;
  const auto jobs2x = trace::generate_trace(doubled_cfg);

  struct Case {
    std::string label;
    const std::vector<trace::Job>* trace;
    bench::CampaignSpec spec;
  };
  std::vector<Case> cases;
  {
    bench::CampaignSpec nominal;
    nominal.tol = 0.5;
    cases.push_back({"Nominal", &jobs, nominal});

    bench::CampaignSpec emb_hi = nominal;
    emb_hi.embodied_scale = 1.10;
    cases.push_back({"Embodied carbon +10%", &jobs, emb_hi});
    bench::CampaignSpec emb_lo = nominal;
    emb_lo.embodied_scale = 0.90;
    cases.push_back({"Embodied carbon -10%", &jobs, emb_lo});

    bench::CampaignSpec wi_hi = nominal;
    wi_hi.env_config.water_intensity_scale = 1.10;
    cases.push_back({"Water intensity +10%", &jobs, wi_hi});
    bench::CampaignSpec wi_lo = nominal;
    wi_lo.env_config.water_intensity_scale = 0.90;
    cases.push_back({"Water intensity -10%", &jobs, wi_lo});

    cases.push_back({"2x request rate", &jobs2x, nominal});
  }

  struct Row {
    dc::CampaignResult base, ww;
  };
  std::vector<Row> rows(cases.size());
  util::ThreadPool pool;
  pool.parallel_for(cases.size() * 2, [&](std::size_t k) {
    const std::size_t i = k / 2;
    if (k % 2 == 0)
      rows[i].base =
          bench::run_policy(*cases[i].trace, bench::Policy::Baseline, cases[i].spec);
    else
      rows[i].ww =
          bench::run_policy(*cases[i].trace, bench::Policy::WaterWise, cases[i].spec);
  });

  util::Table table({"Perturbation", "Carbon saving %", "Water saving %",
                     "Violation %"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].label,
                   util::Table::fixed(rows[i].ww.carbon_saving_pct_vs(rows[i].base), 2),
                   util::Table::fixed(rows[i].ww.water_saving_pct_vs(rows[i].base), 2),
                   util::Table::fixed(rows[i].ww.violation_pct(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: savings survive every +-10% estimation\n"
               "perturbation and the doubled request rate (paper: 21.7% carbon /\n"
               "10.2% water at 2x rate).\n";
  return 0;
}
