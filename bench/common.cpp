#include "common.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <optional>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ww::bench {

double scale() {
  if (const char* s = std::getenv("WW_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return std::clamp(v, 0.02, 20.0);
  }
  return 1.0;
}

double campaign_days() { return 1.0 * scale(); }

std::size_t bench_jobs() {
  const char* s = std::getenv("WW_BENCH_JOBS");
  if (s == nullptr || *s == '\0') return 0;  // all cores
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) {
    // Fall back to serial rather than silently saturating every core.
    std::cerr << "warning: WW_BENCH_JOBS='" << s
              << "' is not a non-negative integer; running serially\n";
    return 1;
  }
  return static_cast<std::size_t>(v);
}

dc::CampaignConfig campaign_config() {
  dc::CampaignConfig cfg;
  cfg.jobs = bench_jobs();
  return cfg;
}

std::vector<dc::ScenarioOutcome> run_and_time(dc::CampaignRunner& runner) {
  const std::size_t threads =
      util::WorkStealingPool::resolve_threads(runner.config().jobs);
  const util::Stopwatch watch;
  auto outcomes = runner.run_all();
  std::cout << "[campaign] " << outcomes.size() << " scenario(s) in "
            << util::Table::fixed(watch.elapsed_seconds(), 2) << " s on "
            << threads << " thread(s)\n";
  return outcomes;
}

void banner(const std::string& experiment, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << "WaterWise reproduction | " << experiment << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "Campaign: " << campaign_days()
            << " simulated day(s) of Borg-rate arrivals (WW_BENCH_SCALE="
            << scale() << ")\n"
            << "==============================================================\n";
}

dc::CampaignResult run_campaign(const std::vector<trace::Job>& jobs,
                                dc::Scheduler& scheduler,
                                const CampaignSpec& spec) {
  env::Environment env = env::Environment::builtin(spec.env_config);
  const footprint::FootprintModel fp(env, footprint::ServerSpec{},
                                     spec.embodied_scale);
  dc::SimConfig sim = spec.sim;
  sim.tol = spec.tol;
  sim.capacity_scale = spec.capacity_scale;
  dc::Simulator simulator(env, fp, sim);
  // Fault campaign: the ledger environment carries the true World view
  // (scarcity shocks only); a second Controller-view pair feeds the
  // scheduler biased observations; the simulator gates admissions on the
  // schedule's effective capacities.
  std::optional<env::Environment> observed_env;
  std::optional<footprint::FootprintModel> observed_fp;
  if (spec.faults != nullptr) {
    env.attach_faults(spec.faults, env::FaultView::World);
    observed_env.emplace(env::Environment::builtin(spec.env_config));
    observed_env->attach_faults(spec.faults, env::FaultView::Controller);
    observed_fp.emplace(*observed_env, footprint::ServerSpec{},
                        spec.embodied_scale);
    simulator.set_fault_injection(spec.faults, &*observed_env, &*observed_fp);
  }
  return simulator.run(jobs, scheduler);
}

std::unique_ptr<dc::Scheduler> make_scheduler(
    Policy policy, const core::WaterWiseConfig& ww_config) {
  switch (policy) {
    case Policy::Baseline:
      return std::make_unique<sched::BaselineScheduler>();
    case Policy::RoundRobin:
      return std::make_unique<sched::RoundRobinScheduler>();
    case Policy::LeastLoad:
      return std::make_unique<sched::LeastLoadScheduler>();
    case Policy::Ecovisor:
      return std::make_unique<sched::EcovisorScheduler>();
    case Policy::CarbonGreedyOpt:
      return std::make_unique<sched::GreedyOptScheduler>(
          sched::GreedyMetric::Carbon);
    case Policy::WaterGreedyOpt:
      return std::make_unique<sched::GreedyOptScheduler>(
          sched::GreedyMetric::Water);
    case Policy::WaterWise:
      return std::make_unique<core::WaterWiseScheduler>(ww_config);
  }
  return nullptr;
}

std::string policy_name(Policy policy) {
  return make_scheduler(policy)->name();
}

dc::CampaignResult run_policy(const std::vector<trace::Job>& jobs,
                              Policy policy, const CampaignSpec& spec,
                              const core::WaterWiseConfig& ww_config) {
  const auto scheduler = make_scheduler(policy, ww_config);
  return run_campaign(jobs, *scheduler, spec);
}

bool check_chunk_parallel_equivalence(const std::vector<trace::Job>& jobs,
                                      const CampaignSpec& spec,
                                      core::WaterWiseConfig ww_config) {
  // Force multi-chunk windows so the check exercises real fan-out even on
  // short traces, and record per-job outcomes for the stream comparison.
  ww_config.max_jobs_per_solve = std::min(ww_config.max_jobs_per_solve, 25);
  CampaignSpec rec_spec = spec;
  rec_spec.sim.record_jobs = true;

  std::optional<dc::CampaignResult> ref;
  long ref_chunks = 0;
  std::size_t ref_threads = 0;
  bool ok = true;
  for (const int threads : {1, 2, 4, 8}) {
    ww_config.solver_threads = threads;
    core::WaterWiseScheduler ww(ww_config);
    const dc::CampaignResult res = run_campaign(jobs, ww, rec_spec);
    if (!ref) {
      ref = res;
      ref_chunks = ww.stats().chunks_planned;
      ref_threads = ww.effective_solver_threads();
      continue;
    }
    bool same = res.num_jobs == ref->num_jobs &&
                res.total_carbon_g == ref->total_carbon_g &&
                res.total_water_l == ref->total_water_l &&
                res.violations == ref->violations &&
                res.jobs_per_region == ref->jobs_per_region &&
                res.makespan_seconds == ref->makespan_seconds &&
                res.jobs.size() == ref->jobs.size();
    if (same) {
      for (std::size_t i = 0; i < res.jobs.size(); ++i) {
        if (res.jobs[i].job_id != ref->jobs[i].job_id ||
            res.jobs[i].exec_region != ref->jobs[i].exec_region ||
            res.jobs[i].start_time != ref->jobs[i].start_time) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      std::cout << "[chunk-parallel] FAILED: solver_threads=" << threads
                << " diverged from the solver_threads=1 decision stream\n";
      ok = false;
    }
  }
  if (ok)
    std::cout << "[chunk-parallel] solver_threads {1, 2, 4, 8}: decision "
                 "stream and aggregates byte-identical ("
              << ref_chunks << " chunk plans; first run used " << ref_threads
              << " thread(s))\n";
  return ok;
}

void print_degradation_counters(const std::string& label,
                                const core::SchedulerStats& stats) {
  std::cout << "[degradation] " << label << ": fault_events="
            << stats.fault_events << " degraded_windows="
            << stats.degraded_windows << " solve_retries="
            << stats.solve_retries << " fallback_placements="
            << stats.fallback_placements << " deferred_jobs="
            << stats.deferred_jobs << "\n";
}

void print_service_metrics(const std::string& label,
                           const obs::Registry& registry) {
  const util::Histogram* lat =
      registry.find_hist("service.decision_latency_s");
  const util::Histogram* depth = registry.find_hist("service.queue_depth");
  const util::Histogram* adm =
      registry.find_hist("service.time_to_admission_s");
  const std::uint64_t* windows = registry.find_counter("sched.windows");
  if (lat == nullptr || depth == nullptr || adm == nullptr) {
    std::cout << "[service] " << label << ": no service metrics registered\n";
    return;
  }
  std::cout << "[service] " << label << ": decision latency p50/p95/p99 = "
            << util::Table::fixed(lat->quantile(0.50) * 1000.0, 3) << "/"
            << util::Table::fixed(lat->quantile(0.95) * 1000.0, 3) << "/"
            << util::Table::fixed(lat->quantile(0.99) * 1000.0, 3)
            << " ms over " << (windows != nullptr ? *windows : 0)
            << " window(s)\n";
  std::cout << "[service] " << label << ": queue depth p50/p99 = "
            << util::Table::fixed(depth->quantile(0.50), 1) << "/"
            << util::Table::fixed(depth->quantile(0.99), 1)
            << " job(s); time-to-admission p50/p99 = "
            << util::Table::fixed(adm->quantile(0.50), 1) << "/"
            << util::Table::fixed(adm->quantile(0.99), 1) << " s over "
            << adm->total() << " placement(s)\n";
}

void print_pool_counters(const std::string& label) {
  const util::WorkStealingPool& pool = util::WorkStealingPool::global();
  std::cout << "[pool] " << label << ": workers=" << pool.size()
            << " tasks_run=" << pool.tasks_run()
            << " tasks_stolen=" << pool.tasks_stolen()
            << " steal_attempts=" << pool.steal_attempts()
            << " (observational)\n";
}

bool export_trace_if_enabled(const std::string& metrics_json) {
  obs::Trace& trace = obs::Trace::instance();
  if (!obs::Trace::enabled()) return false;
  {
    std::ofstream out(trace.output_path());
    trace.write_chrome_json(out);
  }
  {
    std::ofstream out(trace.metrics_path());
    out << metrics_json;
  }
  std::cout << "[trace] wrote " << trace.event_count() << " event(s) from "
            << trace.thread_count() << " thread(s) to " << trace.output_path()
            << " (metrics: " << trace.metrics_path() << ", dropped "
            << trace.dropped_events() << ")\n";
  return true;
}

}  // namespace ww::bench
