// Fig. 3: (a) Carbon-/Water-Greedy-Opt savings vs. delay tolerance
// (1% .. 1000%), showing the carbon/water conflict and the opportunity that
// delay tolerance opens; (b) per-region job distribution at 10% tolerance.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 3: greedy-optimal opportunity scope",
                "Sec. 3, Observation 3");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<double> tolerances = {0.01, 0.10, 1.00, 10.00};

  // Fan out: per tolerance x {baseline, carbon-opt, water-opt}.
  struct Row {
    dc::CampaignResult base, carbon, water;
  };
  std::vector<Row> rows(tolerances.size());
  util::global_parallel_for(0, tolerances.size(), [&](std::size_t i) {
    bench::CampaignSpec spec;
    spec.tol = tolerances[i];
    rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, spec);
    rows[i].carbon = bench::run_policy(jobs, bench::Policy::CarbonGreedyOpt, spec);
    rows[i].water = bench::run_policy(jobs, bench::Policy::WaterGreedyOpt, spec);
  });

  std::cout << "\nFig. 3(a): savings vs. baseline (% , higher is better)\n";
  util::Table table({"Delay tolerance", "Scheme", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < tolerances.size(); ++i) {
    const std::string tol = util::Table::fixed(tolerances[i] * 100.0, 0) + "%";
    table.add_row({tol, "Carbon-Greedy-Opt",
                   util::Table::fixed(rows[i].carbon.carbon_saving_pct_vs(rows[i].base), 2),
                   util::Table::fixed(rows[i].carbon.water_saving_pct_vs(rows[i].base), 2)});
    table.add_row({tol, "Water-Greedy-Opt",
                   util::Table::fixed(rows[i].water.carbon_saving_pct_vs(rows[i].base), 2),
                   util::Table::fixed(rows[i].water.water_saving_pct_vs(rows[i].base), 2)});
  }
  table.print(std::cout);

  // Panel (b): job distribution at 10% tolerance.
  const std::size_t ten_pct = 1;  // tolerances[1] == 10%
  const env::Environment env = env::Environment::builtin();
  std::cout << "\nFig. 3(b): job distribution across regions at 10% tolerance (%)\n";
  util::Table dist({"Scheme", env.region(0).name, env.region(1).name,
                    env.region(2).name, env.region(3).name,
                    env.region(4).name});
  auto add_dist = [&](const std::string& label, const dc::CampaignResult& r) {
    std::vector<std::string> row = {label};
    for (const double s : r.region_share_pct())
      row.push_back(util::Table::fixed(s, 1));
    dist.add_row(std::move(row));
  };
  add_dist("Carbon-Greedy-Opt", rows[ten_pct].carbon);
  add_dist("Water-Greedy-Opt", rows[ten_pct].water);
  dist.print(std::cout);

  std::cout << "\nShape check vs. paper: each oracle is suboptimal on the other\n"
               "metric; savings grow with tolerance with diminishing returns;\n"
               "jobs spread across all regions and the two distributions differ.\n";
  return 0;
}
