// Fig. 13: decision-making overhead of WaterWise over time, as % of mean job
// execution time, on both the Google-Borg-rate and Alibaba-rate traces.
// Paper: < 0.2% throughout, higher for Alibaba (8.5x invocation rate).
#include <cstdlib>
#include <limits>
#include <optional>

#include "common.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

void report(const char* label, const ww::dc::CampaignResult& res,
            const ww::core::SchedulerStats& solver) {
  using namespace ww;
  std::cout << "\n" << label << ": mean batch decision time "
            << util::Table::fixed(res.batch_decision_seconds.mean() * 1000.0, 3)
            << " ms, p max "
            << util::Table::fixed(res.batch_decision_seconds.max() * 1000.0, 3)
            << " ms, overhead "
            << util::Table::fixed(res.mean_overhead_pct_of_exec(), 4)
            << "% of mean execution time\n";
  std::cout << "  solver: " << solver.milp_solves << " MILPs, "
            << solver.nodes_explored << " nodes, "
            << solver.simplex_iterations << " simplex iterations, "
            << solver.warm_started_nodes << "/" << solver.non_root_nodes()
            << " non-root nodes warm-started ("
            << solver.phase1_nodes << " phase-1 nodes, "
            << solver.soft_fallbacks << " soft fallbacks, "
            << util::Table::fixed(solver.solve_seconds, 3)
            << " s in milp::solve)\n";
  std::cout << "  kernel: " << solver.refactorizations
            << " LU refactorizations, " << solver.ft_updates
            << " Forrest-Tomlin updates, " << solver.seeded_incumbents
            << " greedy-seeded solves\n";
  std::cout << "  pipeline: " << solver.chunks_planned << " chunk plans, "
            << solver.spill_resolves << " spill re-solves covering "
            << solver.spill_jobs << " job(s)\n";
  std::cout << "  degradation: " << solver.fault_events << " fault events, "
            << solver.degraded_windows << " degraded windows, "
            << solver.solve_retries << " solve retries, "
            << solver.fallback_placements << " fallback placements, "
            << solver.deferred_jobs << " deferred job(s)\n";
  std::cout << "  presolve: " << solver.presolve_rows_removed << " rows, "
            << solver.presolve_cols_removed << " cols, "
            << solver.presolve_nonzeros_removed
            << " nonzeros removed before the simplex ("
            << util::Table::fixed(solver.presolve_seconds * 1000.0, 3)
            << " ms total)\n";

  // Time series in 10-minute buckets (paper plots minutes on the x-axis).
  util::Table series({"Sim minute", "Mean decision ms", "Overhead % of exec"});
  const double bucket_minutes = 10.0;
  double bucket_end = bucket_minutes;
  util::RunningStats acc;
  for (const auto& [minute, seconds] : res.overhead_series) {
    if (minute > bucket_end) {
      if (acc.count() > 0 && series.rows() < 12)
        series.add_row({util::Table::fixed(bucket_end, 0),
                        util::Table::fixed(acc.mean() * 1000.0, 3),
                        util::Table::fixed(
                            100.0 * acc.mean() / res.mean_exec_seconds, 4)});
      acc = util::RunningStats{};
      while (minute > bucket_end) bucket_end += bucket_minutes;
    }
    acc.add(seconds);
  }
  series.print(std::cout);
}

/// Startup gate (bench_micro_solver style): a one-burst trace — every
/// window fans out across many chunks — re-run at 1/2/4 solver threads must
/// produce an identical decision stream, or the overhead numbers below
/// would be measuring a scheduler that does not match the serial one.
void chunk_parallel_selfcheck() {
  using namespace ww;
  auto jobs = trace::generate_trace(trace::borg_config(7, 0.02));
  for (auto& j : jobs) j.submit_time = 0.0;  // one burst => multi-chunk windows
  bench::CampaignSpec spec;
  spec.tol = 0.5;
  if (!bench::check_chunk_parallel_equivalence(jobs, spec)) {
    std::cerr << "self-check FAILED: threaded and serial chunk solves "
                 "diverge; refusing to report overhead numbers\n";
    std::exit(1);
  }
}

/// Scenarios × chunks fan-out-shape panel: the same K-scenario × C-chunk
/// campaign run at the four (campaign jobs, solver_threads) corners.  (K, C)
/// used to be the nested-pool configuration that oversubscribed K·C threads
/// across two ThreadPools; every corner now shares the one work-stealing
/// pool, so the knobs select the *fan-out shape* — which layers spawn tasks
/// versus run inline — not the worker count: the global pool is created with
/// hardware_concurrency workers and `ensure_workers` only grows it, so all
/// non-inline corners execute on the same full-size worker set.  Campaign
/// aggregates must be byte-identical across all four shapes — the panel
/// exits nonzero on divergence — while wall-clock and the steal counters
/// (observational) show how the pool behaves; wall-clock deltas here compare
/// task granularities, not thread counts.
void scenario_chunk_scaling_panel() {
  using namespace ww;
  auto jobs = trace::generate_trace(trace::borg_config(7, 0.05));
  for (auto& j : jobs) j.submit_time = 0.0;  // one burst => multi-chunk windows
  const double tols[] = {0.25, 0.5, 1.0, 2.0};  // K = 4 scenarios
  struct Corner {
    const char* label;
    std::size_t jobs;
    int threads;
  };
  const Corner corners[] = {
      {"scenarios inline, chunks inline (serial)", 1, 1},
      {"scenarios spawned, chunks inline", 4, 1},
      {"scenarios inline, chunks spawned", 1, 4},
      {"scenarios spawned, chunks spawned (was nested pools)", 4, 4},
  };
  std::optional<dc::CampaignResult> ref;
  for (const auto& corner : corners) {
    dc::CampaignConfig cfg;
    cfg.jobs = corner.jobs;
    dc::CampaignRunner runner(cfg);
    for (const double tol : tols)
      runner.add("tol=" + util::Table::fixed(tol, 2),
                 [&, tol](dc::ScenarioContext&) {
                   bench::CampaignSpec spec;
                   spec.tol = tol;
                   core::WaterWiseConfig ww_cfg;
                   ww_cfg.max_jobs_per_solve = 25;  // force multi-chunk windows
                   ww_cfg.solver_threads = corner.threads;
                   return bench::run_policy(jobs, bench::Policy::WaterWise,
                                            spec, ww_cfg);
                 });
    const util::WorkStealingPool& pool = util::WorkStealingPool::global();
    const std::uint64_t stolen_before = pool.tasks_stolen();
    const util::Stopwatch watch;
    const auto outcomes = runner.run_all();
    const double seconds = watch.elapsed_seconds();
    const dc::CampaignResult total =
        dc::CampaignRunner::merged_totals(outcomes);
    std::cout << "[fan-out] " << corner.label << ": "
              << util::Table::fixed(seconds * 1000.0, 1) << " ms, "
              << (pool.tasks_stolen() - stolen_before) << " task(s) stolen on "
              << pool.size() << " worker(s)\n";
    if (!ref) {
      ref = total;
      continue;
    }
    const bool same = total.num_jobs == ref->num_jobs &&
                      total.total_carbon_g == ref->total_carbon_g &&
                      total.total_water_l == ref->total_water_l &&
                      total.total_cost_usd == ref->total_cost_usd &&
                      total.violations == ref->violations;
    if (!same) {
      std::cerr << "self-check FAILED: scenarios x chunks fan-out shape '"
                << corner.label
                << "' diverged from the serial campaign aggregate\n";
      std::exit(1);
    }
  }
  std::cout << "[fan-out] all four (jobs x solver_threads) fan-out shapes "
               "byte-identical on the unified pool\n";
}

/// Tracing-overhead panel: the one-burst campaign timed with spans off and
/// with spans on (best of three each, so scheduler noise on a loaded runner
/// does not decide the verdict).  The disabled path is a single relaxed
/// atomic load, so the on/off delta is the full cost of the span layer; the
/// self-check exits nonzero if that cost exceeds 5% of the untraced
/// wall-clock.
void tracing_overhead_panel() {
  using namespace ww;
  // 0.1 sim-days keeps each timed run ~100 ms: long enough that scheduler
  // noise stays well under the 5% gate, short enough for six runs.
  auto jobs = trace::generate_trace(trace::borg_config(7, 0.1));
  for (auto& j : jobs) j.submit_time = 0.0;
  bench::CampaignSpec spec;
  spec.tol = 0.5;
  const bool was_enabled = obs::Trace::enabled();
  const auto time_once = [&](bool on) {
    obs::Trace::instance().set_enabled(on);
    core::WaterWiseScheduler ww;
    const util::Stopwatch watch;
    const dc::CampaignResult res = bench::run_campaign(jobs, ww, spec);
    const double seconds = watch.elapsed_seconds();
    if (res.num_jobs == 0) {
      std::cerr << "tracing-overhead panel: empty campaign\n";
      std::exit(1);
    }
    return seconds;
  };
  double off_s = std::numeric_limits<double>::infinity();
  double on_s = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 3; ++i) off_s = std::min(off_s, time_once(false));
  for (int i = 0; i < 3; ++i) on_s = std::min(on_s, time_once(true));
  obs::Trace::instance().set_enabled(was_enabled);
  // Drop the panel's own events so a WW_TRACE export below covers only the
  // real campaigns.
  obs::Trace::instance().clear();
  const double pct = 100.0 * (on_s - off_s) / off_s;
  std::cout << "[tracing-overhead] spans off "
            << util::Table::fixed(off_s * 1000.0, 1) << " ms, on "
            << util::Table::fixed(on_s * 1000.0, 1) << " ms, delta "
            << util::Table::fixed(pct, 2) << "% (best of 3 each, gate 5%)\n";
  if (pct > 5.0) {
    std::cerr << "self-check FAILED: span tracing costs "
              << util::Table::fixed(pct, 2)
              << "% > 5% of untraced wall-clock\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace ww;
  obs::Trace::instance().configure_from_env();
  bench::banner("Figure 13: decision-making overhead", "Sec. 6, Fig. 13");
  chunk_parallel_selfcheck();
  scenario_chunk_scaling_panel();
  tracing_overhead_panel();

  const double days = std::min(bench::campaign_days(), 0.25);  // 6 sim hours
  const auto borg = trace::generate_trace(trace::borg_config(7, days));
  const auto ali = trace::generate_trace(trace::alibaba_config(7, days));

  bench::CampaignSpec spec;
  spec.tol = 0.5;
  dc::CampaignResult r_borg, r_ali;
  // Schedulers constructed here (not via run_policy) so their solver
  // counters survive the campaign and can be reported below.
  core::WaterWiseScheduler ww_borg, ww_ali;
  util::global_parallel_for(0, 2, [&](std::size_t k) {
    if (k == 0)
      r_borg = bench::run_campaign(borg, ww_borg, spec);
    else
      r_ali = bench::run_campaign(ali, ww_ali, spec);
  });

  report("Google Borg trace", r_borg, ww_borg.stats());
  report("Alibaba trace", r_ali, ww_ali.stats());

  core::SchedulerStats total = ww_borg.stats();
  total += ww_ali.stats();
  std::cout << "\nBoth traces combined: " << total.milp_solves << " MILPs over "
            << total.chunks_planned << " chunk plans, "
            << total.simplex_iterations << " simplex iterations, "
            << util::Table::fixed(total.solve_seconds, 3)
            << " s in milp::solve (" << ww_borg.effective_solver_threads()
            << " solver thread(s) per scheduler)\n";

  std::cout << "\n";
  bench::print_service_metrics("Google Borg trace", ww_borg.registry());
  bench::print_service_metrics("Alibaba trace", ww_ali.registry());
  bench::print_pool_counters("fig13 campaigns");

  // WW_TRACE export: Chrome trace JSON (chrome://tracing / ui.perfetto.dev)
  // plus the machine-readable metrics dump for both schedulers.
  (void)bench::export_trace_if_enabled(
      "{\n\"borg\": " + ww_borg.registry().to_json() +
      ",\n\"alibaba\": " + ww_ali.registry().to_json() + "}\n");

  std::cout << "\nShape check vs. paper: overhead well under 1% of mean execution\n"
               "time (paper: <0.2%), and higher for the Alibaba trace whose 8.5x\n"
               "job rate builds larger MILP batches.\n";
  return 0;
}
