// Fault storms: robustness campaigns that exercise the fault-injection
// subsystem (env/faults.hpp) and the scheduler's graceful-degradation
// machinery (core/waterwise.hpp: retry ladder + per-region state machine)
// end to end.  Each storm is one generated-or-manual FaultSchedule; every
// (storm, policy) pair is an independent CampaignRunner scenario.
//
// The driver doubles as a self-check (CI runs it): it exits nonzero when a
// storm drops a job (every trace job must be placed exactly once), when the
// outage storm fails to trip the degraded-mode state machine, when the
// solver-fault storm fails to exercise the retry ladder, when the total
// blackout produces no explicit deferrals, or when the fault-injected
// thread-count sweep diverges from the serial decision stream.
#include <cstdlib>
#include <optional>

#include "common.hpp"

namespace {

/// Exits nonzero with a message when a storm invariant fails.
void require(bool ok, const std::string& what) {
  if (ok) return;
  std::cerr << "self-check FAILED: " << what << "\n";
  std::exit(1);
}

}  // namespace

int main() {
  using namespace ww;
  bench::banner("Fault storms & graceful degradation",
                "ROADMAP item: robustness (Sec. 6 extension)");

  const double days = bench::campaign_days();
  const double horizon = days * 86400.0;
  const auto jobs = trace::generate_trace(trace::borg_config(7, days));

  // --- Storm schedules ------------------------------------------------------
  // Generated storms get one manual anchor window each, so every invariant
  // below holds at any WW_BENCH_SCALE (a short campaign might otherwise
  // draw zero windows from the Poisson streams).
  env::FaultScheduleConfig outage_cfg;
  outage_cfg.seed = 801;
  outage_cfg.horizon_seconds = horizon;
  outage_cfg.outages_per_region_day = 6.0;
  env::FaultSchedule outage_storm(outage_cfg);
  outage_storm.add_outage(0, 0.20 * horizon, 0.20 * horizon + 900.0);

  env::FaultScheduleConfig flap_cfg;
  flap_cfg.seed = 802;
  flap_cfg.horizon_seconds = horizon;
  flap_cfg.flaps_per_region_day = 12.0;
  env::FaultSchedule flap_storm(flap_cfg);
  flap_storm.add_capacity_flap(1, 0.30 * horizon, 0.30 * horizon + 600.0, 0.5);

  env::FaultScheduleConfig bias_cfg;
  bias_cfg.seed = 803;
  bias_cfg.horizon_seconds = horizon;
  bias_cfg.bias_windows_per_region_day = 4.0;
  env::FaultSchedule bias_storm(bias_cfg);
  bias_storm.add_forecast_bias(2, 0.40 * horizon, 0.40 * horizon + 3600.0,
                               2.0, 1.5);

  env::FaultScheduleConfig shock_cfg;
  shock_cfg.seed = 804;
  shock_cfg.horizon_seconds = horizon;
  shock_cfg.shocks_per_region_day = 3.0;
  env::FaultSchedule shock_storm(shock_cfg);
  shock_storm.add_water_shock(3, 0.50 * horizon, 0.50 * horizon + 7200.0, 1.0);

  // Total blackout: every region out for the same 30 minutes mid-campaign.
  // Jobs pending through the window must defer explicitly and place after.
  env::FaultSchedule blackout(5);
  const double bo_start = 0.25 * horizon;
  const double bo_end = bo_start + std::min(1800.0, 0.25 * horizon);
  for (int r = 0; r < 5; ++r) blackout.add_outage(r, bo_start, bo_end);

  // Solver-fault storm: no environment faults at all — every perturbation
  // is an injected solve failure driving the retry ladder.
  core::WaterWiseConfig solver_fault_cfg;
  solver_fault_cfg.solve_failure_rate = 0.5;
  solver_fault_cfg.fault_seed = 805;

  struct Storm {
    std::string label;
    bench::CampaignSpec spec;
    core::WaterWiseConfig cfg;
  };
  std::vector<Storm> storms;
  {
    bench::CampaignSpec base;
    base.tol = 0.5;

    Storm outage{"Region outages", base, {}};
    outage.spec.faults = &outage_storm;
    storms.push_back(outage);

    Storm flap{"Capacity flaps", base, {}};
    flap.spec.faults = &flap_storm;
    storms.push_back(flap);

    Storm bias{"Forecast bias", base, {}};
    bias.spec.faults = &bias_storm;
    storms.push_back(bias);

    Storm shock{"Water-scarcity shocks", base, {}};
    shock.spec.faults = &shock_storm;
    storms.push_back(shock);

    Storm bo{"Total blackout (30 min)", base, {}};
    bo.spec.faults = &blackout;
    storms.push_back(bo);

    Storm sf{"Injected solve failures (50%)", base, solver_fault_cfg};
    storms.push_back(sf);
  }

  // --- Campaign -------------------------------------------------------------
  std::vector<core::SchedulerStats> ww_stats(storms.size());
  // Registry snapshots survive the lambda-local schedulers so the service
  // panel below can print per-storm latency/queue/admission quantiles.
  std::vector<obs::Registry> ww_regs(storms.size());
  dc::CampaignRunner runner(bench::campaign_config());
  for (std::size_t i = 0; i < storms.size(); ++i) {
    runner.add_baseline(storms[i].label, "Baseline",
                        [&storms, &jobs, i](dc::ScenarioContext&) {
                          return bench::run_policy(jobs,
                                                   bench::Policy::Baseline,
                                                   storms[i].spec);
                        });
    runner.add({storms[i].label, "WaterWise", false,
                [&storms, &jobs, &ww_stats, &ww_regs, i](dc::ScenarioContext&) {
                  core::WaterWiseScheduler ww(storms[i].cfg);
                  auto res = bench::run_campaign(jobs, ww, storms[i].spec);
                  ww_stats[i] = ww.stats();
                  ww_regs[i] = ww.registry();
                  return res;
                }});
  }
  const auto outcomes = bench::run_and_time(runner);

  dc::CampaignRunner::aggregate(outcomes).print(std::cout);
  std::cout << "\n";
  for (std::size_t i = 0; i < storms.size(); ++i)
    bench::print_degradation_counters(storms[i].label, ww_stats[i]);
  std::cout << "\n";
  for (std::size_t i = 0; i < storms.size(); ++i)
    bench::print_service_metrics(storms[i].label, ww_regs[i]);

  // --- Self-checks ----------------------------------------------------------
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    require(outcomes[i].result.num_jobs == static_cast<long>(jobs.size()),
            outcomes[i].group + " / " + outcomes[i].label + " placed " +
                std::to_string(outcomes[i].result.num_jobs) + " of " +
                std::to_string(jobs.size()) +
                " jobs (silent drop or stall)");
  require(ww_stats[0].fault_events > 0,
          "outage storm raised no fault events");
  require(ww_stats[0].degraded_windows > 0,
          "outage storm never entered degraded mode");
  require(ww_stats[5].fault_events > 0,
          "solver-fault storm injected no failures");
  require(ww_stats[5].solve_retries > 0,
          "solver-fault storm never exercised the retry ladder");
  require(ww_stats[4].deferred_jobs > 0,
          "total blackout produced no explicit deferrals");

  // Byte-identity under faults: the outage storm re-run across solver
  // thread counts (with injected solve failures layered on top) must
  // reproduce the serial decision stream exactly.
  core::WaterWiseConfig eq_cfg;
  eq_cfg.solve_failure_rate = 0.35;
  eq_cfg.fault_seed = 806;
  bench::CampaignSpec eq_spec = storms[0].spec;
  if (!bench::check_chunk_parallel_equivalence(jobs, eq_spec, eq_cfg))
    return 1;

  // Scenarios × chunks under faults: a one-burst campaign (injected solve
  // failures layered on the outage storm) re-run at the four
  // (campaign jobs, solver_threads) corners of the unified work-stealing
  // pool.  The corners vary the *fan-out shape* — which layers spawn tasks
  // versus run inline — not the worker count (the global pool never
  // shrinks, so every non-inline corner runs on the same worker set).
  // Merged aggregates must stay byte-identical — stealing must stay
  // invisible even when the retry-then-degrade ladder reshuffles work.
  {
    auto burst = trace::generate_trace(trace::borg_config(11, 0.04));
    for (auto& j : burst) j.submit_time = 0.0;  // one burst => multi-chunk
    core::WaterWiseConfig storm_cfg = eq_cfg;
    storm_cfg.max_jobs_per_solve = 25;
    const double tols[] = {0.25, 0.5, 1.0};
    struct Corner {
      std::size_t jobs;
      int threads;
    };
    const Corner corners[] = {{1, 1}, {3, 1}, {1, 4}, {3, 4}};
    std::optional<dc::CampaignResult> ref;
    for (const auto& corner : corners) {
      dc::CampaignConfig sweep_cfg;
      sweep_cfg.jobs = corner.jobs;
      dc::CampaignRunner sweep(sweep_cfg);
      core::WaterWiseConfig cw = storm_cfg;
      cw.solver_threads = corner.threads;
      for (const double tol : tols)
        sweep.add("tol=" + util::Table::fixed(tol, 2),
                  [&, tol](dc::ScenarioContext&) {
                    bench::CampaignSpec spec = eq_spec;
                    spec.tol = tol;
                    return bench::run_policy(burst, bench::Policy::WaterWise,
                                             spec, cw);
                  });
      const util::WorkStealingPool& pool = util::WorkStealingPool::global();
      const std::uint64_t stolen_before = pool.tasks_stolen();
      const auto sweep_outcomes = sweep.run_all();
      const dc::CampaignResult total =
          dc::CampaignRunner::merged_totals(sweep_outcomes);
      std::cout << "[fan-out] fault storm, "
                << (corner.jobs > 1 ? "scenarios spawned" : "scenarios inline")
                << " x "
                << (corner.threads > 1 ? "chunks spawned" : "chunks inline")
                << " (jobs=" << corner.jobs << ", threads=" << corner.threads
                << "): " << (pool.tasks_stolen() - stolen_before)
                << " task(s) stolen on " << pool.size() << " worker(s)\n";
      if (!ref) {
        ref = total;
        continue;
      }
      require(total.num_jobs == ref->num_jobs &&
                  total.total_carbon_g == ref->total_carbon_g &&
                  total.total_water_l == ref->total_water_l &&
                  total.total_cost_usd == ref->total_cost_usd &&
                  total.violations == ref->violations,
              "fault-storm scenarios x chunks fan-out shape diverged from "
              "the serial aggregate");
    }
    std::cout << "[fan-out] fault-injected campaign byte-identical at all "
                 "four (jobs x solver_threads) fan-out shapes\n";
  }
  bench::print_pool_counters("fault storms");

  std::cout << "\nAll fault-storm invariants hold: every job placed exactly\n"
               "once, degradation counters reconcile, and fault-injected\n"
               "campaigns are byte-identical across solver thread counts.\n";
  return 0;
}
