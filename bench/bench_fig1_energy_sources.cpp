// Fig. 1: carbon intensity and EWIF per energy source.
//
// Regenerates both panels of Figure 1: carbon intensity (gCO2/kWh) and
// energy-water-intensity factor (L/kWh) for the nine sources, flagging the
// renewable/fossil split and the headline ratios quoted in Sec. 3
// (coal/hydro carbon ~62x, hydro/coal EWIF ~11x).
#include "common.hpp"

#include "env/energy_source.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 1: per-source carbon intensity and EWIF",
                "Sec. 3, Observation 1");

  util::Table table({"Energy source", "Class", "Carbon intensity (gCO2/kWh)",
                     "EWIF-EM (L/kWh)", "EWIF-WRI (L/kWh)"});
  for (const env::EnergySource s : env::all_sources()) {
    table.add_row({std::string(env::to_string(s)),
                   env::is_renewable(s) ? "renewable" : "fossil",
                   util::Table::fixed(env::carbon_intensity(s), 0),
                   util::Table::fixed(env::ewif(s), 2),
                   util::Table::fixed(
                       env::ewif(s, env::WaterDataset::WorldResourcesInstitute),
                       2)});
  }
  table.print(std::cout);

  const double ci_ratio = env::carbon_intensity(env::EnergySource::Coal) /
                          env::carbon_intensity(env::EnergySource::Hydro);
  const double ewif_ratio =
      env::ewif(env::EnergySource::Hydro) / env::ewif(env::EnergySource::Coal);
  std::cout << "\nHeadline ratios (paper quotes ~62x and ~11x):\n"
            << "  coal/hydro carbon intensity : " << util::Table::fixed(ci_ratio, 1)
            << "x\n"
            << "  hydro/coal EWIF             : " << util::Table::fixed(ewif_ratio, 1)
            << "x\n"
            << "\nShape check: carbon-friendly sources (hydro, biomass) carry the\n"
               "highest water costs -> the carbon/water tension motivating WaterWise.\n";
  return 0;
}
