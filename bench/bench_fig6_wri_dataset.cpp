// Fig. 6: WaterWise effectiveness when the World Resources Institute water
// dataset replaces the ElectricityMaps-style EWIF table (paper: >18% carbon
// and >11% water savings persist).
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 6: WRI water-dataset sensitivity", "Sec. 6, Fig. 6");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<double> tolerances = {0.25, 0.50, 0.75, 1.00};

  struct Row {
    dc::CampaignResult base, carbon, water, ww;
  };
  std::vector<Row> rows(tolerances.size());
  util::global_parallel_for(0, tolerances.size() * 4, [&](std::size_t k) {
    const std::size_t i = k / 4;
    bench::CampaignSpec spec;
    spec.tol = tolerances[i];
    spec.env_config.dataset = env::WaterDataset::WorldResourcesInstitute;
    switch (k % 4) {
      case 0: rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, spec); break;
      case 1: rows[i].carbon = bench::run_policy(jobs, bench::Policy::CarbonGreedyOpt, spec); break;
      case 2: rows[i].water = bench::run_policy(jobs, bench::Policy::WaterGreedyOpt, spec); break;
      case 3: rows[i].ww = bench::run_policy(jobs, bench::Policy::WaterWise, spec); break;
    }
  });

  util::Table table({"Delay tolerance", "Scheme", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < tolerances.size(); ++i) {
    const std::string tol = util::Table::fixed(tolerances[i] * 100.0, 0) + "%";
    const auto& b = rows[i].base;
    auto add = [&](const char* label, const dc::CampaignResult& r) {
      table.add_row({tol, label,
                     util::Table::fixed(r.carbon_saving_pct_vs(b), 2),
                     util::Table::fixed(r.water_saving_pct_vs(b), 2)});
    };
    add("Carbon-Greedy-Opt", rows[i].carbon);
    add("Water-Greedy-Opt", rows[i].water);
    add("WaterWise", rows[i].ww);
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: savings persist under the alternative\n"
               "water dataset (paper: >18% carbon, >11% water vs. baseline).\n";
  return 0;
}
