// Fig. 8: configurability — sweeping the carbon/water objective weights
// (lambda_CO2 in {0.3, 0.5, 0.7}) at 50% delay tolerance.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 8: objective-weight sweep", "Sec. 6, Fig. 8");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<double> lambdas = {0.3, 0.5, 0.7};

  bench::CampaignSpec spec;
  spec.tol = 0.5;
  dc::CampaignResult base;
  std::vector<dc::CampaignResult> results(lambdas.size());
  util::ThreadPool pool;
  pool.parallel_for(lambdas.size() + 1, [&](std::size_t k) {
    if (k == lambdas.size()) {
      base = bench::run_policy(jobs, bench::Policy::Baseline, spec);
      return;
    }
    core::WaterWiseConfig cfg;
    cfg.lambda_co2 = lambdas[k];
    cfg.lambda_h2o = 1.0 - lambdas[k];
    results[k] = bench::run_policy(jobs, bench::Policy::WaterWise, spec, cfg);
  });

  util::Table table({"lambda_CO2", "lambda_H2O", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    table.add_row({util::Table::fixed(lambdas[i], 1),
                   util::Table::fixed(1.0 - lambdas[i], 1),
                   util::Table::fixed(results[i].carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(results[i].water_saving_pct_vs(base), 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: higher lambda_CO2 tilts savings toward\n"
               "carbon (paper: 25.18%/21.1% at 0.3 -> 31.1%/13.6% at 0.7); both\n"
               "metrics stay positive at every setting.\n";
  return 0;
}
