// Fig. 8: configurability — sweeping the carbon/water objective weights
// (lambda_CO2 in {0.3, 0.5, 0.7}) at 50% delay tolerance.  The sweep fans
// out through the campaign runner (WW_BENCH_JOBS controls the thread count).
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 8: objective-weight sweep", "Sec. 6, Fig. 8");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<double> lambdas = {0.3, 0.5, 0.7};

  bench::CampaignSpec spec;
  spec.tol = 0.5;
  dc::CampaignRunner runner(bench::campaign_config());
  runner.add_baseline("", "Baseline", [&](dc::ScenarioContext&) {
    return bench::run_policy(jobs, bench::Policy::Baseline, spec);
  });
  for (const double lambda : lambdas) {
    runner.add("lambda_CO2=" + util::Table::fixed(lambda, 1),
               [&, lambda](dc::ScenarioContext&) {
                 core::WaterWiseConfig cfg;
                 cfg.lambda_co2 = lambda;
                 cfg.lambda_h2o = 1.0 - lambda;
                 return bench::run_policy(jobs, bench::Policy::WaterWise, spec,
                                          cfg);
               });
  }
  const auto outcomes = bench::run_and_time(runner);
  const dc::CampaignResult& base = outcomes[0].result;

  util::Table table({"lambda_CO2", "lambda_H2O", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    const dc::CampaignResult& r = outcomes[i + 1].result;
    table.add_row({util::Table::fixed(lambdas[i], 1),
                   util::Table::fixed(1.0 - lambdas[i], 1),
                   util::Table::fixed(r.carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(r.water_saving_pct_vs(base), 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: higher lambda_CO2 tilts savings toward\n"
               "carbon (paper: 25.18%/21.1% at 0.3 -> 31.1%/13.6% at 0.7); both\n"
               "metrics stay positive at every setting.\n";

  // Standing invariant: the lambda=0.5 configuration re-run with the
  // chunk-parallel pipeline at 1/2/4 solver threads must be byte-identical.
  const auto eq_jobs = trace::generate_trace(
      trace::borg_config(7, std::min(0.05, bench::campaign_days())));
  if (!bench::check_chunk_parallel_equivalence(eq_jobs, spec)) return 1;
  return 0;
}
