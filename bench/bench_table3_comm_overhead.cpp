// Table 3: communication overhead of moving a job from its home region
// (Oregon) to each remote region — latency plus carbon/water cost of the
// transfer as % of the execution-time footprint.
#include "common.hpp"

#include "trace/benchmark_profile.hpp"

int main() {
  using namespace ww;
  bench::banner("Table 3: communication overhead from Oregon",
                "Sec. 6, Table 3");

  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel fp(env);
  const int oregon = env.region_index("Oregon");

  // Representative job: the mean profile across Table 1's benchmarks.
  double exec = 0.0;
  double power = 0.0;
  double package = 0.0;
  for (const auto& p : trace::benchmark_profiles()) {
    exec += p.mean_exec_s;
    power += p.mean_power_w;
    package += p.package_mb * 1e6;
  }
  const auto n = static_cast<double>(trace::benchmark_profiles().size());
  exec /= n;
  power /= n;
  package /= n;
  const double energy = power * exec / 3.6e6;
  std::cout << "Representative job: " << util::Table::fixed(exec, 0) << " s, "
            << util::Table::fixed(power, 0) << " W, "
            << util::Table::fixed(package / 1e6, 0) << " MB package\n\n";

  util::Table table({"Region", "Transfer latency (s)",
                     "Avg carbon overhead (% exec carbon)",
                     "Avg water overhead (% exec water)"});
  // Average the intensity-dependent ratios over a day of candidate instants.
  for (int r = 0; r < env.num_regions(); ++r) {
    if (r == oregon) continue;
    double carbon_pct = 0.0;
    double water_pct = 0.0;
    const int samples = 24;
    for (int h = 0; h < samples; ++h) {
      const double t = h * 3600.0;
      const footprint::Breakdown run = fp.job_at(r, t, energy, exec);
      const footprint::Breakdown move = fp.transfer(oregon, r, package, t);
      carbon_pct += 100.0 * move.carbon_g() / run.carbon_g();
      water_pct += 100.0 * move.water_l() / run.water_l();
    }
    table.add_row({env.region(r).name,
                   util::Table::fixed(
                       env.transfer_latency_seconds(oregon, r, package), 2),
                   util::Table::fixed(carbon_pct / samples, 3),
                   util::Table::fixed(water_pct / samples, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check vs. paper: overheads are fractions of a percent\n"
               "(paper: 0.08-0.17% carbon, 0.09-0.13% water), growing with\n"
               "distance (Mumbai most expensive from Oregon); transfer latency\n"
               "dominates the communication cost.\n";
  return 0;
}
