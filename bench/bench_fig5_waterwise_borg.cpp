// Fig. 5: WaterWise vs. Carbon-/Water-Greedy-Opt across delay tolerances
// 25%..100% on the Borg-rate trace (the paper's headline result: ~21%+
// carbon and ~14%+ water savings vs. baseline).
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 5: WaterWise vs. greedy oracles (Google Borg trace)",
                "Sec. 6, Fig. 5");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<double> tolerances = {0.25, 0.50, 0.75, 1.00};

  struct Row {
    dc::CampaignResult base, carbon, water, ww;
  };
  std::vector<Row> rows(tolerances.size());
  util::global_parallel_for(0, tolerances.size() * 4, [&](std::size_t k) {
    const std::size_t i = k / 4;
    bench::CampaignSpec spec;
    spec.tol = tolerances[i];
    switch (k % 4) {
      case 0: rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, spec); break;
      case 1: rows[i].carbon = bench::run_policy(jobs, bench::Policy::CarbonGreedyOpt, spec); break;
      case 2: rows[i].water = bench::run_policy(jobs, bench::Policy::WaterGreedyOpt, spec); break;
      case 3: rows[i].ww = bench::run_policy(jobs, bench::Policy::WaterWise, spec); break;
    }
  });

  util::Table table({"Delay tolerance", "Scheme", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < tolerances.size(); ++i) {
    const std::string tol = util::Table::fixed(tolerances[i] * 100.0, 0) + "%";
    const auto& b = rows[i].base;
    auto add = [&](const char* label, const dc::CampaignResult& r) {
      table.add_row({tol, label,
                     util::Table::fixed(r.carbon_saving_pct_vs(b), 2),
                     util::Table::fixed(r.water_saving_pct_vs(b), 2)});
    };
    add("Carbon-Greedy-Opt", rows[i].carbon);
    add("Water-Greedy-Opt", rows[i].water);
    add("WaterWise", rows[i].ww);
  }
  table.print(std::cout);

  // Paper's summary deltas at the headline operating points.
  const auto& r50 = rows[1];
  std::cout << "\nAt 50% tolerance: WaterWise carbon gap to Carbon-Greedy-Opt: "
            << util::Table::fixed(
                   r50.carbon.carbon_saving_pct_vs(r50.base) -
                       r50.ww.carbon_saving_pct_vs(r50.base), 2)
            << " pp; water gap to Water-Greedy-Opt: "
            << util::Table::fixed(
                   r50.water.water_saving_pct_vs(r50.base) -
                       r50.ww.water_saving_pct_vs(r50.base), 2)
            << " pp\n"
            << "Shape check vs. paper: WaterWise saves on BOTH metrics at every\n"
               "tolerance, sits between the two single-metric oracles, and savings\n"
               "grow with tolerance (paper: >=21.91% carbon, >=14.78% water).\n";
  return 0;
}
