// Fig. 7: WaterWise vs. Ecovisor under both water datasets.  Ecovisor is
// carbon-only, home-region-only, operational-carbon-only — the paper reports
// WaterWise beating it by ~27.6% carbon / ~17.5% water (ElectricityMaps).
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 7: WaterWise vs. Ecovisor", "Sec. 6, Fig. 7");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<env::WaterDataset> datasets = {
      env::WaterDataset::ElectricityMaps,
      env::WaterDataset::WorldResourcesInstitute};

  struct Row {
    dc::CampaignResult base, eco, ww;
  };
  std::vector<Row> rows(datasets.size());
  util::global_parallel_for(0, datasets.size() * 3, [&](std::size_t k) {
    const std::size_t i = k / 3;
    bench::CampaignSpec spec;
    spec.tol = 0.5;
    spec.env_config.dataset = datasets[i];
    switch (k % 3) {
      case 0: rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, spec); break;
      case 1: rows[i].eco = bench::run_policy(jobs, bench::Policy::Ecovisor, spec); break;
      case 2: rows[i].ww = bench::run_policy(jobs, bench::Policy::WaterWise, spec); break;
    }
  });

  util::Table table({"Dataset", "Scheme", "Carbon saving %", "Water saving %"});
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const std::string ds(env::to_string(datasets[i]));
    const auto& b = rows[i].base;
    table.add_row({ds, "Ecovisor",
                   util::Table::fixed(rows[i].eco.carbon_saving_pct_vs(b), 2),
                   util::Table::fixed(rows[i].eco.water_saving_pct_vs(b), 2)});
    table.add_row({ds, "WaterWise",
                   util::Table::fixed(rows[i].ww.carbon_saving_pct_vs(b), 2),
                   util::Table::fixed(rows[i].ww.water_saving_pct_vs(b), 2)});
  }
  table.print(std::cout);

  const double carbon_gap =
      100.0 * (rows[0].eco.total_carbon_g - rows[0].ww.total_carbon_g) /
      rows[0].eco.total_carbon_g;
  const double water_gap =
      100.0 * (rows[0].eco.total_water_l - rows[0].ww.total_water_l) /
      rows[0].eco.total_water_l;
  std::cout << "\nWaterWise vs. Ecovisor directly (ElectricityMaps): "
            << util::Table::fixed(carbon_gap, 2) << "% less carbon, "
            << util::Table::fixed(water_gap, 2) << "% less water\n"
            << "Shape check vs. paper: Ecovisor saves modest carbon (no\n"
               "migration, embodied carbon grows with stretched jobs) and is\n"
               "water-blind; WaterWise dominates on both axes.\n";
  return 0;
}
