// Ablation bench (our addition, motivated by DESIGN.md): isolates the
// contribution of each WaterWise design component — soft constraints, slack
// manager, history learner (lambda_ref sweep) — and the batch-window choice.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Ablation: WaterWise design components", "DESIGN.md ablations");

  // Quarter-length campaign: the ablation matrix runs 11 variants x 2
  // campaigns, several of them deliberately degraded (no soft constraints,
  // no slack manager) and therefore slow under capacity pressure.
  const auto jobs = trace::generate_trace(
      trace::borg_config(7, std::max(0.1, 0.25 * bench::campaign_days())));

  struct Case {
    std::string label;
    core::WaterWiseConfig cfg;
    bench::CampaignSpec spec;
  };
  std::vector<Case> cases;
  {
    bench::CampaignSpec tight;  // capacity pressure exercises slack/soft paths
    tight.tol = 0.25;
    tight.capacity_scale = 0.5;  // ~87 servers vs ~29 offered load: pressured, stable

    Case full{"Full WaterWise (tight capacity)", {}, tight};
    cases.push_back(full);

    Case no_soft = full;
    no_soft.label = "- soft constraints";
    no_soft.cfg.enable_soft_constraints = false;
    // Without softening, every infeasible batch re-runs the hard model each
    // tick; keep the node budget tiny so the degraded variant is measured
    // by outcome, not by solver spin.  (Deterministic budget only — the
    // scheduler path neutralizes wall-clock limits.)
    no_soft.cfg.solver.max_nodes = 50;
    cases.push_back(no_soft);

    Case no_slack = full;
    no_slack.label = "- slack manager";
    no_slack.cfg.enable_slack_manager = false;
    cases.push_back(no_slack);

    Case no_hist = full;
    no_hist.label = "- history learner";
    no_hist.cfg.enable_history = false;
    cases.push_back(no_hist);

    for (const double lref : {0.0, 0.1, 0.3}) {
      Case c = full;
      c.label = "lambda_ref = " + util::Table::fixed(lref, 1);
      c.cfg.lambda_ref = lref;
      cases.push_back(c);
    }

    for (const double window : {30.0, 60.0, 300.0}) {
      Case c = full;
      c.label = "batch window = " + util::Table::fixed(window, 0) + " s";
      c.spec.sim.batch_window_s = window;
      cases.push_back(c);
    }
  }

  struct Row {
    dc::CampaignResult base, ww;
  };
  std::vector<Row> rows(cases.size());
  util::global_parallel_for(0, cases.size() * 2, [&](std::size_t k) {
    const std::size_t i = k / 2;
    if (k % 2 == 0) {
      bench::CampaignSpec base_spec = cases[i].spec;
      rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, base_spec);
    } else {
      rows[i].ww = bench::run_policy(jobs, bench::Policy::WaterWise,
                                     cases[i].spec, cases[i].cfg);
    }
  });

  util::Table table({"Variant", "Carbon saving %", "Water saving %",
                     "Service norm", "Violation %"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].label,
                   util::Table::fixed(rows[i].ww.carbon_saving_pct_vs(rows[i].base), 2),
                   util::Table::fixed(rows[i].ww.water_saving_pct_vs(rows[i].base), 2),
                   util::Table::fixed(rows[i].ww.mean_service_norm(), 3) + "x",
                   util::Table::fixed(rows[i].ww.violation_pct(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading guide: under tight capacity the slack manager keeps\n"
               "violations low; soft constraints keep the solver feasible; the\n"
               "history learner damps region oscillation; a larger batch window\n"
               "lowers overhead but coarsens decisions.\n";
  return 0;
}
