// Microbenchmarks (google-benchmark): MILP solve latency at WaterWise batch
// sizes, capacity-timeline operations, and footprint evaluation — the hot
// paths behind the Fig. 13 overhead numbers.
//
// Before the benchmark loop runs, a warm-start self-check solves a
// branching-heavy corpus twice (warm vs. cold) and verifies the acceptance
// bar: >= 90% of non-root nodes warm-started with identical objectives.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "dc/capacity_timeline.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "util/rng.hpp"

namespace {

using namespace ww;

/// Builds a WaterWise-shaped MILP: jobs x regions assignment binaries,
/// capacity rows, delay rows.
milp::Model waterwise_shaped_model(int jobs, int regions, util::Rng& rng) {
  milp::Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.1, 2.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<milp::Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), milp::Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<milp::Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("c", std::move(t), milp::Sense::LessEqual,
                           std::ceil(jobs / static_cast<double>(regions)) + 1.0);
  }
  for (int j = 0; j < jobs; ++j) {
    std::vector<milp::Term> t;
    for (int r = 1; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)],
                   rng.uniform(1.0, 20.0)});
    (void)m.add_constraint("d", std::move(t), milp::Sense::LessEqual, 25.0);
  }
  return m;
}

/// Branching-heavy instance shared with tests/milp_warm_start_test.cpp (via
/// milp/instances.hpp) so the bench self-check and the test corpus exercise
/// the exact same weak-relaxation pathology.
milp::Model branching_heavy_model(int jobs, int regions) {
  const double cap = std::ceil(jobs / static_cast<double>(regions)) + 1.0;
  return milp::weak_relaxation_model(jobs, regions, cap, /*seed=*/7);
}

/// Verifies the warm-start acceptance bar before benchmarks run; exits
/// nonzero on any regression so CI smoke runs catch it.
void warm_start_selfcheck() {
  long warm_total = 0;
  long non_root_total = 0;
  bool ok = true;
  for (const int jobs : {10, 16, 24}) {
    const milp::Model model = branching_heavy_model(jobs, 3);
    milp::SolverOptions warm_opts;  // warm_start defaults on
    const milp::Solution warm = milp::solve(model, warm_opts);
    milp::SolverOptions cold_opts;
    cold_opts.warm_start = false;
    const milp::Solution cold = milp::solve(model, cold_opts);
    if (warm.status != milp::Status::Optimal ||
        cold.status != milp::Status::Optimal ||
        std::abs(warm.objective - cold.objective) > 1e-7) {
      std::fprintf(stderr,
                   "warm-start self-check FAILED (jobs=%d): warm %s %.9f vs "
                   "cold %s %.9f\n",
                   jobs, milp::to_string(warm.status).c_str(), warm.objective,
                   milp::to_string(cold.status).c_str(), cold.objective);
      ok = false;
      continue;
    }
    warm_total += warm.warm_started_nodes;
    non_root_total += warm.nodes_explored - 1;
  }
  if (non_root_total == 0) {
    // A corpus that never branches would make the check pass vacuously —
    // the exact rot this gate exists to catch.
    std::fprintf(stderr,
                 "warm-start self-check FAILED: corpus produced no non-root "
                 "nodes, warm path unexercised\n");
    ok = false;
  }
  const double frac = non_root_total > 0
                          ? static_cast<double>(warm_total) /
                                static_cast<double>(non_root_total)
                          : 0.0;
  std::printf(
      "warm-start self-check: %ld/%ld non-root nodes warm-started (%.1f%%), "
      "objectives identical to cold solver\n",
      warm_total, non_root_total, 100.0 * frac);
  if (frac < 0.9) {
    std::fprintf(stderr, "warm-start self-check FAILED: %.1f%% < 90%%\n",
                 100.0 * frac);
    ok = false;
  }
  if (!ok) std::exit(1);
}

void solve_with_counters(benchmark::State& state, const milp::Model& model,
                         const milp::SolverOptions& opts) {
  long nodes = 0;
  long warm = 0;
  long phase1 = 0;
  long iters = 0;
  for (auto _ : state) {
    const milp::Solution sol = milp::solve(model, opts);
    benchmark::DoNotOptimize(sol.objective);
    if (!sol.usable()) state.SkipWithError("solver failed");
    nodes += sol.nodes_explored;
    warm += sol.warm_started_nodes;
    phase1 += sol.phase1_nodes;
    iters += sol.simplex_iterations;
  }
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
  state.counters["warm"] =
      benchmark::Counter(static_cast<double>(warm), benchmark::Counter::kAvgIterations);
  state.counters["phase1"] =
      benchmark::Counter(static_cast<double>(phase1), benchmark::Counter::kAvgIterations);
  state.counters["simplex_it"] =
      benchmark::Counter(static_cast<double>(iters), benchmark::Counter::kAvgIterations);
}

void BM_MilpSolveBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  util::Rng rng(42);
  const milp::Model model = waterwise_shaped_model(jobs, 5, rng);
  solve_with_counters(state, model, {});
  state.SetLabel(std::to_string(jobs) + " jobs x 5 regions");
}
// 200 jobs x 5 regions is 405 rows — the ">= 400 rows" scale the sparse
// kernel's speedup acceptance bar is measured at.
BENCHMARK(BM_MilpSolveBatch)->Arg(8)->Arg(16)->Arg(64)->Arg(128)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_MilpSolveLargeChunk(benchmark::State& state) {
  // The paper-scale hard model: a full 400-job chunk over 10 regions
  // (810 rows, ~4 nonzeros per column).  The dense kernel took ~1.2 s per
  // solve here; the sparse LU kernel is expected well under a third of it.
  const int jobs = static_cast<int>(state.range(0));
  util::Rng rng(42);
  const milp::Model model = waterwise_shaped_model(jobs, 10, rng);
  solve_with_counters(state, model, {});
  state.SetLabel(std::to_string(jobs) + " jobs x 10 regions");
}
BENCHMARK(BM_MilpSolveLargeChunk)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_MilpPricingRule(benchmark::State& state) {
  // Devex-vs-Dantzig iteration/latency trade at a mid scheduler scale.
  util::Rng rng(42);
  const milp::Model model = waterwise_shaped_model(128, 5, rng);
  milp::SolverOptions opts;
  opts.pricing = state.range(0) == 0 ? milp::Pricing::Devex
                                     : milp::Pricing::Dantzig;
  solve_with_counters(state, model, opts);
  state.SetLabel(state.range(0) == 0 ? "devex" : "dantzig");
}
BENCHMARK(BM_MilpPricingRule)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MilpBranchingWarm(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const milp::Model model = branching_heavy_model(jobs, 3);
  solve_with_counters(state, model, {});
  state.SetLabel(std::to_string(jobs) + " jobs x 3 regions, warm");
}
BENCHMARK(BM_MilpBranchingWarm)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_MilpBranchingCold(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const milp::Model model = branching_heavy_model(jobs, 3);
  milp::SolverOptions opts;
  opts.warm_start = false;
  solve_with_counters(state, model, opts);
  state.SetLabel(std::to_string(jobs) + " jobs x 3 regions, cold");
}
BENCHMARK(BM_MilpBranchingCold)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_CapacityTimelineReserve(benchmark::State& state) {
  for (auto _ : state) {
    dc::CapacityTimeline tl(64);
    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
      tl.reserve(t, t + 100.0);
      t += 5.0;
      if (i % 64 == 0) tl.prune(t - 200.0);
    }
    benchmark::DoNotOptimize(tl.occupancy_at(t));
  }
}
BENCHMARK(BM_CapacityTimelineReserve)->Unit(benchmark::kMicrosecond);

void BM_FootprintIntegration(benchmark::State& state) {
  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel fp(env);
  double t = 0.0;
  for (auto _ : state) {
    const footprint::Breakdown b = fp.job_integrated(2, t, 4000.0, 0.3);
    benchmark::DoNotOptimize(b.carbon_g());
    t += 977.0;
  }
}
BENCHMARK(BM_FootprintIntegration)->Unit(benchmark::kMicrosecond);

void BM_EnvironmentQuery(benchmark::State& state) {
  const env::Environment env = env::Environment::builtin();
  double t = 0.0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += env.water_intensity(static_cast<int>(t) % 5, t);
    t += 313.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EnvironmentQuery);

}  // namespace

int main(int argc, char** argv) {
  warm_start_selfcheck();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
