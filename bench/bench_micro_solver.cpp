// Microbenchmarks (google-benchmark): MILP solve latency at WaterWise batch
// sizes, capacity-timeline operations, and footprint evaluation — the hot
// paths behind the Fig. 13 overhead numbers.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common.hpp"
#include "dc/capacity_timeline.hpp"
#include "milp/branch_and_bound.hpp"
#include "util/rng.hpp"

namespace {

using namespace ww;

/// Builds a WaterWise-shaped MILP: jobs x regions assignment binaries,
/// capacity rows, delay rows.
milp::Model waterwise_shaped_model(int jobs, int regions, util::Rng& rng) {
  milp::Model m;
  std::vector<int> x(static_cast<std::size_t>(jobs * regions));
  for (int j = 0; j < jobs; ++j)
    for (int r = 0; r < regions; ++r)
      x[static_cast<std::size_t>(j * regions + r)] =
          m.add_binary("x", rng.uniform(0.1, 2.0));
  for (int j = 0; j < jobs; ++j) {
    std::vector<milp::Term> t;
    for (int r = 0; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("a", std::move(t), milp::Sense::Equal, 1.0);
  }
  for (int r = 0; r < regions; ++r) {
    std::vector<milp::Term> t;
    for (int j = 0; j < jobs; ++j)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)], 1.0});
    (void)m.add_constraint("c", std::move(t), milp::Sense::LessEqual,
                           std::ceil(jobs / static_cast<double>(regions)) + 1.0);
  }
  for (int j = 0; j < jobs; ++j) {
    std::vector<milp::Term> t;
    for (int r = 1; r < regions; ++r)
      t.push_back({x[static_cast<std::size_t>(j * regions + r)],
                   rng.uniform(1.0, 20.0)});
    (void)m.add_constraint("d", std::move(t), milp::Sense::LessEqual, 25.0);
  }
  return m;
}

void BM_MilpSolveBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  util::Rng rng(42);
  const milp::Model model = waterwise_shaped_model(jobs, 5, rng);
  for (auto _ : state) {
    const milp::Solution sol = milp::solve(model);
    benchmark::DoNotOptimize(sol.objective);
    if (!sol.usable()) state.SkipWithError("solver failed");
  }
  state.SetLabel(std::to_string(jobs) + " jobs x 5 regions");
}
BENCHMARK(BM_MilpSolveBatch)->Arg(8)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_CapacityTimelineReserve(benchmark::State& state) {
  for (auto _ : state) {
    dc::CapacityTimeline tl(64);
    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
      tl.reserve(t, t + 100.0);
      t += 5.0;
      if (i % 64 == 0) tl.prune(t - 200.0);
    }
    benchmark::DoNotOptimize(tl.occupancy_at(t));
  }
}
BENCHMARK(BM_CapacityTimelineReserve)->Unit(benchmark::kMicrosecond);

void BM_FootprintIntegration(benchmark::State& state) {
  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel fp(env);
  double t = 0.0;
  for (auto _ : state) {
    const footprint::Breakdown b = fp.job_integrated(2, t, 4000.0, 0.3);
    benchmark::DoNotOptimize(b.carbon_g());
    t += 977.0;
  }
}
BENCHMARK(BM_FootprintIntegration)->Unit(benchmark::kMicrosecond);

void BM_EnvironmentQuery(benchmark::State& state) {
  const env::Environment env = env::Environment::builtin();
  double t = 0.0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += env.water_intensity(static_cast<int>(t) % 5, t);
    t += 313.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EnvironmentQuery);

}  // namespace

BENCHMARK_MAIN();
